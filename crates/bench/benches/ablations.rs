//! Ablation benches for the design choices DESIGN.md calls out:
//! early termination on/off, FR-FCFS cap, row-policy timeout, and
//! twin-cell (single-SA) coupling vs full CLR coupling.

use clr_memsim::config::{ClrModeConfig, MemConfig};
use clr_sim::system::{run_workloads, RunConfig};
use clr_trace::apps::by_name;
use clr_trace::workload::Workload;
use criterion::{criterion_group, criterion_main, Criterion};

fn run_ipc(mem: MemConfig) -> f64 {
    let w = Workload::App(*by_name("429.mcf").expect("mcf exists"));
    run_workloads(&[w], &RunConfig::paper(mem, 10_000, 1_000, 21)).ipc[0]
}

fn bench_early_termination(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_early_termination");
    g.sample_size(10);
    for (name, et) in [("with_et", true), ("without_et", false)] {
        g.bench_function(name, |b| {
            let mut cfg = MemConfig::paper_clr(1.0);
            cfg.clr = ClrModeConfig::Clr {
                fraction_hp: 1.0,
                hp_refw_ms: 64.0,
                early_termination: et,
            };
            b.iter(|| run_ipc(cfg.clone()))
        });
    }
    g.finish();
}

fn bench_scheduler(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_scheduler");
    g.sample_size(10);
    for cap in [1u32, 4, 16] {
        g.bench_function(format!("frfcfs_cap_{cap}"), |b| {
            let mut cfg = MemConfig::paper_baseline();
            cfg.scheduler.cap = cap;
            b.iter(|| run_ipc(cfg.clone()))
        });
    }
    for timeout in [60.0f64, 120.0, 480.0] {
        g.bench_function(format!("row_timeout_{timeout}ns"), |b| {
            let mut cfg = MemConfig::paper_baseline();
            cfg.scheduler.row_policy = clr_memsim::config::RowPolicy::Timeout { ns: timeout };
            b.iter(|| run_ipc(cfg.clone()))
        });
    }
    g.finish();
}

fn bench_twin_cell(c: &mut Criterion) {
    // Circuit-level: coupling two cells but only one SA (Twin-Cell DRAM,
    // §9) vs full CLR coupling. Modelled by disabling SA2's enable — the
    // topology keeps its loading but contributes no drive.
    use clr_circuit::dram::{build, Topology};
    use clr_circuit::params::CircuitParams;
    use clr_circuit::scenario::{run_act_pre, ActPreOptions};
    let mut g = c.benchmark_group("ablation_twin_cell");
    g.sample_size(10);
    let p = CircuitParams::default_22nm();
    for topo in [Topology::ClrHighPerformance, Topology::OpenBitlineBaseline] {
        let sub = build(topo, &p);
        g.bench_function(format!("{topo:?}"), |b| {
            b.iter(|| run_act_pre(&sub, &p, ActPreOptions::nominal(p.vdd * 0.96)).t_rcd_ns)
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_early_termination,
    bench_scheduler,
    bench_twin_cell
);
criterion_main!(benches);
