//! Microbenchmarks of the substrate kernels: controller tick, LLC access,
//! trace generation, Zipf sampling, transient solver step.

use clr_core::addr::PhysAddr;
use clr_cpu::cache::{AccessKind, CacheConfig, Llc};
use clr_cpu::trace::TraceSource;
use clr_memsim::config::MemConfig;
use clr_memsim::controller::MemoryController;
use clr_memsim::request::{MemRequest, RequestKind};
use clr_trace::apps::SUITE;
use clr_trace::gen::AppTrace;
use clr_trace::zipf::Zipf;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_controller(c: &mut Criterion) {
    c.bench_function("memsim_tick_with_traffic", |b| {
        let mut cfg = MemConfig::paper_baseline();
        cfg.refresh_enabled = true;
        let mut mc = MemoryController::new(cfg);
        let mut done = Vec::new();
        let mut i = 0u64;
        b.iter(|| {
            if mc.pending_reads() < 32 {
                let _ = mc.try_enqueue(MemRequest::new(
                    i,
                    PhysAddr((i * 4096 + (i % 7) * 64) % (1 << 30)),
                    RequestKind::Read,
                    mc.cycle(),
                ));
                i += 1;
            }
            mc.tick(&mut done);
            done.clear();
        })
    });
}

fn bench_llc(c: &mut Criterion) {
    c.bench_function("llc_access_hit", |b| {
        let mut llc = Llc::new(CacheConfig::paper_llc(), 1);
        // Prime one line.
        llc.access(0, AccessKind::Load, PhysAddr(0x40), 0);
        let req = llc.outbox_front().unwrap();
        llc.outbox_pop();
        llc.fill(req.id);
        let mut t = 0;
        b.iter(|| {
            t += 1;
            llc.access(0, AccessKind::Load, PhysAddr(0x40), t)
        })
    });
}

fn bench_tracegen(c: &mut Criterion) {
    c.bench_function("apptrace_next_item", |b| {
        let mut g = AppTrace::new(SUITE[0], 1);
        b.iter(|| g.next_item())
    });
    c.bench_function("zipf_sample", |b| {
        let z = Zipf::new(1 << 16, 0.8);
        let mut rng = StdRng::seed_from_u64(5);
        b.iter(|| z.sample(&mut rng))
    });
}

fn bench_transient(c: &mut Criterion) {
    use clr_circuit::dram::{build, Topology};
    use clr_circuit::params::CircuitParams;
    use clr_circuit::transient::Transient;
    c.bench_function("transient_step_hp_subarray", |b| {
        let p = CircuitParams::default_22nm();
        let sub = build(Topology::ClrHighPerformance, &p);
        let mut sim = Transient::new(sub.net.clone(), p.dt_ns);
        sim.slew(sub.wordline, p.vpp, p.slew_v_per_ns);
        b.iter(|| sim.step())
    });
}

criterion_group!(
    benches,
    bench_controller,
    bench_llc,
    bench_tracegen,
    bench_transient
);
criterion_main!(benches);
