//! Criterion bench for the Figure 11 kernel: one tREFW sweep point.

use clr_circuit::params::CircuitParams;
use clr_circuit::retention::fig11_sweep;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11");
    g.sample_size(10);
    let p = CircuitParams::default_22nm();
    g.bench_function("refw_point", |b| {
        b.iter(|| fig11_sweep(std::hint::black_box(&p), 64.0, 10.0))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
