//! Criterion bench for the Figure 12 kernel: one single-core run pair
//! (baseline + all-high-performance) on a memory-intensive app model.

use clr_sim::experiment::mem_config;
use clr_sim::system::{run_workloads, RunConfig};
use clr_trace::apps::by_name;
use clr_trace::workload::Workload;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12");
    g.sample_size(10);
    let w = Workload::App(*by_name("429.mcf").expect("mcf exists"));
    g.bench_function("mcf_baseline_vs_clr100", |b| {
        b.iter(|| {
            let base = run_workloads(
                &[w],
                &RunConfig::paper(mem_config(None, 64.0), 10_000, 1_000, 7),
            );
            let clr = run_workloads(
                &[w],
                &RunConfig::paper(mem_config(Some(1.0), 64.0), 10_000, 1_000, 7),
            );
            (base.ipc[0], clr.ipc[0])
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
