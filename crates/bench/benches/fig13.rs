//! Criterion bench for the Figure 13 kernel: one four-core H-group mix run.

use clr_sim::experiment::mem_config;
use clr_sim::system::{run_workloads, RunConfig};
use clr_trace::mix::{build_mixes, MixGroup};
use clr_trace::workload::Workload;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig13");
    g.sample_size(10);
    let mix = build_mixes(MixGroup::High, 1, 42).remove(0);
    let ws: Vec<Workload> = mix.apps.iter().map(|a| Workload::App(**a)).collect();
    g.bench_function("four_core_high_mix", |b| {
        b.iter(|| {
            run_workloads(
                &ws,
                &RunConfig::paper(mem_config(Some(0.25), 64.0), 5_000, 500, 9),
            )
            .ipc
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
