//! Criterion bench for the Figure 14 kernel: the DRAMPower-style energy
//! computation over a run's statistics.

use clr_memsim::config::MemConfig;
use clr_memsim::stats::MemStats;
use clr_power::{energy_of_run, IddParams};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let cfg = MemConfig::paper_clr(0.5);
    let idd = IddParams::default();
    let stats = MemStats {
        cycles: 1_000_000,
        acts_max_capacity: 10_000,
        acts_high_performance: 40_000,
        pres_max_capacity: 10_000,
        pres_high_performance: 40_000,
        reads: 120_000,
        writes: 40_000,
        refs_max_capacity: 60,
        refs_high_performance: 60,
        rank_active_cycles: 700_000,
        rank_precharged_cycles: 300_000,
        ..MemStats::new()
    };
    c.bench_function("fig14_energy_of_run", |b| {
        b.iter(|| energy_of_run(std::hint::black_box(&stats), &cfg, &idd))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
