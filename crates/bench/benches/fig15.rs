//! Criterion bench for the Figure 15 kernel: one extended-refresh run.

use clr_sim::experiment::mem_config;
use clr_sim::system::{run_workloads, RunConfig};
use clr_trace::apps::by_name;
use clr_trace::workload::Workload;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig15");
    g.sample_size(10);
    let w = Workload::App(*by_name("470.lbm").expect("lbm exists"));
    g.bench_function("clr194_all_hp_run", |b| {
        b.iter(|| {
            run_workloads(
                &[w],
                &RunConfig::paper(mem_config(Some(1.0), 194.0), 10_000, 1_000, 3),
            )
            .ipc
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
