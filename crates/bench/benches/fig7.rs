//! Criterion bench for the Figure 7 kernel: one activation/precharge
//! transient with waveform capture, per topology.

use clr_circuit::dram::{build, Topology};
use clr_circuit::params::CircuitParams;
use clr_circuit::scenario::{run_act_pre, ActPreOptions};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7");
    g.sample_size(10);
    let p = CircuitParams::default_22nm();
    for topo in [Topology::OpenBitlineBaseline, Topology::ClrHighPerformance] {
        let sub = build(topo, &p);
        g.bench_function(format!("act_pre_{topo:?}"), |b| {
            b.iter(|| {
                run_act_pre(
                    &sub,
                    &p,
                    ActPreOptions {
                        initial_cell_v: p.vdd * 0.96,
                        capture_trace: true,
                        single_sa_twin_cell: false,
                    },
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
