//! Criterion bench for the Figure 8 kernel: the early-termination
//! restoration analysis.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8");
    g.sample_size(10);
    g.bench_function("early_termination_analysis", |b| {
        b.iter(clr_sim::experiment::circuit::run_fig8)
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
