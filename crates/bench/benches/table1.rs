//! Criterion bench for the Table 1 kernel: one nominal four-configuration
//! circuit measurement.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1");
    g.sample_size(10);
    let params = clr_circuit::params::CircuitParams::default_22nm();
    g.bench_function("measure_table1_nominal", |b| {
        b.iter(|| clr_circuit::timing::measure_table1(std::hint::black_box(&params)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
