//! Runs the system-level ablations DESIGN.md calls out and prints their
//! impact (complementing the Criterion `ablations` bench, which measures
//! runtime cost rather than simulated outcomes).

use clr_memsim::config::{ClrModeConfig, MemConfig};
use clr_sim::experiment::mem_config;
use clr_sim::system::{run_workloads, RunConfig};
use clr_trace::apps::by_name;
use clr_trace::workload::Workload;

fn ipc_of(mem: MemConfig, budget: u64) -> f64 {
    let w = Workload::App(*by_name("429.mcf").expect("mcf exists"));
    run_workloads(&[w], &RunConfig::paper(mem, budget, budget / 10, 77)).ipc[0]
}

fn main() {
    let scale = clr_bench::startup("Ablations");
    let budget = scale.budget_insts();
    let base = ipc_of(mem_config(None, 64.0), budget);

    println!("ablation: early termination of charge restoration (429.mcf, 100% HP)");
    for (label, et) in [("with E.T.   ", true), ("without E.T.", false)] {
        let mut cfg = mem_config(Some(1.0), 64.0);
        cfg.clr = ClrModeConfig::Clr {
            fraction_hp: 1.0,
            hp_refw_ms: 64.0,
            early_termination: et,
        };
        let ipc = ipc_of(cfg, budget);
        println!(
            "  {label}: IPC {:+.1}% vs baseline DDR4",
            (ipc / base - 1.0) * 100.0
        );
    }

    println!("\nablation: FR-FCFS cap (four-core H mix; the cap only matters under interference)");
    let mix = clr_trace::mix::build_mixes(clr_trace::mix::MixGroup::High, 1, 7).remove(0);
    let mix_ws: Vec<Workload> = mix.apps.iter().map(|a| Workload::App(**a)).collect();
    let mix_budget = budget / 4;
    let mix_ipc = |cap: u32| -> f64 {
        let mut cfg = mem_config(None, 64.0);
        cfg.scheduler.cap = cap;
        let r = run_workloads(
            &mix_ws,
            &RunConfig::paper(cfg, mix_budget, mix_budget / 10, 77),
        );
        r.ipc.iter().sum()
    };
    let cap4 = mix_ipc(4);
    for cap in [1u32, 2, 4, 8, 16] {
        let ipc = mix_ipc(cap);
        println!(
            "  cap {cap:>2}: throughput {:+.2}% vs cap 4 default",
            (ipc / cap4 - 1.0) * 100.0
        );
    }

    println!("\nablation: timeout row policy (baseline DDR4)");
    for timeout in [30.0f64, 60.0, 120.0, 240.0, 480.0] {
        let mut cfg = mem_config(None, 64.0);
        cfg.scheduler.row_policy = clr_memsim::config::RowPolicy::Timeout { ns: timeout };
        let ipc = ipc_of(cfg, budget);
        println!(
            "  {timeout:>4} ns: IPC {:+.2}% vs 120 ns default",
            (ipc / base - 1.0) * 100.0
        );
    }

    println!("\nablation: refresh heterogeneity (50% HP rows, 429.mcf)");
    for (label, refw) in [
        ("tRFC-only (64 ms window)", 64.0),
        ("tRFC + 3x window (194 ms)", 194.0),
    ] {
        let ipc = ipc_of(mem_config(Some(0.5), refw), budget);
        println!(
            "  {label}: IPC {:+.1}% vs baseline",
            (ipc / base - 1.0) * 100.0
        );
    }
}
