//! Prints the Table 2 system configuration.

fn main() {
    let _ = clr_bench::startup("Table 2 (configuration) + §6 overheads");
    println!("{}", clr_sim::experiment::sysconfig::render());
    println!("{}", clr_sim::experiment::overheads::render());
}
