//! Regenerates Figure 11: tRCD/tRAS vs the extended refresh window.

use clr_sim::experiment::circuit;

fn main() {
    let _ = clr_bench::startup("Figure 11");
    let sweep = circuit::run_fig11();
    println!("{}", circuit::render_fig11(&sweep));
}
