//! Regenerates Figure 12: single-core normalized IPC and DRAM energy.

use clr_core::paper::HEADLINES;
use clr_sim::experiment::single;

fn main() {
    let scale = clr_bench::startup("Figure 12");
    let report = single::run(scale, 42);
    println!("{}", single::render_fig12(&report));
    let ipc = report.gmean_ipc();
    let energy = report.gmean_energy();
    println!("paper-vs-measured (GMEAN over apps):");
    for (i, frac) in [(1usize, 0usize), (2, 1), (3, 2), (4, 3)] {
        clr_bench::compare(
            &format!("IPC gain @{}%", (frac + 1) * 25),
            ipc[i] - 1.0,
            HEADLINES.single_core_speedup[frac],
        );
    }
    clr_bench::compare(
        "IPC gain @0% (all max-cap)",
        ipc[0] - 1.0,
        HEADLINES.single_core_speedup_all_maxcap,
    );
    for (i, frac) in [(1usize, 0usize), (2, 1), (3, 2), (4, 3)] {
        clr_bench::compare(
            &format!("energy saving @{}%", (frac + 1) * 25),
            1.0 - energy[i],
            HEADLINES.single_core_energy_saving[frac],
        );
    }
}
