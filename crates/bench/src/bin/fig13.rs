//! Regenerates Figure 13: four-core normalized weighted speedup and DRAM
//! energy across the L/M/H workload groups.

use clr_core::paper::HEADLINES;
use clr_sim::experiment::multi;

fn main() {
    let scale = clr_bench::startup("Figure 13");
    let report = multi::run(scale, 42);
    println!("{}", multi::render_fig13(&report));
    let ws = report.gmean_ws();
    let energy = report.gmean_energy();
    println!("paper-vs-measured (GMEAN over mixes):");
    clr_bench::compare(
        "weighted speedup @25%",
        ws[1] - 1.0,
        HEADLINES.multi_core_speedup[0],
    );
    clr_bench::compare(
        "weighted speedup @100%",
        ws[4] - 1.0,
        HEADLINES.multi_core_speedup[3],
    );
    clr_bench::compare(
        "H-group speedup @100%",
        report.high_group().norm_ws[4] - 1.0,
        HEADLINES.multi_core_speedup_high_mpki,
    );
    clr_bench::compare(
        "energy saving @25%",
        1.0 - energy[1],
        HEADLINES.multi_core_energy_saving_25_100[0],
    );
    clr_bench::compare(
        "energy saving @100%",
        1.0 - energy[4],
        HEADLINES.multi_core_energy_saving_25_100[1],
    );
}
