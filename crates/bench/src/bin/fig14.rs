//! Regenerates Figure 14: normalized DRAM power (single- and four-core).

use clr_core::paper::HEADLINES;
use clr_sim::experiment::{multi, single};

fn main() {
    let scale = clr_bench::startup("Figure 14");
    let s = single::run(scale, 42);
    println!("{}", single::render_fig14a(&s));
    let m = multi::run(scale, 42);
    println!("{}", multi::render_fig14b(&m));
    println!("paper-vs-measured:");
    let sp = s.gmean_power();
    let mp = m.gmean_power();
    clr_bench::compare(
        "single-core power saving @25%",
        1.0 - sp[1],
        HEADLINES.single_core_power_saving_25_100[0],
    );
    clr_bench::compare(
        "single-core power saving @100%",
        1.0 - sp[4],
        HEADLINES.single_core_power_saving_25_100[1],
    );
    clr_bench::compare(
        "multi-core power saving @25%",
        1.0 - mp[1],
        HEADLINES.multi_core_power_saving_25_100[0],
    );
    clr_bench::compare(
        "multi-core power saving @100%",
        1.0 - mp[4],
        HEADLINES.multi_core_power_saving_25_100[1],
    );
}
