//! Regenerates Figure 15: refresh-interval sensitivity (CLR-64..CLR-194).

use clr_core::paper::HEADLINES;
use clr_sim::experiment::refresh;

fn main() {
    let scale = clr_bench::startup("Figure 15");
    let s = refresh::run_single(scale, 42);
    println!("{}", refresh::render(&s));
    let m = refresh::run_multi(scale, 42);
    println!("{}", refresh::render(&m));
    println!("paper-vs-measured (multi-core, all pages high-performance):");
    let clr64 = &m.variants[0];
    let clr194 = &m.variants[4];
    clr_bench::compare(
        "CLR-64 refresh energy saving",
        1.0 - clr64.norm_refresh_energy[3],
        HEADLINES.refresh_energy_saving_clr64,
    );
    clr_bench::compare(
        "CLR-194 refresh energy saving",
        1.0 - clr194.norm_refresh_energy[3],
        HEADLINES.refresh_energy_saving_clr194,
    );
    clr_bench::compare(
        "CLR-194 speedup",
        clr194.norm_perf[3] - 1.0,
        HEADLINES.multi_core_speedup_clr194,
    );
}
