//! Regenerates Figure 7: activation + precharge waveforms, baseline vs
//! high-performance mode. Prints CSV suitable for plotting.

use clr_sim::experiment::circuit;

fn main() {
    let _ = clr_bench::startup("Figure 7");
    let (base, hp) = circuit::run_fig7();
    println!("# baseline open-bitline activation + precharge");
    println!("{}", circuit::trace_csv(&base));
    println!("# CLR-DRAM high-performance mode");
    println!("{}", circuit::trace_csv(&hp));
    let t_base = base.iter().find(|p| p.bl > 1.1).map(|p| p.t_ns);
    let t_hp = hp.iter().find(|p| p.bl > 1.1).map(|p| p.t_ns);
    if let (Some(b), Some(h)) = (t_base, t_hp) {
        println!("# bitline reaches ~VDD: baseline {b:.1} ns, high-performance {h:.1} ns");
    }
}
