//! Regenerates Figure 8: the early-termination analysis of charge
//! restoration in high-performance mode.

use clr_sim::experiment::circuit;

fn main() {
    let _ = clr_bench::startup("Figure 8");
    let (summary, trace) = circuit::run_fig8();
    println!("{}", circuit::render_fig8(&summary));
    println!("# restoration waveform CSV");
    println!("{}", circuit::trace_csv(&trace));
}
