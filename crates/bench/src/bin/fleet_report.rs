//! Fleet-scale batched simulation report (`clr-dram/fleet/v2`).
//!
//! Synthesizes a deterministic heterogeneous roster
//! ([`FleetSpec::synth`]), pushes every instance through one shared
//! persistent executor as whole-instance jobs, fuses the fleet
//! read-latency distribution / slowdowns / capacity / energy / blame
//! budgets / skip-ahead profile, and evaluates the relocation-aware
//! fleet SLO (background instances gated at the doubled fleet
//! slowdown bound; stall-mode instances reported against the sweep
//! bound but `expected_fail`-annotated — see `fleet_slo_spec`).
//! Writes the deterministic JSON to `BENCH_fleet.json`.
//!
//! Knobs:
//!
//! * `CLR_FLEET_N` — instance count (default 256);
//! * `CLR_THREADS` — pool threads requested (clamped to the host's
//!   available parallelism, default 1);
//! * `CLR_FLEET_CHECK=1` — re-run the fleet on a 1-lane pool and
//!   assert the JSON is byte-identical (the CI determinism gate).
//!
//! Host wall-clock goes to stdout only — the JSON is a pure function
//! of `(roster, seed, scale)`, so the determinism check is a string
//! comparison.

use clr_fleet::{run_fleet, FleetSpec};
use clr_sim::system::threads_from_env;

const FLEET_SEED: u64 = 0xF1EE7;

fn main() {
    let scale = clr_bench::startup("fleet report (batched heterogeneous instances)");
    let n = std::env::var("CLR_FLEET_N")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(256);
    let pool_threads = threads_from_env();

    let spec = FleetSpec::synth(n, FLEET_SEED, scale);
    let t0 = std::time::Instant::now();
    let report = run_fleet(&spec, pool_threads);
    let host_s = t0.elapsed().as_secs_f64();
    let json = report.to_json();

    println!(
        "  fleet: {} instances, pool threads {} requested / {} effective, {:.2}s host",
        report.instances.len(),
        report.pool_threads_requested,
        report.pool_threads_effective,
        host_s,
    );
    let h = &report.fused_read_latency;
    println!(
        "  fused read latency: count {}, p50 {}, p95 {}, p99 {} DRAM cycles",
        h.count(),
        h.p50(),
        h.p95(),
        h.p99(),
    );
    println!(
        "  ipc geomean {:.4} | max tenant slowdown {:.3}x (background {:.3}x, stall {:.3}x) | \
         mean capacity forfeited {:.3} | migration energy {:.3e} J",
        report.ipc_geomean,
        report.max_tenant_slowdown,
        report.max_background_slowdown,
        report.max_stall_slowdown,
        report.mean_capacity_forfeited,
        report.total_migration_energy_j,
    );
    let total_wait = report.fused_read_blame.total_cycles();
    let anatomy = report
        .fused_read_blame
        .dominant()
        .into_iter()
        .take(4)
        .map(|(cause, cycles)| format!("{} {}%", cause.label(), cycles * 100 / total_wait.max(1)))
        .collect::<Vec<_>>()
        .join(", ");
    println!("  fleet wait anatomy (top causes): {anatomy}");
    let sp = &report.fused_skip_profile;
    println!(
        "  fused skip profile: {:.1}% cycles skipped, {:.3} events/kcycle, jump p95 {}",
        sp.jump_coverage() * 100.0,
        sp.events_per_kilocycle(),
        sp.jumps.p95(),
    );
    println!(
        "  slo[{}]: {}",
        report.slo.spec,
        if report.slo.pass() { "PASS" } else { "FAIL" }
    );

    if std::env::var("CLR_FLEET_CHECK").is_ok() {
        let t1 = std::time::Instant::now();
        let serial = run_fleet(&spec, 1).to_json();
        assert_eq!(
            json, serial,
            "fleet JSON must be byte-identical across pool sizes"
        );
        println!(
            "  determinism check: pool={} == pool=1, byte-identical ({:.2}s host)",
            pool_threads,
            t1.elapsed().as_secs_f64(),
        );
    }

    std::fs::write("BENCH_fleet.json", &json).expect("write BENCH_fleet.json");
    println!("\n  wrote BENCH_fleet.json ({} bytes)", json.len());
}
