//! Regenerates the dynamic-policy sweep: mode-management policies × the
//! phase-shifting workload → IPC, DRAM energy, capacity loss.
//!
//! The final stdout block is machine-readable JSON
//! (`clr-dram/policy-sweep/v1`) so successive PRs can track the
//! performance trajectory of the policies.

use clr_sim::experiment::policies;

fn main() {
    let scale = clr_bench::startup("policy sweep (dynamic capacity-latency trade-off, §6)");
    let report = policies::run(scale, 42);
    print!("{}", report.render());

    // Relocation-model axis: background migration must dominate the
    // stall-the-world apply — same transitions, but the data movement
    // steals idle bank slots instead of freezing queue service.
    println!("\n--- background migration vs stall-the-world ---");
    for (policy, workload, bg, stall) in report.background_vs_stall() {
        let tag = if bg + 1e-9 >= stall {
            ""
        } else {
            "  [REGRESSION]"
        };
        println!(
            "{policy:<14} {workload:<28} IPC {:+6.2}%  (background {bg:.4} vs stall {stall:.4}){tag}",
            (bg / stall - 1.0) * 100.0,
        );
    }

    // The 2-core shared-budget contention cell: who wins the fast rows.
    for c in report
        .cells
        .iter()
        .filter(|c| c.workload.starts_with("2core:"))
    {
        let per_core = c
            .ipc_per_core
            .iter()
            .enumerate()
            .map(|(i, v)| format!("core{i} {v:.4}"))
            .collect::<Vec<_>>()
            .join(" | ");
        println!(
            "\n{} on {} ({}): per-core IPC {per_core}, migration util {:.2}%",
            c.policy,
            c.workload,
            c.reloc,
            c.migration_slot_utilization * 100.0
        );
    }

    // Per-workload contrast: the dynamic-policy win should appear on the
    // drifting hot set, shrink to parity on the stable hot set, and stay
    // non-negative (policy declines to relocate) on uniform-random.
    for workload in clr_sim::experiment::policies::workload_roster(scale) {
        let name = workload.name();
        let Some(dynamic) = report.cell_for("hysteresis", &name) else {
            continue;
        };
        let all_hp = report
            .cell_for("static-100", &name)
            .expect("all-HP is in the roster");
        match report.best_static_within_for(dynamic.avg_capacity_loss, &name) {
            Some(rival) => println!(
                "\n{name}: hysteresis vs best static within its capacity budget ({}):\n  \
                 IPC {:+.1}% | capacity loss {:.1}% vs {:.1}% | all-HP loses {:.1}%",
                rival.policy,
                (dynamic.ipc / rival.ipc - 1.0) * 100.0,
                dynamic.avg_capacity_loss * 100.0,
                rival.avg_capacity_loss * 100.0,
                all_hp.avg_capacity_loss * 100.0,
            ),
            None => println!("\n{name}: no static split fits the dynamic capacity budget"),
        }
    }

    println!("\n--- machine-readable (clr-dram/policy-sweep/v1) ---");
    print!("{}", report.to_json());
}
