//! Regenerates the dynamic-policy sweep: mode-management policies × the
//! phase-shifting workload → IPC, DRAM energy, capacity loss.
//!
//! The final stdout block is machine-readable JSON
//! (`clr-dram/policy-sweep/v1`) so successive PRs can track the
//! performance trajectory of the policies.

use clr_sim::experiment::policies;

fn main() {
    let scale = clr_bench::startup("policy sweep (dynamic capacity-latency trade-off, §6)");
    let report = policies::run(scale, 42);
    print!("{}", report.render());

    let dynamic = report
        .cell("hysteresis")
        .expect("hysteresis is in the roster");
    let all_hp = report.cell("static-100").expect("all-HP is in the roster");
    match report.best_static_within(dynamic.avg_capacity_loss) {
        Some(rival) => {
            println!(
                "\nhysteresis vs best static split within its capacity budget ({}):",
                rival.policy
            );
            println!(
                "  IPC {:+.1}% | capacity loss {:.1}% vs {:.1}% | all-HP loses {:.1}%",
                (dynamic.ipc / rival.ipc - 1.0) * 100.0,
                dynamic.avg_capacity_loss * 100.0,
                rival.avg_capacity_loss * 100.0,
                all_hp.avg_capacity_loss * 100.0,
            );
        }
        None => println!("\nno static split fits the dynamic capacity budget"),
    }

    println!("\n--- machine-readable (clr-dram/policy-sweep/v1) ---");
    print!("{}", report.to_json());
}
