//! Regenerates the dynamic-policy sweep: mode-management policies × the
//! phase-shifting workload → IPC, DRAM energy, capacity loss — plus the
//! multi-core/multi-channel contention sweep (per-core IPC, weighted
//! speedup, max slowdown under a shared fast-row budget).
//!
//! The final stdout block is machine-readable JSON
//! (`clr-dram/policy-sweep/v3`) so successive PRs can track the
//! performance trajectory of the policies.
//!
//! Set `CLR_SWEEP=contention` to run only the contention sweep (the CI
//! smoke cell exercising the channel-sharded path).

use clr_sim::experiment::policies;
use clr_sim::scale::Scale;

/// Prints the contention block: the table plus per-core breakdowns.
fn print_contention(report: &policies::PolicySweepReport) {
    println!("\n--- contention sweep (cores × channels × budget splits) ---");
    print!("{}", report.render_contention());
    for c in &report.contention {
        let per_core = c
            .ipc_per_core
            .iter()
            .enumerate()
            .map(|(i, v)| format!("core{i} {v:.4}"))
            .collect::<Vec<_>>()
            .join(" | ");
        println!(
            "{} {} ({} split): per-core IPC {per_core} | weighted speedup {:.3} | max slowdown {:.3}",
            c.policy,
            c.workload,
            c.budget_split,
            c.weighted_speedup.unwrap_or(f64::NAN),
            c.max_slowdown.unwrap_or(f64::NAN),
        );
    }
}

fn main() {
    let scale = clr_bench::startup("policy sweep (dynamic capacity-latency trade-off, §6)");
    if std::env::var("CLR_SWEEP").as_deref() == Ok("contention") {
        // Contention-only mode: the CI smoke step driving the sharded
        // 2-channel path on every push without the full roster.
        let report = policies::PolicySweepReport {
            cells: Vec::new(),
            contention: policies::run_contention(scale, 42),
            scale,
        };
        print_contention(&report);
        println!("\n--- machine-readable (clr-dram/policy-sweep/v3) ---");
        print!("{}", report.to_json());
        sanity_check_contention(&report, scale);
        return;
    }
    let report = policies::run(scale, 42);
    print!("{}", report.render());

    // Relocation-model axis: background migration must dominate the
    // stall-the-world apply — same transitions, but the data movement
    // steals idle bank slots instead of freezing queue service.
    println!("\n--- background migration vs stall-the-world ---");
    for (policy, workload, bg, stall) in report.background_vs_stall() {
        let tag = if bg + 1e-9 >= stall {
            ""
        } else {
            "  [REGRESSION]"
        };
        println!(
            "{policy:<14} {workload:<28} IPC {:+6.2}%  (background {bg:.4} vs stall {stall:.4}){tag}",
            (bg / stall - 1.0) * 100.0,
        );
    }

    // The 2-core shared-budget contention cell: who wins the fast rows.
    for c in report
        .cells
        .iter()
        .filter(|c| c.workload.starts_with("2core:"))
    {
        let per_core = c
            .ipc_per_core
            .iter()
            .enumerate()
            .map(|(i, v)| format!("core{i} {v:.4}"))
            .collect::<Vec<_>>()
            .join(" | ");
        println!(
            "\n{} on {} ({}): per-core IPC {per_core}, migration util {:.2}%",
            c.policy,
            c.workload,
            c.reloc,
            c.migration_slot_utilization * 100.0
        );
    }

    // Per-workload contrast: the dynamic-policy win should appear on the
    // drifting hot set, shrink to parity on the stable hot set, and stay
    // non-negative (policy declines to relocate) on uniform-random.
    for workload in clr_sim::experiment::policies::workload_roster(scale) {
        let name = workload.name();
        let Some(dynamic) = report.cell_for("hysteresis", &name) else {
            continue;
        };
        let all_hp = report
            .cell_for("static-100", &name)
            .expect("all-HP is in the roster");
        match report.best_static_within_for(dynamic.avg_capacity_loss, &name) {
            Some(rival) => println!(
                "\n{name}: hysteresis vs best static within its capacity budget ({}):\n  \
                 IPC {:+.1}% | capacity loss {:.1}% vs {:.1}% | all-HP loses {:.1}%",
                rival.policy,
                (dynamic.ipc / rival.ipc - 1.0) * 100.0,
                dynamic.avg_capacity_loss * 100.0,
                rival.avg_capacity_loss * 100.0,
                all_hp.avg_capacity_loss * 100.0,
            ),
            None => println!("\n{name}: no static split fits the dynamic capacity budget"),
        }
    }

    print_contention(&report);

    println!("\n--- machine-readable (clr-dram/policy-sweep/v3) ---");
    print!("{}", report.to_json());
    sanity_check_contention(&report, scale);
}

/// Hard acceptance checks on the contention sweep: every cell must have
/// run under background relocation with zero stall cycles and report
/// the fairness columns. A violation is a regression in the sharded
/// path, so the binary fails loudly (CI runs it on every push).
fn sanity_check_contention(report: &policies::PolicySweepReport, scale: Scale) {
    for c in &report.contention {
        assert_eq!(
            c.relocation_stall_cycles, 0,
            "contention cell {} stalled under background relocation",
            c.workload
        );
        assert_eq!(c.ipc_per_core.len(), c.cores, "per-core IPC missing");
        let ws = c.weighted_speedup.expect("weighted speedup missing");
        let ms = c.max_slowdown.expect("max slowdown missing");
        assert!(
            ws > 0.0 && ws <= c.cores as f64 * 1.5,
            "ws {ws} out of range"
        );
        assert!(ms >= 0.5, "max slowdown {ms} out of range");
    }
    // The headline 4-core/2-channel hysteresis cell must be present at
    // every scale (it is the acceptance cell of the sharding work).
    assert!(
        report
            .contention
            .iter()
            .any(|c| c.cores == 4 && c.channels == 2 && c.policy == "hysteresis"),
        "4-core/2-channel hysteresis contention cell missing at scale {}",
        scale.label()
    );
}
