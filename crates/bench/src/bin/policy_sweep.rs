//! Regenerates the dynamic-policy sweep: mode-management policies × the
//! phase-shifting workload → IPC, DRAM energy, capacity loss — plus the
//! multi-core/multi-channel contention sweep (per-core IPC, weighted
//! speedup, max slowdown under a shared fast-row budget).
//!
//! The final stdout block is machine-readable JSON
//! (`clr-dram/policy-sweep/v7`) so successive PRs can track the
//! performance trajectory of the policies.
//!
//! Set `CLR_SWEEP=contention` to run only the contention sweep (the CI
//! smoke cell exercising the channel-sharded path), or
//! `CLR_SWEEP=placement` to run only the placement sweep (same-bank vs
//! cross-bank vs cross-channel destination placement on the
//! channel-skewed hot-set mix).

use clr_sim::experiment::policies;
use clr_sim::scale::Scale;

/// Prints the contention block: the table plus per-core breakdowns.
fn print_contention(report: &policies::PolicySweepReport) {
    println!("\n--- contention sweep (cores × channels × budget splits) ---");
    print!("{}", report.render_contention());
    for c in &report.contention {
        let per_core = c
            .ipc_per_core
            .iter()
            .enumerate()
            .map(|(i, v)| format!("core{i} {v:.4}"))
            .collect::<Vec<_>>()
            .join(" | ");
        println!(
            "{} {} ({} split): per-core IPC {per_core} | weighted speedup {:.3} | max slowdown {:.3}",
            c.policy,
            c.workload,
            c.budget_split,
            c.weighted_speedup.unwrap_or(f64::NAN),
            c.max_slowdown.unwrap_or(f64::NAN),
        );
    }
}

/// Prints the placement block: same-bank (budget-only) vs cross-bank vs
/// cross-channel destination placement on the skewed hot-set mix.
fn print_placement(report: &policies::PolicySweepReport) {
    println!("\n--- placement sweep (destination placement on the channel-skewed mix) ---");
    print!("{}", report.render_placement());
    if let (Some(budget_only), Some(frames)) = (
        report.placement_cell("same-bank"),
        report.placement_cell("cross-channel"),
    ) {
        let (ws_b, ws_f) = (
            budget_only.weighted_speedup.unwrap_or(f64::NAN),
            frames.weighted_speedup.unwrap_or(f64::NAN),
        );
        println!(
            "cross-channel frame rebalancing vs budget-only: weighted speedup {ws_f:.3} vs {ws_b:.3} \
             ({:+.1}%), {} frame moves landed",
            (ws_f / ws_b - 1.0) * 100.0,
            frames.frames_moved,
        );
    }
}

fn main() {
    let scale = clr_bench::startup("policy sweep (dynamic capacity-latency trade-off, §6)");
    match std::env::var("CLR_SWEEP").as_deref() {
        Ok("contention") => {
            // Contention-only mode: the CI smoke step driving the sharded
            // 2-channel path on every push without the full roster.
            let report = policies::PolicySweepReport {
                cells: Vec::new(),
                contention: policies::run_contention(scale, 42),
                placement: Vec::new(),
                scale,
            };
            print_contention(&report);
            println!("\n--- machine-readable (clr-dram/policy-sweep/v7) ---");
            print!("{}", report.to_json());
            sanity_check_contention(&report, scale);
            return;
        }
        Ok("placement") => {
            // Placement-only mode: the CI smoke step driving cross-channel
            // frame rebalancing (staged evacuate/fill jobs, remap installs)
            // on every push.
            let report = policies::PolicySweepReport {
                cells: Vec::new(),
                contention: Vec::new(),
                placement: policies::run_placement(scale, 42),
                scale,
            };
            print_placement(&report);
            println!("\n--- machine-readable (clr-dram/policy-sweep/v7) ---");
            print!("{}", report.to_json());
            sanity_check_placement(&report);
            return;
        }
        _ => {}
    }
    let report = policies::run(scale, 42);
    print!("{}", report.render());

    // Relocation-model axis: background migration must dominate the
    // stall-the-world apply — same transitions, but the data movement
    // steals idle bank slots instead of freezing queue service.
    println!("\n--- background migration vs stall-the-world ---");
    for (policy, workload, bg, stall) in report.background_vs_stall() {
        let tag = if bg + 1e-9 >= stall {
            ""
        } else {
            "  [REGRESSION]"
        };
        println!(
            "{policy:<14} {workload:<28} IPC {:+6.2}%  (background {bg:.4} vs stall {stall:.4}){tag}",
            (bg / stall - 1.0) * 100.0,
        );
    }

    // The 2-core shared-budget contention cell: who wins the fast rows.
    for c in report
        .cells
        .iter()
        .filter(|c| c.workload.starts_with("2core:"))
    {
        let per_core = c
            .ipc_per_core
            .iter()
            .enumerate()
            .map(|(i, v)| format!("core{i} {v:.4}"))
            .collect::<Vec<_>>()
            .join(" | ");
        println!(
            "\n{} on {} ({}): per-core IPC {per_core}, migration util {:.2}%",
            c.policy,
            c.workload,
            c.reloc,
            c.migration_slot_utilization * 100.0
        );
    }

    // Per-workload contrast: the dynamic-policy win should appear on the
    // drifting hot set, shrink to parity on the stable hot set, and stay
    // non-negative (policy declines to relocate) on uniform-random.
    for workload in clr_sim::experiment::policies::workload_roster(scale) {
        let name = workload.name();
        let Some(dynamic) = report.cell_for("hysteresis", &name) else {
            continue;
        };
        let all_hp = report
            .cell_for("static-100", &name)
            .expect("all-HP is in the roster");
        match report.best_static_within_for(dynamic.avg_capacity_loss, &name) {
            Some(rival) => println!(
                "\n{name}: hysteresis vs best static within its capacity budget ({}):\n  \
                 IPC {:+.1}% | capacity loss {:.1}% vs {:.1}% | all-HP loses {:.1}%",
                rival.policy,
                (dynamic.ipc / rival.ipc - 1.0) * 100.0,
                dynamic.avg_capacity_loss * 100.0,
                rival.avg_capacity_loss * 100.0,
                all_hp.avg_capacity_loss * 100.0,
            ),
            None => println!("\n{name}: no static split fits the dynamic capacity budget"),
        }
    }

    print_contention(&report);
    print_placement(&report);

    println!("\n--- machine-readable (clr-dram/policy-sweep/v7) ---");
    print!("{}", report.to_json());
    sanity_check_contention(&report, scale);
    sanity_check_placement(&report);
}

/// Hard acceptance checks on the placement sweep: every cell runs under
/// background relocation with zero stall cycles, the cross-channel cell
/// must exist, and its rebalancer must have actually landed frame moves
/// (staged evacuate → fill → remap) — otherwise the placement path
/// regressed.
fn sanity_check_placement(report: &policies::PolicySweepReport) {
    for c in &report.placement {
        assert_eq!(
            c.relocation_stall_cycles, 0,
            "placement cell {} stalled under background relocation",
            c.placement
        );
        assert!(c.weighted_speedup.is_some(), "fairness metrics missing");
    }
    let frames = report
        .placement_cell("cross-channel")
        .expect("cross-channel placement cell missing");
    assert!(
        frames.frames_moved > 0 && frames.rows_remapped > 0,
        "cross-channel rebalancing moved no frames (moved {}, remapped {})",
        frames.frames_moved,
        frames.rows_remapped,
    );
    // The subsystem's acceptance property: moving frames must beat
    // moving only budget on weighted speedup (runs are seeded and
    // deterministic, so this is a regression gate, not a flaky bound).
    if let Some(budget_only) = report.placement_cell("same-bank") {
        let (ws_f, ws_b) = (
            frames.weighted_speedup.unwrap_or(0.0),
            budget_only.weighted_speedup.unwrap_or(f64::MAX),
        );
        assert!(
            ws_f > ws_b,
            "cross-channel rebalancing ({ws_f:.3}) no longer beats budget-only ({ws_b:.3})"
        );
    }
}

/// Hard acceptance checks on the contention sweep: every cell must have
/// run under background relocation with zero stall cycles and report
/// the fairness columns. A violation is a regression in the sharded
/// path, so the binary fails loudly (CI runs it on every push).
fn sanity_check_contention(report: &policies::PolicySweepReport, scale: Scale) {
    for c in &report.contention {
        assert_eq!(
            c.relocation_stall_cycles, 0,
            "contention cell {} stalled under background relocation",
            c.workload
        );
        assert_eq!(c.ipc_per_core.len(), c.cores, "per-core IPC missing");
        let ws = c.weighted_speedup.expect("weighted speedup missing");
        let ms = c.max_slowdown.expect("max slowdown missing");
        assert!(
            ws > 0.0 && ws <= c.cores as f64 * 1.5,
            "ws {ws} out of range"
        );
        assert!(ms >= 0.5, "max slowdown {ms} out of range");
    }
    // The headline 4-core/2-channel hysteresis cell must be present at
    // every scale (it is the acceptance cell of the sharding work).
    assert!(
        report
            .contention
            .iter()
            .any(|c| c.cores == 4 && c.channels == 2 && c.policy == "hysteresis"),
        "4-core/2-channel hysteresis contention cell missing at scale {}",
        scale.label()
    );
}
