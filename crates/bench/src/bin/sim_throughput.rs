//! Simulation-throughput benchmark: host wall-clock speed of the
//! full-system simulator across walk modes and worker-thread counts
//! (`clr-dram/sim-throughput/v3`).
//!
//! Three scenarios bracket the design space:
//!
//! * **policy-saturated** — the policy sweep's headline cell (hysteresis
//!   policy × drifting-hot-set workload, refresh on). Memory stays busy a
//!   few cycles ahead, so most cycles carry events and skip-ahead can
//!   only harvest the short gaps: the speedup here is the *floor*.
//! * **light-intensity** — a low-MPKI synthetic on the paper system,
//!   where the DRAM sits idle between bursts and the CPU stalls on
//!   isolated misses: long dead windows, the skip-ahead *headline*.
//! * **contention-4c2ch** — the 4-core × 2-channel contention cell
//!   (hysteresis, demand-proportional split), additionally run with two
//!   worker threads (`threads=2`): the multi-channel walk the persistent
//!   executor exists for. The threaded lane runs with the production
//!   resolve-time clamp on, so the v3 **executor axis** records both the
//!   requested and the effective thread count per mode — on a 1-core
//!   host the lane clamps to serial (no fan-out, no regression), and the
//!   bench asserts exactly that.
//!
//! Each scenario runs a per-cycle reference then the skip-ahead walk at
//! each thread count, verifies every mode is statistically bit-identical
//! (the skip-ahead *and* threading contracts), and reports simulated
//! DRAM cycles/second plus the per-phase host-time breakdown (channel
//! walk vs completion merge vs policy epochs). Every mode ladder is run
//! for several *interleaved* repetitions and each mode keeps its
//! fastest sample: host clock-speed drift hits all modes instead of
//! whichever happened to run last, and the minimum is the standard
//! noise-robust wall-clock estimator (the runs are deterministic, so
//! every repetition does identical work). The closing JSON is also
//! written to `BENCH_sim_throughput.json` so successive PRs track the
//! simulator's own performance trajectory alongside the modelled one.

use std::fmt::Write as _;
use std::time::Instant;

use clr_memsim::migrate::RelocationConfig;
use clr_memsim::MemStats;
use clr_policy::budget::BudgetSplit;
use clr_policy::policy::{PolicyConstraints, PolicySpec};
use clr_sim::experiment::policies::{
    contention_workloads, epoch_cycles, phase_workload, policy_cluster, policy_mem_config,
    DYNAMIC_BUDGET,
};
use clr_sim::policyrun::{run_policy_workloads, PolicyRunConfig};
use clr_sim::system::{run_workloads, RunConfig};
use clr_sim::Scale;
use clr_trace::synthetic::{SyntheticKind, SyntheticSpec};
use clr_trace::workload::Workload;

struct Sample {
    mode: &'static str,
    /// Worker threads the mode asked for.
    threads_requested: usize,
    /// Worker threads the walk ran with after the resolve-time clamp
    /// against the host's available parallelism.
    threads_effective: usize,
    wall_s: f64,
    loop_s: f64,
    /// Host seconds inside the memory-side channel walk.
    walk_s: f64,
    /// Host seconds merging per-channel completion streams.
    merge_s: f64,
    /// Host seconds in epoch-boundary policy work (0 for policy-free
    /// runs).
    policy_s: f64,
    ipc: Vec<f64>,
    mem: MemStats,
}

impl Sample {
    fn requests(&self) -> u64 {
        self.mem.reads + self.mem.writes
    }

    fn cycles_per_sec(&self) -> f64 {
        self.mem.cycles as f64 / self.loop_s
    }

    fn requests_per_sec(&self) -> f64 {
        self.requests() as f64 / self.loop_s
    }
}

/// One scenario's mode ladder: `modes[0]` is always the per-cycle
/// reference; later entries are skip-ahead at increasing thread counts.
struct Scenario {
    name: &'static str,
    workload: String,
    modes: Vec<Sample>,
}

impl Scenario {
    /// Skip-ahead (serial) over the per-cycle reference.
    fn speedup(&self) -> f64 {
        self.modes[0].loop_s / self.modes[1].loop_s
    }

    /// The threaded mode's speedup over the per-cycle reference, when
    /// the scenario ran one.
    fn speedup_threaded(&self) -> Option<f64> {
        self.modes
            .iter()
            .find(|s| s.threads_requested > 1)
            .map(|s| self.modes[0].loop_s / s.loop_s)
    }

    /// Serial-skip over threaded-skip wall time (how much the worker
    /// pool itself buys at this event density).
    fn thread_scaling(&self) -> Option<f64> {
        self.modes
            .iter()
            .find(|s| s.threads_requested > 1)
            .map(|s| self.modes[1].loop_s / s.loop_s)
    }

    fn identical(&self) -> bool {
        self.modes[1..]
            .iter()
            .all(|s| s.ipc == self.modes[0].ipc && s.mem == self.modes[0].mem)
    }
}

/// The policy sweep's headline cell: hysteresis over the drifting hot
/// set — DRAM saturated, events every few cycles.
fn run_saturated(mode: &'static str, skip_ahead: bool, scale: Scale) -> Sample {
    let mut mem = policy_mem_config(0.0);
    mem.refresh_enabled = true;
    let base = RunConfig {
        mem,
        cluster: policy_cluster(),
        budget_insts: scale.budget_insts(),
        warmup_insts: scale.warmup_insts(),
        seed: 42,
        skip_ahead,
        trace: None,
        metrics: None,
        threads: 1,
        clamp_threads: true,
        blame: false,
    };
    let cfg = PolicyRunConfig::new(
        base,
        PolicySpec::Hysteresis,
        PolicyConstraints::with_budget(DYNAMIC_BUDGET),
        epoch_cycles(scale),
    );
    let start = Instant::now();
    let r = run_policy_workloads(&[phase_workload(scale)], &cfg);
    Sample {
        mode,
        threads_requested: r.run.threads_requested,
        threads_effective: r.run.threads_effective,
        wall_s: start.elapsed().as_secs_f64(),
        loop_s: r.run.host_loop_s,
        walk_s: r.run.host_walk_s,
        merge_s: r.run.host_merge_s,
        policy_s: r.host_policy_s,
        ipc: r.run.ipc,
        mem: r.run.mem,
    }
}

/// A low-intensity synthetic on the paper system: long idle stretches on
/// both clock domains — the workload class skip-ahead exists for.
fn light_workload() -> Workload {
    Workload::Synthetic(SyntheticSpec {
        kind: SyntheticKind::Random,
        index: 12, // the suite's bubbles=159 random family
        bubbles: 159,
        footprint_mib: 64,
    })
}

fn run_light(mode: &'static str, skip_ahead: bool, scale: Scale) -> Sample {
    let mut cfg = RunConfig::paper(
        clr_sim::experiment::mem_config(Some(0.5), 64.0),
        scale.budget_insts(),
        scale.warmup_insts(),
        42,
    );
    cfg.skip_ahead = skip_ahead;
    cfg.threads = 1;
    let start = Instant::now();
    let r = run_workloads(&[light_workload()], &cfg);
    Sample {
        mode,
        threads_requested: r.threads_requested,
        threads_effective: r.threads_effective,
        wall_s: start.elapsed().as_secs_f64(),
        loop_s: r.host_loop_s,
        walk_s: r.host_walk_s,
        merge_s: r.host_merge_s,
        policy_s: 0.0,
        ipc: r.ipc,
        mem: r.mem,
    }
}

/// The 4-core × 2-channel contention cell (hysteresis policy,
/// demand-proportional budget split, paced background relocation) — the
/// smoke roster's headline cell and the threaded walk's target shape.
fn run_contention(mode: &'static str, skip_ahead: bool, threads: usize, scale: Scale) -> Sample {
    let mut mem = policy_mem_config(0.0);
    mem.geometry.channels = 2;
    mem.refresh_enabled = true;
    mem.relocation = RelocationConfig::background_paced();
    let base = RunConfig {
        mem,
        cluster: policy_cluster(),
        budget_insts: scale.budget_insts(),
        warmup_insts: scale.warmup_insts(),
        seed: 42,
        skip_ahead,
        trace: None,
        metrics: None,
        threads,
        // The production clamp stays on: this lane is the bench's proof
        // that a thread request past the host's cores does not fan out.
        clamp_threads: true,
        blame: false,
    };
    let cfg = PolicyRunConfig::new(
        base,
        PolicySpec::Hysteresis,
        PolicyConstraints::with_budget(DYNAMIC_BUDGET),
        epoch_cycles(scale),
    )
    .with_budget_split(BudgetSplit::demand_proportional());
    let workloads = contention_workloads(scale, 4);
    let start = Instant::now();
    let r = run_policy_workloads(&workloads, &cfg);
    Sample {
        mode,
        threads_requested: r.run.threads_requested,
        threads_effective: r.run.threads_effective,
        wall_s: start.elapsed().as_secs_f64(),
        loop_s: r.run.host_loop_s,
        walk_s: r.run.host_walk_s,
        merge_s: r.run.host_merge_s,
        policy_s: r.host_policy_s,
        ipc: r.run.ipc,
        mem: r.run.mem,
    }
}

/// Worker count for the contention cell's threaded lane: `CLR_THREADS`
/// when it asks for real parallelism, else two (one worker per channel
/// shard). CI pins `CLR_THREADS=2` so the threaded path runs on every
/// push regardless of runner defaults.
fn threaded_workers() -> usize {
    std::env::var("CLR_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 2)
        .unwrap_or(2)
}

/// Runs a scenario's mode ladder `reps` times round-robin, keeping each
/// mode's minimum-`loop_s` sample. Interleaving spreads host frequency
/// drift across every mode; the min strips the remaining noise.
fn run_ladder(reps: usize, runners: &[&dyn Fn() -> Sample]) -> Vec<Sample> {
    let mut best: Vec<Option<Sample>> = runners.iter().map(|_| None).collect();
    for _ in 0..reps {
        for (slot, run) in best.iter_mut().zip(runners) {
            let s = run();
            if slot.as_ref().is_none_or(|b| s.loop_s < b.loop_s) {
                *slot = Some(s);
            }
        }
    }
    best.into_iter().map(|s| s.expect("reps >= 1")).collect()
}

fn json_report(
    scale: Scale,
    scenarios: &[Scenario],
    host_parallelism: usize,
    gate_enforced: bool,
) -> String {
    let mut j = String::new();
    let _ = writeln!(j, "{{");
    let _ = writeln!(j, "  \"schema\": \"clr-dram/sim-throughput/v3\",");
    let _ = writeln!(j, "  \"scale\": \"{}\",", scale.label());
    let _ = writeln!(j, "  \"host_parallelism\": {host_parallelism},");
    let _ = writeln!(j, "  \"gate_enforced\": {gate_enforced},");
    let _ = writeln!(j, "  \"scenarios\": [");
    for (i, sc) in scenarios.iter().enumerate() {
        let _ = writeln!(j, "    {{");
        let _ = writeln!(j, "      \"name\": \"{}\",", sc.name);
        let _ = writeln!(j, "      \"workload\": \"{}\",", sc.workload);
        let _ = writeln!(j, "      \"modes\": [");
        for (k, s) in sc.modes.iter().enumerate() {
            let _ = writeln!(
                j,
                "        {{\"mode\": \"{}\", \"threads_requested\": {}, \
                 \"threads_effective\": {}, \"wall_s\": {:.6}, \
                 \"loop_s\": {:.6}, \"walk_s\": {:.6}, \"merge_s\": {:.6}, \
                 \"policy_s\": {:.6}, \"dram_cycles\": {}, \"requests\": {}, \
                 \"sim_cycles_per_sec\": {:.1}, \"requests_per_sec\": {:.1}}}{}",
                s.mode,
                s.threads_requested,
                s.threads_effective,
                s.wall_s,
                s.loop_s,
                s.walk_s,
                s.merge_s,
                s.policy_s,
                s.mem.cycles,
                s.requests(),
                s.cycles_per_sec(),
                s.requests_per_sec(),
                if k + 1 == sc.modes.len() { "" } else { "," },
            );
        }
        let _ = writeln!(j, "      ],");
        // The walks are bit-identical, so one mode's histogram speaks
        // for the whole scenario's simulated latency tail.
        let _ = writeln!(
            j,
            "      \"read_latency_p99\": {},",
            sc.modes[0].mem.read_latency_hist.p99()
        );
        let _ = writeln!(j, "      \"speedup\": {:.4},", sc.speedup());
        if let Some(st) = sc.speedup_threaded() {
            let _ = writeln!(j, "      \"speedup_threaded\": {st:.4},");
            let _ = writeln!(
                j,
                "      \"thread_scaling\": {:.4},",
                sc.thread_scaling().unwrap()
            );
        }
        let _ = writeln!(j, "      \"bit_identical\": {}", sc.identical());
        let _ = writeln!(
            j,
            "    }}{}",
            if i + 1 == scenarios.len() { "" } else { "," }
        );
    }
    let _ = writeln!(j, "  ]");
    let _ = writeln!(j, "}}");
    j
}

fn main() {
    let scale = clr_bench::startup("simulation throughput (walk modes x threads)");
    let reps = match scale {
        Scale::Full => 2,
        _ => 3,
    };
    let scenarios = [
        Scenario {
            name: "policy-saturated",
            workload: phase_workload(scale).name(),
            modes: run_ladder(
                reps,
                &[&|| run_saturated("per-cycle", false, scale), &|| {
                    run_saturated("skip-ahead", true, scale)
                }],
            ),
        },
        Scenario {
            name: "light-intensity",
            workload: light_workload().name(),
            modes: run_ladder(
                reps,
                &[&|| run_light("per-cycle", false, scale), &|| {
                    run_light("skip-ahead", true, scale)
                }],
            ),
        },
        Scenario {
            name: "contention-4c2ch",
            workload: "4core/2ch:contention-mix".into(),
            modes: run_ladder(
                reps,
                &[
                    &|| run_contention("per-cycle", false, 1, scale),
                    &|| run_contention("skip-ahead", true, 1, scale),
                    // CI drives this lane with CLR_THREADS=2 explicitly;
                    // any larger env value widens the pool.
                    &|| run_contention("skip-ahead", true, threaded_workers(), scale),
                ],
            ),
        },
    ];

    for sc in &scenarios {
        println!("scenario: {} ({})", sc.name, sc.workload);
        println!(
            "  {:<11} {:>3} {:>9} {:>9} {:>8} {:>8} {:>8} {:>13} {:>15}",
            "mode",
            "thr",
            "wall(s)",
            "loop(s)",
            "walk(s)",
            "merge(s)",
            "policy",
            "DRAM cycles",
            "sim cycles/s"
        );
        for s in &sc.modes {
            println!(
                "  {:<11} {:>3} {:>9.3} {:>9.3} {:>8.3} {:>8.3} {:>8.3} {:>13} {:>15.0}",
                s.mode,
                s.threads_effective,
                s.wall_s,
                s.loop_s,
                s.walk_s,
                s.merge_s,
                s.policy_s,
                s.mem.cycles,
                s.cycles_per_sec(),
            );
        }
        print!("  speedup: {:.2}x", sc.speedup());
        if let Some(st) = sc.speedup_threaded() {
            print!(
                " | threaded: {:.2}x (walk scaling {:.2}x)",
                st,
                sc.thread_scaling().unwrap()
            );
        }
        println!(" | statistics bit-identical: {}\n", sc.identical());
        assert!(
            sc.identical(),
            "a walk mode diverged from the per-cycle reference — simulator bug"
        );
        if sc.name == "contention-4c2ch" {
            // Background-paced relocation must stay off the demand
            // critical path: zero stall cycles in every mode, serial or
            // threaded.
            for s in &sc.modes {
                assert_eq!(
                    s.mem.relocation_stall_cycles, 0,
                    "{} (threads={}) charged relocation stall cycles in the \
                     background-paced contention cell",
                    s.mode, s.threads_effective
                );
            }
        }
    }

    // The executor axis: every mode's effective thread count must be
    // the requested count clamped to the host's cores. On a 1-core host
    // the threaded lane therefore runs serial — the pool never fans out
    // past physical parallelism, which is the fix for the 2-thread
    // regression v2 measured (thread_scaling 0.92 with spawned workers
    // serializing on one core).
    let host_parallelism = clr_sim::host_parallelism();
    for sc in &scenarios {
        for s in &sc.modes {
            assert_eq!(
                s.threads_effective,
                s.threads_requested.min(host_parallelism),
                "{}/{}: resolve-time clamp not applied",
                sc.name,
                s.mode
            );
        }
    }

    // The threaded contention cell is the PR gate: skip-ahead with two
    // workers must clear 2x over the per-cycle reference. The gate is a
    // wall-clock claim about parallel execution, so it is only
    // *enforced* where it is physically meaningful: from the default
    // scale up (smoke cells finish in milliseconds, pure timer noise)
    // and on hosts where two workers can actually overlap
    // (`available_parallelism` >= 2 — on a single-core host the clamp
    // resolves the threaded lane to serial and the ratio measures
    // scheduler jitter, not the walk). The measured ratio and whether
    // it was enforced are always recorded in the JSON.
    let contention = &scenarios[2];
    let gate = contention
        .speedup_threaded()
        .expect("contention scenario runs a threaded mode");
    let enforced = scale != Scale::Smoke && host_parallelism >= 2;
    if enforced {
        assert!(
            gate >= 2.0,
            "threaded contention cell below the 2x gate: {gate:.2}x"
        );
    } else {
        println!(
            "(2x contention gate reported, not enforced: {gate:.2}x; \
             scale={}, host parallelism={host_parallelism})",
            scale.label()
        );
    }

    let json = json_report(scale, &scenarios, host_parallelism, enforced);
    println!("--- machine-readable (clr-dram/sim-throughput/v3) ---");
    print!("{json}");
    let out = "BENCH_sim_throughput.json";
    match std::fs::write(out, &json) {
        Ok(()) => println!("wrote {out}"),
        Err(e) => eprintln!("could not write {out}: {e}"),
    }
}
