//! Simulation-throughput benchmark: host wall-clock speed of the
//! full-system simulator with and without the event-driven skip-ahead
//! core (`clr-dram/sim-throughput/v1`).
//!
//! Two scenarios bracket the design space:
//!
//! * **policy-saturated** — the policy sweep's headline cell (hysteresis
//!   policy × drifting-hot-set workload, refresh on). Memory stays busy a
//!   few cycles ahead, so most cycles carry events and skip-ahead can
//!   only harvest the short gaps: the speedup here is the *floor*.
//! * **light-intensity** — a low-MPKI synthetic on the paper system,
//!   where the DRAM sits idle between bursts and the CPU stalls on
//!   isolated misses: long dead windows, the skip-ahead *headline*.
//!
//! Each scenario runs per-cycle then skip-ahead, verifies the runs are
//! statistically bit-identical (the skip-ahead contract), and reports
//! simulated DRAM cycles/second and requests/second over the simulation
//! loop (total wall additionally includes identical trace-profiling
//! setup). The closing JSON lets successive PRs track the simulator's own
//! performance trajectory alongside the modelled one.

use std::time::Instant;

use clr_memsim::MemStats;
use clr_policy::policy::{PolicyConstraints, PolicySpec};
use clr_sim::experiment::policies::{
    epoch_cycles, phase_workload, policy_cluster, policy_mem_config, DYNAMIC_BUDGET,
};
use clr_sim::policyrun::{run_policy_workloads, PolicyRunConfig};
use clr_sim::system::{run_workloads, RunConfig};
use clr_sim::Scale;
use clr_trace::synthetic::{SyntheticKind, SyntheticSpec};
use clr_trace::workload::Workload;

struct Sample {
    mode: &'static str,
    wall_s: f64,
    loop_s: f64,
    ipc: Vec<f64>,
    mem: MemStats,
}

impl Sample {
    fn requests(&self) -> u64 {
        self.mem.reads + self.mem.writes
    }

    fn cycles_per_sec(&self) -> f64 {
        self.mem.cycles as f64 / self.loop_s
    }

    fn requests_per_sec(&self) -> f64 {
        self.requests() as f64 / self.loop_s
    }
}

struct Scenario {
    name: &'static str,
    workload: String,
    per_cycle: Sample,
    skip: Sample,
}

impl Scenario {
    fn speedup(&self) -> f64 {
        self.per_cycle.loop_s / self.skip.loop_s
    }

    fn identical(&self) -> bool {
        self.per_cycle.ipc == self.skip.ipc && self.per_cycle.mem == self.skip.mem
    }
}

/// The policy sweep's headline cell: hysteresis over the drifting hot
/// set — DRAM saturated, events every few cycles.
fn run_saturated(mode: &'static str, skip_ahead: bool, scale: Scale) -> Sample {
    let mut mem = policy_mem_config(0.0);
    mem.refresh_enabled = true;
    let base = RunConfig {
        mem,
        cluster: policy_cluster(),
        budget_insts: scale.budget_insts(),
        warmup_insts: scale.warmup_insts(),
        seed: 42,
        skip_ahead,
        trace: None,
    };
    let cfg = PolicyRunConfig::new(
        base,
        PolicySpec::Hysteresis,
        PolicyConstraints::with_budget(DYNAMIC_BUDGET),
        epoch_cycles(scale),
    );
    let start = Instant::now();
    let r = run_policy_workloads(&[phase_workload(scale)], &cfg);
    Sample {
        mode,
        wall_s: start.elapsed().as_secs_f64(),
        loop_s: r.run.host_loop_s,
        ipc: r.run.ipc,
        mem: r.run.mem,
    }
}

/// A low-intensity synthetic on the paper system: long idle stretches on
/// both clock domains — the workload class skip-ahead exists for.
fn light_workload() -> Workload {
    Workload::Synthetic(SyntheticSpec {
        kind: SyntheticKind::Random,
        index: 12, // the suite's bubbles=159 random family
        bubbles: 159,
        footprint_mib: 64,
    })
}

fn run_light(mode: &'static str, skip_ahead: bool, scale: Scale) -> Sample {
    let mut cfg = RunConfig::paper(
        clr_sim::experiment::mem_config(Some(0.5), 64.0),
        scale.budget_insts(),
        scale.warmup_insts(),
        42,
    );
    cfg.skip_ahead = skip_ahead;
    let start = Instant::now();
    let r = run_workloads(&[light_workload()], &cfg);
    Sample {
        mode,
        wall_s: start.elapsed().as_secs_f64(),
        loop_s: r.host_loop_s,
        ipc: r.ipc,
        mem: r.mem,
    }
}

fn main() {
    let scale = clr_bench::startup("simulation throughput (skip-ahead vs per-cycle)");
    let scenarios = [
        Scenario {
            name: "policy-saturated",
            workload: phase_workload(scale).name(),
            per_cycle: run_saturated("per-cycle", false, scale),
            skip: run_saturated("skip-ahead", true, scale),
        },
        Scenario {
            name: "light-intensity",
            workload: light_workload().name(),
            per_cycle: run_light("per-cycle", false, scale),
            skip: run_light("skip-ahead", true, scale),
        },
    ];

    for sc in &scenarios {
        println!("scenario: {} ({})", sc.name, sc.workload);
        println!(
            "  {:<11} {:>9} {:>9} {:>13} {:>9} {:>15} {:>13}",
            "mode", "wall(s)", "loop(s)", "DRAM cycles", "requests", "sim cycles/s", "requests/s"
        );
        for s in [&sc.per_cycle, &sc.skip] {
            println!(
                "  {:<11} {:>9.3} {:>9.3} {:>13} {:>9} {:>15.0} {:>13.0}",
                s.mode,
                s.wall_s,
                s.loop_s,
                s.mem.cycles,
                s.requests(),
                s.cycles_per_sec(),
                s.requests_per_sec(),
            );
        }
        println!(
            "  speedup: {:.2}x | statistics bit-identical: {}\n",
            sc.speedup(),
            sc.identical()
        );
        assert!(
            sc.identical(),
            "skip-ahead diverged from the per-cycle reference — simulator bug"
        );
    }

    println!("--- machine-readable (clr-dram/sim-throughput/v1) ---");
    println!("{{");
    println!("  \"schema\": \"clr-dram/sim-throughput/v1\",");
    println!("  \"scale\": \"{}\",", scale.label());
    println!("  \"scenarios\": [");
    for (i, sc) in scenarios.iter().enumerate() {
        println!("    {{");
        println!("      \"name\": \"{}\",", sc.name);
        println!("      \"workload\": \"{}\",", sc.workload);
        println!("      \"modes\": [");
        for (j, s) in [&sc.per_cycle, &sc.skip].into_iter().enumerate() {
            println!(
                "        {{\"mode\": \"{}\", \"wall_s\": {:.6}, \"loop_s\": {:.6}, \
                 \"dram_cycles\": {}, \"requests\": {}, \
                 \"sim_cycles_per_sec\": {:.1}, \"requests_per_sec\": {:.1}}}{}",
                s.mode,
                s.wall_s,
                s.loop_s,
                s.mem.cycles,
                s.requests(),
                s.cycles_per_sec(),
                s.requests_per_sec(),
                if j == 0 { "," } else { "" },
            );
        }
        println!("      ],");
        println!("      \"speedup\": {:.4},", sc.speedup());
        println!("      \"bit_identical\": {}", sc.identical());
        println!("    }}{}", if i + 1 == scenarios.len() { "" } else { "," });
    }
    println!("  ]");
    println!("}}");
}
