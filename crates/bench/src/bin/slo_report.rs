//! SLO verdict for the CI smoke contention cell, with the telemetry
//! inertness contract re-proven on the way.
//!
//! Runs the 2-core × 2-channel util-threshold contention cell (the same
//! shape the smoke `policy_sweep` roster drives through the sharded
//! channel path) twice — once with continuous telemetry off, once on —
//! and asserts the simulated outcome is bit-identical (the telemetry
//! run also attributes wait causes, so the same differential proves the
//! blame ledger inert after zeroing its own fields). Then evaluates
//! the cell's [`cell_slo_spec`] against the fused system series, plus a
//! scalar objective holding the final high-performance fraction under
//! the policy budget, and writes the machine-checkable verdict
//! (`clr-dram/slo/v1`) to `BENCH_slo_report.json`. Exits nonzero if the
//! cell misses its SLO.

use clr_obs::{MetricsConfig, ScalarObjective, SloReport};
use clr_policy::budget::BudgetSplit;
use clr_policy::policy::{PolicyConstraints, PolicySpec};
use clr_sim::experiment::policies::{
    cell_slo_spec, contention_workloads, epoch_cycles, policy_cluster, policy_mem_config,
    DYNAMIC_BUDGET,
};
use clr_sim::policyrun::{run_policy_workloads, PolicyRunConfig, PolicyRunResult};
use clr_sim::scale::Scale;
use clr_sim::system::{threads_from_env, RunConfig};
use memsim::frames::DestinationPicker;
use memsim::migrate::RelocationConfig;

use clr_memsim as memsim;

const SEED: u64 = 42;

/// The smoke contention cell's exact shape: two cores (drifting +
/// stable hot sets) over two channels, util-threshold policy,
/// even budget split, background-paced relocation.
fn run(scale: Scale, metrics: Option<MetricsConfig>, blame: bool) -> PolicyRunResult {
    let mut mem = policy_mem_config(0.0);
    mem.geometry.channels = 2;
    mem.refresh_enabled = true;
    mem.relocation = RelocationConfig::background_paced();
    mem.placement = DestinationPicker::SameBank;
    let base = RunConfig {
        mem,
        cluster: policy_cluster(),
        budget_insts: scale.budget_insts(),
        warmup_insts: scale.warmup_insts(),
        seed: SEED,
        skip_ahead: std::env::var("CLR_FORCE_PER_CYCLE").is_err(),
        trace: None,
        metrics,
        threads: threads_from_env(),
        clamp_threads: true,
        blame,
    };
    let cfg = PolicyRunConfig::new(
        base,
        PolicySpec::UtilizationThreshold { hot: 4, cold: 1 },
        PolicyConstraints {
            max_hp_fraction: DYNAMIC_BUDGET,
            max_transitions_per_epoch: 512,
        },
        epoch_cycles(scale),
    )
    .with_budget_split(BudgetSplit::EvenSplit);
    run_policy_workloads(&contention_workloads(scale, 2), &cfg)
}

/// Panics if the two runs' simulated outcomes differ anywhere — the
/// telemetry inertness contract, re-proven on every invocation.
fn assert_inert(off: &PolicyRunResult, on: &PolicyRunResult) {
    assert_eq!(off.run.ipc, on.run.ipc, "metrics changed IPC");
    assert_eq!(off.run.cpu_cycles, on.run.cpu_cycles);
    assert_eq!(off.run.dram_cycles, on.run.dram_cycles);
    // The telemetry run also attributed wait causes; zeroing only the
    // blame fields must make the statistics bit-identical — anything
    // else differing means attribution perturbed the simulation.
    let mut on_mem = on.run.mem.clone();
    on_mem.read_blame.clear();
    on_mem.write_blame.clear();
    assert_eq!(off.run.mem, on_mem, "metrics/blame changed DRAM statistics");
    let mut on_pc = on.run.mem_per_channel.clone();
    for m in &mut on_pc {
        m.read_blame.clear();
        m.write_blame.clear();
    }
    assert_eq!(off.run.mem_per_channel, on_pc);
    assert_eq!(off.rows_remapped, on.rows_remapped);
    assert_eq!(off.final_hp_fraction, on.final_hp_fraction);
    assert!(off.run.metrics.is_none() && on.run.metrics.is_some());
}

fn blame_json(mem: &clr_memsim::MemStats) -> String {
    let total = mem.read_blame.total_cycles();
    let entry = |scale: u64| {
        clr_obs::WaitCause::ALL
            .iter()
            .map(|&c| {
                format!(
                    "\"{}\": {}",
                    c.label(),
                    mem.read_blame.of(c).sum() * 1000 / scale.max(1)
                )
            })
            .collect::<Vec<_>>()
            .join(", ")
    };
    format!(
        "{{\"read_latency_cycles\": {}, \"cycles\": {{{}}}, \"permille\": {{{}}}}}",
        mem.read_latency_hist.sum(),
        entry(1000),
        entry(total),
    )
}

fn emit_json(scale: Scale, workload: &str, report: &SloReport, blame: &str) {
    let indented = report
        .to_json()
        .lines()
        .map(|l| format!("  {l}"))
        .collect::<Vec<_>>()
        .join("\n")
        .trim_start()
        .to_string();
    let json = format!(
        "{{\n  \"schema\": \"clr-dram/slo/v1\",\n  \"scale\": \"{}\",\n  \
         \"policy\": \"util-threshold\",\n  \"workload\": \"{}\",\n  \
         \"blame\": {},\n  \"report\": {}\n}}\n",
        scale.label(),
        workload,
        blame,
        indented,
    );
    let out = "BENCH_slo_report.json";
    if let Err(e) = std::fs::write(out, &json) {
        eprintln!("warning: could not write {out}: {e}");
    } else {
        println!("\nverdict written to {out}");
    }
    println!("\n--- machine-readable (clr-dram/slo/v1) ---");
    print!("{json}");
}

fn main() {
    let scale =
        clr_bench::startup("SLO report (continuous telemetry on the smoke contention cell)");

    println!("running the 2core/2ch util-threshold cell, metrics off vs on ...");
    let off = run(scale, None, false);
    let on = run(
        scale,
        Some(MetricsConfig {
            interval_cycles: epoch_cycles(scale),
            capacity: 4_096,
        }),
        true,
    );
    assert_inert(&off, &on);
    println!("inertness: outcomes bit-identical with telemetry + attribution enabled");

    // The attribution exactness contract, re-proven end to end: the
    // per-cause budgets sum to exactly the measured latency mass.
    let mem = &on.run.mem;
    assert_eq!(
        mem.read_blame.total_cycles(),
        mem.read_latency_hist.sum(),
        "read blame budgets must sum to the read latency mass"
    );
    assert_eq!(
        mem.write_blame.total_cycles(),
        mem.write_latency_hist.sum(),
        "write blame budgets must sum to the write latency mass"
    );
    println!("attribution: per-cause budgets sum exactly to measured latency");
    println!("\nread wait anatomy (cycles, permille of total):");
    let total = mem.read_blame.total_cycles();
    for (cause, cycles) in mem.read_blame.dominant() {
        println!(
            "  {:<16} {:>12} {:>5}‰",
            cause.label(),
            cycles,
            cycles * 1000 / total.max(1)
        );
    }

    let system = on.run.metrics.as_ref().expect("metrics enabled").system();
    let mut spec = cell_slo_spec(true);
    spec.scalars.push(ScalarObjective {
        name: "final_hp_fraction_milli",
        value: (on.final_hp_fraction * 1000.0).round() as u64,
        max: (DYNAMIC_BUDGET * 1000.0).round() as u64,
        expected_fail: false,
    });
    let report = spec.evaluate(&system);

    let workload = {
        let names = contention_workloads(scale, 2)
            .iter()
            .map(|w| w.name().split('_').next().unwrap_or("w").to_string())
            .collect::<Vec<_>>()
            .join("+");
        format!("2core/2ch:{names}")
    };
    println!("\ncell {workload}: {} windows evaluated", report.windows);
    for o in &report.objectives {
        println!(
            "  {:<28} <= {:<6} budget {:>5.1}% | violations {}/{} (allowed {}) | worst {} @ window {} | burn alerts {} | {}",
            o.metric.label(),
            o.max,
            o.error_budget * 100.0,
            o.violations,
            o.windows,
            o.allowed,
            o.worst_value,
            o.worst_window,
            o.burn_alerts,
            if o.pass { "PASS" } else { "FAIL" },
        );
        if !o.top_causes.is_empty() {
            let causes = o
                .top_causes
                .iter()
                .map(|(c, p)| format!("{c} {p}‰"))
                .collect::<Vec<_>>()
                .join(", ");
            println!("    └─ blamed on: {causes}");
        }
    }
    for s in &report.scalars {
        println!(
            "  {:<28} <= {:<6} | value {} | {}",
            s.name,
            s.max,
            s.value,
            if s.pass { "PASS" } else { "FAIL" },
        );
    }

    emit_json(scale, &workload, &report, &blame_json(mem));

    assert!(
        report.pass(),
        "the smoke contention cell missed its SLO spec"
    );
    println!("\nSLO verdict: PASS");
}
