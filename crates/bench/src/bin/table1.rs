//! Regenerates Table 1: the four DRAM timing parameters across the four
//! configurations, from the transient circuit simulator.

use clr_sim::experiment::circuit;

fn main() {
    let scale = clr_bench::startup("Table 1");
    let m = circuit::run_table1(scale, 42);
    println!("{}", circuit::render_table1(&m, scale));
    let (rcd, ras, rp, wr) = m.reductions();
    println!("paper-vs-measured (HP w/ E.T. reductions):");
    clr_bench::compare("tRCD reduction", rcd, 0.601);
    clr_bench::compare("tRAS reduction", ras, 0.642);
    clr_bench::compare("tRP reduction", rp, 0.464);
    clr_bench::compare("tWR reduction", wr, 0.352);
}
