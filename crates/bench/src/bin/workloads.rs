//! Validates the synthetic application models: realized vs target MPKI.

use clr_sim::experiment::workloads;

fn main() {
    let scale = clr_bench::startup("Workload-model validation");
    let rows = workloads::run(scale, 42);
    println!("{}", workloads::render(&rows, scale));
}
