//! Shared plumbing for the table/figure regeneration binaries.
//!
//! Every binary prints the paper-corresponding rows/series to stdout and
//! honours the `CLR_SCALE` environment variable (`smoke` / `default` /
//! `full`). Measured-vs-paper comparisons accompany each table so the
//! reproduction can be judged at a glance; see EXPERIMENTS.md for recorded
//! outputs.

#![warn(missing_docs)]

use clr_sim::scale::Scale;

/// Resolves the experiment scale from `CLR_SCALE` and prints a banner.
pub fn startup(figure: &str) -> Scale {
    let scale = Scale::from_env();
    println!(
        "== CLR-DRAM reproduction :: {figure} (scale: {}; set CLR_SCALE=smoke|default|full) ==\n",
        scale.label()
    );
    scale
}

/// Prints a paper-vs-measured comparison line.
pub fn compare(label: &str, measured: f64, paper: f64) {
    println!(
        "  {label}: measured {measured:+.1}% | paper {paper:+.1}%",
        measured = measured * 100.0,
        paper = paper * 100.0
    );
}
