//! Developer aid: print raw timing measurements for calibration.
use clr_circuit::dram::{build, Topology};
use clr_circuit::params::CircuitParams;
use clr_circuit::retention::{fig11_sweep, initial_cell_voltage};
use clr_circuit::scenario::{run_act_pre, run_write_recovery, ActPreOptions};

fn main() {
    let p = CircuitParams::default_22nm();
    for topo in Topology::ALL {
        let sub = build(topo, &p);
        let v0 = initial_cell_voltage(&p, 64.0);
        let r = run_act_pre(&sub, &p, ActPreOptions::nominal(v0));
        let (wr_full, wr_et) = run_write_recovery(&sub, &p, v0);
        println!(
            "{topo:?}: tRCD {:.2} tRAS {:.2} (ET {:.2}) tRP {:.2} tWR {:.2} (ET {:.2}) ok={}",
            r.t_rcd_ns, r.t_ras_full_ns, r.t_ras_et_ns, r.t_rp_ns, wr_full, wr_et, r.sense_correct
        );
    }
    println!("\nfig11 sweep:");
    for pt in fig11_sweep(&p, 204.0, 10.0) {
        println!(
            "  refw {:>5.0} ms: tRCD {:.2} tRAS {:.2} ok={}",
            pt.refw_ms, pt.t_rcd_ns, pt.t_ras_ns, pt.ok
        );
    }
}
