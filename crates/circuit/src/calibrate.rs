//! Calibration reporting: how closely the analog model's *baseline*
//! reproduces the paper's DDR4 baseline, and which knob moves what.
//!
//! The reproduction's philosophy (DESIGN.md): absolute nanoseconds are a
//! property of device-parameter calibration, while mode-vs-baseline
//! *ratios* are a property of circuit topology. This module quantifies
//! both sides so EXPERIMENTS.md can record them and tests can pin them.

use crate::params::CircuitParams;
use crate::timing::{measure_table1, Table1Measurement};

/// The paper's baseline timings (Table 1, ns).
pub const PAPER_BASELINE_NS: [(&str, f64); 4] =
    [("tRCD", 13.8), ("tRAS", 39.4), ("tRP", 15.5), ("tWR", 12.5)];

/// Result of a calibration check.
#[derive(Debug, Clone)]
pub struct CalibrationReport {
    /// The measured Table 1.
    pub measured: Table1Measurement,
    /// `(name, measured_ns, target_ns, ratio)` per baseline parameter.
    pub baseline_fit: Vec<(&'static str, f64, f64, f64)>,
}

impl CalibrationReport {
    /// Largest |ratio − 1| across the baseline parameters.
    pub fn worst_error(&self) -> f64 {
        self.baseline_fit
            .iter()
            .map(|&(_, _, _, r)| (r - 1.0).abs())
            .fold(0.0, f64::max)
    }

    /// Renders a human-readable summary.
    pub fn render(&self) -> String {
        let mut out = String::from("circuit calibration vs paper baseline:\n");
        for &(name, meas, target, ratio) in &self.baseline_fit {
            out.push_str(&format!(
                "  {name}: measured {meas:.1} ns, paper {target:.1} ns (x{ratio:.2})\n"
            ));
        }
        out.push_str(&format!(
            "  worst error: {:.0}%\n",
            self.worst_error() * 100.0
        ));
        out
    }
}

/// Measures the model and compares its baseline to the paper's.
pub fn calibration_report(p: &CircuitParams) -> CalibrationReport {
    let measured = measure_table1(p);
    let values = [
        measured.baseline.t_rcd_ns,
        measured.baseline.t_ras_ns,
        measured.baseline.t_rp_ns,
        measured.baseline.t_wr_ns,
    ];
    let baseline_fit = PAPER_BASELINE_NS
        .iter()
        .zip(values)
        .map(|(&(name, target), meas)| (name, meas, target, meas / target))
        .collect();
    CalibrationReport {
        measured,
        baseline_fit,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_calibration_is_within_25_percent() {
        let r = calibration_report(&CircuitParams::default_22nm());
        assert!(
            r.worst_error() < 0.25,
            "calibration drifted: {}",
            r.render()
        );
    }

    #[test]
    fn report_renders_all_parameters() {
        let r = calibration_report(&CircuitParams::default_22nm());
        let s = r.render();
        for (name, _) in PAPER_BASELINE_NS {
            assert!(s.contains(name), "missing {name} in {s}");
        }
    }
}
