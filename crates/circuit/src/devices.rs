//! Device models and their MNA companion stamps.
//!
//! All devices stamp into the conductance matrix `G` and right-hand side
//! `b` of `G·v = b` once per Newton iteration. Capacitors use the
//! backward-Euler companion (conductance `C/dt` plus history current);
//! MOSFETs use the linearized square-law model with symmetric source/drain
//! handling so pass transistors conduct in both directions.

use crate::params::MosParams;

/// Node identifier; node 0 is ground.
pub type Node = usize;

/// A linear resistor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Resistor {
    /// First terminal.
    pub a: Node,
    /// Second terminal.
    pub b: Node,
    /// Resistance in ohms (must be positive).
    pub ohms: f64,
}

/// A capacitor (backward-Euler companion model).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Capacitor {
    /// First terminal.
    pub a: Node,
    /// Second terminal.
    pub b: Node,
    /// Capacitance in farads.
    pub farads: f64,
}

/// MOSFET polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MosKind {
    /// N-channel.
    Nmos,
    /// P-channel.
    Pmos,
}

/// A square-law MOSFET.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mosfet {
    /// Drain terminal (interchangeable with source for conduction).
    pub d: Node,
    /// Gate terminal.
    pub g: Node,
    /// Source terminal.
    pub s: Node,
    /// Device parameters (`k` is negative for PMOS by convention).
    pub params: MosParams,
    /// Polarity.
    pub kind: MosKind,
}

/// Linearization of the channel current `I` (defined drain → source, in
/// the device's *external* terminal frame) at one Newton iterate.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MosLinear {
    /// Channel current at the iterate (A, external d → s).
    pub ids: f64,
    /// ∂I/∂v(d).
    pub di_dvd: f64,
    /// ∂I/∂v(g).
    pub di_dvg: f64,
    /// ∂I/∂v(s).
    pub di_dvs: f64,
}

/// Minimum conductance added across every MOSFET channel for Newton
/// robustness.
pub const GMIN: f64 = 1e-9;

impl Mosfet {
    /// Evaluates the square-law current and its terminal partial
    /// derivatives at terminal voltages `(vd, vg, vs)`.
    pub fn linearize(&self, vd: f64, vg: f64, vs: f64) -> MosLinear {
        match self.kind {
            MosKind::Nmos => Self::linearize_n(
                self.params.k.abs(),
                self.params.vth.abs(),
                self.params.lambda,
                vd,
                vg,
                vs,
            ),
            MosKind::Pmos => {
                // A PMOS is a mirrored NMOS: I_P(vd,vg,vs) = −I_N(−vd,−vg,−vs).
                // Partials carry over with unchanged sign (two negations).
                let n = Self::linearize_n(
                    self.params.k.abs(),
                    self.params.vth.abs(),
                    self.params.lambda,
                    -vd,
                    -vg,
                    -vs,
                );
                MosLinear {
                    ids: -n.ids,
                    di_dvd: n.di_dvd,
                    di_dvg: n.di_dvg,
                    di_dvs: n.di_dvs,
                }
            }
        }
    }

    fn linearize_n(k: f64, vth: f64, lambda: f64, vd: f64, vg: f64, vs: f64) -> MosLinear {
        // Symmetric device: the lower-voltage terminal acts as source.
        let swapped = vd < vs;
        let (vde, vse) = if swapped { (vs, vd) } else { (vd, vs) };
        let vgs = vg - vse;
        let vds = vde - vse;
        let vov = vgs - vth;
        let (i, gm, gds) = if vov <= 0.0 {
            (0.0, 0.0, 0.0)
        } else if vds < vov {
            // Triode.
            let clm = 1.0 + lambda * vds;
            let i0 = k * (vov * vds - 0.5 * vds * vds);
            (i0 * clm, k * vds * clm, k * (vov - vds) * clm + i0 * lambda)
        } else {
            // Saturation.
            let clm = 1.0 + lambda * vds;
            let i0 = 0.5 * k * vov * vov;
            (i0 * clm, k * vov * clm, i0 * lambda)
        };
        if swapped {
            // External current (d → s) is −I'; chain rule over
            // vgs' = vg − vd, vds' = vs − vd.
            MosLinear {
                ids: -i,
                di_dvd: gm + gds,
                di_dvg: -gm,
                di_dvs: -gds,
            }
        } else {
            MosLinear {
                ids: i,
                di_dvd: gds,
                di_dvg: gm,
                di_dvs: -gm - gds,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nmos() -> Mosfet {
        Mosfet {
            d: 1,
            g: 2,
            s: 0,
            params: MosParams {
                k: 1e-3,
                vth: 0.4,
                lambda: 0.0,
            },
            kind: MosKind::Nmos,
        }
    }

    #[test]
    fn cutoff_below_threshold() {
        let lin = nmos().linearize(1.0, 0.3, 0.0);
        assert_eq!(lin.ids, 0.0);
        assert_eq!(lin.di_dvg, 0.0);
    }

    #[test]
    fn saturation_current_matches_square_law() {
        // vgs = 1.2, vds = 1.2 > vov = 0.8 → sat: 0.5·k·vov².
        let lin = nmos().linearize(1.2, 1.2, 0.0);
        assert!((lin.ids - 0.5 * 1e-3 * 0.8 * 0.8).abs() < 1e-12);
        assert!(lin.di_dvg > 0.0);
    }

    #[test]
    fn triode_current_matches() {
        let lin = nmos().linearize(0.2, 1.2, 0.0);
        let expect = 1e-3 * (0.8 * 0.2 - 0.5 * 0.2 * 0.2);
        assert!((lin.ids - expect).abs() < 1e-12);
    }

    #[test]
    fn symmetric_conduction_reverses_current() {
        let fwd = nmos().linearize(1.0, 1.2, 0.0);
        // Terminals swapped; the effective source is now the 0 V drain
        // terminal, so the same gate voltage gives the same overdrive.
        let rev = nmos().linearize(0.0, 1.2, 1.0);
        assert!(fwd.ids > 0.0);
        assert!(rev.ids < 0.0);
        assert!((fwd.ids + rev.ids).abs() < 1e-9);
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let m = nmos();
        let eps = 1e-7;
        for (vd, vg, vs) in [
            (1.0, 1.2, 0.0),  // saturation
            (0.2, 1.2, 0.0),  // triode
            (0.0, 1.2, 1.0),  // swapped
            (0.5, 0.9, 0.25), // mid-range triode
        ] {
            let lin = m.linearize(vd, vg, vs);
            let dd = (m.linearize(vd + eps, vg, vs).ids - lin.ids) / eps;
            let dg = (m.linearize(vd, vg + eps, vs).ids - lin.ids) / eps;
            let ds = (m.linearize(vd, vg, vs + eps).ids - lin.ids) / eps;
            assert!((dd - lin.di_dvd).abs() < 1e-5, "dvd at {vd},{vg},{vs}");
            assert!((dg - lin.di_dvg).abs() < 1e-5, "dvg at {vd},{vg},{vs}");
            assert!((ds - lin.di_dvs).abs() < 1e-5, "dvs at {vd},{vg},{vs}");
        }
    }

    #[test]
    fn pmos_mirrors_nmos() {
        let p = Mosfet {
            d: 1,
            g: 2,
            s: 3,
            params: MosParams {
                k: -1e-3,
                vth: -0.4,
                lambda: 0.0,
            },
            kind: MosKind::Pmos,
        };
        // Source at VDD = 1.2, gate 0, drain 0: strongly on, current flows
        // s → d, i.e. ids (d → s) negative.
        let lin = p.linearize(0.0, 0.0, 1.2);
        assert!(lin.ids < 0.0, "ids {}", lin.ids);
        // Off when the gate sits at VDD.
        let off = p.linearize(0.0, 1.2, 1.2);
        assert_eq!(off.ids, 0.0);
        // PMOS derivatives also match finite differences.
        let eps = 1e-7;
        let dd = (p.linearize(eps, 0.0, 1.2).ids - p.linearize(0.0, 0.0, 1.2).ids) / eps;
        assert!((dd - lin.di_dvd).abs() < 1e-5);
    }
}
