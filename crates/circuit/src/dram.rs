//! DRAM subarray netlists for the three evaluated topologies.
//!
//! All three share the same primitives: two bitlines modelled as RC
//! ladders, 1T1C cells hanging mid-line, cross-coupled sense amplifiers
//! whose SAN/SAP rails are driven sources, and 3-transistor precharge
//! units. The topologies differ exactly where CLR-DRAM differs
//! (Figures 4–6):
//!
//! * [`Topology::OpenBitlineBaseline`] — one SA at the top; the SA's
//!   complement port sees the neighbor subarray's (cell-less) bitline; one
//!   precharge unit.
//! * [`Topology::ClrMaxCapacity`] — baseline plus Type 1 bitline mode
//!   select transistors between the bitlines and the SA ports, and a
//!   second precharge unit reachable through the Type 2 transistors at
//!   the far ends (enabled only while precharging — the LISA-LIP-style
//!   tRP optimisation of §7.2).
//! * [`Topology::ClrHighPerformance`] — two cells storing complementary
//!   values on the two bitlines, both SAs coupled through Type 1 + Type 2
//!   transistors, both precharge units active.

use crate::devices::Node;
use crate::netlist::{Netlist, SourceId};
use crate::params::CircuitParams;

/// Which subarray configuration to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Topology {
    /// Unmodified density-optimized open-bitline array.
    OpenBitlineBaseline,
    /// CLR-DRAM row operating in max-capacity mode.
    ClrMaxCapacity,
    /// CLR-DRAM row operating in high-performance mode.
    ClrHighPerformance,
    /// Twin-Cell DRAM (§9 related work): two coupled complementary cells
    /// driven by a *single* SA — no second sense amplifier. Used to
    /// reproduce the paper's claim that coupling the SAs (not just the
    /// cells) is what unlocks most of the latency reduction.
    TwinCellSingleSa,
}

impl Topology {
    /// All topologies, baseline first.
    pub const ALL: [Topology; 4] = [
        Topology::OpenBitlineBaseline,
        Topology::ClrMaxCapacity,
        Topology::ClrHighPerformance,
        Topology::TwinCellSingleSa,
    ];
}

/// One sense amplifier's external handles.
#[derive(Debug, Clone, Copy)]
pub struct SenseAmp {
    /// True (bitline) port.
    pub bl: Node,
    /// Complement (bitline-bar) port.
    pub blb: Node,
    /// SAP rail source (slews VDD/2 → VDD to enable).
    pub sap: SourceId,
    /// SAN rail source (slews VDD/2 → 0 to enable).
    pub san: SourceId,
    /// Precharge-gate source of this SA's precharge unit.
    pub pre_gate: SourceId,
}

/// The built subarray with every handle the scenarios need.
#[derive(Debug, Clone)]
pub struct Subarray {
    /// The netlist (moved into a `Transient` to run).
    pub net: Netlist,
    /// Which topology was built.
    pub topology: Topology,
    /// Wordline source of the accessed row.
    pub wordline: SourceId,
    /// Primary (top) sense amplifier.
    pub sa1: SenseAmp,
    /// Secondary (bottom) sense amplifier — present in the CLR topologies.
    pub sa2: Option<SenseAmp>,
    /// Gate source of the Type 1 bitline mode select transistors.
    pub iso1_gate: Option<SourceId>,
    /// Gate source of the Type 2 bitline mode select transistors.
    pub iso2_gate: Option<SourceId>,
    /// Storage node of the (charged-'1') cell on the true bitline.
    pub cell: Node,
    /// Storage node of the complementary cell (high-performance only).
    pub cellb: Option<Node>,
    /// Top end of the true bitline.
    pub bl_top: Node,
    /// Far (bottom) end of the true bitline.
    pub bl_bottom: Node,
    /// Top end of the complement bitline.
    pub blb_top: Node,
    /// Far (bottom) end of the complement bitline.
    pub blb_bottom: Node,
    /// Write driver source on the SA1 true port (disconnected by
    /// default).
    pub write_bl: SourceId,
    /// Write driver source on the SA1 complement port.
    pub write_blb: SourceId,
}

/// Builds an RC-ladder bitline; returns its node chain (index 0 = top).
fn bitline(net: &mut Netlist, name: &str, p: &CircuitParams) -> Vec<Node> {
    let n = p.segments;
    let r_seg = p.r_bitline / n as f64;
    let c_seg = p.c_bitline / (n + 1) as f64;
    let mut nodes: Vec<Node> = Vec::with_capacity(n + 1);
    for i in 0..=n {
        let node = net.node(&format!("{name}{i}"));
        net.capacitor(node, 0, c_seg);
        if i > 0 {
            net.resistor(nodes[i - 1], node, r_seg);
        }
        nodes.push(node);
    }
    nodes
}

/// Attaches a 1T1C cell at `line_node`; returns the storage node.
fn cell(net: &mut Netlist, name: &str, line_node: Node, wl_node: Node, p: &CircuitParams) -> Node {
    let storage = net.node(name);
    net.capacitor(storage, 0, p.c_cell);
    net.nmos(line_node, wl_node, storage, p.access);
    storage
}

/// Builds a sense amplifier + precharge unit on the two given port nodes.
fn sense_amp(net: &mut Netlist, name: &str, bl: Node, blb: Node, p: &CircuitParams) -> SenseAmp {
    let sap_node = net.node(&format!("{name}_sap"));
    let san_node = net.node(&format!("{name}_san"));
    let sap = net.source(sap_node, p.vref());
    let san = net.source(san_node, p.vref());
    // Cross-coupled pair.
    net.nmos(bl, blb, san_node, p.sa_nmos);
    net.nmos(blb, bl, san_node, p.sa_nmos);
    net.pmos(bl, blb, sap_node, p.sa_pmos);
    net.pmos(blb, bl, sap_node, p.sa_pmos);
    // Precharge unit: equalizer + two reference devices to VDD/2.
    let pre_node = net.node(&format!("{name}_pre"));
    let pre_gate = net.source(pre_node, 0.0);
    let vref_node = net.node(&format!("{name}_vref"));
    net.source(vref_node, p.vref());
    net.nmos(bl, pre_node, blb, p.precharge);
    net.nmos(bl, pre_node, vref_node, p.precharge);
    net.nmos(blb, pre_node, vref_node, p.precharge);
    SenseAmp {
        bl,
        blb,
        sap,
        san,
        pre_gate,
    }
}

/// Builds the subarray circuit for a topology.
pub fn build(topology: Topology, p: &CircuitParams) -> Subarray {
    let mut net = Netlist::new();
    let wl_node = net.node("wl");
    let wordline = net.source(wl_node, 0.0);

    let bl = bitline(&mut net, "bl", p);
    let blb = bitline(&mut net, "blb", p);
    let mid = p.segments / 2;
    let cell_node = cell(&mut net, "cell", bl[mid], wl_node, p);

    let (sa1, sa2, iso1_gate, iso2_gate, cellb) = match topology {
        Topology::OpenBitlineBaseline => {
            // SA directly on the line ends (top).
            let sa1 = sense_amp(&mut net, "sa1", bl[0], blb[0], p);
            (sa1, None, None, None, None)
        }
        Topology::ClrMaxCapacity => {
            // SA behind Type 1 transistors; a second precharge unit behind
            // Type 2 transistors at the far ends.
            let iso1_node = net.node("iso1");
            let iso1_gate = net.source(iso1_node, 0.0);
            let iso2_node = net.node("iso2");
            let iso2_gate = net.source(iso2_node, 0.0);
            let sa1_bl = net.node("sa1_bl");
            let sa1_blb = net.node("sa1_blb");
            net.capacitor(sa1_bl, 0, p.c_sa_port);
            net.capacitor(sa1_blb, 0, p.c_sa_port);
            net.nmos(bl[0], iso1_node, sa1_bl, p.iso);
            net.nmos(blb[0], iso1_node, sa1_blb, p.iso);
            let sa1 = sense_amp(&mut net, "sa1", sa1_bl, sa1_blb, p);
            let sa2_bl = net.node("sa2_bl");
            let sa2_blb = net.node("sa2_blb");
            net.capacitor(sa2_bl, 0, p.c_sa_port);
            net.capacitor(sa2_blb, 0, p.c_sa_port);
            let last = p.segments;
            net.nmos(blb[last], iso2_node, sa2_bl, p.iso);
            net.nmos(bl[last], iso2_node, sa2_blb, p.iso);
            let sa2 = sense_amp(&mut net, "sa2", sa2_bl, sa2_blb, p);
            (sa1, Some(sa2), Some(iso1_gate), Some(iso2_gate), None)
        }
        Topology::TwinCellSingleSa => {
            // Complementary cell pair on the two bitlines, sensed by SA1
            // alone through the Type 1 / Type 2 transistors at the top.
            let iso1_node = net.node("iso1");
            let iso1_gate = net.source(iso1_node, 0.0);
            let iso2_node = net.node("iso2");
            let iso2_gate = net.source(iso2_node, 0.0);
            let cellb_node = cell(&mut net, "cellb", blb[mid], wl_node, p);
            let sa1_bl = net.node("sa1_bl");
            let sa1_blb = net.node("sa1_blb");
            net.capacitor(sa1_bl, 0, p.c_sa_port);
            net.capacitor(sa1_blb, 0, p.c_sa_port);
            net.nmos(bl[0], iso1_node, sa1_bl, p.iso);
            net.nmos(blb[0], iso2_node, sa1_blb, p.iso);
            let sa1 = sense_amp(&mut net, "sa1", sa1_bl, sa1_blb, p);
            (
                sa1,
                None,
                Some(iso1_gate),
                Some(iso2_gate),
                Some(cellb_node),
            )
        }
        Topology::ClrHighPerformance => {
            let iso1_node = net.node("iso1");
            let iso1_gate = net.source(iso1_node, 0.0);
            let iso2_node = net.node("iso2");
            let iso2_gate = net.source(iso2_node, 0.0);
            // The complementary cell of the coupled pair, on the other
            // bitline, same wordline.
            let cellb_node = cell(&mut net, "cellb", blb[mid], wl_node, p);
            // SA1 on top: bl via Type 1, blb via Type 2.
            let sa1_bl = net.node("sa1_bl");
            let sa1_blb = net.node("sa1_blb");
            net.capacitor(sa1_bl, 0, p.c_sa_port);
            net.capacitor(sa1_blb, 0, p.c_sa_port);
            net.nmos(bl[0], iso1_node, sa1_bl, p.iso);
            net.nmos(blb[0], iso2_node, sa1_blb, p.iso);
            let sa1 = sense_amp(&mut net, "sa1", sa1_bl, sa1_blb, p);
            // SA2 on the bottom: blb via Type 1, bl via Type 2 — coupled
            // so it reinforces the same differential polarity.
            let last = p.segments;
            let sa2_bl = net.node("sa2_bl");
            let sa2_blb = net.node("sa2_blb");
            net.capacitor(sa2_bl, 0, p.c_sa_port);
            net.capacitor(sa2_blb, 0, p.c_sa_port);
            net.nmos(blb[last], iso1_node, sa2_blb, p.iso);
            net.nmos(bl[last], iso2_node, sa2_bl, p.iso);
            let sa2 = sense_amp(&mut net, "sa2", sa2_bl, sa2_blb, p);
            (
                sa1,
                Some(sa2),
                Some(iso1_gate),
                Some(iso2_gate),
                Some(cellb_node),
            )
        }
    };

    // Write drivers on the SA1 ports, disconnected until a write scenario
    // engages them.
    let write_bl = net.source(sa1.bl, p.vref());
    let write_blb = net.source(sa1.blb, p.vref());
    net.sources[write_bl.0].connected = false;
    net.sources[write_blb.0].connected = false;

    Subarray {
        net,
        topology,
        wordline,
        sa1,
        sa2,
        iso1_gate,
        iso2_gate,
        cell: cell_node,
        cellb,
        bl_top: bl[0],
        bl_bottom: bl[p.segments],
        blb_top: blb[0],
        blb_bottom: blb[p.segments],
        write_bl,
        write_blb,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_has_one_sa_no_iso() {
        let s = build(
            Topology::OpenBitlineBaseline,
            &CircuitParams::default_22nm(),
        );
        assert!(s.sa2.is_none());
        assert!(s.iso1_gate.is_none());
        assert!(s.cellb.is_none());
        assert_eq!(s.sa1.bl, s.bl_top, "SA sits directly on the line");
    }

    #[test]
    fn max_capacity_adds_iso_and_second_precharge() {
        let s = build(Topology::ClrMaxCapacity, &CircuitParams::default_22nm());
        assert!(s.sa2.is_some());
        assert!(s.iso1_gate.is_some() && s.iso2_gate.is_some());
        assert!(s.cellb.is_none(), "max-capacity keeps one cell per SA");
        assert_ne!(s.sa1.bl, s.bl_top, "SA is behind the Type 1 transistor");
    }

    #[test]
    fn high_performance_couples_two_cells_two_sas() {
        let s = build(Topology::ClrHighPerformance, &CircuitParams::default_22nm());
        assert!(s.sa2.is_some());
        assert!(s.cellb.is_some());
    }

    #[test]
    fn component_counts_scale_with_topology() {
        let p = CircuitParams::default_22nm();
        let base = build(Topology::OpenBitlineBaseline, &p).net;
        let hp = build(Topology::ClrHighPerformance, &p).net;
        assert!(hp.mosfets.len() > base.mosfets.len());
        assert!(hp.nodes() > base.nodes());
    }

    #[test]
    fn write_drivers_start_disconnected() {
        let s = build(
            Topology::OpenBitlineBaseline,
            &CircuitParams::default_22nm(),
        );
        assert!(!s.net.sources[s.write_bl.0].connected);
        assert!(!s.net.sources[s.write_blb.0].connected);
    }
}
