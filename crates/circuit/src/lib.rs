//! Transient circuit simulation of CLR-DRAM's subarray (the paper's SPICE
//! layer, §7).
//!
//! The paper derives Table 1 and Figures 7/8/11 from HSPICE runs over a
//! Rambus-derived DRAM array model with PTM 22 nm transistors. This crate
//! rebuilds that layer from scratch:
//!
//! * [`matrix`] — dense LU solver,
//! * [`devices`] — resistor/capacitor/MOSFET (square-law, symmetric
//!   source/drain) companion models,
//! * [`netlist`] — circuit construction,
//! * [`transient`] — backward-Euler + Newton–Raphson transient engine
//!   with externally slewable sources (wordlines, sense enables, ...),
//! * [`dram`] — subarray netlists for the open-bitline baseline and
//!   CLR-DRAM's max-capacity / high-performance topologies (Figures 4–6),
//! * [`scenario`] — ACT → restore → PRE and write-recovery state machines
//!   with threshold-crossing measurement of tRCD/tRAS/tRP/tWR,
//! * [`timing`] — Table 1 extraction across the four configurations,
//! * [`montecarlo`] — ±5 % process variation, worst-case timing
//!   (§7.1's 10⁴-iteration methodology, iteration count scalable),
//! * [`retention`] — cell leakage, the tREFW → initial-charge model, and
//!   the Figure 11 sweep.
//!
//! Absolute nanosecond values depend on calibration of the analog
//! parameters ([`params::CircuitParams`]); the experiments therefore
//! report both raw measurements and mode-vs-baseline *ratios*, which are
//! governed by topology (what CLR-DRAM changes) rather than calibration.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod calibrate;
pub mod devices;
pub mod dram;
pub mod matrix;
pub mod montecarlo;
pub mod netlist;
pub mod params;
pub mod retention;
pub mod scenario;
pub mod timing;
pub mod transient;

pub use params::CircuitParams;
pub use timing::{measure_table1, Table1Measurement};
