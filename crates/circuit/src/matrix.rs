//! Dense LU factorization with partial pivoting, sized for MNA systems of
//! a few dozen unknowns.

/// A dense square matrix in row-major order.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    n: usize,
    a: Vec<f64>,
}

impl Matrix {
    /// Creates an `n × n` zero matrix.
    pub fn zeros(n: usize) -> Self {
        Matrix {
            n,
            a: vec![0.0; n * n],
        }
    }

    /// Dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.a[r * self.n + c]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.a[r * self.n + c] = v;
    }

    /// Adds `v` to element `(r, c)` — the stamping primitive.
    #[inline]
    pub fn add(&mut self, r: usize, c: usize, v: f64) {
        self.a[r * self.n + c] += v;
    }

    /// Zeroes every element (for re-stamping each Newton iteration).
    pub fn clear(&mut self) {
        self.a.iter_mut().for_each(|x| *x = 0.0);
    }

    /// Solves `A·x = b` in place (`b` becomes `x`) via LU with partial
    /// pivoting. `A` is destroyed.
    ///
    /// Returns `false` if the matrix is numerically singular.
    pub fn solve_in_place(&mut self, b: &mut [f64]) -> bool {
        let n = self.n;
        assert_eq!(b.len(), n, "rhs dimension mismatch");
        for k in 0..n {
            // Pivot.
            let mut p = k;
            let mut max = self.get(k, k).abs();
            for r in (k + 1)..n {
                let v = self.get(r, k).abs();
                if v > max {
                    max = v;
                    p = r;
                }
            }
            if max < 1e-30 {
                return false;
            }
            if p != k {
                for c in 0..n {
                    let t = self.get(k, c);
                    self.set(k, c, self.get(p, c));
                    self.set(p, c, t);
                }
                b.swap(k, p);
            }
            // Eliminate.
            let pivot = self.get(k, k);
            for r in (k + 1)..n {
                let f = self.get(r, k) / pivot;
                if f == 0.0 {
                    continue;
                }
                for c in k..n {
                    let v = self.get(r, c) - f * self.get(k, c);
                    self.set(r, c, v);
                }
                b[r] -= f * b[k];
            }
        }
        // Back substitution.
        for k in (0..n).rev() {
            let mut s = b[k];
            for (c, &bc) in b.iter().enumerate().take(n).skip(k + 1) {
                s -= self.get(k, c) * bc;
            }
            b[k] = s / self.get(k, k);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_identity() {
        let mut m = Matrix::zeros(3);
        for i in 0..3 {
            m.set(i, i, 1.0);
        }
        let mut b = vec![3.0, -1.0, 2.0];
        assert!(m.solve_in_place(&mut b));
        assert_eq!(b, vec![3.0, -1.0, 2.0]);
    }

    #[test]
    fn solves_general_system() {
        // [2 1; 1 3] x = [5; 10] → x = [1; 3].
        let mut m = Matrix::zeros(2);
        m.set(0, 0, 2.0);
        m.set(0, 1, 1.0);
        m.set(1, 0, 1.0);
        m.set(1, 1, 3.0);
        let mut b = vec![5.0, 10.0];
        assert!(m.solve_in_place(&mut b));
        assert!((b[0] - 1.0).abs() < 1e-12);
        assert!((b[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        let mut m = Matrix::zeros(2);
        m.set(0, 1, 1.0);
        m.set(1, 0, 1.0);
        let mut b = vec![2.0, 3.0];
        assert!(m.solve_in_place(&mut b));
        assert!((b[0] - 3.0).abs() < 1e-12);
        assert!((b[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_is_reported() {
        let mut m = Matrix::zeros(2);
        m.set(0, 0, 1.0);
        m.set(0, 1, 1.0);
        m.set(1, 0, 1.0);
        m.set(1, 1, 1.0);
        let mut b = vec![1.0, 2.0];
        assert!(!m.solve_in_place(&mut b));
    }

    #[test]
    fn stamping_accumulates() {
        let mut m = Matrix::zeros(1);
        m.add(0, 0, 2.0);
        m.add(0, 0, 3.0);
        assert_eq!(m.get(0, 0), 5.0);
        m.clear();
        assert_eq!(m.get(0, 0), 0.0);
    }
}
