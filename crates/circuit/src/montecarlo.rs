//! Monte-Carlo process variation (§7.1): every analog component varies by
//! ±5 %; timings are taken from the *slowest* iteration and every
//! iteration must read the correct value.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dram::Topology;
use crate::params::{CircuitParams, MosParams};
use crate::timing::{measure_mode, ModeTimings, Table1Measurement};

/// Relative component variation (1σ = 5 %, clamped to ±3σ).
const SIGMA: f64 = 0.05;

fn vary(rng: &mut StdRng, v: f64) -> f64 {
    // Box-Muller standard normal, clamped to ±3σ.
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    v * (1.0 + SIGMA * z.clamp(-3.0, 3.0))
}

fn vary_mos(rng: &mut StdRng, m: MosParams) -> MosParams {
    MosParams {
        k: vary(rng, m.k),
        vth: vary(rng, m.vth),
        lambda: m.lambda,
    }
}

/// Draws one process-variation sample of the parameter set.
pub fn perturb(p: &CircuitParams, rng: &mut StdRng) -> CircuitParams {
    CircuitParams {
        c_cell: vary(rng, p.c_cell),
        c_bitline: vary(rng, p.c_bitline),
        r_bitline: vary(rng, p.r_bitline),
        access: vary_mos(rng, p.access),
        iso: vary_mos(rng, p.iso),
        precharge: vary_mos(rng, p.precharge),
        sa_nmos: vary_mos(rng, p.sa_nmos),
        sa_pmos: vary_mos(rng, p.sa_pmos),
        ..p.clone()
    }
}

fn worst(a: ModeTimings, b: ModeTimings) -> ModeTimings {
    ModeTimings {
        t_rcd_ns: a.t_rcd_ns.max(b.t_rcd_ns),
        t_ras_ns: a.t_ras_ns.max(b.t_ras_ns),
        t_rp_ns: a.t_rp_ns.max(b.t_rp_ns),
        t_wr_ns: a.t_wr_ns.max(b.t_wr_ns),
    }
}

/// Worst-case Table 1 over `iterations` Monte-Carlo samples.
///
/// # Panics
///
/// Panics if any iteration fails to sense correctly — the §7.1 criterion
/// ("every single iteration reads the correct value").
pub fn worst_case_table1(p: &CircuitParams, iterations: usize, seed: u64) -> Table1Measurement {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut acc: Option<Table1Measurement> = None;
    for _ in 0..iterations {
        let sample = perturb(p, &mut rng);
        let t = Table1Measurement {
            baseline: measure_mode(Topology::OpenBitlineBaseline, &sample, false),
            max_capacity: measure_mode(Topology::ClrMaxCapacity, &sample, false),
            hp_no_et: measure_mode(Topology::ClrHighPerformance, &sample, false),
            hp_et: measure_mode(Topology::ClrHighPerformance, &sample, true),
        };
        acc = Some(match acc {
            None => t,
            Some(prev) => Table1Measurement {
                baseline: worst(prev.baseline, t.baseline),
                max_capacity: worst(prev.max_capacity, t.max_capacity),
                hp_no_et: worst(prev.hp_no_et, t.hp_no_et),
                hp_et: worst(prev.hp_et, t.hp_et),
            },
        });
    }
    acc.expect("at least one iteration required")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perturbation_is_seeded_and_small() {
        let p = CircuitParams::default_22nm();
        let mut rng1 = StdRng::seed_from_u64(3);
        let mut rng2 = StdRng::seed_from_u64(3);
        let a = perturb(&p, &mut rng1);
        let b = perturb(&p, &mut rng2);
        assert_eq!(a, b);
        assert!((a.c_cell / p.c_cell - 1.0).abs() < 0.2);
    }

    #[test]
    fn worst_case_dominates_nominal() {
        let p = CircuitParams::default_22nm();
        let nominal = crate::timing::measure_table1(&p);
        let wc = worst_case_table1(&p, 5, 7);
        assert!(wc.baseline.t_rcd_ns >= 0.95 * nominal.baseline.t_rcd_ns);
        assert!(wc.hp_et.t_ras_ns >= 0.95 * nominal.hp_et.t_ras_ns);
        // The shape survives variation.
        let (rcd, ras, _, _) = wc.reductions();
        assert!(rcd > 0.3 && ras > 0.3);
    }
}
