//! Circuit construction: nodes, passive devices, MOSFETs, and driven
//! sources.

use crate::devices::{Capacitor, MosKind, Mosfet, Node, Resistor};
use crate::params::MosParams;

/// Identifier of a driven (slewable) voltage source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SourceId(pub usize);

/// A voltage source between a node and ground whose value the scenario
/// logic can slew at runtime (wordlines, sense enables, precharge gates,
/// write drivers, supplies).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DrivenSource {
    /// The driven node.
    pub node: Node,
    /// Present output voltage.
    pub value: f64,
    /// Target the source is slewing toward.
    pub target: f64,
    /// Slew rate in V/ns (`f64::INFINITY` = ideal step).
    pub slew_v_per_ns: f64,
    /// Whether the source is connected (disconnected sources leave the
    /// node floating — used for write drivers).
    pub connected: bool,
}

/// A complete circuit under construction.
#[derive(Debug, Clone, Default)]
pub struct Netlist {
    node_names: Vec<String>,
    /// Resistors.
    pub resistors: Vec<Resistor>,
    /// Capacitors.
    pub capacitors: Vec<Capacitor>,
    /// MOSFETs.
    pub mosfets: Vec<Mosfet>,
    /// Driven sources.
    pub sources: Vec<DrivenSource>,
}

impl Netlist {
    /// Creates a netlist containing only the ground node.
    pub fn new() -> Self {
        Netlist {
            node_names: vec!["gnd".to_string()],
            ..Netlist::default()
        }
    }

    /// Allocates a named node.
    pub fn node(&mut self, name: &str) -> Node {
        self.node_names.push(name.to_string());
        self.node_names.len() - 1
    }

    /// Number of nodes (including ground).
    pub fn nodes(&self) -> usize {
        self.node_names.len()
    }

    /// Name of a node (diagnostics).
    pub fn node_name(&self, n: Node) -> &str {
        &self.node_names[n]
    }

    /// Adds a resistor.
    pub fn resistor(&mut self, a: Node, b: Node, ohms: f64) {
        assert!(ohms > 0.0, "resistance must be positive");
        self.resistors.push(Resistor { a, b, ohms });
    }

    /// Adds a capacitor.
    pub fn capacitor(&mut self, a: Node, b: Node, farads: f64) {
        assert!(farads > 0.0, "capacitance must be positive");
        self.capacitors.push(Capacitor { a, b, farads });
    }

    /// Adds an NMOS transistor.
    pub fn nmos(&mut self, d: Node, g: Node, s: Node, params: MosParams) {
        self.mosfets.push(Mosfet {
            d,
            g,
            s,
            params,
            kind: MosKind::Nmos,
        });
    }

    /// Adds a PMOS transistor.
    pub fn pmos(&mut self, d: Node, g: Node, s: Node, params: MosParams) {
        self.mosfets.push(Mosfet {
            d,
            g,
            s,
            params,
            kind: MosKind::Pmos,
        });
    }

    /// Adds a driven source holding `node` at `value` (initially ideal,
    /// connected).
    pub fn source(&mut self, node: Node, value: f64) -> SourceId {
        self.sources.push(DrivenSource {
            node,
            value,
            target: value,
            slew_v_per_ns: f64::INFINITY,
            connected: true,
        });
        SourceId(self.sources.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_allocation_and_names() {
        let mut n = Netlist::new();
        assert_eq!(n.nodes(), 1);
        let a = n.node("bl");
        assert_eq!(a, 1);
        assert_eq!(n.node_name(a), "bl");
        assert_eq!(n.node_name(0), "gnd");
    }

    #[test]
    fn components_are_recorded() {
        let mut n = Netlist::new();
        let a = n.node("a");
        let b = n.node("b");
        n.resistor(a, b, 100.0);
        n.capacitor(a, 0, 1e-15);
        let s = n.source(b, 1.2);
        assert_eq!(n.resistors.len(), 1);
        assert_eq!(n.capacitors.len(), 1);
        assert_eq!(s, SourceId(0));
        assert!(n.sources[0].connected);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_resistance_rejected() {
        let mut n = Netlist::new();
        let a = n.node("a");
        n.resistor(a, 0, 0.0);
    }
}
