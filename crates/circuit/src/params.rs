//! Analog device parameters of the DRAM subarray model.
//!
//! Values model a 22 nm-class DRAM process (the paper scales Rambus
//! parameters to 22 nm per the ITRS roadmap and uses PTM high-performance
//! transistors for the sense amplifier). They are calibrated so that the
//! open-bitline baseline reproduces the paper's Table 1 baseline timings
//! to within a few percent; `clr-circuit`'s tests assert that calibration.

/// Square-law MOSFET parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MosParams {
    /// Transconductance factor `k = µ·Cox·W/L` in A/V².
    pub k: f64,
    /// Threshold voltage in volts (positive for NMOS, negative for PMOS).
    pub vth: f64,
    /// Channel-length modulation (1/V).
    pub lambda: f64,
}

/// Every analog parameter of the subarray model.
#[derive(Debug, Clone, PartialEq)]
pub struct CircuitParams {
    /// Core supply voltage (V).
    pub vdd: f64,
    /// Boosted wordline / isolation-gate voltage (V).
    pub vpp: f64,
    /// Cell storage capacitance (F).
    pub c_cell: f64,
    /// Total bitline capacitance (F), distributed over the RC segments.
    pub c_bitline: f64,
    /// Total bitline resistance (Ω).
    pub r_bitline: f64,
    /// RC segments per bitline.
    pub segments: usize,
    /// Parasitic capacitance of an SA port node behind the isolation
    /// transistors (junctions + wiring), F.
    pub c_sa_port: f64,
    /// Cell access transistor.
    pub access: MosParams,
    /// Bitline mode select (isolation) transistor — sized per prior work
    /// (footnote 3: Row-Buffer Decoupling / PTM).
    pub iso: MosParams,
    /// Precharge/equalization transistors.
    pub precharge: MosParams,
    /// Sense-amplifier NMOS.
    pub sa_nmos: MosParams,
    /// Sense-amplifier PMOS.
    pub sa_pmos: MosParams,
    /// ΔV across the SA ports that triggers sense-amplifier enable (V).
    pub sense_trigger_v: f64,
    /// Timed margin between the trigger and actually enabling the SA
    /// rails (ns) — real designs fire the SA off a delay chain with
    /// worst-case margin, not off an ideal comparator.
    pub sense_delay_ns: f64,
    /// Extra fixed delay between ACT and wordline-high (decode), plus the
    /// same margin applied by the controller after measured thresholds
    /// (ns).
    pub cmd_overhead_ns: f64,
    /// Slew rate of driven sources (wordline, SAN/SAP, precharge gates) in
    /// V/ns.
    pub slew_v_per_ns: f64,
    /// Fraction of VDD a bitline must reach for "ready-to-access"
    /// (defines tRCD's ΔV_RCD threshold).
    pub ready_to_access_frac: f64,
    /// Fraction of VDD a charged cell must reach for full restoration
    /// (defines tRAS without early termination).
    pub full_restore_frac: f64,
    /// Early-termination voltage VET as a fraction of VDD (§3.5).
    pub early_termination_frac: f64,
    /// Precharge completion tolerance around VDD/2 as a fraction of VDD.
    pub precharge_tol_frac: f64,
    /// Cell junction-leakage time constant at worst-case temperature (ms)
    /// for a single (uncoupled) cell: `V(t) = V0·exp(−t/τ)`.
    pub leak_tau_ms: f64,
    /// Transient time step (ns).
    pub dt_ns: f64,
}

impl CircuitParams {
    /// The calibrated 22 nm-class parameter set.
    pub fn default_22nm() -> Self {
        CircuitParams {
            vdd: 1.2,
            vpp: 2.4,
            c_cell: 22e-15,
            c_bitline: 85e-15,
            r_bitline: 35_000.0,
            segments: 4,
            c_sa_port: 2e-15,
            access: MosParams {
                k: 10e-6,
                vth: 0.55,
                lambda: 0.05,
            },
            iso: MosParams {
                k: 500e-6,
                vth: 0.45,
                lambda: 0.05,
            },
            precharge: MosParams {
                k: 10e-6,
                vth: 0.45,
                lambda: 0.05,
            },
            sa_nmos: MosParams {
                k: 55e-6,
                vth: 0.42,
                lambda: 0.08,
            },
            sa_pmos: MosParams {
                k: -27e-6,
                vth: -0.42,
                lambda: 0.08,
            },
            sense_trigger_v: 0.04,
            sense_delay_ns: 1.0,
            cmd_overhead_ns: 1.5,
            slew_v_per_ns: 1.5,
            ready_to_access_frac: 0.75,
            full_restore_frac: 0.975,
            early_termination_frac: 0.80,
            precharge_tol_frac: 0.03,
            leak_tau_ms: 290.0,
            dt_ns: 0.01,
        }
    }

    /// Half-VDD bitline reference voltage.
    pub fn vref(&self) -> f64 {
        self.vdd / 2.0
    }
}

impl Default for CircuitParams {
    fn default() -> Self {
        Self::default_22nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_physical() {
        let p = CircuitParams::default_22nm();
        assert!(p.vpp > p.vdd);
        assert!(p.c_bitline > p.c_cell, "bitline dwarfs the cell");
        assert!(p.access.vth > 0.0 && p.sa_pmos.vth < 0.0);
        assert!(p.early_termination_frac < p.full_restore_frac);
        // Charge-sharing ΔV sanity: Ccell/(Ccell+Cbl) · VDD/2 ≈ 0.12 V —
        // above the sense trigger.
        let dv = p.c_cell / (p.c_cell + p.c_bitline) * p.vdd / 2.0;
        assert!(dv > p.sense_trigger_v * 0.9, "ΔV {dv}");
    }
}
