//! Cell retention, leakage decay, and the Figure 11 tREFW sweep.
//!
//! The dominant leakage path is junction leakage toward the substrate
//! (§7.1), modelled as exponential decay of the stored '1':
//! `V(t) = VDD · exp(−t / τ)`. Extending the refresh window therefore
//! lowers the worst-case cell voltage at activation, shrinking the initial
//! ΔV and lengthening charge sharing — which is precisely the tRCD/tRAS
//! growth Figure 11 plots. Coupled cells survive longer windows because
//! the logical cell's differential signal is `κ·V0` rather than
//! `κ·(V0 − VDD/2)`.

use crate::dram::{build, Topology};
use crate::params::CircuitParams;
use crate::scenario::{run_act_pre, ActPreOptions};

/// Worst-case stored-'1' voltage at the end of a `refw_ms` window.
pub fn initial_cell_voltage(p: &CircuitParams, refw_ms: f64) -> f64 {
    p.vdd * (-refw_ms / p.leak_tau_ms).exp()
}

/// One point of the Figure 11 sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig11Point {
    /// Refresh window (ms).
    pub refw_ms: f64,
    /// Measured tRCD (ns).
    pub t_rcd_ns: f64,
    /// Measured tRAS with early termination (ns).
    pub t_ras_ns: f64,
    /// Whether the worst-case cell still sensed correctly.
    pub ok: bool,
}

/// Sweeps the refresh window for high-performance rows (64 ms → `max_ms`
/// in `step_ms` increments), measuring tRCD and tRAS at each point, and
/// stopping after the first failing point — the §7.3 methodology.
pub fn fig11_sweep(p: &CircuitParams, max_ms: f64, step_ms: f64) -> Vec<Fig11Point> {
    let sub = build(Topology::ClrHighPerformance, p);
    let mut out = Vec::new();
    let mut refw = 64.0;
    while refw <= max_ms + 1e-9 {
        let v0 = initial_cell_voltage(p, refw);
        let r = run_act_pre(&sub, p, ActPreOptions::nominal(v0));
        let ok = r.sense_correct && r.t_rcd_ns.is_finite() && r.t_ras_et_ns.is_finite();
        out.push(Fig11Point {
            refw_ms: refw,
            t_rcd_ns: r.t_rcd_ns,
            t_ras_ns: r.t_ras_et_ns,
            ok,
        });
        if !ok {
            break;
        }
        refw += step_ms;
    }
    out
}

/// The largest swept window that still sensed correctly.
pub fn max_safe_refw_ms(sweep: &[Fig11Point]) -> f64 {
    sweep
        .iter()
        .filter(|pt| pt.ok)
        .map(|pt| pt.refw_ms)
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decay_is_monotone_and_calibrated() {
        let p = CircuitParams::default_22nm();
        let v64 = initial_cell_voltage(&p, 64.0);
        let v194 = initial_cell_voltage(&p, 194.0);
        assert!(v64 > v194);
        // At the base window the cell must retain most of its charge.
        assert!(v64 > 0.75 * p.vdd, "v64 {v64}");
    }

    #[test]
    fn sweep_shows_growing_latency() {
        let p = CircuitParams::default_22nm();
        let sweep = fig11_sweep(&p, 194.0, 65.0); // coarse: 64, 129, 194
        assert!(sweep.len() >= 3, "sweep too short: {sweep:?}");
        let first = sweep.first().unwrap();
        let last = sweep.iter().rfind(|pt| pt.ok).unwrap();
        assert!(
            last.t_rcd_ns > first.t_rcd_ns,
            "tRCD must grow: {} → {}",
            first.t_rcd_ns,
            last.t_rcd_ns
        );
        assert!(
            last.t_ras_ns > first.t_ras_ns,
            "tRAS must grow: {} → {}",
            first.t_ras_ns,
            last.t_ras_ns
        );
        assert!(max_safe_refw_ms(&sweep) >= 194.0);
    }
}
