//! Access scenarios: ACT → charge-sharing → restoration → PRE, and write
//! recovery — with threshold-crossing timing measurement.
//!
//! The scenario logic plays the role of the DRAM control FSM: it slews the
//! wordline, watches the SA-port differential to fire the sense enable
//! (as the internal control circuitry of §2.3 does), releases the
//! precharge gates, and drives the write drivers. Timing parameters are
//! read off threshold crossings exactly as the paper defines them
//! (Figures 3, 7, 8).

use crate::dram::{Subarray, Topology};
use crate::params::CircuitParams;
use crate::transient::Transient;

/// A sampled waveform point (for regenerating Figures 7 and 8).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TracePoint {
    /// Time (ns).
    pub t_ns: f64,
    /// True bitline at the SA port (V).
    pub bl: f64,
    /// Complement bitline at the SA port (V).
    pub blb: f64,
    /// Charged-cell storage node (V).
    pub cell: f64,
    /// Complementary-cell storage node (V; NaN when absent).
    pub cellb: f64,
}

/// Options for an activate/precharge run.
#[derive(Debug, Clone, Copy)]
pub struct ActPreOptions {
    /// Initial voltage of the stored-'1' cell (decayed from VDD by
    /// retention; see [`crate::retention`]).
    pub initial_cell_v: f64,
    /// Record waveforms.
    pub capture_trace: bool,
    /// Disable the second sense amplifier in the high-performance
    /// topology — the Twin-Cell DRAM configuration of §9 (two coupled
    /// cells, a single SA), used to reproduce the paper's claim that
    /// coupling the SAs is what unlocks most of the latency reduction.
    pub single_sa_twin_cell: bool,
}

impl ActPreOptions {
    /// Standard options: full-charge cell, no trace, both SAs.
    pub fn nominal(initial_cell_v: f64) -> Self {
        ActPreOptions {
            initial_cell_v,
            capture_trace: false,
            single_sa_twin_cell: false,
        }
    }
}

/// Measured results of one activate/precharge run.
#[derive(Debug, Clone)]
pub struct ActPreResult {
    /// ACT → ready-to-access (ns).
    pub t_rcd_ns: f64,
    /// ACT → full restoration (ns).
    pub t_ras_full_ns: f64,
    /// ACT → early-termination restoration level VET (ns).
    pub t_ras_et_ns: f64,
    /// PRE → bitlines equalized (ns).
    pub t_rp_ns: f64,
    /// Whether the SA latched the correct polarity.
    pub sense_correct: bool,
    /// Waveforms (empty unless requested).
    pub trace: Vec<TracePoint>,
}

/// Hard simulation limit per phase (ns); exceeding it marks a failure.
const PHASE_LIMIT_NS: f64 = 150.0;

fn capture(sim: &Transient, sub: &Subarray) -> TracePoint {
    TracePoint {
        t_ns: sim.time_ns(),
        bl: sim.v(sub.sa1.bl),
        blb: sim.v(sub.sa1.blb),
        cell: sim.v(sub.cell),
        cellb: sub.cellb.map_or(f64::NAN, |n| sim.v(n)),
    }
}

/// Prepares a transient with precharged bitlines and the configured
/// isolation-gate levels for an access in this topology.
fn setup(sub: &Subarray, p: &CircuitParams, cell_v: f64, cellb_v: f64) -> Transient {
    let mut sim = Transient::new(sub.net.clone(), p.dt_ns);
    // Precharge initial conditions: every bitline-ish node at VDD/2.
    for node in 1..sub.net.nodes() {
        let name = sub.net.node_name(node);
        if name.starts_with("bl") || name.starts_with("sa") {
            sim.set_ic(node, p.vref());
        }
    }
    sim.set_ic(sub.cell, cell_v);
    if let Some(cb) = sub.cellb {
        sim.set_ic(cb, cellb_v);
    }
    // Isolation gates for access: Type 1 on in both CLR modes; Type 2 on
    // only in high-performance mode (Figure 6).
    if let Some(iso1) = sub.iso1_gate {
        sim.set_source(iso1, p.vpp);
    }
    if let Some(iso2) = sub.iso2_gate {
        let v = match sub.topology {
            Topology::ClrHighPerformance | Topology::TwinCellSingleSa => p.vpp,
            _ => 0.0,
        };
        sim.set_source(iso2, v);
    }
    sim
}

fn enable_sense(sim: &mut Transient, sub: &Subarray, p: &CircuitParams, both_sas: bool) {
    sim.slew(sub.sa1.sap, p.vdd, p.slew_v_per_ns);
    sim.slew(sub.sa1.san, 0.0, p.slew_v_per_ns);
    if both_sas && sub.topology == Topology::ClrHighPerformance {
        let sa2 = sub.sa2.expect("high-performance mode has two SAs");
        sim.slew(sa2.sap, p.vdd, p.slew_v_per_ns);
        sim.slew(sa2.san, 0.0, p.slew_v_per_ns);
    }
}

fn start_precharge(sim: &mut Transient, sub: &Subarray, p: &CircuitParams) {
    // Disable the SAs and enable the precharge units. CLR topologies
    // couple the second precharge unit through the Type 2 transistors
    // (the §7.2 tRP optimisation, both modes).
    sim.slew(sub.sa1.sap, p.vref(), p.slew_v_per_ns);
    sim.slew(sub.sa1.san, p.vref(), p.slew_v_per_ns);
    sim.slew(sub.sa1.pre_gate, p.vpp, p.slew_v_per_ns);
    if let Some(sa2) = sub.sa2 {
        sim.slew(sa2.sap, p.vref(), p.slew_v_per_ns);
        sim.slew(sa2.san, p.vref(), p.slew_v_per_ns);
        sim.slew(sa2.pre_gate, p.vpp, p.slew_v_per_ns);
    }
    if let Some(iso2) = sub.iso2_gate {
        sim.slew(iso2, p.vpp, p.slew_v_per_ns);
    }
}

/// Runs a full activate → restore → precharge sequence for a stored '1'.
pub fn run_act_pre(sub: &Subarray, p: &CircuitParams, opts: ActPreOptions) -> ActPreResult {
    let hp = sub.topology == Topology::ClrHighPerformance;
    // The discharged complement drifts up (subthreshold leakage from the
    // half-VDD bitline) at half the charged cell's decay rate.
    let cellb_v = (p.vdd - opts.initial_cell_v) / 2.0;
    let mut sim = setup(sub, p, opts.initial_cell_v, cellb_v.clamp(0.0, p.vref()));
    let mut trace = Vec::new();

    // --- ACT: raise the wordline. ---
    sim.slew(sub.wordline, p.vpp, p.slew_v_per_ns);

    let ready_v = p.ready_to_access_frac * p.vdd;
    let full_v = p.full_restore_frac * p.vdd;
    let et_v = p.early_termination_frac * p.vdd;
    let lo_full_v = (1.0 - p.full_restore_frac) * p.vdd;

    let mut trigger_t = f64::NAN;
    let mut sense_fired = false;
    let mut t_rcd = f64::NAN;
    let mut t_ras_et = f64::NAN;
    let mut t_ras_full = f64::NAN;
    let mut steps = 0u64;
    while sim.time_ns() < PHASE_LIMIT_NS {
        sim.step();
        steps += 1;
        if opts.capture_trace && steps.is_multiple_of(10) {
            trace.push(capture(&sim, sub));
        }
        let dv = sim.v(sub.sa1.bl) - sim.v(sub.sa1.blb);
        if trigger_t.is_nan() && dv.abs() >= p.sense_trigger_v {
            trigger_t = sim.time_ns();
        }
        if !sense_fired && trigger_t.is_finite() && sim.time_ns() >= trigger_t + p.sense_delay_ns {
            sense_fired = true;
            enable_sense(&mut sim, sub, p, !opts.single_sa_twin_cell);
        }
        if !sense_fired {
            continue; // restoration thresholds are meaningful only after sensing
        }
        if t_rcd.is_nan() && sim.v(sub.sa1.bl) >= ready_v {
            t_rcd = sim.time_ns();
        }
        let cell_hi = sim.v(sub.cell);
        let cellb_done = sub.cellb.is_none_or(|cb| sim.v(cb) <= lo_full_v.max(0.05));
        if t_ras_et.is_nan() && cell_hi >= et_v && cellb_done {
            t_ras_et = sim.time_ns();
        }
        if t_ras_full.is_nan() && cell_hi >= full_v && cellb_done {
            t_ras_full = sim.time_ns();
            break;
        }
    }
    let sense_correct = sense_fired && sim.v(sub.sa1.bl) > 0.9 * p.vdd;

    // --- PRE: lower the wordline, then equalize. ---
    let t_pre_cmd = sim.time_ns();
    sim.slew(sub.wordline, 0.0, p.slew_v_per_ns);
    // Wordline fall time before the SA lets go (decode + fall).
    let wl_fall_ns = p.vpp / p.slew_v_per_ns;
    sim.run(wl_fall_ns);
    start_precharge(&mut sim, sub, p);
    let tol = p.precharge_tol_frac * p.vdd;
    let mut t_rp = f64::NAN;
    while sim.time_ns() < t_pre_cmd + PHASE_LIMIT_NS {
        sim.step();
        steps += 1;
        if opts.capture_trace && steps.is_multiple_of(10) {
            trace.push(capture(&sim, sub));
        }
        let nodes = [sub.bl_top, sub.bl_bottom, sub.blb_top, sub.blb_bottom];
        if nodes.iter().all(|&n| (sim.v(n) - p.vref()).abs() <= tol) {
            t_rp = sim.time_ns() - t_pre_cmd;
            break;
        }
    }

    let oh = p.cmd_overhead_ns;
    ActPreResult {
        t_rcd_ns: t_rcd + oh,
        t_ras_full_ns: t_ras_full + oh,
        t_ras_et_ns: t_ras_et + oh,
        t_rp_ns: t_rp + oh,
        sense_correct: sense_correct && (!hp || sub.cellb.is_some()),
        trace,
    }
}

/// Runs a write-recovery measurement: activate a stored '0', then write a
/// '1' and measure the time for the (slow) charged cell to reach the
/// restoration target.
///
/// Returns `(t_wr_full_ns, t_wr_et_ns)`.
pub fn run_write_recovery(sub: &Subarray, p: &CircuitParams, initial_cell_v: f64) -> (f64, f64) {
    // Stored '0': cell low (drifted up), complement holds the decayed '1'.
    let drift = (p.vdd - initial_cell_v) / 2.0;
    let mut sim = setup(sub, p, drift.clamp(0.0, p.vref()), initial_cell_v);
    sim.slew(sub.wordline, p.vpp, p.slew_v_per_ns);

    // Activate until sensing has latched the '0'.
    let mut trigger_t = f64::NAN;
    let mut sense_fired = false;
    while sim.time_ns() < PHASE_LIMIT_NS {
        sim.step();
        let dv = sim.v(sub.sa1.bl) - sim.v(sub.sa1.blb);
        if trigger_t.is_nan() && dv.abs() >= p.sense_trigger_v {
            trigger_t = sim.time_ns();
        }
        if !sense_fired && trigger_t.is_finite() && sim.time_ns() >= trigger_t + p.sense_delay_ns {
            sense_fired = true;
            enable_sense(&mut sim, sub, p, true);
        }
        if sense_fired && sim.v(sub.sa1.bl) <= 0.1 * p.vdd {
            break;
        }
    }

    // Write '1': overpower the SA through the column write drivers (a
    // single driver pair, matching the paper's footnote 5).
    let t_write = sim.time_ns();
    sim.set_connected(sub.write_bl, true);
    sim.set_connected(sub.write_blb, true);
    sim.set_source(sub.write_bl, sim.v(sub.sa1.bl));
    sim.set_source(sub.write_blb, sim.v(sub.sa1.blb));
    sim.slew(sub.write_bl, p.vdd, p.slew_v_per_ns / 2.0);
    sim.slew(sub.write_blb, 0.0, p.slew_v_per_ns / 2.0);
    // The driver holds the column for the whole recovery window (in
    // high-performance mode one driver must overpower and flip *two*
    // coupled SAs through the bitline resistance — the extra load of the
    // paper's footnote 5).
    let full_v = p.full_restore_frac * p.vdd;
    let et_v = p.early_termination_frac * p.vdd;
    let mut t_full = f64::NAN;
    let mut t_et = f64::NAN;
    while sim.time_ns() < t_write + PHASE_LIMIT_NS {
        sim.step();
        let v = sim.v(sub.cell);
        if t_et.is_nan() && v >= et_v {
            t_et = sim.time_ns() - t_write;
        }
        if t_full.is_nan() && v >= full_v {
            t_full = sim.time_ns() - t_write;
            break;
        }
    }
    let oh = p.cmd_overhead_ns;
    (t_full + oh, t_et + oh)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dram::build;

    fn act(topology: Topology) -> ActPreResult {
        let p = CircuitParams::default_22nm();
        let sub = build(topology, &p);
        run_act_pre(&sub, &p, ActPreOptions::nominal(p.vdd * 0.95))
    }

    #[test]
    fn baseline_activation_senses_correctly() {
        let r = act(Topology::OpenBitlineBaseline);
        assert!(r.sense_correct);
        assert!(r.t_rcd_ns.is_finite() && r.t_rcd_ns > 0.0);
        assert!(r.t_ras_full_ns > r.t_rcd_ns);
        assert!(r.t_ras_et_ns <= r.t_ras_full_ns);
        assert!(r.t_rp_ns.is_finite());
    }

    #[test]
    fn high_performance_is_faster_everywhere() {
        let base = act(Topology::OpenBitlineBaseline);
        let hp = act(Topology::ClrHighPerformance);
        assert!(hp.sense_correct);
        assert!(
            hp.t_rcd_ns < 0.7 * base.t_rcd_ns,
            "tRCD: hp {} vs base {}",
            hp.t_rcd_ns,
            base.t_rcd_ns
        );
        assert!(
            hp.t_ras_et_ns < 0.7 * base.t_ras_full_ns,
            "tRAS: hp {} vs base {}",
            hp.t_ras_et_ns,
            base.t_ras_full_ns
        );
        assert!(
            hp.t_rp_ns < base.t_rp_ns,
            "tRP: hp {} vs base {}",
            hp.t_rp_ns,
            base.t_rp_ns
        );
    }

    #[test]
    fn max_capacity_reduces_trp_but_not_tras() {
        let base = act(Topology::OpenBitlineBaseline);
        let mc = act(Topology::ClrMaxCapacity);
        assert!(mc.sense_correct);
        assert!(
            mc.t_rp_ns < 0.8 * base.t_rp_ns,
            "tRP: mc {} vs base {}",
            mc.t_rp_ns,
            base.t_rp_ns
        );
        // The isolation transistor slightly slows restoration.
        assert!(
            mc.t_ras_full_ns > 0.95 * base.t_ras_full_ns,
            "tRAS: mc {} vs base {}",
            mc.t_ras_full_ns,
            base.t_ras_full_ns
        );
    }

    #[test]
    fn waveform_capture_produces_monotone_time() {
        let p = CircuitParams::default_22nm();
        let sub = build(Topology::ClrHighPerformance, &p);
        let r = run_act_pre(
            &sub,
            &p,
            ActPreOptions {
                initial_cell_v: p.vdd,
                capture_trace: true,
                single_sa_twin_cell: false,
            },
        );
        assert!(r.trace.len() > 10);
        for w in r.trace.windows(2) {
            assert!(w[1].t_ns > w[0].t_ns);
        }
        // Complementary cell is recorded in high-performance mode.
        assert!(r.trace[0].cellb.is_finite());
    }

    #[test]
    fn twin_cell_single_sa_is_slower_than_coupled_sas() {
        // §9: Twin-Cell DRAM couples cells but not SAs — the paper argues
        // this "significantly limits their potential to improve DRAM
        // latency". Our circuit confirms: disabling SA2 in the coupled
        // topology costs a large part of the tRCD/tRAS gain.
        let p = CircuitParams::default_22nm();
        let coupled_sub = build(Topology::ClrHighPerformance, &p);
        let coupled = run_act_pre(&coupled_sub, &p, ActPreOptions::nominal(p.vdd * 0.95));
        let twin_sub = build(Topology::TwinCellSingleSa, &p);
        let twin = run_act_pre(&twin_sub, &p, ActPreOptions::nominal(p.vdd * 0.95));
        assert!(twin.sense_correct);
        assert!(
            twin.t_rcd_ns > 1.15 * coupled.t_rcd_ns,
            "twin-cell tRCD {} vs coupled {}",
            twin.t_rcd_ns,
            coupled.t_rcd_ns
        );
        assert!(
            twin.t_ras_et_ns > 1.1 * coupled.t_ras_et_ns,
            "twin-cell tRAS {} vs coupled {}",
            twin.t_ras_et_ns,
            coupled.t_ras_et_ns
        );
    }

    #[test]
    fn write_recovery_measures_both_targets() {
        let p = CircuitParams::default_22nm();
        let sub = build(Topology::OpenBitlineBaseline, &p);
        let (full, et) = run_write_recovery(&sub, &p, p.vdd * 0.95);
        assert!(full.is_finite() && et.is_finite());
        assert!(et <= full, "ET target must be reached earlier");
    }
}
