//! Table 1 extraction: the four timing parameters across the four
//! configurations.

use crate::dram::{build, Topology};
use crate::params::CircuitParams;
use crate::retention::initial_cell_voltage;
use crate::scenario::{run_act_pre, run_write_recovery, ActPreOptions};

/// tRCD/tRAS/tRP/tWR of one configuration (ns).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModeTimings {
    /// ACT → ready-to-access.
    pub t_rcd_ns: f64,
    /// ACT → restoration complete.
    pub t_ras_ns: f64,
    /// PRE → ready for ACT.
    pub t_rp_ns: f64,
    /// Write recovery.
    pub t_wr_ns: f64,
}

/// The measured Table 1: all four columns.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table1Measurement {
    /// Conventional open-bitline baseline.
    pub baseline: ModeTimings,
    /// CLR-DRAM max-capacity mode.
    pub max_capacity: ModeTimings,
    /// High-performance mode without early termination.
    pub hp_no_et: ModeTimings,
    /// High-performance mode with early termination.
    pub hp_et: ModeTimings,
}

impl Table1Measurement {
    /// Reduction of the w/ E.T. configuration vs the baseline, as
    /// fractions `(tRCD, tRAS, tRP, tWR)`.
    pub fn reductions(&self) -> (f64, f64, f64, f64) {
        (
            1.0 - self.hp_et.t_rcd_ns / self.baseline.t_rcd_ns,
            1.0 - self.hp_et.t_ras_ns / self.baseline.t_ras_ns,
            1.0 - self.hp_et.t_rp_ns / self.baseline.t_rp_ns,
            1.0 - self.hp_et.t_wr_ns / self.baseline.t_wr_ns,
        )
    }
}

/// Measures one topology at the given stored-'1' level; `early_termination`
/// picks which restoration target defines tRAS/tWR.
pub fn measure_mode(topology: Topology, p: &CircuitParams, early_termination: bool) -> ModeTimings {
    let v0 = initial_cell_voltage(p, 64.0);
    let sub = build(topology, p);
    let act = run_act_pre(&sub, p, ActPreOptions::nominal(v0));
    assert!(act.sense_correct, "{topology:?} failed to sense");
    let (wr_full, wr_et) = run_write_recovery(&sub, p, v0);
    ModeTimings {
        t_rcd_ns: act.t_rcd_ns,
        t_ras_ns: if early_termination {
            act.t_ras_et_ns
        } else {
            act.t_ras_full_ns
        },
        t_rp_ns: act.t_rp_ns,
        t_wr_ns: if early_termination { wr_et } else { wr_full },
    }
}

/// Measures the full Table 1 with nominal (non-Monte-Carlo) parameters.
pub fn measure_table1(p: &CircuitParams) -> Table1Measurement {
    Table1Measurement {
        baseline: measure_mode(Topology::OpenBitlineBaseline, p, false),
        max_capacity: measure_mode(Topology::ClrMaxCapacity, p, false),
        hp_no_et: measure_mode(Topology::ClrHighPerformance, p, false),
        hp_et: measure_mode(Topology::ClrHighPerformance, p, true),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shape_matches_paper() {
        let p = CircuitParams::default_22nm();
        let t = measure_table1(&p);
        let (rcd, ras, rp, wr) = t.reductions();
        // Paper: −60.1 %, −64.2 %, −46.4 %, −35.2 %. We require the same
        // ordering and magnitudes within generous tolerances — absolute
        // calibration is checked in the comparison test below.
        assert!(rcd > 0.35, "tRCD reduction {rcd}");
        assert!(ras > 0.40, "tRAS reduction {ras}");
        assert!(rp > 0.25, "tRP reduction {rp}");
        assert!(wr > 0.10, "tWR reduction {wr}");
        // Early termination reduces tRAS further, at similar tRCD.
        assert!(t.hp_et.t_ras_ns < t.hp_no_et.t_ras_ns);
        // Max-capacity: tRP drops, restoration slightly slower.
        assert!(t.max_capacity.t_rp_ns < t.baseline.t_rp_ns);
        assert!(t.max_capacity.t_ras_ns >= 0.95 * t.baseline.t_ras_ns);
    }

    #[test]
    fn baseline_calibration_is_in_ddr4_range() {
        let p = CircuitParams::default_22nm();
        let b = measure_mode(Topology::OpenBitlineBaseline, &p, false);
        // Within ±40 % of the paper's baseline (13.8 / 39.4 / 15.5 / 12.5).
        assert!((8.0..=20.0).contains(&b.t_rcd_ns), "tRCD {}", b.t_rcd_ns);
        assert!((24.0..=56.0).contains(&b.t_ras_ns), "tRAS {}", b.t_ras_ns);
        assert!((9.0..=22.0).contains(&b.t_rp_ns), "tRP {}", b.t_rp_ns);
        assert!((7.0..=18.0).contains(&b.t_wr_ns), "tWR {}", b.t_wr_ns);
    }
}
