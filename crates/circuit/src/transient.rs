//! Backward-Euler transient engine with Newton–Raphson per step.
//!
//! Unknowns are the non-ground node voltages plus one branch current per
//! connected driven source (classic MNA). Scenario logic interacts with
//! the running simulation through slewable sources — the same way a DRAM
//! control FSM drives wordlines, sense enables, and precharge gates.

use crate::devices::GMIN;
use crate::matrix::Matrix;
use crate::netlist::{Netlist, SourceId};

/// A running transient simulation.
#[derive(Debug, Clone)]
pub struct Transient {
    net: Netlist,
    v: Vec<f64>,
    t_ns: f64,
    dt_ns: f64,
    newton_iters_last: usize,
}

/// Newton convergence tolerance (volts).
const TOL_V: f64 = 1e-6;
/// Maximum Newton iterations per (sub)step.
const MAX_ITERS: usize = 60;
/// Per-iteration voltage-update clamp for robustness (volts).
const DAMP_V: f64 = 0.4;

impl Transient {
    /// Creates an engine over `net` with the given time step. Initial node
    /// voltages are zero except source-driven nodes, which start at their
    /// source values; override with [`Transient::set_ic`].
    pub fn new(net: Netlist, dt_ns: f64) -> Self {
        assert!(dt_ns > 0.0, "time step must be positive");
        let mut v = vec![0.0; net.nodes()];
        for s in &net.sources {
            if s.connected {
                v[s.node] = s.value;
            }
        }
        Transient {
            net,
            v,
            t_ns: 0.0,
            dt_ns,
            newton_iters_last: 0,
        }
    }

    /// Present simulation time in nanoseconds.
    pub fn time_ns(&self) -> f64 {
        self.t_ns
    }

    /// Voltage of a node.
    pub fn v(&self, node: usize) -> f64 {
        self.v[node]
    }

    /// Sets a node's initial condition (before the first step).
    pub fn set_ic(&mut self, node: usize, volts: f64) {
        self.v[node] = volts;
    }

    /// Starts slewing a source toward `target` at `slew_v_per_ns`.
    pub fn slew(&mut self, id: SourceId, target: f64, slew_v_per_ns: f64) {
        let s = &mut self.net.sources[id.0];
        s.target = target;
        s.slew_v_per_ns = slew_v_per_ns;
    }

    /// Immediately steps a source to `value`.
    pub fn set_source(&mut self, id: SourceId, value: f64) {
        let s = &mut self.net.sources[id.0];
        s.value = value;
        s.target = value;
    }

    /// Connects or disconnects a source (disconnected = floating node).
    pub fn set_connected(&mut self, id: SourceId, connected: bool) {
        self.net.sources[id.0].connected = connected;
    }

    /// Present value of a source.
    pub fn source_value(&self, id: SourceId) -> f64 {
        self.net.sources[id.0].value
    }

    /// Newton iterations used by the last step (diagnostics).
    pub fn newton_iters(&self) -> usize {
        self.newton_iters_last
    }

    /// Advances one time step.
    ///
    /// # Panics
    ///
    /// Panics if Newton fails to converge even after sub-stepping — that
    /// indicates an unphysical netlist, which is a bug, not a data error.
    pub fn step(&mut self) {
        self.advance_sources(self.dt_ns);
        if !self.solve_step(self.dt_ns) {
            // Progressive sub-stepping with rollback: 4, 16, then 64
            // sub-steps of the interval.
            let mut done = false;
            'outer: for subdivisions in [4usize, 16, 64] {
                let saved = self.v.clone();
                let sub = self.dt_ns / subdivisions as f64;
                for _ in 0..subdivisions {
                    if !self.solve_step(sub) {
                        self.v = saved;
                        continue 'outer;
                    }
                }
                done = true;
                break;
            }
            assert!(
                done,
                "newton failed to converge at t = {} ns even with 64 sub-steps",
                self.t_ns
            );
        }
        self.t_ns += self.dt_ns;
    }

    /// Runs for `duration_ns`.
    pub fn run(&mut self, duration_ns: f64) {
        let end = self.t_ns + duration_ns;
        while self.t_ns < end - 1e-12 {
            self.step();
        }
    }

    fn advance_sources(&mut self, dt: f64) {
        for s in &mut self.net.sources {
            if s.value == s.target {
                continue;
            }
            if !s.slew_v_per_ns.is_finite() {
                s.value = s.target;
                continue;
            }
            let max_delta = s.slew_v_per_ns * dt;
            let delta = (s.target - s.value).clamp(-max_delta, max_delta);
            s.value += delta;
        }
    }

    /// One backward-Euler step of `dt`; returns convergence success.
    fn solve_step(&mut self, dt: f64) -> bool {
        let nodes = self.net.nodes();
        let connected: Vec<usize> = self
            .net
            .sources
            .iter()
            .enumerate()
            .filter(|(_, s)| s.connected)
            .map(|(i, _)| i)
            .collect();
        let n = (nodes - 1) + connected.len();
        let mut g = Matrix::zeros(n);
        let mut rhs = vec![0.0; n];
        // Unknown indices: node k (k ≥ 1) → k − 1; source branch j →
        // nodes − 1 + j.
        let idx = |node: usize| -> Option<usize> {
            if node == 0 {
                None
            } else {
                Some(node - 1)
            }
        };

        let v_prev = self.v.clone();
        let mut v = self.v.clone();
        let dt_s = dt * 1e-9;

        let mut iters = 0;
        loop {
            iters += 1;
            g.clear();
            rhs.iter_mut().for_each(|x| *x = 0.0);

            for r in &self.net.resistors {
                let cond = 1.0 / r.ohms;
                stamp_conductance(&mut g, idx(r.a), idx(r.b), cond);
            }
            for c in &self.net.capacitors {
                let gc = c.farads / dt_s;
                stamp_conductance(&mut g, idx(c.a), idx(c.b), gc);
                let hist = gc * (v_prev[c.a] - v_prev[c.b]);
                if let Some(a) = idx(c.a) {
                    rhs[a] += hist;
                }
                if let Some(b) = idx(c.b) {
                    rhs[b] -= hist;
                }
            }
            for m in &self.net.mosfets {
                let lin = m.linearize(v[m.d], v[m.g], v[m.s]);
                stamp_conductance(&mut g, idx(m.d), idx(m.s), GMIN);
                // Jacobian rows for KCL at d (+I) and s (−I).
                let partials = [(m.d, lin.di_dvd), (m.g, lin.di_dvg), (m.s, lin.di_dvs)];
                let i_lin =
                    lin.ids - lin.di_dvd * v[m.d] - lin.di_dvg * v[m.g] - lin.di_dvs * v[m.s];
                if let Some(d) = idx(m.d) {
                    for &(node, dp) in &partials {
                        if let Some(x) = idx(node) {
                            g.add(d, x, dp);
                        }
                    }
                    rhs[d] -= i_lin;
                }
                if let Some(s) = idx(m.s) {
                    for &(node, dp) in &partials {
                        if let Some(x) = idx(node) {
                            g.add(s, x, -dp);
                        }
                    }
                    rhs[s] += i_lin;
                }
            }
            for (j, &si) in connected.iter().enumerate() {
                let s = &self.net.sources[si];
                let br = nodes - 1 + j;
                let node = idx(s.node).expect("sources never drive ground");
                g.add(br, node, 1.0);
                g.add(node, br, 1.0);
                rhs[br] = s.value;
            }

            let mut x = rhs.clone();
            if !g.solve_in_place(&mut x) {
                return false;
            }
            // Damped update + convergence check.
            let mut max_delta: f64 = 0.0;
            for node in 1..nodes {
                let newv = x[node - 1];
                let delta = (newv - v[node]).clamp(-DAMP_V, DAMP_V);
                max_delta = max_delta.max(delta.abs());
                v[node] += delta;
            }
            if max_delta < TOL_V {
                break;
            }
            if iters >= MAX_ITERS {
                return false;
            }
        }
        self.newton_iters_last = iters;
        self.v = v;
        true
    }
}

fn stamp_conductance(g: &mut Matrix, a: Option<usize>, b: Option<usize>, cond: f64) {
    if let Some(a) = a {
        g.add(a, a, cond);
    }
    if let Some(b) = b {
        g.add(b, b, cond);
    }
    if let (Some(a), Some(b)) = (a, b) {
        g.add(a, b, -cond);
        g.add(b, a, -cond);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::MosParams;

    #[test]
    fn rc_discharge_matches_analytic() {
        // 1 kΩ to ground, 1 pF at 1 V: τ = 1 ns.
        let mut net = Netlist::new();
        let n = net.node("top");
        net.resistor(n, 0, 1000.0);
        net.capacitor(n, 0, 1e-12);
        let mut sim = Transient::new(net, 0.001);
        sim.set_ic(n, 1.0);
        sim.run(1.0);
        let expect = (-1.0f64).exp();
        assert!(
            (sim.v(n) - expect).abs() < 0.01,
            "v {} vs {expect}",
            sim.v(n)
        );
    }

    #[test]
    fn source_drives_rc_charge() {
        let mut net = Netlist::new();
        let top = net.node("top");
        let mid = net.node("mid");
        let src = net.source(top, 1.0);
        net.resistor(top, mid, 1000.0);
        net.capacitor(mid, 0, 1e-12);
        let mut sim = Transient::new(net, 0.001);
        sim.run(5.0);
        assert!((sim.v(mid) - 1.0).abs() < 0.01, "v {}", sim.v(mid));
        let _ = src;
    }

    #[test]
    fn slewed_source_ramps_linearly() {
        let mut net = Netlist::new();
        let n = net.node("drv");
        let src = net.source(n, 0.0);
        net.capacitor(n, 0, 1e-18); // keep the matrix non-singular
        let mut sim = Transient::new(net, 0.01);
        sim.slew(src, 1.0, 0.5); // 0.5 V/ns → 2 ns to reach 1 V
        sim.run(1.0);
        assert!((sim.v(n) - 0.5).abs() < 0.02, "v {}", sim.v(n));
        sim.run(1.5);
        assert!((sim.v(n) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn nmos_pass_gate_charges_capacitor_to_vg_minus_vth() {
        // Source-follower limit: cap charges to vg − vth.
        let mut net = Netlist::new();
        let bl = net.node("bl");
        let cell = net.node("cell");
        let wl = net.node("wl");
        net.source(bl, 1.2);
        let _wl_src = net.source(wl, 2.4);
        net.nmos(
            bl,
            wl,
            cell,
            MosParams {
                k: 1e-4,
                vth: 0.5,
                lambda: 0.0,
            },
        );
        net.capacitor(cell, 0, 20e-15);
        let mut sim = Transient::new(net, 0.01);
        sim.run(50.0);
        // vpp − vth = 1.9 > vdd → cell reaches full 1.2 V.
        assert!((sim.v(cell) - 1.2).abs() < 0.02, "cell {}", sim.v(cell));
    }

    #[test]
    fn disconnected_source_floats_node() {
        let mut net = Netlist::new();
        let n = net.node("float");
        let src = net.source(n, 1.0);
        net.capacitor(n, 0, 1e-15);
        let mut sim = Transient::new(net, 0.01);
        sim.run(0.1);
        assert!((sim.v(n) - 1.0).abs() < 1e-6);
        sim.set_connected(src, false);
        sim.set_source(src, 0.0);
        sim.run(1.0);
        // Node holds its charge (no discharge path).
        assert!((sim.v(n) - 1.0).abs() < 0.01, "v {}", sim.v(n));
    }

    #[test]
    fn cross_coupled_inverter_latch_regenerates() {
        // A minimal sense-amp core: cross-coupled inverters between two
        // capacitive nodes with a small initial imbalance must regenerate
        // to the rails once enabled.
        let mut net = Netlist::new();
        let a = net.node("a");
        let b = net.node("b");
        let sap = net.node("sap");
        let san = net.node("san");
        let sap_src = net.source(sap, 0.6);
        let san_src = net.source(san, 0.6);
        let nk = MosParams {
            k: 2.6e-4,
            vth: 0.42,
            lambda: 0.08,
        };
        let pk = MosParams {
            k: -1.3e-4,
            vth: -0.42,
            lambda: 0.08,
        };
        net.nmos(a, b, san, nk);
        net.nmos(b, a, san, nk);
        net.pmos(a, b, sap, pk);
        net.pmos(b, a, sap, pk);
        net.capacitor(a, 0, 50e-15);
        net.capacitor(b, 0, 50e-15);
        let mut sim = Transient::new(net, 0.01);
        sim.set_ic(a, 0.68);
        sim.set_ic(b, 0.60);
        sim.slew(sap_src, 1.2, 4.0);
        sim.slew(san_src, 0.0, 4.0);
        sim.run(15.0);
        assert!(sim.v(a) > 1.1, "a {}", sim.v(a));
        assert!(sim.v(b) < 0.1, "b {}", sim.v(b));
    }
}
