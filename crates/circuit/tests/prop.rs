//! Property-based tests of the circuit solver's numerical core.

use clr_circuit::matrix::Matrix;
use clr_circuit::netlist::Netlist;
use clr_circuit::params::{CircuitParams, MosParams};
use clr_circuit::transient::Transient;
use proptest::prelude::*;

proptest! {
    /// LU solves diagonally-dominant systems to small residuals.
    #[test]
    fn lu_solves_diagonally_dominant(
        n in 1usize..12,
        seed_vals in proptest::collection::vec(-1.0f64..1.0, 144 + 12),
    ) {
        let mut m = Matrix::zeros(n);
        let mut x_true = vec![0.0; n];
        for i in 0..n {
            let mut row_sum = 0.0;
            for j in 0..n {
                if i != j {
                    let v = seed_vals[i * 12 + j];
                    m.set(i, j, v);
                    row_sum += v.abs();
                }
            }
            m.set(i, i, row_sum + 1.0); // strictly dominant
            x_true[i] = seed_vals[144 + i];
        }
        // b = A·x_true.
        let mut b = vec![0.0; n];
        for (i, bi) in b.iter_mut().enumerate() {
            for (j, xj) in x_true.iter().enumerate() {
                *bi += m.get(i, j) * xj;
            }
        }
        let mut solved = b.clone();
        prop_assert!(m.clone_for_test().solve_in_place(&mut solved));
        for (s, t) in solved.iter().zip(&x_true) {
            prop_assert!((s - t).abs() < 1e-8, "{} vs {}", s, t);
        }
    }

    /// An RC divider driven by a source settles to the exact voltage
    /// divider value regardless of component scale.
    #[test]
    fn resistive_divider_settles(
        r1 in 100.0f64..1e5,
        r2 in 100.0f64..1e5,
        v in 0.1f64..3.0,
    ) {
        let mut net = Netlist::new();
        let top = net.node("top");
        let mid = net.node("mid");
        net.source(top, v);
        net.resistor(top, mid, r1);
        net.resistor(mid, 0, r2);
        net.capacitor(mid, 0, 1e-15);
        let mut sim = Transient::new(net, 0.01);
        sim.run(50.0);
        let expect = v * r2 / (r1 + r2);
        prop_assert!(
            (sim.v(mid) - expect).abs() < 0.01 * v.max(1.0),
            "divider {} vs {}",
            sim.v(mid),
            expect
        );
    }

    /// Charge conservation: a capacitor charge-sharing with another
    /// through an always-on pass transistor ends at the weighted mean.
    #[test]
    fn charge_sharing_conserves(
        v0 in 0.0f64..1.2,
        c1_f in 1.0f64..50.0,
        c2_f in 1.0f64..50.0,
    ) {
        let mut net = Netlist::new();
        let a = net.node("a");
        let b = net.node("b");
        let gate = net.node("gate");
        net.source(gate, 3.0);
        let c1 = c1_f * 1e-15;
        let c2 = c2_f * 1e-15;
        net.capacitor(a, 0, c1);
        net.capacitor(b, 0, c2);
        net.nmos(a, gate, b, MosParams { k: 1e-4, vth: 0.4, lambda: 0.0 });
        let mut sim = Transient::new(net, 0.01);
        sim.set_ic(a, v0);
        sim.set_ic(b, 0.0);
        sim.run(200.0);
        let expect = v0 * c1 / (c1 + c2);
        prop_assert!(
            (sim.v(a) - sim.v(b)).abs() < 0.02,
            "did not equalize: {} vs {}",
            sim.v(a),
            sim.v(b)
        );
        prop_assert!(
            (sim.v(a) - expect).abs() < 0.05,
            "final {} vs expected {}",
            sim.v(a),
            expect
        );
    }

    /// Monte-Carlo perturbation keeps parameters positive and within the
    /// clamped ±3σ band.
    #[test]
    fn perturbation_stays_in_band(seed in 0u64..5000) {
        use clr_circuit::montecarlo::perturb;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let p = CircuitParams::default_22nm();
        let mut rng = StdRng::seed_from_u64(seed);
        let q = perturb(&p, &mut rng);
        for (a, b) in [
            (q.c_cell, p.c_cell),
            (q.c_bitline, p.c_bitline),
            (q.r_bitline, p.r_bitline),
            (q.access.k, p.access.k),
            (q.sa_nmos.k, p.sa_nmos.k),
        ] {
            prop_assert!(a > 0.0);
            prop_assert!((a / b - 1.0).abs() <= 0.16, "{} vs {}", a, b);
        }
    }
}

/// Test-only helper: `Matrix` clone (kept out of the public API).
trait CloneForTest {
    fn clone_for_test(&self) -> Matrix;
}

impl CloneForTest for Matrix {
    fn clone_for_test(&self) -> Matrix {
        self.clone()
    }
}
