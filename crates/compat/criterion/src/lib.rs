//! Minimal, dependency-free stand-in for the subset of the `criterion`
//! benchmark API this workspace uses (`criterion_group!`/`criterion_main!`,
//! `Criterion::{benchmark_group, bench_function}`,
//! `BenchmarkGroup::{sample_size, bench_function, finish}`, `Bencher::iter`,
//! `black_box`).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this shim. It runs each benchmark closure for a fixed number of
//! samples and prints mean wall-clock time per iteration — no statistical
//! analysis, outlier detection, or HTML reports.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmark
/// work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Timing driver passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    mean: Option<Duration>,
}

impl Bencher {
    /// Runs `f` repeatedly and records the mean wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        self.mean = Some(start.elapsed() / self.samples as u32);
    }
}

/// The top-level benchmark context.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

fn run_one(name: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        mean: None,
    };
    f(&mut b);
    match b.mean {
        Some(mean) => println!("bench {name:<40} {mean:>12.2?}/iter ({samples} samples)"),
        None => println!("bench {name:<40} (closure never called Bencher::iter)"),
    }
}

impl Criterion {
    /// Runs one named benchmark with the default sample count.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl AsRef<str>,
        mut f: F,
    ) -> &mut Self {
        run_one(name.as_ref(), 10, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            samples: 10,
        }
    }
}

/// A named set of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl AsRef<str>,
        mut f: F,
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, name.as_ref()),
            self.samples,
            &mut f,
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main()` for a benchmark binary built with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
