//! Minimal, dependency-free stand-in for the subset of the `proptest` API
//! this workspace uses: the `proptest!` macro, `Strategy` with `prop_map`,
//! range/tuple/`Just`/`any::<bool>()` strategies, `prop_oneof!`,
//! `proptest::collection::{vec, hash_set}`, the `prop_assert*` macros and
//! `ProptestConfig::with_cases`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this shim. Differences from upstream: no shrinking (a failing
//! case reports its seed and case number instead of a minimized input),
//! and a smaller default case count tuned for simulation-heavy tests.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod strategy {
    //! Value-generation strategies.

    use super::TestRng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed strategies (backs `prop_oneof!`).
    pub struct Union<V> {
        options: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V> std::fmt::Debug for Union<V> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "Union({} options)", self.options.len())
        }
    }

    impl<V> Union<V> {
        /// Builds a union over `options`.
        ///
        /// # Panics
        ///
        /// Panics if `options` is empty.
        pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.options.len());
            self.options[i].generate(rng)
        }
    }

    /// Boxes a strategy, erasing its concrete type (helper for
    /// `prop_oneof!`).
    pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
        Box::new(s)
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.in_range(self.clone())
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.in_range_inclusive(self.clone())
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident/$i:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A/0);
        (A/0, B/1);
        (A/0, B/1, C/2);
        (A/0, B/1, C/2, D/3);
        (A/0, B/1, C/2, D/3, E/4);
        (A/0, B/1, C/2, D/3, E/4, F/5);
        (A/0, B/1, C/2, D/3, E/4, F/5, G/6);
        (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7);
    }
}

pub mod arbitrary {
    //! `any::<T>()` support.

    use super::strategy::Strategy;
    use super::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.below(2) == 1
        }
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next() as $t
                }
            }
        )*};
    }

    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct AnyStrategy<T>(PhantomData<fn() -> T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// The canonical strategy for `T`'s whole domain.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::TestRng;
    use std::collections::HashSet;
    use std::hash::Hash;

    /// Inclusive-exclusive element-count bounds for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<::std::ops::Range<usize>> for SizeRange {
        fn from(r: ::std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<::std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: ::std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.below(self.hi - self.lo)
        }
    }

    /// Strategy for `Vec<S::Value>` (see [`vec`]).
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `HashSet<S::Value>` (see [`hash_set`]).
    #[derive(Debug, Clone)]
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates hash sets whose size falls in `size` when the element
    /// domain is large enough (duplicates are retried a bounded number of
    /// times).
    pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let n = self.size.pick(rng);
            let mut out = HashSet::with_capacity(n);
            let mut attempts = 0;
            while out.len() < n && attempts < n * 10 + 100 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

pub mod test_runner {
    //! The (non-shrinking) case runner.

    /// Per-test configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 48 }
        }
    }

    /// A failed property case (carried by `prop_assert*`).
    #[derive(Debug, Clone)]
    pub struct TestCaseError(pub String);

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }
}

/// The generator threaded through strategies: seeded per test name and
/// case index so failures are reproducible.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Deterministic generator for case `case` of test `name`.
    pub fn for_case(name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(h ^ ((case as u64) << 32 | 0x5DEECE66D)),
        }
    }

    fn next(&mut self) -> u64 {
        use rand::RngCore;
        self.inner.next_u64()
    }

    fn below(&mut self, n: usize) -> usize {
        use rand::Rng;
        self.inner.gen_range(0..n.max(1))
    }

    fn in_range<T>(&mut self, r: std::ops::Range<T>) -> T
    where
        std::ops::Range<T>: rand::SampleRange<Output = T>,
    {
        use rand::Rng;
        self.inner.gen_range(r)
    }

    fn in_range_inclusive<T>(&mut self, r: std::ops::RangeInclusive<T>) -> T
    where
        std::ops::RangeInclusive<T>: rand::SampleRange<Output = T>,
    {
        use rand::Rng;
        self.inner.gen_range(r)
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// inside the block becomes a `#[test]` running the body over generated
/// cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ cfg = $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut rng = $crate::TestRng::for_case(stringify!($name), case);
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        { $body }
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "property '{}' failed at case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e
                    );
                }
            }
        }
    )*};
}

/// `assert!` that reports through the property runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(
                format!($($fmt)*),
            ));
        }
    };
}

/// `assert_eq!` that reports through the property runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "{}: {:?} != {:?}", format!($($fmt)*), a, b);
    }};
}

/// `assert_ne!` that reports through the property runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "{}: {:?} == {:?}", format!($($fmt)*), a, b);
    }};
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![$($crate::strategy::boxed($s)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_hold(x in 3u32..17, f in 0.0f64..1.0, q in 0u8..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.0..1.0).contains(&f));
            prop_assert!(q <= 4);
        }

        #[test]
        fn tuples_and_vecs(v in crate::collection::vec((0usize..4, any::<bool>()), 1..20)) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            for (a, _b) in v {
                prop_assert!(a < 4);
            }
        }

        #[test]
        fn oneof_and_map(x in prop_oneof![Just(1u32), Just(5u32)], y in (0u32..3).prop_map(|v| v * 2)) {
            prop_assert!(x == 1 || x == 5);
            prop_assert!(y % 2 == 0 && y <= 4);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        let mut a = crate::TestRng::for_case("t", 0);
        let mut b = crate::TestRng::for_case("t", 0);
        let s = 0u64..1_000_000;
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }
}
