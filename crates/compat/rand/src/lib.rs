//! Minimal, dependency-free stand-in for the subset of the `rand` crate API
//! this workspace uses (`StdRng`, `Rng::{gen, gen_range, gen_bool}`,
//! `SeedableRng::seed_from_u64`, `seq::SliceRandom::choose_multiple`).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this shim. Streams differ from upstream `rand` — every consumer
//! in the workspace relies only on *seed-reproducibility* and reasonable
//! distribution quality, both of which the xoshiro256++ generator used here
//! provides.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit output (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of a type with a standard distribution
    /// (`f64`/`f32` uniform in `[0, 1)`, uniform integers, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from a range (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `0.0..=1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one standard-distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange {
    /// Element type of the range.
    type Output;

    /// Draws one uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Multiply-shift bounded sampling (Lemire); bias is < 2^-64 per draw,
    // far below anything the simulations can observe.
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for ::std::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange for ::std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-width inclusive range of a 64-bit type.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for ::std::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + (self.end - self.start) * f64::sample_standard(rng)
    }
}

impl SampleRange for ::std::ops::RangeInclusive<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + (hi - lo) * f64::sample_standard(rng)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seedable generator: xoshiro256++ seeded
    /// through SplitMix64 (not the upstream ChaCha12 stream; see the crate
    /// docs).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Slice sampling helpers, mirroring `rand::seq`.
pub mod seq {
    use super::RngCore;

    /// Random selection from slices.
    pub trait SliceRandom {
        /// Slice element type.
        type Item;

        /// Chooses `amount` distinct elements (fewer if the slice is
        /// shorter), in random order.
        fn choose_multiple<'a, R: RngCore + ?Sized>(
            &'a self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose_multiple<'a, R: RngCore + ?Sized>(
            &'a self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&'a T> {
            let amount = amount.min(self.len());
            // Partial Fisher-Yates over an index vector.
            let mut idx: Vec<usize> = (0..self.len()).collect();
            for i in 0..amount {
                let j = i + super::uniform_u64(rng, (idx.len() - i) as u64) as usize;
                idx.swap(i, j);
            }
            idx.truncate(amount);
            idx.into_iter()
                .map(|i| &self[i])
                .collect::<Vec<_>>()
                .into_iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn reproducible_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3u32..17);
            assert!((3..17).contains(&x));
            let f = rng.gen_range(0.25f64..0.5);
            assert!((0.25..0.5).contains(&f));
            let i = rng.gen_range(0u8..=4);
            assert!(i <= 4);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits {hits}");
    }

    #[test]
    fn choose_multiple_is_distinct() {
        let mut rng = StdRng::seed_from_u64(3);
        let v: Vec<u32> = (0..10).collect();
        let picks: Vec<u32> = v.choose_multiple(&mut rng, 4).copied().collect();
        assert_eq!(picks.len(), 4);
        let set: std::collections::HashSet<_> = picks.iter().collect();
        assert_eq!(set.len(), 4);
    }
}
