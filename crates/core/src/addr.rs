//! Physical-address ↔ DRAM-coordinate interleaving.
//!
//! The memory controller slices a physical address into channel, rank, bank
//! group, bank, row, and column fields (§5.1 of the paper, Figure 10). The
//! slice order determines both parallelism (how consecutive lines spread
//! over banks/channels) and the *granularity of the capacity-latency
//! trade-off*: the number of OS pages that share a DRAM row and the number
//! of rows a page stripes across.

use crate::error::CoreError;
use crate::geometry::DramGeometry;

/// A physical byte address as seen by the OS and memory controller.
///
/// A newtype is used so DRAM coordinates and raw addresses cannot be
/// confused (C-NEWTYPE).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PhysAddr(pub u64);

impl PhysAddr {
    /// The cache-line index of this address for `line_bytes`-sized lines.
    pub fn line(self, line_bytes: u64) -> u64 {
        self.0 / line_bytes
    }

    /// The page number of this address for `page_bytes`-sized pages.
    pub fn page(self, page_bytes: u64) -> u64 {
        self.0 / page_bytes
    }
}

impl From<u64> for PhysAddr {
    fn from(v: u64) -> Self {
        PhysAddr(v)
    }
}

impl From<PhysAddr> for u64 {
    fn from(v: PhysAddr) -> Self {
        v.0
    }
}

impl std::fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// Fully decoded DRAM coordinates of one column-granularity access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct DramAddr {
    /// Channel index.
    pub channel: u32,
    /// Rank index within the channel.
    pub rank: u32,
    /// Bank group index within the rank.
    pub bank_group: u32,
    /// Bank index within the bank group.
    pub bank: u32,
    /// Row index within the bank.
    pub row: u32,
    /// Column index within the row (bus-beat granularity).
    pub column: u32,
}

impl DramAddr {
    /// Flat bank identifier combining channel, rank, bank group, and bank.
    ///
    /// Useful as an index into per-bank state arrays.
    pub fn flat_bank(&self, g: &DramGeometry) -> usize {
        let mut id = self.channel;
        id = id * g.ranks + self.rank;
        id = id * g.bank_groups + self.bank_group;
        id = id * g.banks_per_group + self.bank;
        id as usize
    }
}

/// One field of the sliced address, MSB-to-LSB order is scheme-specific.
///
/// The column is split into a high part and the *burst* part (the beats
/// of one transfer): channel-interleaving schemes place the channel bits
/// between them, so channels interleave at cache-line (burst) rather
/// than bus-beat granularity — Ramulator's convention of addressing at
/// transaction granularity. With one channel the split is invisible (the
/// two parts are adjacent).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Field {
    Channel,
    Rank,
    BankGroup,
    Bank,
    Row,
    /// Column bits above the burst (`column_bits − burst_bits`).
    ColumnHigh,
    /// The low `log2(burst_length)` column bits (one transfer's beats).
    ColumnBurst,
}

/// Physical-address interleaving schemes.
///
/// Names read MSB → LSB (`Ro` = row, `Bg` = bank group, `Ba` = bank,
/// `Ra` = rank, `Co` = column, `Ch` = channel), following Ramulator's
/// convention. The byte offset within a column beat always occupies the
/// least-significant bits. In the channel-low schemes
/// ([`RoBgBaRaCoCh`](AddressMapping::RoBgBaRaCoCh),
/// [`RoRaBaBgCoCh`](AddressMapping::RoRaBaBgCoCh)) the burst's beats
/// stay below the channel bits — as in Ramulator, which addresses at
/// transaction granularity — so consecutive *cache lines* (not bus
/// beats) alternate channels. The adversarial
/// [`CoChRaBgBaRo`](AddressMapping::CoChRaBgBaRo) keeps the whole
/// column (burst included) above the channel, interleaving channels at
/// a much coarser granularity by design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AddressMapping {
    /// Row, bank group, bank, rank, column, channel (Ramulator's default
    /// `RoBaRaCoCh`). Consecutive lines stay in the same row (high row
    /// locality); rows are the top bits so each OS page touches few rows.
    #[default]
    RoBgBaRaCoCh,
    /// Row, column-high, bank group, bank, rank, column-low-as-channel —
    /// simplified variant that spreads consecutive lines across bank groups
    /// for bank-level parallelism (`RoCoBaRaCh` family).
    RoRaBaBgCoCh,
    /// Column-major: rows occupy the least-significant sliced bits, so an
    /// OS page stripes across many rows (the adversarial layout for the
    /// §5.1 trade-off granularity, used in granularity tests).
    CoChRaBgBaRo,
}

impl AddressMapping {
    fn order(self) -> [Field; 7] {
        use Field::*;
        match self {
            // MSB ....................................................... LSB
            // Channel-low schemes keep the burst bits below the channel
            // so consecutive cache lines alternate channels
            // (transaction-granularity interleaving); CoChRaBgBaRo keeps
            // the whole column above the channel on purpose. With one
            // channel the column is contiguous either way.
            AddressMapping::RoBgBaRaCoCh => {
                [Row, BankGroup, Bank, Rank, ColumnHigh, Channel, ColumnBurst]
            }
            AddressMapping::RoRaBaBgCoCh => {
                [Row, Rank, Bank, BankGroup, ColumnHigh, Channel, ColumnBurst]
            }
            AddressMapping::CoChRaBgBaRo => {
                [ColumnHigh, ColumnBurst, Channel, Rank, BankGroup, Bank, Row]
            }
        }
    }

    /// log2 of the burst-beat slice of the column field.
    fn burst_bits(g: &DramGeometry) -> u32 {
        g.burst_length.trailing_zeros().min(g.column_bits())
    }

    fn width(field: Field, g: &DramGeometry) -> u32 {
        match field {
            Field::Channel => g.channel_bits(),
            Field::Rank => g.rank_bits(),
            Field::BankGroup => g.bank_group_bits(),
            Field::Bank => g.bank_bits(),
            Field::Row => g.row_bits(),
            Field::ColumnHigh => g.column_bits() - Self::burst_bits(g),
            Field::ColumnBurst => Self::burst_bits(g),
        }
    }

    /// Decodes a physical address into DRAM coordinates.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::AddressOutOfRange`] if `addr` exceeds the
    /// geometry's capacity.
    pub fn map(self, addr: PhysAddr, g: &DramGeometry) -> Result<DramAddr, CoreError> {
        if addr.0 >= g.capacity_bytes() {
            return Err(CoreError::AddressOutOfRange {
                addr: addr.0,
                capacity_bytes: g.capacity_bytes(),
            });
        }
        let mut rest = addr.0 >> g.offset_bits();
        let mut out = DramAddr::default();
        let burst_bits = Self::burst_bits(g);
        // Consume fields LSB-first (reverse of the MSB-first order).
        for field in self.order().iter().rev() {
            let w = Self::width(*field, g);
            let v = (rest & ((1u64 << w) - 1)) as u32;
            rest >>= w;
            match field {
                Field::Channel => out.channel = v,
                Field::Rank => out.rank = v,
                Field::BankGroup => out.bank_group = v,
                Field::Bank => out.bank = v,
                Field::Row => out.row = v,
                Field::ColumnHigh => out.column |= v << burst_bits,
                Field::ColumnBurst => out.column |= v,
            }
        }
        Ok(out)
    }

    /// Re-encodes DRAM coordinates into the physical address of the first
    /// byte of that column.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::CoordinateOutOfRange`] if any coordinate exceeds
    /// its geometry bound.
    pub fn unmap(self, d: &DramAddr, g: &DramGeometry) -> Result<PhysAddr, CoreError> {
        let checks: [(&'static str, u64, u64); 6] = [
            ("channel", d.channel as u64, g.channels as u64),
            ("rank", d.rank as u64, g.ranks as u64),
            ("bank_group", d.bank_group as u64, g.bank_groups as u64),
            ("bank", d.bank as u64, g.banks_per_group as u64),
            ("row", d.row as u64, g.rows as u64),
            ("column", d.column as u64, g.columns as u64),
        ];
        for (what, got, bound) in checks {
            if got >= bound {
                return Err(CoreError::CoordinateOutOfRange { what, got, bound });
            }
        }
        let mut acc: u64 = 0;
        let burst_bits = Self::burst_bits(g);
        for field in self.order() {
            let w = Self::width(field, g);
            let v = match field {
                Field::Channel => d.channel,
                Field::Rank => d.rank,
                Field::BankGroup => d.bank_group,
                Field::Bank => d.bank,
                Field::Row => d.row,
                Field::ColumnHigh => d.column >> burst_bits,
                Field::ColumnBurst => d.column & ((1 << burst_bits) - 1),
            } as u64;
            acc = (acc << w) | v;
        }
        Ok(PhysAddr(acc << g.offset_bits()))
    }

    /// Routes a system-wide physical address to its channel, returning
    /// `(channel, channel-local address)`.
    ///
    /// The channel-local address is the same bit-slice encoding with the
    /// channel field removed — i.e. `self.map(local, &g.channel_slice())`
    /// yields the same rank/bank/row/column coordinates with `channel ==
    /// 0`. The intra-column byte offset is preserved, so routing a
    /// line-aligned address yields a line-aligned local address. Together
    /// with [`AddressMapping::unroute`] this is a bijection between the
    /// global address space and the disjoint union of the per-channel
    /// address spaces (property-tested in `tests/prop.rs`).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::AddressOutOfRange`] if `addr` exceeds the
    /// geometry's capacity.
    pub fn route(self, addr: PhysAddr, g: &DramGeometry) -> Result<(u32, PhysAddr), CoreError> {
        let d = self.map(addr, g)?;
        let slice = g.channel_slice();
        let local = self.unmap(&DramAddr { channel: 0, ..d }, &slice)?;
        let offset = addr.0 & (g.bytes_per_column() - 1);
        Ok((d.channel, PhysAddr(local.0 | offset)))
    }

    /// The inverse of [`AddressMapping::route`]: re-encodes a
    /// channel-local address back into the system-wide physical address.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::CoordinateOutOfRange`] if `channel` exceeds
    /// the geometry's channel count, or [`CoreError::AddressOutOfRange`]
    /// if `local` exceeds one channel's capacity.
    pub fn unroute(
        self,
        channel: u32,
        local: PhysAddr,
        g: &DramGeometry,
    ) -> Result<PhysAddr, CoreError> {
        if channel >= g.channels {
            return Err(CoreError::CoordinateOutOfRange {
                what: "channel",
                got: channel as u64,
                bound: g.channels as u64,
            });
        }
        let slice = g.channel_slice();
        let d = self.map(local, &slice)?;
        let global = self.unmap(&DramAddr { channel, ..d }, g)?;
        let offset = local.0 & (g.bytes_per_column() - 1);
        Ok(PhysAddr(global.0 | offset))
    }

    /// Number of OS pages of `page_bytes` that collectively occupy one
    /// max-capacity DRAM row *group* under this mapping — the granularity at
    /// which the capacity-latency trade-off is exposed (§5.1).
    ///
    /// For row-major mappings this is `row_bytes / page_bytes` (pages that
    /// share a row); for mappings that stripe a page over many rows it grows
    /// accordingly.
    pub fn trade_off_granularity_pages(self, g: &DramGeometry, page_bytes: u64) -> u64 {
        let rows_spanned = self.rows_per_page(g, page_bytes);
        // All pages co-resident in those rows flip mode together.
        rows_spanned * g.row_bytes().max(1) / page_bytes.max(1) * self.pages_sharing_row_factor()
    }

    /// Number of distinct DRAM rows a single OS page stripes across
    /// (the `2^Y` of §5.1).
    pub fn rows_per_page(self, g: &DramGeometry, page_bytes: u64) -> u64 {
        // Row-selecting bits below log2(page_bytes) stripe the page.
        let page_bits = page_bytes.trailing_zeros();
        let mut lsb = g.offset_bits();
        let mut row_bits_below_page = 0;
        for field in self.order().iter().rev() {
            let w = Self::width(*field, g);
            if *field == Field::Row {
                let overlap = page_bits.saturating_sub(lsb).min(w);
                row_bits_below_page = overlap;
            }
            lsb += w;
        }
        1u64 << row_bits_below_page
    }

    fn pages_sharing_row_factor(self) -> u64 {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geoms() -> Vec<DramGeometry> {
        vec![DramGeometry::tiny(), DramGeometry::ddr4_16gb_x8()]
    }

    fn schemes() -> [AddressMapping; 3] {
        [
            AddressMapping::RoBgBaRaCoCh,
            AddressMapping::RoRaBaBgCoCh,
            AddressMapping::CoChRaBgBaRo,
        ]
    }

    #[test]
    fn roundtrip_map_unmap() {
        for g in geoms() {
            for s in schemes() {
                for addr in [
                    0u64,
                    64,
                    4096,
                    g.capacity_bytes() / 2,
                    g.capacity_bytes() - g.bytes_per_column(),
                ] {
                    let d = s.map(PhysAddr(addr), &g).unwrap();
                    let back = s.unmap(&d, &g).unwrap();
                    // unmap returns the base of the column; mask the offset.
                    let expect = addr & !(g.bytes_per_column() - 1);
                    assert_eq!(back.0, expect, "scheme {s:?} addr {addr:#x}");
                }
            }
        }
    }

    #[test]
    fn out_of_range_address_rejected() {
        let g = DramGeometry::tiny();
        let s = AddressMapping::default();
        assert!(matches!(
            s.map(PhysAddr(g.capacity_bytes()), &g),
            Err(CoreError::AddressOutOfRange { .. })
        ));
    }

    #[test]
    fn out_of_range_coordinate_rejected() {
        let g = DramGeometry::tiny();
        let s = AddressMapping::default();
        let d = DramAddr {
            row: g.rows,
            ..DramAddr::default()
        };
        assert!(matches!(
            s.unmap(&d, &g),
            Err(CoreError::CoordinateOutOfRange { what: "row", .. })
        ));
    }

    #[test]
    fn row_major_keeps_consecutive_lines_in_one_row() {
        let g = DramGeometry::ddr4_16gb_x8();
        let s = AddressMapping::RoBgBaRaCoCh;
        let a = s.map(PhysAddr(0), &g).unwrap();
        let b = s.map(PhysAddr(64), &g).unwrap();
        assert_eq!(a.row, b.row);
        assert_eq!(a.bank, b.bank);
        assert_ne!(a.column, b.column);
    }

    #[test]
    fn row_major_page_touches_one_row() {
        let g = DramGeometry::ddr4_16gb_x8();
        assert_eq!(AddressMapping::RoBgBaRaCoCh.rows_per_page(&g, 4096), 1);
        // An 8 KiB row holds two 4 KiB pages → the trade-off granularity is
        // two pages per reconfigured row.
        assert_eq!(
            AddressMapping::RoBgBaRaCoCh.trade_off_granularity_pages(&g, 4096),
            2
        );
    }

    #[test]
    fn adversarial_mapping_stripes_pages_across_rows() {
        let g = DramGeometry::ddr4_16gb_x8();
        // Rows are the low bits: the 9 page bits above the 3-bit column
        // offset all select rows, striping the page across 512 rows.
        let rows = AddressMapping::CoChRaBgBaRo.rows_per_page(&g, 4096);
        assert_eq!(rows, 512);
    }

    #[test]
    fn route_strips_the_channel_and_unroute_restores_it() {
        let mut g = DramGeometry::tiny();
        g.channels = 4;
        for s in schemes() {
            for addr in [0u64, 64, 4096, g.capacity_bytes() - 64] {
                let (ch, local) = s.route(PhysAddr(addr), &g).unwrap();
                assert_eq!(ch, s.map(PhysAddr(addr), &g).unwrap().channel);
                assert!(local.0 < g.channel_slice().capacity_bytes());
                // The local address decodes to the same sub-channel
                // coordinates with channel 0.
                let d_global = s.map(PhysAddr(addr), &g).unwrap();
                let d_local = s.map(local, &g.channel_slice()).unwrap();
                assert_eq!(d_local.channel, 0);
                assert_eq!(d_local.rank, d_global.rank);
                assert_eq!(d_local.bank_group, d_global.bank_group);
                assert_eq!(d_local.bank, d_global.bank);
                assert_eq!(d_local.row, d_global.row);
                assert_eq!(d_local.column, d_global.column);
                // Round-trip back to the global address.
                let back = s.unroute(ch, local, &g).unwrap();
                assert_eq!(back.0, addr, "scheme {s:?} addr {addr:#x}");
            }
        }
    }

    #[test]
    fn route_on_single_channel_is_the_identity() {
        let g = DramGeometry::tiny();
        for s in schemes() {
            for addr in [0u64, 64, g.capacity_bytes() - 64] {
                let (ch, local) = s.route(PhysAddr(addr), &g).unwrap();
                assert_eq!(ch, 0);
                assert_eq!(local.0, addr);
            }
        }
    }

    #[test]
    fn unroute_rejects_out_of_range_channel() {
        let g = DramGeometry::tiny();
        assert!(matches!(
            AddressMapping::default().unroute(1, PhysAddr(0), &g),
            Err(CoreError::CoordinateOutOfRange {
                what: "channel",
                ..
            })
        ));
    }

    #[test]
    fn flat_bank_is_dense_and_unique() {
        let g = DramGeometry::tiny();
        let mut seen = std::collections::HashSet::new();
        for bg in 0..g.bank_groups {
            for b in 0..g.banks_per_group {
                let d = DramAddr {
                    bank_group: bg,
                    bank: b,
                    ..DramAddr::default()
                };
                assert!(seen.insert(d.flat_bank(&g)));
            }
        }
        assert_eq!(seen.len(), g.banks_total() as usize);
        assert_eq!(*seen.iter().max().unwrap(), g.banks_total() as usize - 1);
    }
}
