//! Capacity and hardware overhead accounting (§6).
//!
//! * Configuring X % of rows as high-performance costs X/2 % of total DRAM
//!   capacity (§6.1).
//! * The added isolation transistors cost ≤ 3.2 % chip area: 1.6 % for the
//!   bitline mode select transistors plus a conservatively-assumed 1.6 %
//!   for the column I/O mode select transistors (§6.2).
//! * The controller's mode table costs one bit per row, shrinkable by the
//!   reconfiguration granularity (§6.2, §5.1).

use crate::geometry::DramGeometry;
use crate::mode::ModeTable;

/// Chip-area overhead of the bitline mode select transistors (two per
/// bitline), as a fraction of baseline chip area.
pub const BITLINE_ISO_AREA_OVERHEAD: f64 = 0.016;

/// Conservative chip-area overhead of the column I/O mode select
/// transistors (one per SA pair), assuming no slack space is available.
pub const COLUMN_IO_ISO_AREA_OVERHEAD: f64 = 0.016;

/// Total worst-case DRAM chip area overhead of CLR-DRAM.
pub fn chip_area_overhead() -> f64 {
    BITLINE_ISO_AREA_OVERHEAD + COLUMN_IO_ISO_AREA_OVERHEAD
}

/// Fraction of total capacity lost when `fraction_hp` of all rows operate
/// in high-performance mode (§6.1: X % of rows → X/2 % loss).
///
/// # Panics
///
/// Panics if `fraction_hp` is not within `0.0..=1.0`.
pub fn capacity_loss_fraction(fraction_hp: f64) -> f64 {
    assert!((0.0..=1.0).contains(&fraction_hp));
    fraction_hp / 2.0
}

/// Usable capacity in bytes for a geometry with the given high-performance
/// row fraction.
pub fn effective_capacity_bytes(geometry: &DramGeometry, fraction_hp: f64) -> u64 {
    let loss = capacity_loss_fraction(fraction_hp);
    (geometry.capacity_bytes() as f64 * (1.0 - loss)).round() as u64
}

/// Usable capacity in bytes given an explicit mode table (exact per-row
/// accounting rather than a fraction).
pub fn effective_capacity_of_table(geometry: &DramGeometry, table: &ModeTable) -> u64 {
    let hp_rows = table.high_performance_rows();
    geometry.capacity_bytes() - hp_rows * geometry.row_bytes() / 2
}

/// Mode-table storage (bits) required by the controller when the
/// reconfiguration granularity is `rows_per_entry` rows (the 2^Y factor of
/// §5.1 and §6.2).
///
/// # Panics
///
/// Panics if `rows_per_entry` is zero.
pub fn mode_table_bits(geometry: &DramGeometry, rows_per_entry: u64) -> u64 {
    assert!(rows_per_entry > 0, "rows_per_entry must be nonzero");
    let rows_total = geometry.channels as u64
        * geometry.ranks as u64
        * geometry.banks_total() as u64
        * geometry.rows as u64;
    rows_total.div_ceil(rows_per_entry)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_overhead_matches_paper() {
        assert!((chip_area_overhead() - 0.032).abs() < 1e-12);
    }

    #[test]
    fn capacity_loss_is_half_the_hp_fraction() {
        assert_eq!(capacity_loss_fraction(0.0), 0.0);
        assert!((capacity_loss_fraction(0.5) - 0.25).abs() < 1e-12);
        assert!((capacity_loss_fraction(1.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn effective_capacity_all_hp_is_half() {
        let g = DramGeometry::ddr4_16gb_x8();
        assert_eq!(effective_capacity_bytes(&g, 1.0), g.capacity_bytes() / 2);
        assert_eq!(effective_capacity_bytes(&g, 0.0), g.capacity_bytes());
    }

    #[test]
    fn table_accounting_matches_fraction_accounting() {
        let g = DramGeometry::tiny();
        let mut t = ModeTable::new(&g);
        t.set_fraction_high_performance(0.5);
        assert_eq!(
            effective_capacity_of_table(&g, &t),
            effective_capacity_bytes(&g, 0.5)
        );
    }

    #[test]
    fn coarser_granularity_shrinks_mode_table() {
        let g = DramGeometry::ddr4_16gb_x8();
        let fine = mode_table_bits(&g, 1);
        let coarse = mode_table_bits(&g, 8);
        assert_eq!(fine, 16 * 128 * 1024);
        assert_eq!(coarse * 8, fine);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_granularity_panics() {
        mode_table_bits(&DramGeometry::tiny(), 0);
    }
}
