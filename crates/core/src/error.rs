//! Error types shared by the CLR-DRAM core model.

use std::fmt;

/// Errors produced by core-model operations.
///
/// All variants carry enough context to diagnose the offending input; the
/// [`fmt::Display`] output is lowercase without trailing punctuation per the
/// Rust API guidelines.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A physical address fell outside the configured DRAM capacity.
    AddressOutOfRange {
        /// The offending physical address.
        addr: u64,
        /// Total addressable bytes of the configured geometry.
        capacity_bytes: u64,
    },
    /// A DRAM coordinate (row, bank, ...) exceeded the geometry bound.
    CoordinateOutOfRange {
        /// Name of the coordinate ("row", "bank", ...).
        what: &'static str,
        /// Value that was supplied.
        got: u64,
        /// Exclusive upper bound for the coordinate.
        bound: u64,
    },
    /// A fraction argument was outside `0.0..=1.0`.
    InvalidFraction {
        /// The out-of-range value.
        got: f64,
    },
    /// A geometry field that must be a nonzero power of two was not.
    NotPowerOfTwo {
        /// Name of the geometry field.
        what: &'static str,
        /// Value that was supplied.
        got: u64,
    },
    /// The requested page placement does not fit the available frames.
    PlacementOverflow {
        /// Pages requested.
        requested: usize,
        /// Frames available in the target region.
        available: usize,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::AddressOutOfRange {
                addr,
                capacity_bytes,
            } => write!(
                f,
                "physical address {addr:#x} exceeds capacity of {capacity_bytes} bytes"
            ),
            CoreError::CoordinateOutOfRange { what, got, bound } => {
                write!(f, "{what} {got} out of range (bound {bound})")
            }
            CoreError::InvalidFraction { got } => {
                write!(f, "fraction {got} not within 0.0..=1.0")
            }
            CoreError::NotPowerOfTwo { what, got } => {
                write!(f, "{what} must be a nonzero power of two, got {got}")
            }
            CoreError::PlacementOverflow {
                requested,
                available,
            } => write!(
                f,
                "cannot place {requested} pages into {available} available frames"
            ),
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_unpunctuated() {
        let msgs = [
            CoreError::AddressOutOfRange {
                addr: 0x1000,
                capacity_bytes: 64,
            }
            .to_string(),
            CoreError::CoordinateOutOfRange {
                what: "row",
                got: 9,
                bound: 8,
            }
            .to_string(),
            CoreError::InvalidFraction { got: 1.5 }.to_string(),
            CoreError::NotPowerOfTwo {
                what: "banks",
                got: 3,
            }
            .to_string(),
            CoreError::PlacementOverflow {
                requested: 10,
                available: 5,
            }
            .to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
            assert!(!m.ends_with('.'), "message ends with period: {m}");
            assert!(
                m.chars().next().unwrap().is_lowercase() || m.starts_with(char::is_numeric),
                "message should start lowercase: {m}"
            );
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
