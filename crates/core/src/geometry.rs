//! DRAM organization: channels, ranks, bank groups, banks, rows, columns.
//!
//! The geometry mirrors the hierarchy of §2.1 of the paper and the
//! evaluation configuration of Table 2: one channel, one rank, DDR4 with
//! 4 bank groups × 4 banks, 16 Gb devices.

use crate::error::CoreError;

/// Shape of the simulated DRAM system.
///
/// All fields are counts of components at each level of the hierarchy
/// (channel → rank → bank group → bank → row → column). Column width is
/// expressed through [`DramGeometry::device_width_bits`] (bits transferred
/// per device per beat) and the rank-wide bus is
/// [`DramGeometry::bus_width_bits`] wide.
///
/// # Example
///
/// ```
/// use clr_core::geometry::DramGeometry;
/// let g = DramGeometry::ddr4_16gb_x8();
/// assert_eq!(g.banks_total(), 16);
/// assert_eq!(g.bus_width_bits, 64);
/// // One rank of x8 devices on a 64-bit bus is 8 devices.
/// assert_eq!(g.devices_per_rank(), 8);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DramGeometry {
    /// Independent memory channels.
    pub channels: u32,
    /// Ranks per channel (time-multiplexed on the channel bus).
    pub ranks: u32,
    /// Bank groups per rank (DDR4: typically 4 for x4/x8 devices).
    pub bank_groups: u32,
    /// Banks per bank group (DDR4: 4).
    pub banks_per_group: u32,
    /// Rows per bank.
    pub rows: u32,
    /// Columns per row, counted in bus-wide bursts-of-one (beats of the
    /// whole rank). A cache line of 64 B on a 64-bit bus occupies 8 columns.
    pub columns: u32,
    /// Data bits each device contributes per beat (x4/x8/x16).
    pub device_width_bits: u32,
    /// Width of the rank data bus in bits (64 for non-ECC DDR4).
    pub bus_width_bits: u32,
    /// Burst length in beats (DDR4: 8).
    pub burst_length: u32,
}

impl DramGeometry {
    /// Geometry used throughout the paper's evaluation (Table 2): 1 channel,
    /// 1 rank, 4 bank groups × 4 banks, 16 Gb x8 devices, 64-bit bus,
    /// BL8.
    ///
    /// Row/column counts follow a 16 Gb x8 DDR4 die (JESD79-4): 128 K rows
    /// per bank with a 1 KB device page; the rank-wide row buffer is
    /// therefore 8 KB and holds 128 cache lines of 64 B.
    pub fn ddr4_16gb_x8() -> Self {
        DramGeometry {
            channels: 1,
            ranks: 1,
            bank_groups: 4,
            banks_per_group: 4,
            rows: 128 * 1024,
            columns: 1024,
            device_width_bits: 8,
            bus_width_bits: 64,
            burst_length: 8,
        }
    }

    /// A deliberately tiny geometry for unit tests and examples: 2 bank
    /// groups × 2 banks, 64 rows, 64 columns.
    pub fn tiny() -> Self {
        DramGeometry {
            channels: 1,
            ranks: 1,
            bank_groups: 2,
            banks_per_group: 2,
            rows: 64,
            columns: 64,
            device_width_bits: 8,
            bus_width_bits: 64,
            burst_length: 8,
        }
    }

    /// Validates that every level is a nonzero power of two (required by the
    /// bit-slicing address mappings in [`crate::addr`]).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NotPowerOfTwo`] naming the first offending field.
    pub fn validate(&self) -> Result<(), CoreError> {
        let fields: [(&'static str, u64); 9] = [
            ("channels", self.channels as u64),
            ("ranks", self.ranks as u64),
            ("bank_groups", self.bank_groups as u64),
            ("banks_per_group", self.banks_per_group as u64),
            ("rows", self.rows as u64),
            ("columns", self.columns as u64),
            ("device_width_bits", self.device_width_bits as u64),
            ("bus_width_bits", self.bus_width_bits as u64),
            ("burst_length", self.burst_length as u64),
        ];
        for (what, got) in fields {
            if got == 0 || !got.is_power_of_two() {
                return Err(CoreError::NotPowerOfTwo { what, got });
            }
        }
        Ok(())
    }

    /// Total banks per rank.
    pub fn banks_total(&self) -> u32 {
        self.bank_groups * self.banks_per_group
    }

    /// The geometry of one channel of this system: identical at every
    /// level below the channel, with `channels = 1`.
    ///
    /// A channel-sharded memory system instantiates one controller per
    /// channel against this slice; [`crate::addr::AddressMapping::route`]
    /// converts a system-wide physical address into the `(channel,
    /// channel-local address)` pair the per-channel controller sees.
    pub fn channel_slice(&self) -> DramGeometry {
        DramGeometry {
            channels: 1,
            ..self.clone()
        }
    }

    /// Number of devices ganged into one rank.
    pub fn devices_per_rank(&self) -> u32 {
        self.bus_width_bits / self.device_width_bits
    }

    /// Bytes transferred by the rank per column access (one beat).
    pub fn bytes_per_column(&self) -> u64 {
        (self.bus_width_bits / 8) as u64
    }

    /// Bytes in one rank-wide row (the row buffer footprint).
    pub fn row_bytes(&self) -> u64 {
        self.columns as u64 * self.bytes_per_column()
    }

    /// Bytes moved by one full burst (a cache-line transfer on BL8/64-bit).
    pub fn burst_bytes(&self) -> u64 {
        self.burst_length as u64 * self.bytes_per_column()
    }

    /// Total capacity of the system in bytes with every row in max-capacity
    /// mode.
    pub fn capacity_bytes(&self) -> u64 {
        self.channels as u64
            * self.ranks as u64
            * self.banks_total() as u64
            * self.rows as u64
            * self.row_bytes()
    }

    /// log2 of the column count.
    pub fn column_bits(&self) -> u32 {
        self.columns.trailing_zeros()
    }

    /// log2 of the row count.
    pub fn row_bits(&self) -> u32 {
        self.rows.trailing_zeros()
    }

    /// log2 of banks per group.
    pub fn bank_bits(&self) -> u32 {
        self.banks_per_group.trailing_zeros()
    }

    /// log2 of the bank-group count.
    pub fn bank_group_bits(&self) -> u32 {
        self.bank_groups.trailing_zeros()
    }

    /// log2 of the rank count.
    pub fn rank_bits(&self) -> u32 {
        self.ranks.trailing_zeros()
    }

    /// log2 of the channel count.
    pub fn channel_bits(&self) -> u32 {
        self.channels.trailing_zeros()
    }

    /// log2 of bytes per column (the intra-column offset width).
    pub fn offset_bits(&self) -> u32 {
        (self.bytes_per_column() as u32).trailing_zeros()
    }

    /// Total address bits consumed by the mapping.
    pub fn addr_bits(&self) -> u32 {
        self.offset_bits()
            + self.column_bits()
            + self.row_bits()
            + self.bank_bits()
            + self.bank_group_bits()
            + self.rank_bits()
            + self.channel_bits()
    }
}

impl Default for DramGeometry {
    fn default() -> Self {
        Self::ddr4_16gb_x8()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometry_capacity_is_16gib() {
        // 1 rank of 16 Gb x8 devices on a 64-bit bus = 8 devices = 16 GiB.
        let g = DramGeometry::ddr4_16gb_x8();
        g.validate().unwrap();
        assert_eq!(g.capacity_bytes(), 16 * (1 << 30));
    }

    #[test]
    fn row_buffer_is_8kib() {
        let g = DramGeometry::ddr4_16gb_x8();
        assert_eq!(g.row_bytes(), 8192);
        assert_eq!(g.burst_bytes(), 64); // one cache line per burst
    }

    #[test]
    fn addr_bits_cover_capacity() {
        let g = DramGeometry::ddr4_16gb_x8();
        assert_eq!(1u64 << g.addr_bits(), g.capacity_bytes());
        let t = DramGeometry::tiny();
        assert_eq!(1u64 << t.addr_bits(), t.capacity_bytes());
    }

    #[test]
    fn validate_rejects_non_power_of_two() {
        let mut g = DramGeometry::tiny();
        g.rows = 3;
        assert_eq!(
            g.validate(),
            Err(CoreError::NotPowerOfTwo {
                what: "rows",
                got: 3
            })
        );
        g.rows = 0;
        assert!(g.validate().is_err());
    }

    #[test]
    fn tiny_is_valid() {
        DramGeometry::tiny().validate().unwrap();
    }
}
