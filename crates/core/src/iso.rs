//! Bitline mode select transistor control (§3.1–§3.3, Figures 4–6).
//!
//! CLR-DRAM adds two isolation transistors to every bitline of a subarray:
//!
//! * **Type 1** (red in Figure 4) replaces the existing bitline → SA
//!   connection, and
//! * **Type 2** (blue) connects the previously *unconnected* far end of a
//!   bitline to the SA on the opposite side.
//!
//! Two per-bank control signals, `ISO1` and `ISO2` (plus complements),
//! drive all Type 1/Type 2 transistors. To avoid extra wiring the signal
//! assignment alternates with subarray parity (§3.3):
//!
//! | subarray | Type 1 driven by | Type 2 driven by |
//! |----------|------------------|------------------|
//! | odd      | `ISO1`           | `ISO2`           |
//! | even     | `!ISO2`          | `!ISO1`          |
//!
//! This module models that control logic and the resulting cell ↔ SA
//! connectivity so the rest of the system (and the circuit simulator) can
//! derive topologies from first principles, with invariants property-tested
//! against the paper's figures.

use crate::mode::RowMode;

/// Parity of a subarray's index within its bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SubarrayParity {
    /// Even-numbered subarray (0, 2, 4, ...).
    Even,
    /// Odd-numbered subarray (1, 3, 5, ...).
    Odd,
}

impl SubarrayParity {
    /// Parity of subarray index `i`.
    pub fn of(i: u32) -> Self {
        if i.is_multiple_of(2) {
            SubarrayParity::Even
        } else {
            SubarrayParity::Odd
        }
    }

    /// The opposite parity (the neighbors of a subarray).
    pub fn neighbor(self) -> Self {
        match self {
            SubarrayParity::Even => SubarrayParity::Odd,
            SubarrayParity::Odd => SubarrayParity::Even,
        }
    }
}

/// Logic levels of the two per-bank isolation control signals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IsoSignals {
    /// Level of `ISO1` (true = asserted high).
    pub iso1: bool,
    /// Level of `ISO2`.
    pub iso2: bool,
}

impl IsoSignals {
    /// Signal levels the control circuitry drives to access a row in
    /// `mode` located in a subarray of the given `parity` (Figure 6):
    ///
    /// * max-capacity (either parity): `ISO1 = H`, `ISO2 = L`;
    /// * high-performance, odd subarray: `ISO1 = H`, `ISO2 = H`;
    /// * high-performance, even subarray: `ISO1 = L`, `ISO2 = L`.
    pub fn for_access(mode: RowMode, parity: SubarrayParity) -> Self {
        match (mode, parity) {
            (RowMode::MaxCapacity, _) => IsoSignals {
                iso1: true,
                iso2: false,
            },
            (RowMode::HighPerformance, SubarrayParity::Odd) => IsoSignals {
                iso1: true,
                iso2: true,
            },
            (RowMode::HighPerformance, SubarrayParity::Even) => IsoSignals {
                iso1: false,
                iso2: false,
            },
        }
    }
}

/// Enable state of the two transistor types within one subarray.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TransistorStates {
    /// Type 1 (bitline near-end ↔ its own SA) enabled.
    pub type1: bool,
    /// Type 2 (bitline far-end ↔ the opposite SA) enabled.
    pub type2: bool,
}

impl TransistorStates {
    /// Applies the alternating signal assignment of §3.3 to derive the
    /// transistor states in a subarray of the given parity.
    pub fn from_signals(signals: IsoSignals, parity: SubarrayParity) -> Self {
        match parity {
            SubarrayParity::Odd => TransistorStates {
                type1: signals.iso1,
                type2: signals.iso2,
            },
            SubarrayParity::Even => TransistorStates {
                type1: !signals.iso2,
                type2: !signals.iso1,
            },
        }
    }
}

/// Electrical topology of a subarray implied by its transistor states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SubarrayTopology {
    /// Open-bitline equivalent: each cell column connects to its own SA
    /// (Type 1 on, Type 2 off). This is max-capacity mode and also the
    /// state of neighbor subarrays during a max-capacity access.
    OpenBitline,
    /// Coupled: every two adjacent columns and their two SAs form one
    /// logical cell/SA (both transistor types on) — high-performance mode.
    Coupled,
    /// Fully isolated from the sense amplifiers (both types off) — the
    /// state of neighbor subarrays during a high-performance access, which
    /// keeps their bitline capacitance off the shared SAs.
    Disconnected,
    /// Type 1 off with Type 2 on: electrically legal but never used by the
    /// §3.3 control logic; flagged so invariants can reject it.
    Reversed,
}

impl SubarrayTopology {
    /// Classifies transistor states into a topology.
    pub fn from_states(states: TransistorStates) -> Self {
        match (states.type1, states.type2) {
            (true, false) => SubarrayTopology::OpenBitline,
            (true, true) => SubarrayTopology::Coupled,
            (false, false) => SubarrayTopology::Disconnected,
            (false, true) => SubarrayTopology::Reversed,
        }
    }

    /// Convenience: topology of the subarray being accessed plus its
    /// neighbors for a row access in `mode` in a subarray of `parity`.
    ///
    /// Returns `(accessed, neighbor)` topologies.
    pub fn for_access(mode: RowMode, parity: SubarrayParity) -> (Self, Self) {
        let signals = IsoSignals::for_access(mode, parity);
        let here = Self::from_states(TransistorStates::from_signals(signals, parity));
        let neighbor =
            Self::from_states(TransistorStates::from_signals(signals, parity.neighbor()));
        (here, neighbor)
    }
}

/// Which side of the subarray an SA sits on (open-bitline architecture
/// places SAs on alternating sides; Figure 2a).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SaSide {
    /// SA above the subarray.
    Top,
    /// SA below the subarray.
    Bottom,
}

/// Side of the SA serving column `col` (even columns → top, odd → bottom,
/// matching Figure 4a where cell A/SA1 are top and cell B/SA2 bottom).
pub fn sa_side(col: u32) -> SaSide {
    if col.is_multiple_of(2) {
        SaSide::Top
    } else {
        SaSide::Bottom
    }
}

/// Connectivity of cells to sense amplifiers in one row of a subarray.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RowConnectivity {
    /// Each physical cell `i` is sensed by its own SA `i`.
    Individual {
        /// Number of physical cells (= columns = SAs).
        cells: u32,
    },
    /// Cells `2k`/`2k+1` couple into logical cell `k`, driven by SAs `2k`
    /// and `2k+1` acting as one logical SA.
    CoupledPairs {
        /// Number of logical cells (= physical cells / 2).
        logical_cells: u32,
    },
    /// No cell is connected to any SA.
    Isolated,
}

impl RowConnectivity {
    /// Derives row connectivity from a topology for a row of
    /// `physical_cells` columns.
    ///
    /// # Panics
    ///
    /// Panics if `physical_cells` is odd and the topology is coupled (the
    /// open-bitline array always has an even column count) or if the
    /// topology is [`SubarrayTopology::Reversed`], which the control logic
    /// never produces.
    pub fn from_topology(topology: SubarrayTopology, physical_cells: u32) -> Self {
        match topology {
            SubarrayTopology::OpenBitline => RowConnectivity::Individual {
                cells: physical_cells,
            },
            SubarrayTopology::Coupled => {
                assert!(
                    physical_cells.is_multiple_of(2),
                    "coupled operation requires an even column count"
                );
                RowConnectivity::CoupledPairs {
                    logical_cells: physical_cells / 2,
                }
            }
            SubarrayTopology::Disconnected => RowConnectivity::Isolated,
            SubarrayTopology::Reversed => {
                panic!("reversed topology is never produced by the ISO control logic")
            }
        }
    }

    /// Bits of data this row can store.
    pub fn stored_bits(&self) -> u32 {
        match self {
            RowConnectivity::Individual { cells } => *cells,
            RowConnectivity::CoupledPairs { logical_cells } => *logical_cells,
            RowConnectivity::Isolated => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_capacity_access_is_open_bitline_everywhere() {
        for parity in [SubarrayParity::Even, SubarrayParity::Odd] {
            let (here, neighbor) = SubarrayTopology::for_access(RowMode::MaxCapacity, parity);
            assert_eq!(here, SubarrayTopology::OpenBitline);
            assert_eq!(neighbor, SubarrayTopology::OpenBitline);
        }
    }

    #[test]
    fn high_performance_access_couples_here_and_isolates_neighbors() {
        for parity in [SubarrayParity::Even, SubarrayParity::Odd] {
            let (here, neighbor) = SubarrayTopology::for_access(RowMode::HighPerformance, parity);
            assert_eq!(here, SubarrayTopology::Coupled, "parity {parity:?}");
            assert_eq!(
                neighbor,
                SubarrayTopology::Disconnected,
                "parity {parity:?}"
            );
        }
    }

    #[test]
    fn figure6_signal_levels() {
        // Max-capacity: ISO1=H, ISO2=L for both parities.
        let s = IsoSignals::for_access(RowMode::MaxCapacity, SubarrayParity::Odd);
        assert_eq!(
            s,
            IsoSignals {
                iso1: true,
                iso2: false
            }
        );
        // HP odd: both high; HP even: both low.
        let s = IsoSignals::for_access(RowMode::HighPerformance, SubarrayParity::Odd);
        assert_eq!(
            s,
            IsoSignals {
                iso1: true,
                iso2: true
            }
        );
        let s = IsoSignals::for_access(RowMode::HighPerformance, SubarrayParity::Even);
        assert_eq!(
            s,
            IsoSignals {
                iso1: false,
                iso2: false
            }
        );
    }

    #[test]
    fn reversed_topology_never_reachable() {
        for mode in [RowMode::MaxCapacity, RowMode::HighPerformance] {
            for parity in [SubarrayParity::Even, SubarrayParity::Odd] {
                let (here, neighbor) = SubarrayTopology::for_access(mode, parity);
                assert_ne!(here, SubarrayTopology::Reversed);
                assert_ne!(neighbor, SubarrayTopology::Reversed);
            }
        }
    }

    #[test]
    fn coupled_row_stores_half_the_bits() {
        let open = RowConnectivity::from_topology(SubarrayTopology::OpenBitline, 1024);
        let coupled = RowConnectivity::from_topology(SubarrayTopology::Coupled, 1024);
        assert_eq!(open.stored_bits(), 1024);
        assert_eq!(coupled.stored_bits(), 512);
        assert_eq!(
            RowConnectivity::from_topology(SubarrayTopology::Disconnected, 1024).stored_bits(),
            0
        );
    }

    #[test]
    fn sa_sides_alternate() {
        assert_eq!(sa_side(0), SaSide::Top);
        assert_eq!(sa_side(1), SaSide::Bottom);
        assert_eq!(sa_side(2), SaSide::Top);
    }

    #[test]
    fn parity_helpers() {
        assert_eq!(SubarrayParity::of(0), SubarrayParity::Even);
        assert_eq!(SubarrayParity::of(7), SubarrayParity::Odd);
        assert_eq!(SubarrayParity::Even.neighbor(), SubarrayParity::Odd);
    }
}
