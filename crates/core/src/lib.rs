//! Core architecture model for **CLR-DRAM** (Capacity-Latency-Reconfigurable
//! DRAM), the ISCA 2020 proposal by Luo et al.
//!
//! CLR-DRAM extends a density-optimized open-bitline DRAM with *bitline mode
//! select* isolation transistors so that **any row** can be dynamically
//! reconfigured between two operating modes:
//!
//! * [`RowMode::MaxCapacity`] — every cell and sense amplifier (SA) operates
//!   individually, matching commodity density, and
//! * [`RowMode::HighPerformance`] — every two adjacent cells in the row and
//!   their two SAs couple into a single low-latency logical cell driven by a
//!   single, stronger logical SA, halving row capacity but dramatically
//!   reducing tRCD, tRAS, tRP, tWR, and refresh cost.
//!
//! This crate holds the *architectural* model shared by the whole
//! reproduction:
//!
//! * [`geometry`] — DRAM organization (channels/ranks/bank groups/banks/
//!   rows/columns) and capacity math,
//! * [`addr`] — physical-address ↔ DRAM-coordinate interleaving schemes,
//! * [`timing`] — nanosecond timing-parameter sets for each operating mode,
//!   including the early-termination and extended-refresh variants,
//! * [`mode`] — per-row operating-mode tables kept by the memory controller,
//! * [`iso`] — the ISO1/ISO2 isolation-transistor control model of §3.3 and
//!   the cell/SA connectivity it produces,
//! * [`mapping`] — the profile-guided hot-page → high-performance-row
//!   placement policy used by the paper's evaluation,
//! * [`capacity`] — capacity/area overhead accounting of §6,
//! * [`refresh`] — heterogeneous refresh planning of §3.6/§5.2,
//! * [`paper`] — published reference numbers used for comparison output.
//!
//! # Example
//!
//! ```
//! use clr_core::geometry::DramGeometry;
//! use clr_core::mode::{ModeTable, RowMode};
//! use clr_core::timing::ClrTimings;
//!
//! let geom = DramGeometry::ddr4_16gb_x8();
//! let mut modes = ModeTable::new(&geom);
//! // Reconfigure the hottest quarter of each bank's rows for low latency.
//! modes.set_fraction_high_performance(0.25);
//! assert!((modes.fraction_high_performance() - 0.25).abs() < 1e-3);
//!
//! let timings = ClrTimings::from_circuit_defaults();
//! let hp = timings.for_mode(RowMode::HighPerformance);
//! let base = timings.baseline();
//! assert!(hp.t_rcd_ns < 0.5 * base.t_rcd_ns);
//! ```
//!
//! [`RowMode::MaxCapacity`]: mode::RowMode::MaxCapacity
//! [`RowMode::HighPerformance`]: mode::RowMode::HighPerformance

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod addr;
pub mod capacity;
pub mod error;
pub mod geometry;
pub mod iso;
pub mod mapping;
pub mod mode;
pub mod paper;
pub mod refresh;
pub mod timing;

pub use addr::{AddressMapping, DramAddr, PhysAddr};
pub use error::CoreError;
pub use geometry::DramGeometry;
pub use mode::{ModeTable, RowMode};
pub use timing::{ClrTimings, TimingParams};
