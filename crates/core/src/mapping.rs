//! Profile-guided page placement: mapping hot pages to high-performance
//! rows (§8.1 "CLR-DRAM Data Mapping").
//!
//! The paper's evaluation configures X % of all DRAM rows as
//! high-performance rows and maps the X % *most frequently accessed* pages
//! of each workload into them, mimicking the profiling-based placement of
//! CHARM and TL-DRAM. With a row-major interleaving the high-performance
//! region is the low-row-index prefix of every bank, which corresponds to a
//! contiguous prefix of the physical address space; page placement then
//! reduces to a page-granularity translation table.

use std::collections::HashMap;

use crate::addr::PhysAddr;
use crate::error::CoreError;
use crate::geometry::DramGeometry;

/// Default OS page size used throughout the evaluation.
pub const PAGE_BYTES: u64 = 4096;

/// Per-page access-count profile of a workload.
///
/// Collected by a first (functional) pass over the trace; consumed by
/// [`PagePlacement::profile_guided`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PageProfile {
    counts: HashMap<u64, u64>,
}

impl PageProfile {
    /// Creates an empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one access to the page containing `addr`.
    pub fn record(&mut self, addr: PhysAddr) {
        *self.counts.entry(addr.page(PAGE_BYTES)).or_insert(0) += 1;
    }

    /// Number of distinct pages touched.
    pub fn pages_touched(&self) -> usize {
        self.counts.len()
    }

    /// Total recorded accesses.
    pub fn total_accesses(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Pages sorted by descending access count (ties broken by page number
    /// for determinism).
    pub fn pages_by_heat(&self) -> Vec<(u64, u64)> {
        let mut v: Vec<(u64, u64)> = self.counts.iter().map(|(&p, &c)| (p, c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// Fraction of all accesses covered by the hottest `fraction` of pages
    /// — the §8.2 scaling analysis (e.g. 462.libquantum's top 25 % of pages
    /// cover 26.4 % of accesses; 450.soplex's cover 85.2 %).
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not within `0.0..=1.0`.
    pub fn access_coverage(&self, fraction: f64) -> f64 {
        assert!((0.0..=1.0).contains(&fraction));
        let total = self.total_accesses();
        if total == 0 {
            return 0.0;
        }
        let by_heat = self.pages_by_heat();
        let take = (by_heat.len() as f64 * fraction).round() as usize;
        let covered: u64 = by_heat.iter().take(take).map(|&(_, c)| c).sum();
        covered as f64 / total as f64
    }
}

/// A page-granularity translation from workload (virtual) pages to
/// physical frames, placing hot pages in the high-performance region.
///
/// Frames `[0, hp_frames)` lie in high-performance rows; frames
/// `[hp_frames, total_frames)` lie in max-capacity rows. Pages never seen
/// during profiling are assigned frames on demand from the max-capacity
/// region first (cold data should not consume fast frames), falling back to
/// remaining fast frames.
#[derive(Debug, Clone)]
pub struct PagePlacement {
    table: HashMap<u64, u64>,
    /// Usable frames inside the high-performance region (half its nominal
    /// capacity).
    hp_frames: u64,
    /// Nominal frames spanned by the high-performance rows; cold
    /// allocation starts beyond this boundary.
    hp_region_frames: u64,
    total_frames: u64,
    next_cold: u64,
    next_hot: u64,
}

impl PagePlacement {
    /// Identity placement: every page maps to the frame with its own
    /// number. Used for the all-max-capacity baseline.
    pub fn identity(geometry: &DramGeometry) -> Self {
        PagePlacement {
            table: HashMap::new(),
            hp_frames: 0,
            hp_region_frames: 0,
            total_frames: geometry.capacity_bytes() / PAGE_BYTES,
            next_cold: 0,
            next_hot: 0,
        }
    }

    /// Builds a profile-guided placement.
    ///
    /// * `profile` — page heat from a profiling pass;
    /// * `fraction_hp_rows` — X, the fraction of rows configured as
    ///   high-performance; the hottest pages are packed into the fast
    ///   region in heat order.
    ///
    /// The fast region spans the first `fraction_hp_rows` of the physical
    /// address space (row-major interleaving). High-performance rows hold
    /// half the data of a max-capacity row, so the *usable* fast frames are
    /// half of the region's nominal frames; the placement accounts for
    /// that, exactly like the paper's footnote 2 (½ · 2^X pages per row
    /// group).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidFraction`] if `fraction_hp_rows` is
    /// outside `0.0..=1.0`.
    pub fn profile_guided(
        profile: &PageProfile,
        fraction_hp_rows: f64,
        geometry: &DramGeometry,
    ) -> Result<Self, CoreError> {
        if !(0.0..=1.0).contains(&fraction_hp_rows) {
            return Err(CoreError::InvalidFraction {
                got: fraction_hp_rows,
            });
        }
        let total_frames = geometry.capacity_bytes() / PAGE_BYTES;
        // Usable fast frames: half the nominal capacity of the HP region
        // (coupled cells halve density). Cold pages must skip the *whole*
        // region spanned by high-performance rows — frames between
        // `hp_frames` and `hp_region_frames` are capacity lost to
        // coupling, and frames beyond map to max-capacity rows.
        let hp_region_frames = (total_frames as f64 * fraction_hp_rows).ceil() as u64;
        let hp_frames = hp_region_frames / 2;
        let mut this = PagePlacement {
            table: HashMap::new(),
            hp_frames,
            hp_region_frames,
            total_frames,
            next_cold: hp_region_frames,
            next_hot: 0,
        };
        let ranked = profile.pages_by_heat();
        let hot_target = (ranked.len() as f64 * fraction_hp_rows).round() as usize;
        for (i, (page, _)) in ranked.into_iter().enumerate() {
            let frame = if i < hot_target && this.next_hot < hp_frames {
                let f = this.next_hot;
                this.next_hot += 1;
                f
            } else {
                this.alloc_cold()?
            };
            this.table.insert(page, frame);
        }
        Ok(this)
    }

    fn alloc_cold(&mut self) -> Result<u64, CoreError> {
        if self.next_cold < self.total_frames {
            let f = self.next_cold;
            self.next_cold += 1;
            Ok(f)
        } else if self.next_hot < self.hp_frames {
            // Cold region exhausted; spill into remaining fast frames.
            let f = self.next_hot;
            self.next_hot += 1;
            Ok(f)
        } else {
            Err(CoreError::PlacementOverflow {
                requested: self.table.len() + 1,
                available: self.total_frames as usize,
            })
        }
    }

    /// Translates a workload address through the placement. Pages not seen
    /// during profiling are allocated a cold frame on first touch.
    pub fn translate(&mut self, addr: PhysAddr) -> PhysAddr {
        let page = addr.page(PAGE_BYTES);
        let offset = addr.0 % PAGE_BYTES;
        let frame = match self.table.get(&page) {
            Some(&f) => f,
            None => {
                let f = self.alloc_cold().unwrap_or(page % self.total_frames);
                self.table.insert(page, f);
                f
            }
        };
        PhysAddr(frame * PAGE_BYTES + offset)
    }

    /// Number of usable frames in the high-performance region.
    pub fn hp_frames(&self) -> u64 {
        self.hp_frames
    }

    /// Whether a *translated* physical address falls in the
    /// high-performance region (i.e. maps to high-performance rows).
    pub fn is_fast(&self, translated: PhysAddr) -> bool {
        translated.page(PAGE_BYTES) < self.hp_region_frames
    }

    /// Number of pages with an assigned frame.
    pub fn mapped_pages(&self) -> usize {
        self.table.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile_with(counts: &[(u64, u64)]) -> PageProfile {
        let mut p = PageProfile::new();
        for &(page, count) in counts {
            for _ in 0..count {
                p.record(PhysAddr(page * PAGE_BYTES));
            }
        }
        p
    }

    #[test]
    fn profile_ranks_by_heat() {
        let p = profile_with(&[(1, 5), (2, 10), (3, 1)]);
        assert_eq!(p.pages_by_heat()[0].0, 2);
        assert_eq!(p.pages_touched(), 3);
        assert_eq!(p.total_accesses(), 16);
    }

    #[test]
    fn coverage_of_skewed_profile() {
        // One page with 85 accesses among 4 pages: top 25% covers 85%.
        let p = profile_with(&[(0, 85), (1, 5), (2, 5), (3, 5)]);
        assert!((p.access_coverage(0.25) - 0.85).abs() < 1e-9);
        assert!((p.access_coverage(1.0) - 1.0).abs() < 1e-9);
        assert_eq!(p.access_coverage(0.0), 0.0);
    }

    #[test]
    fn hot_pages_land_in_fast_frames() {
        let g = DramGeometry::tiny();
        let p = profile_with(&[(10, 100), (20, 50), (30, 2), (40, 1)]);
        let mut placement = PagePlacement::profile_guided(&p, 0.5, &g).unwrap();
        // Hottest half of pages (10, 20) must be in the fast region.
        for (page, fast) in [(10u64, true), (20, true), (30, false), (40, false)] {
            let t = placement.translate(PhysAddr(page * PAGE_BYTES));
            assert_eq!(placement.is_fast(t), fast, "page {page}");
        }
    }

    #[test]
    fn zero_fraction_uses_no_fast_frames() {
        let g = DramGeometry::tiny();
        let p = profile_with(&[(1, 10), (2, 5)]);
        let mut placement = PagePlacement::profile_guided(&p, 0.0, &g).unwrap();
        assert_eq!(placement.hp_frames(), 0);
        let t = placement.translate(PhysAddr(PAGE_BYTES));
        assert!(!placement.is_fast(t));
    }

    #[test]
    fn translation_preserves_offset_and_is_stable() {
        let g = DramGeometry::tiny();
        let p = profile_with(&[(3, 10)]);
        let mut placement = PagePlacement::profile_guided(&p, 0.25, &g).unwrap();
        let a = placement.translate(PhysAddr(3 * PAGE_BYTES + 123));
        let b = placement.translate(PhysAddr(3 * PAGE_BYTES + 123));
        assert_eq!(a, b);
        assert_eq!(a.0 % PAGE_BYTES, 123);
    }

    #[test]
    fn unseen_pages_get_cold_frames() {
        let g = DramGeometry::tiny();
        let p = profile_with(&[(1, 10)]);
        let mut placement = PagePlacement::profile_guided(&p, 0.5, &g).unwrap();
        let t = placement.translate(PhysAddr(99 * PAGE_BYTES));
        assert!(!placement.is_fast(t));
    }

    #[test]
    fn invalid_fraction_is_rejected() {
        let g = DramGeometry::tiny();
        let p = PageProfile::new();
        assert!(matches!(
            PagePlacement::profile_guided(&p, 1.5, &g),
            Err(CoreError::InvalidFraction { .. })
        ));
    }

    #[test]
    fn fast_region_respects_halved_capacity() {
        let g = DramGeometry::tiny();
        let total_frames = g.capacity_bytes() / PAGE_BYTES;
        let p = PageProfile::new();
        let placement = PagePlacement::profile_guided(&p, 1.0, &g).unwrap();
        // All rows HP → only half the nominal frames are usable.
        assert_eq!(placement.hp_frames(), total_frames / 2);
    }
}
