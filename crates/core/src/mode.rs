//! Per-row operating-mode state kept by the memory controller (§6.2).
//!
//! CLR-DRAM reconfigures rows at activation time, so the controller must
//! know each row's mode to apply the correct timing parameters and refresh
//! schedule. [`ModeTable`] is that structure: conceptually one bit per row
//! per bank (the paper notes it can be compressed when the reconfiguration
//! granularity exceeds one row).

use std::sync::Arc;

use crate::geometry::DramGeometry;

/// Operating mode of a single DRAM row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RowMode {
    /// Every cell/SA operates individually: full density, baseline-like
    /// latency (Figure 1b).
    #[default]
    MaxCapacity,
    /// Adjacent cell pairs and their two SAs couple into low-latency
    /// logical cells: half density, reduced tRCD/tRAS/tRP/tWR and cheaper
    /// refresh (Figure 1c).
    HighPerformance,
}

impl RowMode {
    /// Human-readable label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            RowMode::MaxCapacity => "max-capacity",
            RowMode::HighPerformance => "high-performance",
        }
    }
}

impl std::fmt::Display for RowMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Per-bank, per-row operating-mode table.
///
/// Storage is one bit per row (a `u64` bitmap chunked per bank), matching
/// the unoptimized controller cost the paper quotes in §6.2. Rows default
/// to [`RowMode::MaxCapacity`].
///
/// # Copy-on-write
///
/// Each bank's bitmap lives behind an [`Arc`], so `Clone` is O(banks)
/// reference-count bumps instead of a bitmap copy — taking a snapshot of
/// the live table (tests mirroring the controller, sweep reporting,
/// policy baselines) is effectively free. The first [`ModeTable::set`]
/// that lands on a bank whose bitmap is still shared re-materialises just
/// that bank's words; unshared tables mutate in place with no overhead.
///
/// # Example
///
/// ```
/// use clr_core::geometry::DramGeometry;
/// use clr_core::mode::{ModeTable, RowMode};
///
/// let g = DramGeometry::tiny();
/// let mut t = ModeTable::new(&g);
/// t.set(0, 3, RowMode::HighPerformance);
/// assert_eq!(t.mode_of(0, 3), RowMode::HighPerformance);
/// assert_eq!(t.mode_of(0, 4), RowMode::MaxCapacity);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModeTable {
    rows_per_bank: u32,
    banks: u32,
    /// One copy-on-write bitmap per flat bank; bit set = high-performance.
    bitmaps: Vec<Arc<Vec<u64>>>,
    hp_count: u64,
}

impl ModeTable {
    /// Creates a table for the given geometry with every row in
    /// max-capacity mode.
    pub fn new(geometry: &DramGeometry) -> Self {
        let banks = geometry.channels * geometry.ranks * geometry.banks_total();
        let words = geometry.rows.div_ceil(64) as usize;
        // Sharing one all-zero bitmap across every bank is deliberate:
        // copy-on-write splits a bank off on its first real mode flip.
        #[allow(clippy::rc_clone_in_vec_init)]
        let bitmaps = vec![Arc::new(vec![0u64; words]); banks as usize];
        ModeTable {
            rows_per_bank: geometry.rows,
            banks,
            bitmaps,
            hp_count: 0,
        }
    }

    /// Number of rows tracked per bank.
    pub fn rows_per_bank(&self) -> u32 {
        self.rows_per_bank
    }

    /// Number of flat banks tracked.
    pub fn banks(&self) -> u32 {
        self.banks
    }

    /// Returns the mode of `row` in `flat_bank`.
    ///
    /// # Panics
    ///
    /// Panics if `flat_bank` or `row` is out of range.
    pub fn mode_of(&self, flat_bank: usize, row: u32) -> RowMode {
        assert!(row < self.rows_per_bank, "row {row} out of range");
        let word = self.bitmaps[flat_bank][(row / 64) as usize];
        if word >> (row % 64) & 1 == 1 {
            RowMode::HighPerformance
        } else {
            RowMode::MaxCapacity
        }
    }

    /// Sets the mode of `row` in `flat_bank`, returning the previous mode.
    ///
    /// # Panics
    ///
    /// Panics if `flat_bank` or `row` is out of range.
    pub fn set(&mut self, flat_bank: usize, row: u32, mode: RowMode) -> RowMode {
        assert!(row < self.rows_per_bank, "row {row} out of range");
        let bit = 1u64 << (row % 64);
        let word_idx = (row / 64) as usize;
        let was_hp = self.bitmaps[flat_bank][word_idx] & bit != 0;
        // Copy-on-write: only materialise a private bitmap if the mode
        // actually flips (the common no-op `set` stays allocation-free
        // even on shared storage).
        match mode {
            RowMode::HighPerformance => {
                if !was_hp {
                    Arc::make_mut(&mut self.bitmaps[flat_bank])[word_idx] |= bit;
                    self.hp_count += 1;
                }
            }
            RowMode::MaxCapacity => {
                if was_hp {
                    Arc::make_mut(&mut self.bitmaps[flat_bank])[word_idx] &= !bit;
                    self.hp_count -= 1;
                }
            }
        }
        if was_hp {
            RowMode::HighPerformance
        } else {
            RowMode::MaxCapacity
        }
    }

    /// Configures the first `fraction` of each bank's rows as
    /// high-performance and the rest as max-capacity — the contiguous
    /// low-latency region layout used by the paper's profile-guided data
    /// mapping (§8.1).
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not within `0.0..=1.0`.
    pub fn set_fraction_high_performance(&mut self, fraction: f64) {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "fraction {fraction} not within 0.0..=1.0"
        );
        let hp_rows = (self.rows_per_bank as f64 * fraction).round() as u32;
        // Every bank gets the identical prefix bitmap: build it once and
        // share it across all banks (copy-on-write splits later setters).
        let words = self.bitmaps.first().map_or(0, |b| b.len());
        let mut prefix = vec![0u64; words];
        for row in 0..hp_rows {
            prefix[(row / 64) as usize] |= 1u64 << (row % 64);
        }
        let prefix = Arc::new(prefix);
        for bank in self.bitmaps.iter_mut() {
            *bank = Arc::clone(&prefix);
        }
        self.hp_count = hp_rows as u64 * self.banks as u64;
    }

    /// First row of each bank that is *not* high-performance under the
    /// contiguous layout, i.e. the size of the low-latency region.
    pub fn hp_rows_per_bank(&self) -> u32 {
        (self.hp_count / self.banks as u64) as u32
    }

    /// Total high-performance rows across all banks.
    pub fn high_performance_rows(&self) -> u64 {
        self.hp_count
    }

    /// Fraction of all rows currently in high-performance mode.
    pub fn fraction_high_performance(&self) -> f64 {
        self.hp_count as f64 / (self.rows_per_bank as u64 * self.banks as u64) as f64
    }

    /// Storage cost of the unoptimized table in bits (§6.2): one bit per
    /// row per bank.
    pub fn storage_bits(&self) -> u64 {
        self.rows_per_bank as u64 * self.banks as u64
    }

    /// Whether `self` and `other` currently share bank `bank`'s bitmap
    /// storage — a copy-on-write diagnostic (cloned tables share until
    /// one side's mode actually flips).
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    pub fn shares_bank_storage(&self, other: &ModeTable, bank: usize) -> bool {
        Arc::ptr_eq(&self.bitmaps[bank], &other.bitmaps[bank])
    }

    /// Iterates every high-performance row as `(flat_bank, row)`, in
    /// `(bank, row)` order. Runs over the bitmap words, so cost is
    /// proportional to table size ÷ 64 plus the number of set rows —
    /// cheap enough for a policy runtime to call every epoch.
    pub fn iter_high_performance(&self) -> impl Iterator<Item = (usize, u32)> + '_ {
        self.bitmaps
            .iter()
            .enumerate()
            .flat_map(move |(bank, words)| {
                let rows = self.rows_per_bank;
                words.iter().enumerate().flat_map(move |(wi, &w)| {
                    let mut w = w;
                    std::iter::from_fn(move || {
                        if w == 0 {
                            return None;
                        }
                        let bit = w.trailing_zeros();
                        w &= w - 1;
                        Some(wi as u32 * 64 + bit)
                    })
                    .filter(move |&row| row < rows)
                    .map(move |row| (bank, row))
                })
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_all_max_capacity() {
        let t = ModeTable::new(&DramGeometry::tiny());
        assert_eq!(t.high_performance_rows(), 0);
        assert_eq!(t.mode_of(0, 0), RowMode::MaxCapacity);
        assert_eq!(t.fraction_high_performance(), 0.0);
    }

    #[test]
    fn set_and_get_roundtrip() {
        let g = DramGeometry::tiny();
        let mut t = ModeTable::new(&g);
        assert_eq!(t.set(2, 63, RowMode::HighPerformance), RowMode::MaxCapacity);
        assert_eq!(t.mode_of(2, 63), RowMode::HighPerformance);
        assert_eq!(t.high_performance_rows(), 1);
        // Setting the same mode twice is idempotent.
        assert_eq!(
            t.set(2, 63, RowMode::HighPerformance),
            RowMode::HighPerformance
        );
        assert_eq!(t.high_performance_rows(), 1);
        assert_eq!(t.set(2, 63, RowMode::MaxCapacity), RowMode::HighPerformance);
        assert_eq!(t.high_performance_rows(), 0);
    }

    #[test]
    fn fraction_layout_is_contiguous_prefix() {
        let g = DramGeometry::tiny();
        let mut t = ModeTable::new(&g);
        t.set_fraction_high_performance(0.25);
        let hp_rows = (g.rows as f64 * 0.25).round() as u32;
        for bank in 0..t.banks() as usize {
            for row in 0..g.rows {
                let expect = if row < hp_rows {
                    RowMode::HighPerformance
                } else {
                    RowMode::MaxCapacity
                };
                assert_eq!(t.mode_of(bank, row), expect, "bank {bank} row {row}");
            }
        }
        assert!((t.fraction_high_performance() - 0.25).abs() < 1e-6);
        assert_eq!(t.hp_rows_per_bank(), hp_rows);
    }

    #[test]
    fn fraction_reconfiguration_replaces_previous_layout() {
        let g = DramGeometry::tiny();
        let mut t = ModeTable::new(&g);
        t.set_fraction_high_performance(1.0);
        assert!((t.fraction_high_performance() - 1.0).abs() < 1e-9);
        t.set_fraction_high_performance(0.0);
        assert_eq!(t.high_performance_rows(), 0);
    }

    #[test]
    fn storage_cost_matches_one_bit_per_row() {
        let g = DramGeometry::ddr4_16gb_x8();
        let t = ModeTable::new(&g);
        assert_eq!(t.storage_bits(), g.rows as u64 * g.banks_total() as u64);
        // 128 K rows × 16 banks = 2 Mbit = 256 KiB of controller state.
        assert_eq!(t.storage_bits(), 2 * 1024 * 1024);
    }

    #[test]
    fn hp_iterator_matches_lookups() {
        let g = DramGeometry::tiny();
        let mut t = ModeTable::new(&g);
        t.set(0, 0, RowMode::HighPerformance);
        t.set(1, 63, RowMode::HighPerformance);
        t.set(3, 17, RowMode::HighPerformance);
        let got: Vec<(usize, u32)> = t.iter_high_performance().collect();
        assert_eq!(got, vec![(0, 0), (1, 63), (3, 17)]);
        assert_eq!(got.len() as u64, t.high_performance_rows());
    }

    #[test]
    fn clone_is_copy_on_write() {
        let g = DramGeometry::tiny();
        let mut t = ModeTable::new(&g);
        t.set_fraction_high_performance(0.5);
        let snapshot = t.clone();
        // The clone shares every bank's storage until a write diverges.
        for b in 0..t.banks() as usize {
            assert!(t.shares_bank_storage(&snapshot, b), "bank {b} shared");
        }
        // A no-op set (same mode) must not materialise a private bitmap.
        t.set(1, 0, RowMode::HighPerformance);
        assert!(
            t.shares_bank_storage(&snapshot, 1),
            "no-op set keeps sharing"
        );
        // A real flip splits exactly the touched bank.
        t.set(1, 0, RowMode::MaxCapacity);
        assert!(!t.shares_bank_storage(&snapshot, 1), "bank 1 diverged");
        assert!(t.shares_bank_storage(&snapshot, 0), "bank 0 still shared");
        // Contents stay independent: the snapshot kept the old layout.
        assert_eq!(t.mode_of(1, 0), RowMode::MaxCapacity);
        assert_eq!(snapshot.mode_of(1, 0), RowMode::HighPerformance);
        assert_eq!(
            snapshot.high_performance_rows(),
            t.high_performance_rows() + 1
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_row_panics() {
        let t = ModeTable::new(&DramGeometry::tiny());
        let _ = t.mode_of(0, 64);
    }
}
