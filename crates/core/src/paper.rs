//! Published reference numbers from the paper, used by the benchmark
//! harness to print paper-vs-measured comparisons.
//!
//! Nothing in the simulator *reads* these values to produce results; they
//! exist purely for reporting and regression checks on the reproduction's
//! shape.

/// One row of Table 1 (nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table1Row {
    /// Timing parameter name ("tRCD", ...).
    pub name: &'static str,
    /// Conventional DRAM baseline.
    pub baseline: f64,
    /// CLR-DRAM max-capacity mode.
    pub max_capacity: f64,
    /// High-performance mode without early termination.
    pub hp_no_et: f64,
    /// High-performance mode with early termination.
    pub hp_et: f64,
    /// Published reduction of the w/ E.T. column vs baseline (fraction).
    pub reduction: f64,
}

/// Table 1 of the paper: reduction in major DRAM timing parameters.
pub const TABLE1: [Table1Row; 4] = [
    Table1Row {
        name: "tRCD",
        baseline: 13.8,
        max_capacity: 13.2,
        hp_no_et: 5.4,
        hp_et: 5.5,
        reduction: 0.601,
    },
    Table1Row {
        name: "tRAS",
        baseline: 39.4,
        max_capacity: 40.3,
        hp_no_et: 20.3,
        hp_et: 14.1,
        reduction: 0.642,
    },
    Table1Row {
        name: "tRP",
        baseline: 15.5,
        max_capacity: 8.3,
        hp_no_et: 8.3,
        hp_et: 8.3,
        reduction: 0.464,
    },
    Table1Row {
        name: "tWR",
        baseline: 12.5,
        max_capacity: 13.3,
        hp_no_et: 12.5,
        hp_et: 8.1,
        reduction: 0.352,
    },
];

/// Headline system-level results (fractions, so 0.186 = 18.6 %).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeadlineResults {
    /// Single-core geomean speedups at 25/50/75/100 % HP pages.
    pub single_core_speedup: [f64; 4],
    /// Single-core speedup with all rows max-capacity (the 0 % config).
    pub single_core_speedup_all_maxcap: f64,
    /// Single-core geomean DRAM energy reduction at 25/50/75/100 %.
    pub single_core_energy_saving: [f64; 4],
    /// Multi-core geomean weighted-speedup gains at 25/50/75/100 %.
    pub multi_core_speedup: [f64; 4],
    /// Multi-core speedup for the high-MPKI group at 100 %.
    pub multi_core_speedup_high_mpki: f64,
    /// Multi-core DRAM energy reduction at 25/100 %.
    pub multi_core_energy_saving_25_100: [f64; 2],
    /// DRAM power reduction, single-core, at 25/100 %.
    pub single_core_power_saving_25_100: [f64; 2],
    /// DRAM power reduction, multi-core, at 25/100 %.
    pub multi_core_power_saving_25_100: [f64; 2],
    /// Refresh-energy reduction for all-HP CLR-64 (multi-core).
    pub refresh_energy_saving_clr64: f64,
    /// Refresh-energy reduction for all-HP CLR-194.
    pub refresh_energy_saving_clr194: f64,
    /// Multi-core speedup of CLR-114 at 100 % HP pages.
    pub multi_core_speedup_clr114: f64,
    /// Multi-core speedup of CLR-194 at 100 % HP pages.
    pub multi_core_speedup_clr194: f64,
    /// Highest single-application speedup (429.mcf at 100 %).
    pub best_single_speedup: f64,
}

/// The paper's published headline numbers (§1, §8).
pub const HEADLINES: HeadlineResults = HeadlineResults {
    single_core_speedup: [0.055, 0.079, 0.103, 0.124],
    single_core_speedup_all_maxcap: 0.024,
    single_core_energy_saving: [0.092, 0.133, 0.169, 0.197],
    multi_core_speedup: [0.119, 0.0, 0.0, 0.186], // 50/75 % not quoted
    multi_core_speedup_high_mpki: 0.275,
    multi_core_energy_saving_25_100: [0.217, 0.297],
    single_core_power_saving_25_100: [0.043, 0.097],
    multi_core_power_saving_25_100: [0.089, 0.128],
    refresh_energy_saving_clr64: 0.661,
    refresh_energy_saving_clr194: 0.871,
    multi_core_speedup_clr114: 0.192,
    multi_core_speedup_clr194: 0.178,
    best_single_speedup: 0.598,
};

/// Figure 11 endpoints: tRCD/tRAS growth when extending tREFW from 64 ms
/// to 194 ms (ns).
pub const FIG11_TRCD_GROWTH_NS: f64 = 3.24;
/// See [`FIG11_TRCD_GROWTH_NS`].
pub const FIG11_TRAS_GROWTH_NS: f64 = 3.04;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_reductions_are_consistent() {
        for row in TABLE1 {
            let computed = 1.0 - row.hp_et / row.baseline;
            assert!(
                (computed - row.reduction).abs() < 0.005,
                "{}: computed {computed}, published {}",
                row.name,
                row.reduction
            );
        }
    }

    #[test]
    fn headline_sanity() {
        // Speedups grow monotonically with the HP fraction.
        let h = &HEADLINES;
        let s = h.single_core_speedup;
        assert!(s[0] < s[1] && s[1] < s[2] && s[2] < s[3]);
        assert!(h.multi_core_speedup_high_mpki > h.multi_core_speedup[3]);
    }
}
