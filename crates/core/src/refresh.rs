//! Heterogeneous refresh planning (§3.6, §5.2, §8.5).
//!
//! A DDR4 device refreshes the whole rank with 8192 REF commands per 64 ms
//! window, i.e. one REF every tREFI = 7.8125 µs, each lasting tRFC.
//! CLR-DRAM introduces heterogeneity: rows in high-performance mode refresh
//! with a smaller tRFC (faster activate + precharge) and may refresh less
//! often (larger tREFW, up to ≈ 3×). The controller therefore runs up to
//! two refresh *streams*, one per mode, each covering the row population of
//! that mode.

use crate::mode::RowMode;
use crate::timing::{ClrTimings, TimingParams};

/// Number of REF commands a DDR4 device needs to cover a full refresh
/// window (JESD79-4; 8192 for all densities used here).
pub const REF_COMMANDS_PER_WINDOW: u64 = 8192;

/// One periodic refresh stream: a REF command of `t_rfc_ns` issued every
/// `interval_ns` covering the rows of one operating mode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefreshStream {
    /// Operating mode of rows covered by this stream.
    pub mode: RowMode,
    /// Time between consecutive REF commands of this stream (its effective
    /// tREFI), in nanoseconds.
    pub interval_ns: f64,
    /// Duration of each REF command, in nanoseconds.
    pub t_rfc_ns: f64,
    /// Fraction of all rows covered by this stream.
    pub row_fraction: f64,
}

impl RefreshStream {
    /// Fraction of wall-clock time the rank is blocked by this stream.
    pub fn busy_fraction(&self) -> f64 {
        if self.interval_ns <= 0.0 {
            0.0
        } else {
            self.t_rfc_ns / self.interval_ns
        }
    }

    /// REF commands issued by this stream over `duration_ns`.
    pub fn commands_over(&self, duration_ns: f64) -> u64 {
        if self.interval_ns <= 0.0 {
            0
        } else {
            (duration_ns / self.interval_ns).floor() as u64
        }
    }
}

/// The refresh schedule for a rank with a mixed-mode row population.
///
/// # Example
///
/// ```
/// use clr_core::refresh::RefreshPlan;
/// use clr_core::timing::ClrTimings;
///
/// let t = ClrTimings::from_circuit_defaults();
/// // All rows high-performance, 64 ms window: one fast stream.
/// let plan = RefreshPlan::new(&t, 1.0, 64.0);
/// assert_eq!(plan.streams().len(), 1);
/// // Mixed population: two streams.
/// let plan = RefreshPlan::new(&t, 0.25, 114.0);
/// assert_eq!(plan.streams().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RefreshPlan {
    streams: Vec<RefreshStream>,
    hp_timings: TimingParams,
}

impl RefreshPlan {
    /// Builds the refresh plan for a rank where `fraction_hp` of rows are
    /// high-performance and high-performance rows use a `hp_refw_ms`
    /// refresh window (64 ms for CLR-64 up to 194 ms for CLR-194).
    ///
    /// Each stream issues `REF_COMMANDS_PER_WINDOW × row_fraction` commands
    /// per its window, preserving the per-REF row coverage of the base
    /// device.
    ///
    /// # Panics
    ///
    /// Panics if `fraction_hp` is outside `0.0..=1.0` or `hp_refw_ms` is
    /// outside the safe window (see
    /// [`ClrTimings::high_performance_at_refw`]).
    pub fn new(timings: &ClrTimings, fraction_hp: f64, hp_refw_ms: f64) -> Self {
        assert!((0.0..=1.0).contains(&fraction_hp), "invalid fraction");
        let hp = timings
            .high_performance_at_refw(hp_refw_ms)
            .expect("refresh window outside the safe range");
        let base = timings.for_mode(RowMode::MaxCapacity);
        let mut streams = Vec::new();
        let mc_fraction = 1.0 - fraction_hp;
        if mc_fraction > 0.0 {
            let cmds = REF_COMMANDS_PER_WINDOW as f64 * mc_fraction;
            streams.push(RefreshStream {
                mode: RowMode::MaxCapacity,
                interval_ns: base.t_refw_ms * 1e6 / cmds,
                t_rfc_ns: base.t_rfc_ns,
                row_fraction: mc_fraction,
            });
        }
        if fraction_hp > 0.0 {
            let cmds = REF_COMMANDS_PER_WINDOW as f64 * fraction_hp;
            streams.push(RefreshStream {
                mode: RowMode::HighPerformance,
                interval_ns: hp_refw_ms * 1e6 / cmds,
                t_rfc_ns: hp.t_rfc_ns,
                row_fraction: fraction_hp,
            });
        }
        RefreshPlan {
            streams,
            hp_timings: hp,
        }
    }

    /// The active refresh streams (1 for homogeneous populations, 2 for
    /// mixed).
    pub fn streams(&self) -> &[RefreshStream] {
        &self.streams
    }

    /// The (possibly latency-degraded) high-performance timings implied by
    /// the chosen refresh window.
    pub fn hp_timings(&self) -> &TimingParams {
        &self.hp_timings
    }

    /// Total fraction of time the rank is blocked by refresh.
    pub fn total_busy_fraction(&self) -> f64 {
        self.streams.iter().map(RefreshStream::busy_fraction).sum()
    }

    /// Total refresh-command time (ns) accumulated over `duration_ns`,
    /// the quantity refresh energy is proportional to.
    pub fn refresh_time_over(&self, duration_ns: f64) -> f64 {
        self.streams
            .iter()
            .map(|s| s.commands_over(duration_ns) as f64 * s.t_rfc_ns)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timings() -> ClrTimings {
        ClrTimings::from_circuit_defaults()
    }

    #[test]
    fn baseline_plan_matches_ddr4() {
        let plan = RefreshPlan::new(&timings(), 0.0, 64.0);
        assert_eq!(plan.streams().len(), 1);
        let s = plan.streams()[0];
        assert_eq!(s.mode, RowMode::MaxCapacity);
        // tREFI = 64 ms / 8192 = 7812.5 ns.
        assert!((s.interval_ns - 7812.5).abs() < 1e-6);
        // Refresh busy fraction ≈ 550/7812.5 ≈ 7 %.
        assert!((plan.total_busy_fraction() - 0.0704).abs() < 0.001);
    }

    #[test]
    fn all_hp_plan_cuts_busy_fraction() {
        let plan = RefreshPlan::new(&timings(), 1.0, 64.0);
        assert_eq!(plan.streams().len(), 1);
        let s = plan.streams()[0];
        assert_eq!(s.mode, RowMode::HighPerformance);
        // Same command rate, smaller tRFC (≈ 0.447×).
        assert!((s.interval_ns - 7812.5).abs() < 1e-6);
        assert!(s.t_rfc_ns < 0.5 * 550.0);
    }

    #[test]
    fn extended_window_slows_hp_stream() {
        let p64 = RefreshPlan::new(&timings(), 1.0, 64.0);
        let p194 = RefreshPlan::new(&timings(), 1.0, 194.0);
        let r64 = p64.streams()[0];
        let r194 = p194.streams()[0];
        assert!((r194.interval_ns / r64.interval_ns - 194.0 / 64.0).abs() < 1e-9);
        // Refresh time over a fixed duration drops ~3× further.
        let d = 1e9; // 1 s
        let ratio = p194.refresh_time_over(d) / p64.refresh_time_over(d);
        assert!((ratio - 64.0 / 194.0).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn mixed_plan_covers_all_rows() {
        let plan = RefreshPlan::new(&timings(), 0.25, 114.0);
        let total: f64 = plan.streams().iter().map(|s| s.row_fraction).sum();
        assert!((total - 1.0).abs() < 1e-12);
        // The max-capacity stream must still complete its window: commands
        // per window × interval = window.
        for s in plan.streams() {
            let window_ms = match s.mode {
                RowMode::MaxCapacity => 64.0,
                RowMode::HighPerformance => 114.0,
            };
            let cmds = REF_COMMANDS_PER_WINDOW as f64 * s.row_fraction;
            assert!((s.interval_ns * cmds - window_ms * 1e6).abs() < 1.0);
        }
    }

    #[test]
    fn refresh_energy_shape_matches_paper() {
        // §8.5: all-HP CLR-64 already saves ~55 % of refresh-command time
        // (energy savings grow to 66 % with runtime reduction); CLR-194
        // saves ~85 % of refresh-command time.
        let base = RefreshPlan::new(&timings(), 0.0, 64.0);
        let hp64 = RefreshPlan::new(&timings(), 1.0, 64.0);
        let hp194 = RefreshPlan::new(&timings(), 1.0, 194.0);
        let d = 1e9;
        let r64 = hp64.refresh_time_over(d) / base.refresh_time_over(d);
        let r194 = hp194.refresh_time_over(d) / base.refresh_time_over(d);
        assert!((r64 - 0.447).abs() < 0.02, "CLR-64 ratio {r64}");
        assert!((r194 - 0.147).abs() < 0.02, "CLR-194 ratio {r194}");
    }

    #[test]
    #[should_panic(expected = "safe range")]
    fn unsafe_window_panics() {
        RefreshPlan::new(&timings(), 1.0, 400.0);
    }
}
