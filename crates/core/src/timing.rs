//! DRAM timing parameters for each CLR-DRAM operating mode.
//!
//! Two kinds of timings are modelled:
//!
//! * **Cell-array timings** ([`TimingParams`]) — tRCD, tRAS, tRP, tWR,
//!   tRFC, tREFW. These are the analog quantities the paper derives from
//!   SPICE (Table 1) and the ones CLR-DRAM changes per operating mode.
//! * **Interface timings** ([`InterfaceTimings`]) — tCK, CL, CWL, burst
//!   length, tCCD/tRRD/tFAW/tWTR/tRTP and friends. These come from the
//!   DDR4 datasheet and are identical in every mode.
//!
//! [`ClrTimings`] bundles one [`TimingParams`] per mode plus the
//! early-termination and extended-refresh (Figure 11 / CLR-64..194)
//! variants.

use crate::mode::RowMode;

/// Analog cell-array timing parameters, in nanoseconds.
///
/// These are the four key latencies of Table 1 plus the refresh quantities
/// of §3.6. All values are *minimum* constraints the memory controller must
/// respect.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingParams {
    /// ACT → RD/WR: time for the bitline to reach the ready-to-access level.
    pub t_rcd_ns: f64,
    /// ACT → PRE: charge-sharing plus charge-restoration latency.
    pub t_ras_ns: f64,
    /// PRE → ACT: bitline precharge/equalization latency.
    pub t_rp_ns: f64,
    /// End of write burst → PRE: write recovery latency.
    pub t_wr_ns: f64,
    /// Latency of one refresh command.
    pub t_rfc_ns: f64,
    /// Refresh window: every row must be refreshed once per this interval,
    /// in milliseconds.
    pub t_refw_ms: f64,
}

impl TimingParams {
    /// Row-cycle time tRC = tRAS + tRP, the paper's headline latency metric.
    pub fn t_rc_ns(&self) -> f64 {
        self.t_ras_ns + self.t_rp_ns
    }

    /// Scales every latency by `factor` (used in sensitivity studies).
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Self {
        TimingParams {
            t_rcd_ns: self.t_rcd_ns * factor,
            t_ras_ns: self.t_ras_ns * factor,
            t_rp_ns: self.t_rp_ns * factor,
            t_wr_ns: self.t_wr_ns * factor,
            t_rfc_ns: self.t_rfc_ns * factor,
            t_refw_ms: self.t_refw_ms,
        }
    }
}

/// DDR4 interface timings shared by all operating modes.
///
/// Defaults model the paper's DDR4-2400 configuration (Table 2: 1200 MHz
/// bus) with a 16 Gb density per device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterfaceTimings {
    /// DRAM clock period in nanoseconds (0.833 ns at 1200 MHz).
    pub t_ck_ns: f64,
    /// CAS (read) latency in cycles.
    pub cl: u32,
    /// CAS write latency in cycles.
    pub cwl: u32,
    /// Burst length in beats (8 for DDR4), i.e. `bl/2` cycles of data bus.
    pub bl: u32,
    /// Column-to-column delay, same bank group, in cycles.
    pub t_ccd_s: u32,
    /// Column-to-column delay, different bank group, in cycles.
    pub t_ccd_l: u32,
    /// ACT-to-ACT delay, different bank group, in cycles.
    pub t_rrd_s: u32,
    /// ACT-to-ACT delay, same bank group, in cycles.
    pub t_rrd_l: u32,
    /// Four-activate window, in cycles.
    pub t_faw: u32,
    /// Write-to-read turnaround, different bank group, in cycles.
    pub t_wtr_s: u32,
    /// Write-to-read turnaround, same bank group, in cycles.
    pub t_wtr_l: u32,
    /// Read-to-precharge delay, in cycles.
    pub t_rtp: u32,
    /// Average refresh interval (tREFI) in nanoseconds at the base 64 ms
    /// window (7.8125 µs for 8192 refresh commands per window).
    pub t_refi_ns: f64,
}

impl InterfaceTimings {
    /// DDR4-2400 interface timings for a 16 Gb device (JESD79-4 speed bin).
    pub fn ddr4_2400() -> Self {
        InterfaceTimings {
            t_ck_ns: 1.0 / 1.2, // 1200 MHz
            cl: 16,
            cwl: 12,
            bl: 8,
            t_ccd_s: 4,
            t_ccd_l: 6,
            t_rrd_s: 4,
            t_rrd_l: 6,
            t_faw: 26,
            t_wtr_s: 3,
            t_wtr_l: 9,
            t_rtp: 9,
            t_refi_ns: 7812.5,
        }
    }

    /// Cycles occupied on the data bus by one burst (`bl / 2` for DDR).
    pub fn burst_cycles(&self) -> u32 {
        self.bl / 2
    }

    /// Converts a nanosecond quantity to a (ceiling) cycle count.
    pub fn ns_to_cycles(&self, ns: f64) -> u64 {
        (ns / self.t_ck_ns).ceil() as u64
    }
}

impl Default for InterfaceTimings {
    fn default() -> Self {
        Self::ddr4_2400()
    }
}

/// Extended-refresh operating points evaluated in §8.5 (Figure 15).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RefreshVariant {
    /// Base 64 ms refresh window (CLR-64).
    Clr64,
    /// 114 ms window — the paper's best-performing point.
    Clr114,
    /// 124 ms window.
    Clr124,
    /// 184 ms window.
    Clr184,
    /// 194 ms window — maximum safe extension (≈ 3.03×).
    Clr194,
}

impl RefreshVariant {
    /// All variants in sweep order.
    pub const ALL: [RefreshVariant; 5] = [
        RefreshVariant::Clr64,
        RefreshVariant::Clr114,
        RefreshVariant::Clr124,
        RefreshVariant::Clr184,
        RefreshVariant::Clr194,
    ];

    /// The refresh window in milliseconds.
    pub fn refw_ms(self) -> f64 {
        match self {
            RefreshVariant::Clr64 => 64.0,
            RefreshVariant::Clr114 => 114.0,
            RefreshVariant::Clr124 => 124.0,
            RefreshVariant::Clr184 => 184.0,
            RefreshVariant::Clr194 => 194.0,
        }
    }

    /// Display label matching the paper ("CLR-64" ... "CLR-194").
    pub fn label(self) -> &'static str {
        match self {
            RefreshVariant::Clr64 => "CLR-64",
            RefreshVariant::Clr114 => "CLR-114",
            RefreshVariant::Clr124 => "CLR-124",
            RefreshVariant::Clr184 => "CLR-184",
            RefreshVariant::Clr194 => "CLR-194",
        }
    }
}

/// The complete CLR-DRAM timing model: one parameter set per operating mode
/// plus derived variants.
///
/// The canonical constructor is [`ClrTimings::from_circuit_defaults`], whose
/// values reproduce Table 1 of the paper and are cross-checked against the
/// `clr-circuit` transient simulator in that crate's tests.
#[derive(Debug, Clone, PartialEq)]
pub struct ClrTimings {
    baseline: TimingParams,
    max_capacity: TimingParams,
    high_performance: TimingParams,
    high_performance_no_et: TimingParams,
}

/// Maximum refresh window before the coupled cell's residual charge is too
/// low to sense (the Figure 11 sweep stops at 204 ms; 194 ms is the last
/// safe evaluated point).
pub const MAX_SAFE_REFW_MS: f64 = 204.0;

impl ClrTimings {
    /// Timing sets matching the paper's circuit results (Table 1) for a
    /// DDR4-2400, 16 Gb-device system.
    ///
    /// * baseline: unmodified open-bitline array,
    /// * max-capacity: bitline mode select transistors inserted (slightly
    ///   better tRCD/tRP, slightly worse tRAS/tWR),
    /// * high-performance (with early termination, the paper's default),
    /// * high-performance without early termination (ablation).
    ///
    /// tRFC for high-performance rows is the DDR4 16 Gb tRFC scaled by the
    /// mean of the tRAS and tRP reductions, exactly as §8.1 prescribes.
    pub fn from_circuit_defaults() -> Self {
        let baseline = TimingParams {
            t_rcd_ns: 13.8,
            t_ras_ns: 39.4,
            t_rp_ns: 15.5,
            t_wr_ns: 12.5,
            t_rfc_ns: 550.0,
            t_refw_ms: 64.0,
        };
        // §8.1 scales tRFC only for high-performance rows; max-capacity rows
        // refresh with the stock DDR4 tRFC.
        let max_capacity = TimingParams {
            t_rcd_ns: 13.2,
            t_ras_ns: 40.3,
            t_rp_ns: 8.3,
            t_wr_ns: 13.3,
            t_rfc_ns: 550.0,
            t_refw_ms: 64.0,
        };
        let hp_et = TimingParams {
            t_rcd_ns: 5.5,
            t_ras_ns: 14.1,
            t_rp_ns: 8.3,
            t_wr_ns: 8.1,
            t_rfc_ns: Self::scaled_rfc(550.0, &baseline, 14.1, 8.3),
            t_refw_ms: 64.0,
        };
        let hp_no_et = TimingParams {
            t_rcd_ns: 5.4,
            t_ras_ns: 20.3,
            t_rp_ns: 8.3,
            t_wr_ns: 12.5,
            t_rfc_ns: Self::scaled_rfc(550.0, &baseline, 20.3, 8.3),
            t_refw_ms: 64.0,
        };
        ClrTimings {
            baseline,
            max_capacity,
            high_performance: hp_et,
            high_performance_no_et: hp_no_et,
        }
    }

    /// Builds a timing model from explicitly measured parameter sets (e.g.
    /// produced by the `clr-circuit` simulator).
    pub fn from_measured(
        baseline: TimingParams,
        max_capacity: TimingParams,
        high_performance: TimingParams,
        high_performance_no_et: TimingParams,
    ) -> Self {
        ClrTimings {
            baseline,
            max_capacity,
            high_performance,
            high_performance_no_et,
        }
    }

    /// §8.1: tRFC for reconfigured rows is the baseline tRFC reduced by the
    /// average of the tRAS and tRP reductions.
    fn scaled_rfc(base_rfc: f64, baseline: &TimingParams, ras: f64, rp: f64) -> f64 {
        let ras_red = 1.0 - ras / baseline.t_ras_ns;
        let rp_red = 1.0 - rp / baseline.t_rp_ns;
        base_rfc * (1.0 - 0.5 * (ras_red + rp_red))
    }

    /// The unmodified open-bitline baseline timings.
    pub fn baseline(&self) -> &TimingParams {
        &self.baseline
    }

    /// Timings for a row operating in the given mode (early termination
    /// applied for high-performance rows, as in the paper's evaluation).
    pub fn for_mode(&self, mode: RowMode) -> &TimingParams {
        match mode {
            RowMode::MaxCapacity => &self.max_capacity,
            RowMode::HighPerformance => &self.high_performance,
        }
    }

    /// High-performance timings *without* early termination of charge
    /// restoration (Table 1's "w/o E.T." column) — used by ablations.
    pub fn high_performance_no_early_termination(&self) -> &TimingParams {
        &self.high_performance_no_et
    }

    /// High-performance timings at an extended refresh window, following
    /// the Figure 11 sensitivity sweep: tRCD and tRAS grow with the window
    /// because the cell holds less charge when activated late in the
    /// window.
    ///
    /// Returns `None` for windows beyond [`MAX_SAFE_REFW_MS`], where the
    /// worst-case cell can no longer be sensed reliably.
    ///
    /// The growth model linearly interpolates the paper's digitized
    /// endpoints: +3.24 ns tRCD and +3.04 ns tRAS when going from 64 ms to
    /// 194 ms. (The `clr-circuit` crate regenerates this curve from first
    /// principles; see `clr_circuit::retention`.)
    pub fn high_performance_at_refw(&self, refw_ms: f64) -> Option<TimingParams> {
        if !(refw_ms >= self.high_performance.t_refw_ms && refw_ms <= MAX_SAFE_REFW_MS) {
            return None;
        }
        let span = 194.0 - 64.0;
        let frac = (refw_ms - 64.0) / span;
        let hp = self.high_performance;
        Some(TimingParams {
            t_rcd_ns: hp.t_rcd_ns + 3.24 * frac,
            t_ras_ns: hp.t_ras_ns + 3.04 * frac,
            t_refw_ms: refw_ms,
            ..hp
        })
    }

    /// Timings for one of the named refresh variants of §8.5.
    pub fn refresh_variant(&self, v: RefreshVariant) -> TimingParams {
        self.high_performance_at_refw(v.refw_ms())
            .expect("named refresh variants are always within the safe window")
    }
}

impl Default for ClrTimings {
    fn default() -> Self {
        Self::from_circuit_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn table1_reductions_match_paper() {
        let t = ClrTimings::from_circuit_defaults();
        let b = t.baseline();
        let hp = t.for_mode(RowMode::HighPerformance);
        assert!(close(1.0 - hp.t_rcd_ns / b.t_rcd_ns, 0.601, 0.005));
        assert!(close(1.0 - hp.t_ras_ns / b.t_ras_ns, 0.642, 0.005));
        assert!(close(1.0 - hp.t_rp_ns / b.t_rp_ns, 0.464, 0.005));
        assert!(close(1.0 - hp.t_wr_ns / b.t_wr_ns, 0.352, 0.005));
    }

    #[test]
    fn max_capacity_mode_tradeoffs_match_paper() {
        let t = ClrTimings::from_circuit_defaults();
        let b = t.baseline();
        let mc = t.for_mode(RowMode::MaxCapacity);
        // tRCD slightly lower, tRAS/tWR slightly higher, tRP much lower.
        assert!(mc.t_rcd_ns < b.t_rcd_ns);
        assert!(mc.t_ras_ns > b.t_ras_ns);
        assert!(mc.t_wr_ns > b.t_wr_ns);
        assert!(close(1.0 - mc.t_rp_ns / b.t_rp_ns, 0.464, 0.005));
    }

    #[test]
    fn hp_rfc_uses_mean_of_ras_rp_reductions() {
        let t = ClrTimings::from_circuit_defaults();
        let hp = t.for_mode(RowMode::HighPerformance);
        // mean(64.2%, 46.4%) ≈ 55.3% reduction of 550 ns ≈ 246 ns.
        assert!(close(hp.t_rfc_ns, 550.0 * (1.0 - 0.553), 3.0));
    }

    #[test]
    fn refresh_window_extension_increases_latency() {
        let t = ClrTimings::from_circuit_defaults();
        let hp64 = t.refresh_variant(RefreshVariant::Clr64);
        let hp194 = t.refresh_variant(RefreshVariant::Clr194);
        assert!(close(hp194.t_rcd_ns - hp64.t_rcd_ns, 3.24, 0.01));
        assert!(close(hp194.t_ras_ns - hp64.t_ras_ns, 3.04, 0.01));
        // Paper: ×1.58 tRCD, ×1.21 tRAS at 194 ms.
        assert!(close(hp194.t_rcd_ns / hp64.t_rcd_ns, 1.58, 0.02));
        assert!(close(hp194.t_ras_ns / hp64.t_ras_ns, 1.21, 0.02));
    }

    #[test]
    fn unsafe_refresh_window_rejected() {
        let t = ClrTimings::from_circuit_defaults();
        assert!(t.high_performance_at_refw(230.0).is_none());
        assert!(t.high_performance_at_refw(32.0).is_none());
        assert!(t.high_performance_at_refw(204.0).is_some());
    }

    #[test]
    fn interface_timing_cycle_conversion_rounds_up() {
        let i = InterfaceTimings::ddr4_2400();
        assert_eq!(i.ns_to_cycles(0.0), 0);
        assert_eq!(i.ns_to_cycles(i.t_ck_ns), 1);
        assert_eq!(i.ns_to_cycles(i.t_ck_ns * 1.01), 2);
        assert_eq!(i.burst_cycles(), 4);
    }

    #[test]
    fn variant_labels_and_windows() {
        assert_eq!(RefreshVariant::Clr114.label(), "CLR-114");
        assert!(close(RefreshVariant::Clr194.refw_ms() / 64.0, 3.03, 0.01));
    }

    #[test]
    fn scaled_preserves_refw() {
        let t = ClrTimings::from_circuit_defaults();
        let s = t.baseline().scaled(2.0);
        assert!(close(s.t_rcd_ns, 27.6, 1e-9));
        assert!(close(s.t_refw_ms, 64.0, 1e-9));
    }
}
