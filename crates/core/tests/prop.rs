//! Property-based tests of the core model's invariants.

use clr_core::addr::{AddressMapping, DramAddr, PhysAddr};
use clr_core::capacity;
use clr_core::geometry::DramGeometry;
use clr_core::iso::{RowConnectivity, SubarrayParity, SubarrayTopology};
use clr_core::mapping::{PagePlacement, PageProfile, PAGE_BYTES};
use clr_core::mode::{ModeTable, RowMode};
use clr_core::refresh::RefreshPlan;
use clr_core::timing::ClrTimings;
use proptest::prelude::*;

fn arb_geometry() -> impl Strategy<Value = DramGeometry> {
    (0u32..2, 0u32..2, 1u32..3, 1u32..3, 4u32..10, 4u32..8).prop_map(
        |(ch, ra, bg, ba, rows, cols)| DramGeometry {
            channels: 1 << ch,
            ranks: 1 << ra,
            bank_groups: 1 << bg,
            banks_per_group: 1 << ba,
            rows: 1 << rows,
            columns: 1 << cols,
            device_width_bits: 8,
            bus_width_bits: 64,
            burst_length: 8,
        },
    )
}

fn schemes() -> impl Strategy<Value = AddressMapping> {
    prop_oneof![
        Just(AddressMapping::RoBgBaRaCoCh),
        Just(AddressMapping::RoRaBaBgCoCh),
        Just(AddressMapping::CoChRaBgBaRo),
    ]
}

proptest! {
    /// map → unmap is the identity on column-aligned addresses for every
    /// scheme and geometry.
    #[test]
    fn address_roundtrip(
        g in arb_geometry(),
        s in schemes(),
        frac in 0.0f64..1.0,
    ) {
        let addr = ((g.capacity_bytes() as f64 * frac) as u64)
            & !(g.bytes_per_column() - 1);
        let addr = addr.min(g.capacity_bytes() - g.bytes_per_column());
        let d = s.map(PhysAddr(addr), &g).expect("in range");
        let back = s.unmap(&d, &g).expect("coords valid");
        prop_assert_eq!(back.0, addr);
    }

    /// Decoded coordinates always respect the geometry bounds.
    #[test]
    fn decode_is_bounded(
        g in arb_geometry(),
        s in schemes(),
        frac in 0.0f64..1.0,
    ) {
        let addr = ((g.capacity_bytes() as f64 * frac) as u64)
            .min(g.capacity_bytes() - 1);
        let d = s.map(PhysAddr(addr), &g).expect("in range");
        prop_assert!(d.channel < g.channels);
        prop_assert!(d.rank < g.ranks);
        prop_assert!(d.bank_group < g.bank_groups);
        prop_assert!(d.bank < g.banks_per_group);
        prop_assert!(d.row < g.rows);
        prop_assert!(d.column < g.columns);
    }

    /// Distinct addresses (at column granularity) decode to distinct
    /// coordinates — the mapping is injective.
    #[test]
    fn decode_is_injective(
        g in arb_geometry(),
        s in schemes(),
        a in 0u64..10_000,
        b in 0u64..10_000,
    ) {
        let col = g.bytes_per_column();
        let a = (a * col) % g.capacity_bytes();
        let b = (b * col) % g.capacity_bytes();
        let da = s.map(PhysAddr(a), &g).expect("in range");
        let db = s.map(PhysAddr(b), &g).expect("in range");
        prop_assert_eq!(a == b, da == db);
    }

    /// Channel routing is bijective: for arbitrary geometries and
    /// schemes, `addr → (channel, local) → addr` round-trips, the channel
    /// agrees with the full decode, and the local address stays within
    /// one channel's capacity. This is the contract the channel-sharded
    /// `MemorySystem` relies on to route requests without collisions.
    #[test]
    fn channel_routing_roundtrips(
        g in arb_geometry(),
        s in schemes(),
        frac in 0.0f64..1.0,
        offset_beats in 0u64..8,
    ) {
        let col = g.bytes_per_column();
        let base = ((g.capacity_bytes() as f64 * frac) as u64) & !(col - 1);
        let base = base.min(g.capacity_bytes() - col);
        // Line-aligned plus an arbitrary intra-column offset: routing
        // must preserve the offset bits verbatim.
        let addr = base | (offset_beats % col);
        let (ch, local) = s.route(PhysAddr(addr), &g).expect("in range");
        prop_assert_eq!(ch, s.map(PhysAddr(addr), &g).expect("in range").channel);
        prop_assert!(ch < g.channels);
        prop_assert!(local.0 < g.channel_slice().capacity_bytes());
        let back = s.unroute(ch, local, &g).expect("valid");
        prop_assert_eq!(back.0, addr);
    }

    /// Distinct global addresses never collide on the same
    /// `(channel, local)` pair — routing is injective, so per-channel
    /// controllers serve disjoint address spaces.
    #[test]
    fn channel_routing_is_injective(
        g in arb_geometry(),
        s in schemes(),
        a in 0u64..10_000,
        b in 0u64..10_000,
    ) {
        let col = g.bytes_per_column();
        let a = (a * col) % g.capacity_bytes();
        let b = (b * col) % g.capacity_bytes();
        let ra = s.route(PhysAddr(a), &g).expect("in range");
        let rb = s.route(PhysAddr(b), &g).expect("in range");
        prop_assert_eq!(a == b, ra == rb);
    }

    /// Mode-table set/get roundtrip under arbitrary mutation sequences,
    /// with an exact running high-performance count.
    #[test]
    fn mode_table_counts_track_mutations(
        ops in proptest::collection::vec((0usize..4, 0u32..64, any::<bool>()), 1..200),
    ) {
        let g = DramGeometry::tiny();
        let mut t = ModeTable::new(&g);
        let mut reference = std::collections::HashSet::new();
        for (bank, row, hp) in ops {
            let mode = if hp { RowMode::HighPerformance } else { RowMode::MaxCapacity };
            t.set(bank, row, mode);
            if hp {
                reference.insert((bank, row));
            } else {
                reference.remove(&(bank, row));
            }
        }
        prop_assert_eq!(t.high_performance_rows(), reference.len() as u64);
        for &(bank, row) in reference.iter().take(20) {
            prop_assert_eq!(t.mode_of(bank, row), RowMode::HighPerformance);
        }
    }

    /// Effective capacity decreases monotonically with the HP fraction
    /// and exactly matches the table-based accounting.
    #[test]
    fn capacity_accounting_is_consistent(fa in 0.0f64..1.0, fb in 0.0f64..1.0) {
        let g = DramGeometry::ddr4_16gb_x8();
        let (lo, hi) = if fa <= fb { (fa, fb) } else { (fb, fa) };
        prop_assert!(
            capacity::effective_capacity_bytes(&g, lo)
                >= capacity::effective_capacity_bytes(&g, hi)
        );
        let tiny = DramGeometry::tiny();
        let mut t = ModeTable::new(&tiny);
        t.set_fraction_high_performance(lo);
        let from_table = capacity::effective_capacity_of_table(&tiny, &t);
        let exact = tiny.capacity_bytes()
            - t.high_performance_rows() * tiny.row_bytes() / 2;
        prop_assert_eq!(from_table, exact);
    }

    /// The ISO control logic never produces the reversed topology and
    /// always isolates neighbors in high-performance mode.
    #[test]
    fn iso_control_invariants(idx in 0u32..1000) {
        let parity = SubarrayParity::of(idx);
        for mode in [RowMode::MaxCapacity, RowMode::HighPerformance] {
            let (here, neighbor) = SubarrayTopology::for_access(mode, parity);
            prop_assert_ne!(here, SubarrayTopology::Reversed);
            prop_assert_ne!(neighbor, SubarrayTopology::Reversed);
            match mode {
                RowMode::MaxCapacity => {
                    prop_assert_eq!(here, SubarrayTopology::OpenBitline);
                    prop_assert_eq!(neighbor, SubarrayTopology::OpenBitline);
                }
                RowMode::HighPerformance => {
                    prop_assert_eq!(here, SubarrayTopology::Coupled);
                    prop_assert_eq!(neighbor, SubarrayTopology::Disconnected);
                }
            }
            // Storage accounting follows the topology.
            let conn = RowConnectivity::from_topology(here, 64);
            let bits = conn.stored_bits();
            prop_assert_eq!(bits, if mode == RowMode::MaxCapacity { 64 } else { 32 });
        }
    }

    /// Refresh plans always cover all rows and keep each stream's
    /// command-rate × interval equal to its window.
    #[test]
    fn refresh_plan_covers_rows(frac in 0.0f64..=1.0, refw in 64.0f64..=204.0) {
        let t = ClrTimings::from_circuit_defaults();
        let plan = RefreshPlan::new(&t, frac, refw);
        let total: f64 = plan.streams().iter().map(|s| s.row_fraction).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert!(plan.total_busy_fraction() < 0.15, "refresh should not dominate");
    }

    /// Profile-guided placement: every profiled page gets a frame, hot
    /// pages fill the fast region first, and offsets are preserved.
    #[test]
    fn placement_basics(
        counts in proptest::collection::vec(1u64..50, 1..60),
        frac_q in 0u8..=4,
        offset in 0u64..4096,
    ) {
        let g = DramGeometry::ddr4_16gb_x8();
        let mut profile = PageProfile::new();
        for (page, &c) in counts.iter().enumerate() {
            for _ in 0..c {
                profile.record(PhysAddr(page as u64 * PAGE_BYTES));
            }
        }
        let frac = frac_q as f64 / 4.0;
        let mut placement = PagePlacement::profile_guided(&profile, frac, &g).expect("valid");
        prop_assert_eq!(placement.mapped_pages(), counts.len());
        let t = placement.translate(PhysAddr(offset));
        prop_assert_eq!(t.0 % PAGE_BYTES, offset % PAGE_BYTES);
    }

    /// Extending the refresh window only ever increases tRCD/tRAS, within
    /// the safe range.
    #[test]
    fn refresh_extension_monotone(w1 in 64.0f64..=204.0, w2 in 64.0f64..=204.0) {
        let t = ClrTimings::from_circuit_defaults();
        let (lo, hi) = if w1 <= w2 { (w1, w2) } else { (w2, w1) };
        let a = t.high_performance_at_refw(lo).expect("safe");
        let b = t.high_performance_at_refw(hi).expect("safe");
        prop_assert!(b.t_rcd_ns >= a.t_rcd_ns);
        prop_assert!(b.t_ras_ns >= a.t_ras_ns);
        prop_assert_eq!(a.t_rp_ns, b.t_rp_ns, "tRP is unaffected by the window");
    }

    /// Flat bank ids form a dense bijection over all geometry banks.
    #[test]
    fn flat_bank_is_bijective(g in arb_geometry()) {
        let mut seen = std::collections::HashSet::new();
        for ch in 0..g.channels {
            for ra in 0..g.ranks {
                for bg in 0..g.bank_groups {
                    for ba in 0..g.banks_per_group {
                        let d = DramAddr {
                            channel: ch,
                            rank: ra,
                            bank_group: bg,
                            bank: ba,
                            ..DramAddr::default()
                        };
                        prop_assert!(seen.insert(d.flat_bank(&g)));
                    }
                }
            }
        }
        let total = (g.channels * g.ranks * g.bank_groups * g.banks_per_group) as usize;
        prop_assert_eq!(seen.len(), total);
        prop_assert_eq!(*seen.iter().max().unwrap(), total - 1);
    }
}
