//! The shared last-level cache with per-core MSHRs.
//!
//! Table 2: 8 MiB, 8-way, 64 B lines, 8 MSHRs per core. The LLC is the
//! only cache level modelled (the paper's private L1/L2 behaviour is
//! folded into the traces' miss streams, which are generated at LLC-access
//! granularity).

use std::collections::VecDeque;

use clr_core::addr::PhysAddr;

/// LLC geometry and behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Ways per set.
    pub associativity: usize,
    /// Line size in bytes.
    pub line_bytes: u64,
    /// Load-to-use latency of a hit, in CPU cycles.
    pub hit_latency: u64,
    /// Outstanding-miss registers per core.
    pub mshrs_per_core: usize,
}

impl CacheConfig {
    /// The paper's LLC: 8 MiB, 8-way, 64 B lines, 8 MSHRs/core.
    pub fn paper_llc() -> Self {
        CacheConfig {
            size_bytes: 8 << 20,
            associativity: 8,
            line_bytes: 64,
            hit_latency: 31,
            mshrs_per_core: 8,
        }
    }

    /// A small LLC for unit tests (4 KiB, 2-way).
    pub fn tiny() -> Self {
        CacheConfig {
            size_bytes: 4096,
            associativity: 2,
            line_bytes: 64,
            hit_latency: 4,
            mshrs_per_core: 2,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        (self.size_bytes / self.line_bytes / self.associativity as u64) as usize
    }
}

/// Load or store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Demand load (a window entry waits on it).
    Load,
    /// Store (posted; allocates on miss, marks dirty).
    Store,
}

/// Result of an LLC access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessResult {
    /// Hit: data ready at the given CPU cycle.
    Hit {
        /// CPU cycle at which the data is available.
        ready_at: u64,
    },
    /// Miss: an MSHR tracks the line; a fill will wake waiters.
    Miss,
    /// The core has no free MSHR; the access must retry (core stalls).
    MshrFull,
}

/// A memory request leaving the LLC toward the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutboundRequest {
    /// MSHR identifier for reads; `u64::MAX` for posted writebacks.
    pub id: u64,
    /// Line-aligned physical address.
    pub line_addr: u64,
    /// Whether this is a writeback.
    pub write: bool,
}

#[derive(Debug, Clone, Copy)]
struct LineState {
    tag: u64,
    dirty: bool,
}

#[derive(Debug, Clone)]
struct MshrEntry {
    line: u64,
    core: usize,
    store: bool,
    valid: bool,
}

/// Per-core and aggregate LLC statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Hits per core.
    pub hits: Vec<u64>,
    /// Misses per core (MSHR allocations + merges).
    pub misses: Vec<u64>,
    /// Dirty lines written back.
    pub writebacks: u64,
    /// Accesses merged into an existing MSHR.
    pub mshr_merges: u64,
}

impl CacheStats {
    /// Misses per thousand *accesses* for a core (proxy for LLC MPKI when
    /// combined with the core's instruction count).
    pub fn miss_rate(&self, core: usize) -> f64 {
        let total = self.hits[core] + self.misses[core];
        if total == 0 {
            0.0
        } else {
            self.misses[core] as f64 / total as f64
        }
    }
}

/// The shared last-level cache.
#[derive(Debug)]
pub struct Llc {
    cfg: CacheConfig,
    sets: Vec<VecDeque<LineState>>,
    mshrs: Vec<MshrEntry>,
    per_core_mshr: Vec<usize>,
    outbox: VecDeque<OutboundRequest>,
    stats: CacheStats,
}

impl Llc {
    /// Creates an empty LLC shared by `cores` cores.
    pub fn new(cfg: CacheConfig, cores: usize) -> Self {
        Llc {
            sets: vec![VecDeque::with_capacity(cfg.associativity); cfg.sets()],
            mshrs: Vec::new(),
            per_core_mshr: vec![0; cores],
            outbox: VecDeque::new(),
            stats: CacheStats {
                hits: vec![0; cores],
                misses: vec![0; cores],
                ..CacheStats::default()
            },
            cfg,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Statistics so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn split(&self, line: u64) -> (usize, u64) {
        let sets = self.sets.len() as u64;
        ((line % sets) as usize, line / sets)
    }

    /// Performs a load/store access for `core` at CPU cycle `now`.
    pub fn access(
        &mut self,
        core: usize,
        kind: AccessKind,
        addr: PhysAddr,
        now: u64,
    ) -> AccessResult {
        let line = addr.line(self.cfg.line_bytes);
        let (set_idx, tag) = self.split(line);
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|l| l.tag == tag) {
            let mut entry = set.remove(pos).expect("position is valid");
            if kind == AccessKind::Store {
                entry.dirty = true;
            }
            set.push_front(entry);
            self.stats.hits[core] += 1;
            return AccessResult::Hit {
                ready_at: now + self.cfg.hit_latency,
            };
        }
        // Miss: merge into an existing MSHR if one tracks this line.
        if let Some(e) = self.mshrs.iter_mut().find(|e| e.valid && e.line == line) {
            if kind == AccessKind::Store {
                e.store = true;
            }
            self.stats.misses[core] += 1;
            self.stats.mshr_merges += 1;
            return AccessResult::Miss;
        }
        if self.per_core_mshr[core] >= self.cfg.mshrs_per_core {
            return AccessResult::MshrFull;
        }
        let slot = match self.mshrs.iter().position(|e| !e.valid) {
            Some(s) => s,
            None => {
                self.mshrs.push(MshrEntry {
                    line: 0,
                    core: 0,
                    store: false,
                    valid: false,
                });
                self.mshrs.len() - 1
            }
        };
        self.mshrs[slot] = MshrEntry {
            line,
            core,
            store: kind == AccessKind::Store,
            valid: true,
        };
        self.per_core_mshr[core] += 1;
        self.stats.misses[core] += 1;
        self.outbox.push_back(OutboundRequest {
            id: slot as u64,
            line_addr: line * self.cfg.line_bytes,
            write: false,
        });
        AccessResult::Miss
    }

    /// Completes the memory read for MSHR `id`, inserting the line and
    /// returning its line-aligned address (for window wakeup).
    ///
    /// # Panics
    ///
    /// Panics if `id` does not name a valid in-flight MSHR.
    pub fn fill(&mut self, id: u64) -> u64 {
        let slot = id as usize;
        assert!(
            slot < self.mshrs.len() && self.mshrs[slot].valid,
            "fill for unknown mshr {id}"
        );
        let entry = self.mshrs[slot].clone();
        self.mshrs[slot].valid = false;
        self.per_core_mshr[entry.core] -= 1;
        let (set_idx, tag) = self.split(entry.line);
        let assoc = self.cfg.associativity;
        let line_bytes = self.cfg.line_bytes;
        let sets_len = self.sets.len() as u64;
        let set = &mut self.sets[set_idx];
        set.push_front(LineState {
            tag,
            dirty: entry.store,
        });
        if set.len() > assoc {
            let victim = set.pop_back().expect("set overflow implies an entry");
            if victim.dirty {
                let victim_line = victim.tag * sets_len + set_idx as u64;
                self.outbox.push_back(OutboundRequest {
                    id: u64::MAX,
                    line_addr: victim_line * line_bytes,
                    write: true,
                });
                self.stats.writebacks += 1;
            }
        }
        entry.line * self.cfg.line_bytes
    }

    /// Read-only peek: would an access to `addr` by `core` return
    /// [`AccessResult::MshrFull`] this cycle? Mirrors the decision chain
    /// of [`Llc::access`] (hit → MSHR merge → MSHR allocation) without
    /// mutating LRU order, MSHRs, or statistics — the predicate the
    /// skip-ahead engine uses to prove a stalled core's tick is a no-op.
    pub fn would_stall(&self, core: usize, addr: PhysAddr) -> bool {
        if self.per_core_mshr[core] < self.cfg.mshrs_per_core {
            return false;
        }
        let line = addr.line(self.cfg.line_bytes);
        let (set_idx, tag) = self.split(line);
        if self.sets[set_idx].iter().any(|l| l.tag == tag) {
            return false; // would hit
        }
        // Blocked unless the miss can merge into an in-flight MSHR.
        !self.mshrs.iter().any(|e| e.valid && e.line == line)
    }

    /// The oldest pending outbound request, if any.
    pub fn outbox_front(&self) -> Option<OutboundRequest> {
        self.outbox.front().copied()
    }

    /// Removes the oldest outbound request after a successful send.
    pub fn outbox_pop(&mut self) {
        self.outbox.pop_front();
    }

    /// Number of queued outbound requests.
    pub fn outbox_len(&self) -> usize {
        self.outbox.len()
    }

    /// Outstanding misses for `core`.
    pub fn mshrs_in_use(&self, core: usize) -> usize {
        self.per_core_mshr[core]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut c = Llc::new(CacheConfig::tiny(), 1);
        let a = PhysAddr(0x1000);
        assert_eq!(c.access(0, AccessKind::Load, a, 0), AccessResult::Miss);
        let req = c.outbox_front().unwrap();
        assert!(!req.write);
        c.outbox_pop();
        let line = c.fill(req.id);
        assert_eq!(line, 0x1000);
        assert!(matches!(
            c.access(0, AccessKind::Load, a, 10),
            AccessResult::Hit { ready_at: 14 }
        ));
        assert_eq!(c.stats().hits[0], 1);
        assert_eq!(c.stats().misses[0], 1);
    }

    #[test]
    fn mshr_limit_stalls_core() {
        let mut c = Llc::new(CacheConfig::tiny(), 1);
        assert_eq!(
            c.access(0, AccessKind::Load, PhysAddr(0x0000), 0),
            AccessResult::Miss
        );
        assert_eq!(
            c.access(0, AccessKind::Load, PhysAddr(0x4000), 0),
            AccessResult::Miss
        );
        assert_eq!(
            c.access(0, AccessKind::Load, PhysAddr(0x8000), 0),
            AccessResult::MshrFull
        );
        assert_eq!(c.mshrs_in_use(0), 2);
    }

    #[test]
    fn merged_misses_share_one_request() {
        let mut c = Llc::new(CacheConfig::tiny(), 2);
        assert_eq!(
            c.access(0, AccessKind::Load, PhysAddr(0x40), 0),
            AccessResult::Miss
        );
        assert_eq!(
            c.access(1, AccessKind::Load, PhysAddr(0x40), 0),
            AccessResult::Miss
        );
        assert_eq!(c.outbox_len(), 1);
        assert_eq!(c.stats().mshr_merges, 1);
        // Only the allocating core's MSHR is consumed.
        assert_eq!(c.mshrs_in_use(0), 1);
        assert_eq!(c.mshrs_in_use(1), 0);
    }

    #[test]
    fn dirty_eviction_writes_back() {
        let cfg = CacheConfig::tiny(); // 2-way, 32 sets
        let mut c = Llc::new(cfg, 1);
        let sets = cfg.sets() as u64;
        // Three lines in the same set; first is dirtied by a store.
        let mk = |way: u64| PhysAddr(way * sets * cfg.line_bytes);
        for way in 0..3u64 {
            let kind = if way == 0 {
                AccessKind::Store
            } else {
                AccessKind::Load
            };
            match c.access(0, kind, mk(way), 0) {
                AccessResult::Miss => {
                    let req = c.outbox_front().unwrap();
                    c.outbox_pop();
                    c.fill(req.id);
                }
                r => panic!("expected miss, got {r:?}"),
            }
        }
        // The store-allocated line (way 0, LRU by now) was evicted dirty.
        let wb = c.outbox_front().expect("writeback queued");
        assert!(wb.write);
        assert_eq!(wb.line_addr, 0);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn store_hit_marks_dirty_and_writes_back_on_eviction() {
        let cfg = CacheConfig::tiny();
        let mut c = Llc::new(cfg, 1);
        let sets = cfg.sets() as u64;
        let mk = |way: u64| PhysAddr(way * sets * cfg.line_bytes);
        // Fill way 0 clean, then dirty it with a store hit.
        assert_eq!(c.access(0, AccessKind::Load, mk(0), 0), AccessResult::Miss);
        let req = c.outbox_front().unwrap();
        c.outbox_pop();
        c.fill(req.id);
        assert!(matches!(
            c.access(0, AccessKind::Store, mk(0), 1),
            AccessResult::Hit { .. }
        ));
        // Evict it with two more fills.
        for way in 1..3u64 {
            assert_eq!(
                c.access(0, AccessKind::Load, mk(way), 2),
                AccessResult::Miss
            );
            let req = c.outbox_front().unwrap();
            c.outbox_pop();
            c.fill(req.id);
        }
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn paper_llc_geometry() {
        let cfg = CacheConfig::paper_llc();
        assert_eq!(cfg.sets(), 16384);
    }
}
