//! The CPU cluster: cores + shared LLC, with the memory-side interface.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

pub use crate::cache::OutboundRequest;
use crate::cache::{CacheConfig, Llc};
use crate::core::Core;
use crate::trace::TraceSource;

/// Cluster-wide configuration (Table 2 processor parameters).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterConfig {
    /// Instruction-window depth per core.
    pub window_depth: usize,
    /// Dispatch/retire width per core.
    pub width: usize,
    /// Shared LLC parameters.
    pub cache: CacheConfig,
}

impl ClusterConfig {
    /// The paper's processor: 4-wide, 128-entry window, 8 MiB LLC,
    /// 8 MSHRs per core.
    pub fn paper() -> Self {
        ClusterConfig {
            window_depth: 128,
            width: 4,
            cache: CacheConfig::paper_llc(),
        }
    }

    /// Small configuration for unit tests.
    pub fn tiny() -> Self {
        ClusterConfig {
            window_depth: 8,
            width: 4,
            cache: CacheConfig::tiny(),
        }
    }
}

/// Cores sharing one LLC, clocked in the CPU domain.
#[derive(Debug)]
pub struct CpuCluster {
    cores: Vec<Core>,
    llc: Llc,
    cycle: u64,
    hit_wakeups: BinaryHeap<Reverse<(u64, u64)>>,
    scratch: Vec<(u64, u64)>,
}

impl CpuCluster {
    /// Builds a cluster with one core per trace.
    pub fn new(cfg: ClusterConfig, traces: Vec<Box<dyn TraceSource + Send>>) -> Self {
        let n = traces.len();
        let line = cfg.cache.line_bytes;
        CpuCluster {
            cores: traces
                .into_iter()
                .enumerate()
                .map(|(i, t)| Core::new(i, cfg.window_depth, cfg.width, line, t))
                .collect(),
            llc: Llc::new(cfg.cache, n),
            cycle: 0,
            hit_wakeups: BinaryHeap::new(),
            scratch: Vec::new(),
        }
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.cores.len()
    }

    /// Current CPU cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// The shared LLC (for statistics).
    pub fn llc(&self) -> &Llc {
        &self.llc
    }

    /// Instructions retired by `core`.
    pub fn retired(&self, core: usize) -> u64 {
        self.cores[core].retired()
    }

    /// IPC of `core` so far.
    pub fn ipc(&self, core: usize) -> f64 {
        if self.cycle == 0 {
            0.0
        } else {
            self.cores[core].retired() as f64 / self.cycle as f64
        }
    }

    /// Whether every core has retired at least `budget` instructions (or
    /// exhausted its trace).
    pub fn all_reached(&self, budget: u64) -> bool {
        self.cores
            .iter()
            .all(|c| c.retired() >= budget || c.is_done())
    }

    /// Executes one CPU cycle.
    pub fn tick(&mut self) {
        // Deliver due LLC-hit wakeups.
        while let Some(&Reverse((at, line))) = self.hit_wakeups.peek() {
            if at > self.cycle {
                break;
            }
            self.hit_wakeups.pop();
            for c in &mut self.cores {
                c.wake(line);
            }
        }
        let now = self.cycle;
        self.scratch.clear();
        for c in &mut self.cores {
            c.tick(&mut self.llc, now, &mut self.scratch);
        }
        for &(at, line) in &self.scratch {
            self.hit_wakeups.push(Reverse((at, line)));
        }
        self.cycle += 1;
    }

    /// Drains outbound memory requests through `try_send`, which returns
    /// `false` on backpressure (the request stays queued).
    pub fn drain_mem_requests(&mut self, mut try_send: impl FnMut(OutboundRequest) -> bool) {
        while let Some(req) = self.llc.outbox_front() {
            if try_send(req) {
                self.llc.outbox_pop();
            } else {
                break;
            }
        }
    }

    /// Completes the memory read for LLC MSHR `id`, waking waiting loads.
    pub fn complete_read(&mut self, id: u64) {
        let line = self.llc.fill(id);
        for c in &mut self.cores {
            c.wake(line);
        }
    }

    /// If the whole cluster is provably replayable — every core either
    /// stalled on memory or in a closed-form bubble drain (see
    /// [`Core::draining_bubbles`]), and no outbound requests awaiting
    /// injection — returns the next CPU cycle at which its state can
    /// change on its own: the earliest scheduled LLC-hit wakeup, or
    /// `u64::MAX` when only an external memory completion can unblock
    /// it. Ticks on cycles strictly before that either are pure no-ops
    /// or only insert ready bubbles — both reproduced exactly by
    /// [`CpuCluster::skip_to`] — so a driver may skip to any cycle up
    /// to the returned one. Returns `None` while any core can make
    /// observable progress (retire, or LLC traffic).
    pub fn stalled_until(&self) -> Option<u64> {
        if self.llc.outbox_len() > 0 {
            return None;
        }
        if self
            .cores
            .iter()
            .any(|c| !c.stalled_on_memory(&self.llc) && !c.draining_bubbles())
        {
            return None;
        }
        Some(
            self.hit_wakeups
                .peek()
                .map_or(u64::MAX, |&Reverse((at, _))| at),
        )
    }

    /// Advances the cluster clock to `cycle` without simulating the
    /// intervening cycles, replaying any in-progress bubble drains in
    /// closed form so the landing state is bit-identical to ticking.
    /// Sound only when [`CpuCluster::stalled_until`] returned `Some(t)`
    /// with `t >= cycle` and no memory completion was delivered in
    /// between.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `cycle` is in the past.
    pub fn skip_to(&mut self, cycle: u64) {
        debug_assert!(cycle >= self.cycle, "cluster clock cannot go backwards");
        let elapsed = cycle - self.cycle;
        for c in &mut self.cores {
            // No-op for cores that are genuinely stalled (guards inside).
            c.fast_forward_bubbles(elapsed);
        }
        self.cycle = cycle;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{TraceItem, VecTrace};
    use clr_core::addr::PhysAddr;

    fn boxed(items: Vec<TraceItem>) -> Box<dyn TraceSource + Send> {
        Box::new(VecTrace::new(items))
    }

    #[test]
    fn cluster_completes_memory_bound_trace() {
        let items = vec![
            TraceItem::load(2, PhysAddr(0x000)),
            TraceItem::load(2, PhysAddr(0x400)),
        ];
        let mut cl = CpuCluster::new(ClusterConfig::tiny(), vec![boxed(items)]);
        // A trivial "perfect memory": complete reads instantly.
        let mut pending = Vec::new();
        for _ in 0..200 {
            cl.tick();
            cl.drain_mem_requests(|r| {
                if !r.write {
                    pending.push(r.id);
                }
                true
            });
            for id in pending.drain(..) {
                cl.complete_read(id);
            }
            if cl.all_reached(6) {
                break;
            }
        }
        assert_eq!(cl.retired(0), 6);
        assert!(cl.ipc(0) > 0.0);
    }

    #[test]
    fn backpressure_keeps_requests_queued() {
        let items = vec![TraceItem::load(0, PhysAddr(0))];
        let mut cl = CpuCluster::new(ClusterConfig::tiny(), vec![boxed(items)]);
        cl.tick();
        cl.drain_mem_requests(|_| false);
        assert_eq!(cl.llc().outbox_len(), 1);
        cl.drain_mem_requests(|_| true);
        assert_eq!(cl.llc().outbox_len(), 0);
    }

    #[test]
    fn stalled_until_detects_memory_waits_and_skip_is_noop() {
        let items = vec![TraceItem::load(0, PhysAddr(0x40))];
        let mut cl = CpuCluster::new(ClusterConfig::tiny(), vec![boxed(items)]);
        // Dispatching: not stalled.
        assert_eq!(cl.stalled_until(), None);
        cl.tick();
        // The miss is queued outbound: still not skippable.
        assert_eq!(cl.stalled_until(), None);
        let mut pending = Vec::new();
        cl.drain_mem_requests(|r| {
            pending.push(r.id);
            true
        });
        cl.tick();
        // Trace exhausted, window blocked on the load, outbox empty: only
        // a memory completion can unblock the cluster.
        assert_eq!(cl.stalled_until(), Some(u64::MAX));
        // Per-cycle ticks across the stall are no-ops except the clock —
        // so a skip must land in the identical state.
        let retired_before = cl.retired(0);
        cl.skip_to(cl.cycle() + 500);
        cl.tick();
        assert_eq!(cl.retired(0), retired_before);
        assert_eq!(cl.stalled_until(), Some(u64::MAX));
        // The completion unblocks it at any later cycle.
        for id in pending.drain(..) {
            cl.complete_read(id);
        }
        assert_eq!(cl.stalled_until(), None, "woken loads can retire");
        cl.tick();
        assert_eq!(cl.retired(0), 1);
    }

    #[test]
    fn stalled_until_reports_next_hit_wakeup() {
        // Two loads to one line, separated by enough bubbles that the
        // second dispatches only after the first's fill: it hits and
        // schedules a wakeup `hit_latency` ahead.
        let items = vec![
            TraceItem::load(0, PhysAddr(0x40)),
            TraceItem::load(12, PhysAddr(0x40)),
        ];
        let mut cl = CpuCluster::new(ClusterConfig::tiny(), vec![boxed(items)]);
        let mut pending = Vec::new();
        let mut wake_seen = None;
        for _ in 0..50 {
            cl.tick();
            cl.drain_mem_requests(|r| {
                pending.push(r.id);
                true
            });
            for id in pending.drain(..) {
                cl.complete_read(id);
            }
            if let Some(at) = cl.stalled_until() {
                if at != u64::MAX {
                    wake_seen = Some((cl.cycle(), at));
                    break;
                }
            }
        }
        let (now, at) = wake_seen.expect("a scheduled hit wakeup surfaces");
        assert!(at > now, "wakeup strictly ahead: {at} vs {now}");
        // Skipping to the wakeup cycle and ticking delivers it; the whole
        // trace (two loads + 12 bubbles) then retires.
        cl.skip_to(at);
        cl.tick();
        cl.tick();
        assert_eq!(cl.retired(0), 14);
    }

    #[test]
    fn bubble_drain_skip_matches_per_cycle_ticking() {
        // A blocked head miss followed by an item with more bubbles than
        // the tiny window holds: the drain stretch must be replayable in
        // closed form, landing bit-identical to per-cycle ticking.
        let items = || {
            vec![
                TraceItem::load(0, PhysAddr(0x40)),
                TraceItem::load(100, PhysAddr(0x1000)),
            ]
        };
        let mut ticked = CpuCluster::new(ClusterConfig::tiny(), vec![boxed(items())]);
        let mut skipped = CpuCluster::new(ClusterConfig::tiny(), vec![boxed(items())]);
        let mut ids_t = Vec::new();
        let mut ids_s = Vec::new();
        ticked.tick();
        skipped.tick();
        ticked.drain_mem_requests(|r| {
            ids_t.push(r.id);
            true
        });
        skipped.drain_mem_requests(|r| {
            ids_s.push(r.id);
            true
        });
        // Head blocked on the outstanding miss, dispatch mid-bubble:
        // without drain awareness this state was unskippable.
        assert_eq!(skipped.stalled_until(), Some(u64::MAX));
        for _ in 0..64 {
            ticked.tick();
        }
        let target = skipped.cycle() + 64;
        skipped.skip_to(target);
        assert_eq!(ticked.cycle(), skipped.cycle());
        for id in ids_t.drain(..) {
            ticked.complete_read(id);
        }
        for id in ids_s.drain(..) {
            skipped.complete_read(id);
        }
        // From the fill on, the two walks must stay in lockstep.
        for step in 0..200 {
            assert_eq!(ticked.retired(0), skipped.retired(0), "step {step}");
            assert_eq!(
                ticked.stalled_until(),
                skipped.stalled_until(),
                "step {step}"
            );
            ticked.tick();
            skipped.tick();
            ticked.drain_mem_requests(|r| {
                ids_t.push(r.id);
                true
            });
            skipped.drain_mem_requests(|r| {
                ids_s.push(r.id);
                true
            });
            for id in ids_t.drain(..) {
                ticked.complete_read(id);
            }
            for id in ids_s.drain(..) {
                skipped.complete_read(id);
            }
        }
        // 2 loads + 100 bubbles.
        assert_eq!(ticked.retired(0), 102);
        assert_eq!(skipped.retired(0), 102);
    }

    #[test]
    fn two_cores_progress_independently() {
        let a = boxed(vec![TraceItem::load(10, PhysAddr(0x1000))]);
        let b = boxed(vec![TraceItem::load(10, PhysAddr(0x2000))]);
        let mut cl = CpuCluster::new(ClusterConfig::tiny(), vec![a, b]);
        let mut ids = Vec::new();
        for _ in 0..300 {
            cl.tick();
            cl.drain_mem_requests(|r| {
                if !r.write {
                    ids.push(r.id);
                }
                true
            });
            for id in ids.drain(..) {
                cl.complete_read(id);
            }
        }
        assert_eq!(cl.retired(0), 11);
        assert_eq!(cl.retired(1), 11);
    }
}
