//! The CPU cluster: cores + shared LLC, with the memory-side interface.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

pub use crate::cache::OutboundRequest;
use crate::cache::{CacheConfig, Llc};
use crate::core::Core;
use crate::trace::TraceSource;

/// Cluster-wide configuration (Table 2 processor parameters).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterConfig {
    /// Instruction-window depth per core.
    pub window_depth: usize,
    /// Dispatch/retire width per core.
    pub width: usize,
    /// Shared LLC parameters.
    pub cache: CacheConfig,
}

impl ClusterConfig {
    /// The paper's processor: 4-wide, 128-entry window, 8 MiB LLC,
    /// 8 MSHRs per core.
    pub fn paper() -> Self {
        ClusterConfig {
            window_depth: 128,
            width: 4,
            cache: CacheConfig::paper_llc(),
        }
    }

    /// Small configuration for unit tests.
    pub fn tiny() -> Self {
        ClusterConfig {
            window_depth: 8,
            width: 4,
            cache: CacheConfig::tiny(),
        }
    }
}

/// Cores sharing one LLC, clocked in the CPU domain.
#[derive(Debug)]
pub struct CpuCluster {
    cores: Vec<Core>,
    llc: Llc,
    cycle: u64,
    hit_wakeups: BinaryHeap<Reverse<(u64, u64)>>,
    scratch: Vec<(u64, u64)>,
}

impl CpuCluster {
    /// Builds a cluster with one core per trace.
    pub fn new(cfg: ClusterConfig, traces: Vec<Box<dyn TraceSource + Send>>) -> Self {
        let n = traces.len();
        let line = cfg.cache.line_bytes;
        CpuCluster {
            cores: traces
                .into_iter()
                .enumerate()
                .map(|(i, t)| Core::new(i, cfg.window_depth, cfg.width, line, t))
                .collect(),
            llc: Llc::new(cfg.cache, n),
            cycle: 0,
            hit_wakeups: BinaryHeap::new(),
            scratch: Vec::new(),
        }
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.cores.len()
    }

    /// Current CPU cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// The shared LLC (for statistics).
    pub fn llc(&self) -> &Llc {
        &self.llc
    }

    /// Instructions retired by `core`.
    pub fn retired(&self, core: usize) -> u64 {
        self.cores[core].retired()
    }

    /// IPC of `core` so far.
    pub fn ipc(&self, core: usize) -> f64 {
        if self.cycle == 0 {
            0.0
        } else {
            self.cores[core].retired() as f64 / self.cycle as f64
        }
    }

    /// Whether every core has retired at least `budget` instructions (or
    /// exhausted its trace).
    pub fn all_reached(&self, budget: u64) -> bool {
        self.cores
            .iter()
            .all(|c| c.retired() >= budget || c.is_done())
    }

    /// Executes one CPU cycle.
    pub fn tick(&mut self) {
        // Deliver due LLC-hit wakeups.
        while let Some(&Reverse((at, line))) = self.hit_wakeups.peek() {
            if at > self.cycle {
                break;
            }
            self.hit_wakeups.pop();
            for c in &mut self.cores {
                c.wake(line);
            }
        }
        let now = self.cycle;
        self.scratch.clear();
        for c in &mut self.cores {
            c.tick(&mut self.llc, now, &mut self.scratch);
        }
        for &(at, line) in &self.scratch {
            self.hit_wakeups.push(Reverse((at, line)));
        }
        self.cycle += 1;
    }

    /// Drains outbound memory requests through `try_send`, which returns
    /// `false` on backpressure (the request stays queued).
    pub fn drain_mem_requests(&mut self, mut try_send: impl FnMut(OutboundRequest) -> bool) {
        while let Some(req) = self.llc.outbox_front() {
            if try_send(req) {
                self.llc.outbox_pop();
            } else {
                break;
            }
        }
    }

    /// Completes the memory read for LLC MSHR `id`, waking waiting loads.
    pub fn complete_read(&mut self, id: u64) {
        let line = self.llc.fill(id);
        for c in &mut self.cores {
            c.wake(line);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{TraceItem, VecTrace};
    use clr_core::addr::PhysAddr;

    fn boxed(items: Vec<TraceItem>) -> Box<dyn TraceSource + Send> {
        Box::new(VecTrace::new(items))
    }

    #[test]
    fn cluster_completes_memory_bound_trace() {
        let items = vec![
            TraceItem::load(2, PhysAddr(0x000)),
            TraceItem::load(2, PhysAddr(0x400)),
        ];
        let mut cl = CpuCluster::new(ClusterConfig::tiny(), vec![boxed(items)]);
        // A trivial "perfect memory": complete reads instantly.
        let mut pending = Vec::new();
        for _ in 0..200 {
            cl.tick();
            cl.drain_mem_requests(|r| {
                if !r.write {
                    pending.push(r.id);
                }
                true
            });
            for id in pending.drain(..) {
                cl.complete_read(id);
            }
            if cl.all_reached(6) {
                break;
            }
        }
        assert_eq!(cl.retired(0), 6);
        assert!(cl.ipc(0) > 0.0);
    }

    #[test]
    fn backpressure_keeps_requests_queued() {
        let items = vec![TraceItem::load(0, PhysAddr(0))];
        let mut cl = CpuCluster::new(ClusterConfig::tiny(), vec![boxed(items)]);
        cl.tick();
        cl.drain_mem_requests(|_| false);
        assert_eq!(cl.llc().outbox_len(), 1);
        cl.drain_mem_requests(|_| true);
        assert_eq!(cl.llc().outbox_len(), 0);
    }

    #[test]
    fn two_cores_progress_independently() {
        let a = boxed(vec![TraceItem::load(10, PhysAddr(0x1000))]);
        let b = boxed(vec![TraceItem::load(10, PhysAddr(0x2000))]);
        let mut cl = CpuCluster::new(ClusterConfig::tiny(), vec![a, b]);
        let mut ids = Vec::new();
        for _ in 0..300 {
            cl.tick();
            cl.drain_mem_requests(|r| {
                if !r.write {
                    ids.push(r.id);
                }
                true
            });
            for id in ids.drain(..) {
                cl.complete_read(id);
            }
        }
        assert_eq!(cl.retired(0), 11);
        assert_eq!(cl.retired(1), 11);
    }
}
