//! One trace-driven out-of-order core (a port of Ramulator's `Core`).

use clr_core::addr::PhysAddr;

use crate::cache::{AccessKind, AccessResult, Llc};
use crate::trace::{TraceItem, TraceSource};
use crate::window::Window;

/// Dispatch phase of the current trace item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Emitting the item's non-memory bubbles.
    Bubbles(u32),
    /// Issuing the load.
    Load,
    /// Issuing the optional store.
    Store,
}

/// A simplified out-of-order core: 4-wide dispatch/retire over a 128-entry
/// window; loads occupy window slots until their line arrives; stores are
/// posted.
#[derive(Debug)]
pub struct Core {
    id: usize,
    window: Window,
    dispatch_width: usize,
    trace: Box<dyn TraceSource + Send>,
    current: Option<(TraceItem, Phase)>,
    retired: u64,
    trace_done: bool,
    /// Scheduled-hit wakeups are handled by the cluster; the core only
    /// tracks how many loads it has in flight for diagnostics.
    line_bytes: u64,
}

impl std::fmt::Debug for dyn TraceSource + Send {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("TraceSource")
    }
}

impl Core {
    /// Creates a core reading from `trace`.
    pub fn new(
        id: usize,
        window_depth: usize,
        width: usize,
        line_bytes: u64,
        trace: Box<dyn TraceSource + Send>,
    ) -> Self {
        Core {
            id,
            window: Window::new(window_depth, width),
            dispatch_width: width,
            trace,
            current: None,
            retired: 0,
            trace_done: false,
            line_bytes,
        }
    }

    /// Core index.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Instructions retired so far.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Whether the trace is exhausted *and* the window has drained.
    pub fn is_done(&self) -> bool {
        self.trace_done && self.window.is_empty()
    }

    /// Marks loads waiting on `line_addr` ready.
    pub fn wake(&mut self, line_addr: u64) {
        self.window.set_ready(line_addr);
    }

    /// Whether this core's next [`Core::tick`] would be a pure no-op
    /// because it is waiting on memory: nothing at the window head can
    /// retire, and the dispatch stage is blocked (window full, or the
    /// pending load/store would stall on MSHR exhaustion). Only a window
    /// wakeup — an LLC fill or a scheduled hit — can change that, which
    /// is what makes whole-cluster skip-ahead sound.
    pub fn stalled_on_memory(&self, llc: &Llc) -> bool {
        if self.window.head_ready() {
            return false;
        }
        let Some((item, phase)) = self.current else {
            // With no current item the next tick pulls from the trace (or
            // flags it done) — progress either way, unless the trace is
            // already exhausted.
            return self.trace_done;
        };
        match phase {
            Phase::Bubbles(_) => self.window.is_full(),
            Phase::Load => self.window.is_full() || llc.would_stall(self.id, item.read),
            Phase::Store => {
                let addr = item.write.expect("store phase implies a write");
                llc.would_stall(self.id, addr)
            }
        }
    }

    /// Whether this core is in a *bubble drain*: the window head is
    /// blocked on memory, the window still has free slots, and the
    /// current item carries at least enough bubbles to fill them. Every
    /// tick in this state only inserts ready bubbles (retire makes no
    /// progress, and the window fills before the item's load is
    /// reached), so the whole stretch can be replayed in closed form by
    /// [`Core::fast_forward_bubbles`].
    pub fn draining_bubbles(&self) -> bool {
        if self.window.head_ready() || self.window.is_empty() || self.window.is_full() {
            return false;
        }
        matches!(self.current, Some((_, Phase::Bubbles(n))) if n as usize >= self.window.free_slots())
    }

    /// Replays `cycles` ticks of a bubble drain in closed form: inserts
    /// `min(free_slots, cycles × width)` ready bubbles and advances the
    /// bubble count, exactly as that many [`Core::tick`] calls would
    /// (retire stays at zero — the head is blocked — and the LLC is
    /// never touched, since the window fills before the load phase can
    /// issue). A no-op unless [`Core::draining_bubbles`] holds, so it is
    /// safe to call on every core across a cluster skip.
    pub fn fast_forward_bubbles(&mut self, cycles: u64) {
        if cycles == 0 || !self.draining_bubbles() {
            return;
        }
        let Some((item, Phase::Bubbles(n))) = self.current else {
            return;
        };
        let free = self.window.free_slots() as u64;
        let inserts = free.min(cycles.saturating_mul(self.dispatch_width as u64)) as usize;
        for _ in 0..inserts {
            self.window.insert(true, 0);
        }
        self.current = Some((
            item,
            if n as usize > inserts {
                Phase::Bubbles(n - inserts as u32)
            } else {
                Phase::Load
            },
        ));
    }

    /// Executes one CPU cycle: retire, then dispatch up to the width.
    ///
    /// `hit_wakeups` receives `(ready_cycle, line_addr)` events for LLC
    /// hits, which the cluster replays into [`Core::wake`] at the right
    /// time.
    pub fn tick(&mut self, llc: &mut Llc, now: u64, hit_wakeups: &mut Vec<(u64, u64)>) {
        self.retired += self.window.retire() as u64;
        let mut slots = self.dispatch_width;
        while slots > 0 {
            if self.current.is_none() {
                match self.trace.next_item() {
                    Some(item) => {
                        let phase = if item.bubbles > 0 {
                            Phase::Bubbles(item.bubbles)
                        } else {
                            Phase::Load
                        };
                        self.current = Some((item, phase));
                    }
                    None => {
                        self.trace_done = true;
                        return;
                    }
                }
            }
            let (item, phase) = self.current.expect("current item was just set");
            match phase {
                Phase::Bubbles(n) => {
                    if self.window.is_full() {
                        return;
                    }
                    self.window.insert(true, 0);
                    slots -= 1;
                    self.current = Some((
                        item,
                        if n > 1 {
                            Phase::Bubbles(n - 1)
                        } else {
                            Phase::Load
                        },
                    ));
                }
                Phase::Load => {
                    if self.window.is_full() {
                        return;
                    }
                    let line = item.read.line(self.line_bytes) * self.line_bytes;
                    match llc.access(self.id, AccessKind::Load, item.read, now) {
                        AccessResult::Hit { ready_at } => {
                            self.window.insert(false, line);
                            hit_wakeups.push((ready_at, line));
                        }
                        AccessResult::Miss => {
                            self.window.insert(false, line);
                        }
                        AccessResult::MshrFull => return, // stall this cycle
                    }
                    slots -= 1;
                    if item.write.is_some() {
                        self.current = Some((item, Phase::Store));
                    } else {
                        self.current = None;
                    }
                }
                Phase::Store => {
                    let addr: PhysAddr = item.write.expect("store phase implies a write");
                    match llc.access(self.id, AccessKind::Store, addr, now) {
                        AccessResult::Hit { .. } | AccessResult::Miss => {
                            self.current = None; // posted; no window slot
                        }
                        AccessResult::MshrFull => return,
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheConfig;
    use crate::trace::VecTrace;

    fn mk_core(items: Vec<TraceItem>) -> (Core, Llc) {
        let llc = Llc::new(CacheConfig::tiny(), 1);
        let core = Core::new(0, 8, 4, 64, Box::new(VecTrace::new(items)));
        (core, llc)
    }

    #[test]
    fn bubbles_retire_at_full_width() {
        let (mut core, mut llc) = mk_core(vec![TraceItem::load(7, PhysAddr(0))]);
        let mut wake = Vec::new();
        // Cycle 0: dispatch 4 bubbles. Cycle 1: retire 4, dispatch 3 + load.
        core.tick(&mut llc, 0, &mut wake);
        assert_eq!(core.retired(), 0);
        core.tick(&mut llc, 1, &mut wake);
        assert_eq!(core.retired(), 4);
    }

    #[test]
    fn load_miss_blocks_until_fill() {
        let (mut core, mut llc) = mk_core(vec![TraceItem::load(0, PhysAddr(0x40))]);
        let mut wake = Vec::new();
        core.tick(&mut llc, 0, &mut wake);
        // The load is in the window, unfinished.
        for t in 1..10 {
            core.tick(&mut llc, t, &mut wake);
        }
        assert_eq!(core.retired(), 0);
        assert!(!core.is_done());
        // Fill from memory.
        let req = llc.outbox_front().unwrap();
        llc.outbox_pop();
        let line = llc.fill(req.id);
        core.wake(line);
        core.tick(&mut llc, 11, &mut wake);
        assert_eq!(core.retired(), 1);
        assert!(core.is_done());
    }

    #[test]
    fn mshr_full_stalls_dispatch_but_not_retire() {
        // Tiny LLC has 2 MSHRs/core; a third distinct-line load stalls.
        let (mut core, mut llc) = mk_core(vec![
            TraceItem::load(1, PhysAddr(0x0000)),
            TraceItem::load(0, PhysAddr(0x4000)),
            TraceItem::load(0, PhysAddr(0x8000)),
        ]);
        let mut wake = Vec::new();
        for t in 0..6 {
            core.tick(&mut llc, t, &mut wake);
        }
        // Two misses outstanding, the third load stalled.
        assert_eq!(llc.mshrs_in_use(0), 2);
        // The bubble before the first load retires even while stalled.
        assert_eq!(core.retired(), 1);
        // Draining one fill unblocks the stalled load.
        let req = llc.outbox_front().unwrap();
        llc.outbox_pop();
        core.wake(llc.fill(req.id));
        for t in 6..12 {
            core.tick(&mut llc, t, &mut wake);
        }
        assert_eq!(llc.mshrs_in_use(0), 2, "third load now occupies the slot");
    }

    #[test]
    fn store_is_posted_without_window_slot() {
        let (mut core, mut llc) = mk_core(vec![TraceItem::load_store(
            0,
            PhysAddr(0x40),
            PhysAddr(0x40),
        )]);
        let mut wake = Vec::new();
        core.tick(&mut llc, 0, &mut wake);
        // Load missed; store merged into the same MSHR.
        assert_eq!(llc.outbox_len(), 1);
        let req = llc.outbox_front().unwrap();
        llc.outbox_pop();
        let line = llc.fill(req.id);
        core.wake(line);
        core.tick(&mut llc, 1, &mut wake);
        assert_eq!(core.retired(), 1);
        assert!(core.is_done());
    }

    #[test]
    fn hit_wakeup_is_scheduled() {
        let (mut core, mut llc) = mk_core(vec![TraceItem::load(0, PhysAddr(0x40))]);
        // Prime the line into the LLC so the core's load hits.
        use crate::cache::{AccessKind, AccessResult};
        assert_eq!(
            llc.access(0, AccessKind::Load, PhysAddr(0x40), 0),
            AccessResult::Miss
        );
        let req = llc.outbox_front().unwrap();
        llc.outbox_pop();
        llc.fill(req.id);

        let mut wake = Vec::new();
        core.tick(&mut llc, 5, &mut wake);
        assert_eq!(wake.len(), 1);
        let (ready_at, line) = wake[0];
        assert_eq!(ready_at, 5 + llc.config().hit_latency);
        assert_eq!(line, 0x40);
    }
}
