//! Trace-driven CPU and last-level-cache models for the CLR-DRAM
//! evaluation.
//!
//! This crate ports the processor model of Ramulator's CPU-trace mode,
//! which the paper uses (§8.1, Table 2): each core is a simplified
//! out-of-order engine with a 128-entry instruction window and 4-wide
//! dispatch/retire; memory reads occupy window slots until data returns,
//! writes are posted. Cores share an 8 MiB, 8-way LLC with 64 B lines and
//! 8 MSHRs per core; misses and dirty writebacks go to the memory
//! controller of `clr-memsim` (the two are wired together in `clr-sim`).
//!
//! Trace items follow Ramulator's CPU-trace semantics: `bubbles` non-memory
//! instructions, then one memory *read* (load), optionally accompanied by a
//! *write* (store) address.

#![warn(missing_docs)]

pub mod cache;
pub mod cluster;
pub mod core;
pub mod trace;
pub mod window;

pub use cache::{AccessKind, AccessResult, CacheConfig, CacheStats, Llc};
pub use cluster::{ClusterConfig, CpuCluster, OutboundRequest};
pub use trace::{LoopingTrace, TraceItem, TraceSource, VecTrace};
pub use window::Window;
