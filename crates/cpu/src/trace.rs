//! CPU trace items and sources (Ramulator CPU-trace semantics).

use clr_core::addr::PhysAddr;

/// One trace record: `bubbles` non-memory instructions followed by one
/// memory read, optionally with an associated write (store) address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceItem {
    /// Non-memory instructions preceding the load.
    pub bubbles: u32,
    /// Load address.
    pub read: PhysAddr,
    /// Optional store address retired together with the load.
    pub write: Option<PhysAddr>,
}

impl TraceItem {
    /// A record with only a load.
    pub fn load(bubbles: u32, read: PhysAddr) -> Self {
        TraceItem {
            bubbles,
            read,
            write: None,
        }
    }

    /// A record with a load and a store.
    pub fn load_store(bubbles: u32, read: PhysAddr, write: PhysAddr) -> Self {
        TraceItem {
            bubbles,
            read,
            write: Some(write),
        }
    }

    /// Instructions this record contributes (bubbles + the load; stores
    /// are not counted as retired instructions, following Ramulator).
    pub fn instructions(&self) -> u64 {
        self.bubbles as u64 + 1
    }
}

/// A source of trace records driving one core.
///
/// Implementations must be deterministic for reproducibility; randomized
/// generators should be seeded.
pub trait TraceSource {
    /// Next record, or `None` when the trace is exhausted.
    fn next_item(&mut self) -> Option<TraceItem>;
}

/// A trace backed by a vector, played once.
#[derive(Debug, Clone)]
pub struct VecTrace {
    items: Vec<TraceItem>,
    pos: usize,
}

impl VecTrace {
    /// Wraps a vector of records.
    pub fn new(items: Vec<TraceItem>) -> Self {
        VecTrace { items, pos: 0 }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the trace holds no records.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

impl TraceSource for VecTrace {
    fn next_item(&mut self) -> Option<TraceItem> {
        let item = self.items.get(self.pos).copied();
        if item.is_some() {
            self.pos += 1;
        }
        item
    }
}

impl FromIterator<TraceItem> for VecTrace {
    fn from_iter<I: IntoIterator<Item = TraceItem>>(iter: I) -> Self {
        VecTrace::new(iter.into_iter().collect())
    }
}

/// Replays an inner trace in a loop forever (Ramulator re-reads traces
/// until the instruction budget is met).
#[derive(Debug, Clone)]
pub struct LoopingTrace {
    items: Vec<TraceItem>,
    pos: usize,
}

impl LoopingTrace {
    /// Wraps a vector of records to loop over.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty (an empty loop would never yield).
    pub fn new(items: Vec<TraceItem>) -> Self {
        assert!(!items.is_empty(), "cannot loop an empty trace");
        LoopingTrace { items, pos: 0 }
    }
}

impl TraceSource for LoopingTrace {
    fn next_item(&mut self) -> Option<TraceItem> {
        let item = self.items[self.pos];
        self.pos = (self.pos + 1) % self.items.len();
        Some(item)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_trace_plays_once() {
        let mut t = VecTrace::new(vec![TraceItem::load(2, PhysAddr(0x40))]);
        assert_eq!(t.len(), 1);
        assert!(t.next_item().is_some());
        assert!(t.next_item().is_none());
    }

    #[test]
    fn looping_trace_wraps() {
        let mut t = LoopingTrace::new(vec![
            TraceItem::load(0, PhysAddr(0)),
            TraceItem::load(1, PhysAddr(64)),
        ]);
        let a = t.next_item().unwrap();
        let b = t.next_item().unwrap();
        let c = t.next_item().unwrap();
        assert_eq!(a.read, PhysAddr(0));
        assert_eq!(b.read, PhysAddr(64));
        assert_eq!(c.read, PhysAddr(0));
    }

    #[test]
    fn instruction_accounting() {
        assert_eq!(TraceItem::load(3, PhysAddr(0)).instructions(), 4);
        assert_eq!(
            TraceItem::load_store(0, PhysAddr(0), PhysAddr(64)).instructions(),
            1
        );
    }

    #[test]
    #[should_panic(expected = "empty trace")]
    fn empty_looping_trace_panics() {
        let _ = LoopingTrace::new(Vec::new());
    }
}
