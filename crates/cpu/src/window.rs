//! The reorder/instruction window (a port of Ramulator's `Window`).

/// A circular instruction window with in-order retire.
///
/// Entries are either *ready* (non-memory instructions, cache hits whose
/// data arrived) or *pending* on a memory line address. Up to
/// `retire_width` ready entries retire per cycle, strictly in order.
#[derive(Debug, Clone)]
pub struct Window {
    ready: Vec<bool>,
    addr: Vec<u64>,
    /// Slot indices of entries still pending on a memory line
    /// (`addr[slot] != NO_ADDR`), unordered. Wakes scan only these —
    /// the pending set is bounded by outstanding misses, far below the
    /// window depth — instead of walking the whole ring.
    waiting: Vec<usize>,
    depth: usize,
    retire_width: usize,
    load: usize,
    head: usize,
    tail: usize,
}

/// Sentinel line address for entries that never wait on memory.
const NO_ADDR: u64 = u64::MAX;

impl Window {
    /// Creates a window of `depth` entries retiring `retire_width` per
    /// cycle.
    ///
    /// # Panics
    ///
    /// Panics if `depth` or `retire_width` is zero.
    pub fn new(depth: usize, retire_width: usize) -> Self {
        assert!(depth > 0 && retire_width > 0);
        Window {
            ready: vec![false; depth],
            addr: vec![NO_ADDR; depth],
            waiting: Vec::new(),
            depth,
            retire_width,
            load: 0,
            head: 0,
            tail: 0,
        }
    }

    /// Whether no more instructions can be dispatched.
    pub fn is_full(&self) -> bool {
        self.load == self.depth
    }

    /// Whether the window holds no instructions.
    pub fn is_empty(&self) -> bool {
        self.load == 0
    }

    /// Occupied entries.
    pub fn occupancy(&self) -> usize {
        self.load
    }

    /// Unoccupied entries — how many dispatches fit before the window
    /// is full.
    pub fn free_slots(&self) -> usize {
        self.depth - self.load
    }

    /// Whether the oldest entry could retire this cycle — i.e. whether
    /// [`Window::retire`] would make progress. `false` for an empty
    /// window or one blocked on a pending load at its head.
    pub fn head_ready(&self) -> bool {
        self.load > 0 && self.ready[self.tail]
    }

    /// Dispatches one instruction. `ready = true` for non-memory work,
    /// `false` with the memory line address for loads awaiting data.
    ///
    /// # Panics
    ///
    /// Panics if the window is full (callers must check
    /// [`Window::is_full`]).
    pub fn insert(&mut self, ready: bool, line_addr: u64) {
        assert!(!self.is_full(), "window overflow");
        self.ready[self.head] = ready;
        self.addr[self.head] = if ready { NO_ADDR } else { line_addr };
        if !ready {
            self.waiting.push(self.head);
        }
        self.head = (self.head + 1) % self.depth;
        self.load += 1;
    }

    /// Retires up to `retire_width` ready instructions in order, returning
    /// the count retired this cycle.
    pub fn retire(&mut self) -> usize {
        let mut n = 0;
        while n < self.retire_width && self.load > 0 && self.ready[self.tail] {
            self.ready[self.tail] = false;
            self.addr[self.tail] = NO_ADDR;
            self.tail = (self.tail + 1) % self.depth;
            self.load -= 1;
            n += 1;
        }
        n
    }

    /// Marks every entry waiting on `line_addr` as ready (a cache line
    /// fill serves all loads to that line).
    pub fn set_ready(&mut self, line_addr: u64) {
        let mut i = 0;
        while i < self.waiting.len() {
            let s = self.waiting[i];
            if self.addr[s] == line_addr {
                self.ready[s] = true;
                self.addr[s] = NO_ADDR;
                self.waiting.swap_remove(i);
            } else {
                i += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retires_in_order_up_to_width() {
        let mut w = Window::new(8, 4);
        for _ in 0..6 {
            w.insert(true, 0);
        }
        assert_eq!(w.retire(), 4);
        assert_eq!(w.retire(), 2);
        assert!(w.is_empty());
    }

    #[test]
    fn pending_load_blocks_retire() {
        let mut w = Window::new(8, 4);
        w.insert(true, 0);
        w.insert(false, 0x40); // load
        w.insert(true, 0);
        assert_eq!(w.retire(), 1); // only the first bubble
        assert_eq!(w.retire(), 0); // blocked on the load
        w.set_ready(0x40);
        assert_eq!(w.retire(), 2); // load + following bubble
    }

    #[test]
    fn set_ready_wakes_all_waiters_on_line() {
        let mut w = Window::new(8, 8);
        w.insert(false, 0x40);
        w.insert(false, 0x40);
        w.insert(false, 0x80);
        w.set_ready(0x40);
        assert_eq!(w.retire(), 2);
        assert_eq!(w.occupancy(), 1);
    }

    #[test]
    fn full_window_reports_full() {
        let mut w = Window::new(2, 1);
        w.insert(true, 0);
        w.insert(false, 0x40);
        assert!(w.is_full());
    }

    #[test]
    #[should_panic(expected = "window overflow")]
    fn overflow_panics() {
        let mut w = Window::new(1, 1);
        w.insert(true, 0);
        w.insert(true, 0);
    }

    #[test]
    fn wraparound_is_sound() {
        let mut w = Window::new(4, 2);
        for round in 0..10 {
            w.insert(false, 0x100 + round);
            w.insert(true, 0);
            w.set_ready(0x100 + round);
            assert_eq!(w.retire(), 2, "round {round}");
        }
        assert!(w.is_empty());
    }
}
