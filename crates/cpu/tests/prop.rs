//! Property-based tests of the window, LLC, and core models.

use clr_core::addr::PhysAddr;
use clr_cpu::cache::{AccessKind, AccessResult, CacheConfig, Llc};
use clr_cpu::cluster::{ClusterConfig, CpuCluster};
use clr_cpu::trace::{TraceItem, TraceSource, VecTrace};
use clr_cpu::window::Window;
use proptest::prelude::*;

proptest! {
    /// The window never exceeds its depth, never retires more than its
    /// width per cycle, and retires exactly as many instructions as were
    /// inserted.
    #[test]
    fn window_conserves_instructions(
        ops in proptest::collection::vec(any::<bool>(), 1..300),
        depth in 1usize..32,
        width in 1usize..8,
    ) {
        let mut w = Window::new(depth, width);
        let mut inserted = 0u64;
        let mut retired = 0u64;
        let mut pending: Vec<u64> = Vec::new();
        let mut next_line = 0u64;
        for ready in ops {
            if w.is_full() {
                // Wake everything, then drain.
                for line in pending.drain(..) {
                    w.set_ready(line);
                }
                while !w.is_empty() {
                    let r = w.retire();
                    prop_assert!(r <= width);
                    retired += r as u64;
                }
            }
            if ready {
                w.insert(true, 0);
            } else {
                next_line += 64;
                w.insert(false, next_line);
                pending.push(next_line);
            }
            inserted += 1;
            prop_assert!(w.occupancy() <= depth);
            retired += w.retire() as u64;
        }
        for line in pending.drain(..) {
            w.set_ready(line);
        }
        while !w.is_empty() {
            retired += w.retire() as u64;
        }
        prop_assert_eq!(inserted, retired);
    }

    /// LLC invariants under random access streams: hits + misses equals
    /// accesses; per-core MSHR occupancy never exceeds the limit; every
    /// fill releases exactly one MSHR.
    #[test]
    fn llc_accounting(
        accesses in proptest::collection::vec((0u64..(1 << 16), any::<bool>()), 1..300),
    ) {
        let cfg = CacheConfig::tiny();
        let mut llc = Llc::new(cfg, 1);
        let mut issued = 0u64;
        for (i, &(line, store)) in accesses.iter().enumerate() {
            let kind = if store { AccessKind::Store } else { AccessKind::Load };
            match llc.access(0, kind, PhysAddr(line * 64), i as u64) {
                AccessResult::MshrFull => {
                    // Drain one fill to make room.
                    if let Some(req) = llc.outbox_front() {
                        if !req.write {
                            llc.outbox_pop();
                            llc.fill(req.id);
                        } else {
                            llc.outbox_pop();
                        }
                    }
                }
                _ => issued += 1,
            }
            prop_assert!(llc.mshrs_in_use(0) <= cfg.mshrs_per_core);
        }
        let s = llc.stats();
        prop_assert_eq!(s.hits[0] + s.misses[0], issued);
    }

    /// A core driven by a perfect (instant) memory retires its whole
    /// trace, and its IPC never exceeds the machine width.
    #[test]
    fn core_retires_trace_with_instant_memory(
        items in proptest::collection::vec(
            (0u32..6, 0u64..(1 << 18), any::<bool>()),
            1..60
        ),
    ) {
        let trace: Vec<TraceItem> = items
            .iter()
            .map(|&(bubbles, line, has_store)| TraceItem {
                bubbles,
                read: PhysAddr(line * 64),
                write: has_store.then_some(PhysAddr(line * 64)),
            })
            .collect();
        let expect: u64 = trace.iter().map(|t| t.instructions()).sum();
        let boxed: Box<dyn TraceSource + Send> = Box::new(VecTrace::new(trace));
        let mut cl = CpuCluster::new(ClusterConfig::tiny(), vec![boxed]);
        let mut ids = Vec::new();
        for _ in 0..200_000 {
            cl.tick();
            cl.drain_mem_requests(|r| {
                if !r.write {
                    ids.push(r.id);
                }
                true
            });
            for id in ids.drain(..) {
                cl.complete_read(id);
            }
            if cl.all_reached(expect) {
                break;
            }
        }
        prop_assert_eq!(cl.retired(0), expect);
        prop_assert!(cl.ipc(0) <= 4.0 + 1e-9);
    }
}
