//! Fleet-scale batched simulation: hundreds to thousands of
//! heterogeneous CLR-DRAM instances through one persistent executor.
//!
//! A *fleet* models an operator's view of CLR-DRAM: many independent
//! small systems — per-tenant workload mixes, seeds, geometries,
//! relocation models, and mode-management policies all varying across
//! instances — simulated as whole-instance jobs on the same
//! [`Executor`](clr_memsim::Executor) pool that powers the in-run
//! channel walk. Each instance is a complete
//! [`clr_sim`] run (optionally with a [`clr_policy`] runtime in the
//! loop); the fleet layer adds:
//!
//! * **deterministic synthesis** — [`FleetSpec::synth`] expands a
//!   `(count, seed, scale)` triple into a reproducible heterogeneous
//!   instance roster ([`spec`]);
//! * **batched execution** — [`run_fleet`] submits every instance to
//!   the shared pool and collects results in instance order, so the
//!   report is bit-identical for any pool size ([`run`]);
//! * **distribution fusion** — fleet-level read-latency percentiles
//!   come from exact [`LatencyHistogram`](clr_obs::LatencyHistogram)
//!   bucket folds over the per-instance histograms (no re-simulation),
//!   alongside per-tenant slowdowns, capacity forfeited, and migration
//!   energy; a fleet [`SloSpec`](clr_obs::SloSpec) — instance-granular
//!   error budgets plus fused scalar bounds — yields the verdict
//!   embedded in the `clr-dram/fleet/v1` JSON ([`report`]).
//!
//! The JSON deliberately carries **no host wall-clock**: same spec +
//! same seed ⇒ byte-identical bytes regardless of pool size or host.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod report;
pub mod run;
pub mod spec;

pub use report::{fleet_series, fleet_slo_spec, FleetReport, InstanceResult};
pub use run::{run_fleet, run_instance};
pub use spec::{FleetSpec, InstanceSpec};
