//! Fleet-level fusion: distributions, SLO verdict, and the
//! `clr-dram/fleet/v2` JSON.
//!
//! Per-instance read-latency histograms fold into the fleet
//! distribution with exact bucket sums
//! ([`LatencyHistogram::fused`]) — fleet p50/p95/p99 cost one merge
//! pass, never a re-simulation. The SLO verdict reuses the
//! [`clr_obs::slo`] engine by laying the fleet out as a
//! [`TimeSeries`] with **one window per instance**: a windowed
//! objective's error budget then reads as "the fraction of instances
//! allowed to violate", and scalar objectives bound the fused
//! distribution and the worst per-tenant slowdown.
//!
//! The JSON is a pure function of the fleet spec: stable key order,
//! fixed-precision floats, and **no host wall-clock or pool-shape
//! fields**, so byte-identity across pool sizes is checkable with
//! `==` on the emitted strings.

use clr_memsim::stats::MemStats;
use clr_obs::{
    BlameSet, LatencyHistogram, ScalarObjective, SeriesCounters, SeriesGauges, SkipProfile,
    SloReport, SloSpec, TimeSeries, WaitCause, WindowMetric, WindowSummary, WindowedObjective,
};
use clr_sim::experiment::policies::{SLO_MAX_SLOWDOWN_MILLI, SLO_READ_P99_CYCLES};
use clr_sim::geomean;

use crate::spec::FleetSpec;

/// Fraction of instances allowed to violate the per-instance read-p99
/// bound before the fleet objective fails.
pub const FLEET_P99_ERROR_BUDGET: f64 = 0.10;

/// Max-slowdown ceiling for *background-relocation* instances,
/// milli-units: double the curated contention sweep's
/// [`SLO_MAX_SLOWDOWN_MILLI`] bound. The randomized fleet roster
/// includes adversarial tenant pairings the sweep deliberately
/// excludes, so the fleet holds background instances to a looser — but
/// still finite — interference promise.
pub const FLEET_MAX_SLOWDOWN_BACKGROUND_MILLI: u64 = 2 * SLO_MAX_SLOWDOWN_MILLI;

/// One instance's fused results (measurement window only).
#[derive(Debug, Clone)]
pub struct InstanceResult {
    /// Instance id (roster index).
    pub id: u32,
    /// The instance's master seed.
    pub seed: u64,
    /// DRAM channels.
    pub channels: u32,
    /// Tenant workload names, core order.
    pub tenant_names: Vec<String>,
    /// Mode-management label ([`crate::spec::InstanceSpec::policy_label`]).
    pub policy_label: String,
    /// Relocation model label (`stall` / `background`).
    pub relocation_label: &'static str,
    /// Instructions per tenant core in the measurement window.
    pub budget_insts: u64,
    /// Per-tenant IPC, core order.
    pub ipc: Vec<f64>,
    /// Per-tenant slowdowns (`alone_ipc / shared_ipc`; `[1.0]` for
    /// single-tenant instances).
    pub slowdowns: Vec<f64>,
    /// DRAM cycles in the measurement window.
    pub dram_cycles: u64,
    /// Total DRAM energy over the window, joules.
    pub energy_j: f64,
    /// Mode-management data-movement energy, joules.
    pub migration_energy_j: f64,
    /// Time-averaged fraction of device capacity forfeited to
    /// high-performance mode.
    pub capacity_forfeited: f64,
    /// High-performance row fraction at the end of the run.
    pub final_hp_fraction: f64,
    /// Fused memory-system statistics (all channels).
    pub mem: MemStats,
    /// Fused skip-ahead profile of the instance's shared run (host-side
    /// observability: jump histogram + trigger attribution).
    pub skip_profile: SkipProfile,
}

impl InstanceResult {
    /// The instance's worst per-tenant slowdown.
    pub fn max_slowdown(&self) -> f64 {
        self.slowdowns.iter().cloned().fold(1.0, f64::max)
    }
}

/// Lays the fleet out as one [`TimeSeries`] window per instance
/// (window `i` = instance `i`'s whole measurement window), so the
/// windowed SLO engine's error budgets quantify over *instances*.
pub fn fleet_series(instances: &[InstanceResult]) -> TimeSeries {
    let mut ts = TimeSeries::new(instances.len().max(1));
    for (i, inst) in instances.iter().enumerate() {
        let m = &inst.mem;
        ts.push(WindowSummary {
            index: i as u64,
            start_cycle: i as u64,
            end_cycle: i as u64 + 1,
            sources: 1,
            counters: SeriesCounters {
                acts: m.acts_max_capacity + m.acts_high_performance,
                reads: m.reads,
                writes: m.writes,
                mode_transitions: m.mode_transitions,
                migration_jobs: m.migration_jobs_completed,
                frames_moved: m.migration_fills,
                stall_cycles: m.relocation_stall_cycles,
                migration_slot_cycles: m.migration_slot_cycles,
            },
            gauges: SeriesGauges {
                hp_permille: (inst.final_hp_fraction * 1000.0) as u64,
                ..SeriesGauges::default()
            },
            read_latency: m.read_latency_hist.clone(),
            read_blame: m.read_blame.clone(),
        });
    }
    ts
}

/// The fleet service-level objective (relocation-aware since `v2`):
///
/// * **windowed** — each instance's read p99 stays under
///   [`SLO_READ_P99_CYCLES`], with [`FLEET_P99_ERROR_BUDGET`] of
///   instances allowed to violate (tail tenants exist in any fleet);
/// * **scalars** — the *fused* fleet read p99 stays under the same
///   bound; the worst per-tenant slowdown on *background-relocation*
///   instances stays under [`FLEET_MAX_SLOWDOWN_BACKGROUND_MILLI`];
///   and the worst slowdown on *stall-mode* instances is reported
///   against the sweep's [`SLO_MAX_SLOWDOWN_MILLI`] bound but
///   annotated `expected_fail` — stall-mode relocation blocks demand
///   service for entire transition batches, so a fairness bound
///   designed for background relocation is violated *by design*, and
///   gating on it would leave the fleet verdict permanently red.
pub fn fleet_slo_spec(
    fused_read_p99: u64,
    max_background_slowdown_milli: u64,
    max_stall_slowdown_milli: u64,
) -> SloSpec {
    let mut spec = SloSpec::named("fleet-v2");
    spec.windowed.push(WindowedObjective::budgeted(
        WindowMetric::ReadP99,
        SLO_READ_P99_CYCLES,
        FLEET_P99_ERROR_BUDGET,
    ));
    spec.scalars.push(ScalarObjective {
        name: "fleet_read_p99_cycles",
        value: fused_read_p99,
        max: SLO_READ_P99_CYCLES,
        expected_fail: false,
    });
    spec.scalars.push(ScalarObjective {
        name: "max_background_slowdown_milli",
        value: max_background_slowdown_milli,
        max: FLEET_MAX_SLOWDOWN_BACKGROUND_MILLI,
        expected_fail: false,
    });
    spec.scalars.push(ScalarObjective {
        name: "max_stall_slowdown_milli",
        value: max_stall_slowdown_milli,
        max: SLO_MAX_SLOWDOWN_MILLI,
        expected_fail: true,
    });
    spec
}

/// The worst per-tenant slowdown across instances of one relocation
/// class (`1.0` when the roster has no such instance).
fn class_max_slowdown(instances: &[InstanceResult], label: &str) -> f64 {
    instances
        .iter()
        .filter(|i| i.relocation_label == label)
        .map(InstanceResult::max_slowdown)
        .fold(1.0, f64::max)
}

/// The fused fleet report.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Scale label the roster was synthesized at.
    pub scale: &'static str,
    /// Fleet master seed.
    pub seed: u64,
    /// Per-instance results, id order.
    pub instances: Vec<InstanceResult>,
    /// Exact bucket-fold of every instance's read-latency histogram.
    pub fused_read_latency: LatencyHistogram,
    /// Exact per-cause fold of every instance's read blame budgets.
    pub fused_read_blame: BlameSet,
    /// Counter-wise fold of every instance's skip-ahead profile.
    pub fused_skip_profile: SkipProfile,
    /// Geomean over every tenant IPC in the fleet.
    pub ipc_geomean: f64,
    /// Worst per-tenant slowdown across the fleet.
    pub max_tenant_slowdown: f64,
    /// Worst slowdown across background-relocation instances.
    pub max_background_slowdown: f64,
    /// Worst slowdown across stall-mode instances.
    pub max_stall_slowdown: f64,
    /// Mean capacity forfeited across instances.
    pub mean_capacity_forfeited: f64,
    /// Total DRAM energy, joules.
    pub total_energy_j: f64,
    /// Total mode-management data-movement energy, joules.
    pub total_migration_energy_j: f64,
    /// Sum of instance measurement windows, DRAM cycles.
    pub dram_cycles_total: u64,
    /// The SLO verdict over the instance-granular series.
    pub slo: SloReport,
    /// Pool threads the caller asked for (host-side observability;
    /// deliberately **not** in the JSON).
    pub pool_threads_requested: usize,
    /// Pool threads after the host-parallelism clamp (not in the JSON).
    pub pool_threads_effective: usize,
}

impl FleetReport {
    /// Fuses per-instance results into the fleet report. Skipped jobs
    /// never happen here ([`clr_memsim::Executor::run_batch`] returns
    /// every result or propagates the panic), so `instances` is
    /// id-ordered and complete.
    pub fn fuse(
        spec: &FleetSpec,
        instances: Vec<InstanceResult>,
        pool_threads_requested: usize,
        pool_threads_effective: usize,
    ) -> FleetReport {
        assert_eq!(instances.len(), spec.instances.len(), "batch is complete");
        let fused_read_latency =
            LatencyHistogram::fused(instances.iter().map(|i| &i.mem.read_latency_hist));
        let all_ipc: Vec<f64> = instances
            .iter()
            .flat_map(|i| i.ipc.iter().copied())
            .collect();
        let max_tenant_slowdown = instances
            .iter()
            .map(InstanceResult::max_slowdown)
            .fold(1.0, f64::max);
        let max_background_slowdown = class_max_slowdown(&instances, "background");
        let max_stall_slowdown = class_max_slowdown(&instances, "stall");
        let mean_capacity_forfeited = instances.iter().map(|i| i.capacity_forfeited).sum::<f64>()
            / instances.len().max(1) as f64;
        let fused_read_blame = BlameSet::fused(instances.iter().map(|i| &i.mem.read_blame));
        let mut fused_skip_profile = SkipProfile::new();
        for i in &instances {
            fused_skip_profile.merge(&i.skip_profile);
        }
        let slo = fleet_slo_spec(
            fused_read_latency.p99(),
            (max_background_slowdown * 1000.0).round() as u64,
            (max_stall_slowdown * 1000.0).round() as u64,
        )
        .evaluate(&fleet_series(&instances));
        FleetReport {
            scale: spec.scale.label(),
            seed: spec.seed,
            ipc_geomean: geomean(&all_ipc),
            max_tenant_slowdown,
            max_background_slowdown,
            max_stall_slowdown,
            mean_capacity_forfeited,
            total_energy_j: instances.iter().map(|i| i.energy_j).sum(),
            total_migration_energy_j: instances.iter().map(|i| i.migration_energy_j).sum(),
            dram_cycles_total: instances.iter().map(|i| i.dram_cycles).sum(),
            fused_read_latency,
            fused_read_blame,
            fused_skip_profile,
            slo,
            instances,
            pool_threads_requested,
            pool_threads_effective,
        }
    }

    /// Serializes the report as deterministic `clr-dram/fleet/v2`
    /// JSON. `v2` adds the relocation-aware slowdown scalars
    /// (`max_background_slowdown` / `max_stall_slowdown`, the latter
    /// `expected_fail`-annotated in the SLO), the fused fleet blame
    /// distribution, and the fused skip-ahead profile.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"schema\": \"clr-dram/fleet/v2\",\n");
        s.push_str(&format!("  \"scale\": \"{}\",\n", self.scale));
        s.push_str(&format!("  \"seed\": {},\n", self.seed));
        s.push_str(&format!("  \"instances_n\": {},\n", self.instances.len()));
        let h = &self.fused_read_latency;
        s.push_str("  \"fleet\": {\n");
        s.push_str(&format!(
            "    \"read_latency\": {{\"count\": {}, \"mean\": {:.3}, \"p50\": {}, \
             \"p95\": {}, \"p99\": {}, \"p999\": {}}},\n",
            h.count(),
            h.mean(),
            h.p50(),
            h.p95(),
            h.p99(),
            h.p999(),
        ));
        s.push_str(&format!("    \"ipc_geomean\": {:.6},\n", self.ipc_geomean));
        s.push_str(&format!(
            "    \"max_tenant_slowdown\": {:.6},\n",
            self.max_tenant_slowdown
        ));
        s.push_str(&format!(
            "    \"max_background_slowdown\": {:.6},\n",
            self.max_background_slowdown
        ));
        s.push_str(&format!(
            "    \"max_stall_slowdown\": {:.6},\n",
            self.max_stall_slowdown
        ));
        s.push_str(&format!(
            "    \"mean_capacity_forfeited\": {:.6},\n",
            self.mean_capacity_forfeited
        ));
        s.push_str(&format!(
            "    \"total_energy_j\": {:.9},\n",
            self.total_energy_j
        ));
        s.push_str(&format!(
            "    \"total_migration_energy_j\": {:.9},\n",
            self.total_migration_energy_j
        ));
        s.push_str(&format!(
            "    \"dram_cycles_total\": {},\n",
            self.dram_cycles_total
        ));
        // Fleet-wide wait anatomy: exact per-cause cycle budgets fused
        // across every instance, plus permille-of-total-wait shares.
        let blame_total = self.fused_read_blame.total_cycles();
        let blame_entry = |scale: u64| {
            WaitCause::ALL
                .iter()
                .map(|&c| {
                    format!(
                        "\"{}\": {}",
                        c.label(),
                        self.fused_read_blame.of(c).sum() * 1000 / scale.max(1)
                    )
                })
                .collect::<Vec<_>>()
                .join(", ")
        };
        s.push_str(&format!(
            "    \"blame\": {{\"read_latency_cycles\": {}, \"cycles\": {{{}}}, \
             \"permille\": {{{}}}}},\n",
            self.fused_read_latency.sum(),
            blame_entry(1000),
            blame_entry(blame_total),
        ));
        // Fused skip-ahead profile: how the fleet's walks advanced time
        // (host-side observability; identical across pool sizes because
        // every instance walks the same schedule).
        let sp = &self.fused_skip_profile;
        let triggers = clr_obs::EventSource::ALL
            .iter()
            .map(|&src| format!("\"{}\": {}", src.label(), sp.triggers[src.index()]))
            .collect::<Vec<_>>()
            .join(", ");
        s.push_str(&format!(
            "    \"skip_profile\": {{\"ticked_cycles\": {}, \"skipped_cycles\": {}, \
             \"events_per_kilocycle\": {:.3}, \"jumps\": {{\"count\": {}, \"p50\": {}, \
             \"p95\": {}, \"p99\": {}}}, \"triggers\": {{{}}}}}\n",
            sp.ticked_cycles,
            sp.skipped_cycles,
            sp.events_per_kilocycle(),
            sp.jumps.count(),
            sp.jumps.p50(),
            sp.jumps.p95(),
            sp.jumps.p99(),
            triggers,
        ));
        s.push_str("  },\n");
        s.push_str(&format!("  \"slo_pass\": {},\n", self.slo.pass()));
        // SloReport::to_json is a complete JSON object; indentation
        // inside it is cosmetic only.
        s.push_str(&format!("  \"slo\": {},\n", self.slo.to_json()));
        s.push_str("  \"instances\": [\n");
        for (i, inst) in self.instances.iter().enumerate() {
            let tenants: Vec<String> = inst
                .tenant_names
                .iter()
                .map(|n| format!("\"{n}\""))
                .collect();
            let ipc: Vec<String> = inst.ipc.iter().map(|v| format!("{v:.6}")).collect();
            let slow: Vec<String> = inst.slowdowns.iter().map(|v| format!("{v:.6}")).collect();
            s.push_str(&format!(
                "    {{\"id\": {}, \"seed\": {}, \"channels\": {}, \"tenants\": [{}], \
                 \"policy\": \"{}\", \"relocation\": \"{}\", \"budget_insts\": {}, \
                 \"ipc\": [{}], \"slowdowns\": [{}], \"max_slowdown\": {:.6}, \
                 \"read_p50\": {}, \"read_p95\": {}, \"read_p99\": {}, \
                 \"capacity_forfeited\": {:.6}, \"final_hp_fraction\": {:.6}, \
                 \"energy_j\": {:.9}, \"migration_energy_j\": {:.9}, \
                 \"dram_cycles\": {}, \"migration_jobs\": {}, \"mode_transitions\": {}}}{}\n",
                inst.id,
                inst.seed,
                inst.channels,
                tenants.join(", "),
                inst.policy_label,
                inst.relocation_label,
                inst.budget_insts,
                ipc.join(", "),
                slow.join(", "),
                inst.max_slowdown(),
                inst.mem.read_latency_hist.p50(),
                inst.mem.read_latency_hist.p95(),
                inst.mem.read_latency_hist.p99(),
                inst.capacity_forfeited,
                inst.final_hp_fraction,
                inst.energy_j,
                inst.migration_energy_j,
                inst.dram_cycles,
                inst.mem.migration_jobs_completed,
                inst.mem.mode_transitions,
                if i + 1 < self.instances.len() {
                    ","
                } else {
                    ""
                },
            ));
        }
        s.push_str("  ]\n");
        s.push_str("}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stub_instance(id: u32, p99_latency: u64, slowdown: f64) -> InstanceResult {
        let mut mem = MemStats {
            reads: 100,
            ..MemStats::default()
        };
        mem.read_latency_hist.record_n(p99_latency, 100);
        InstanceResult {
            id,
            seed: u64::from(id) + 1,
            channels: 1,
            tenant_names: vec!["stub".to_string()],
            policy_label: "layout-00".to_string(),
            relocation_label: "stall",
            budget_insts: 1000,
            ipc: vec![1.0],
            slowdowns: vec![slowdown],
            dram_cycles: 10_000,
            energy_j: 1e-6,
            migration_energy_j: 0.0,
            capacity_forfeited: 0.0,
            final_hp_fraction: 0.0,
            mem,
            skip_profile: SkipProfile::new(),
        }
    }

    #[test]
    fn fused_histogram_is_the_exact_bucket_sum() {
        let instances = [stub_instance(0, 50, 1.0), stub_instance(1, 200, 1.0)];
        let fused = LatencyHistogram::fused(instances.iter().map(|i| &i.mem.read_latency_hist));
        assert_eq!(fused.count(), 200);
        let (p50, p95, p99) = fused.percentiles();
        assert!(p50 <= p95 && p95 <= p99);
    }

    #[test]
    fn error_budget_quantifies_over_instances() {
        // 20 instances, 1 violating: inside the 10% budget.
        let mut instances: Vec<_> = (0..19).map(|i| stub_instance(i, 50, 1.0)).collect();
        instances.push(stub_instance(19, SLO_READ_P99_CYCLES * 4, 1.0));
        let slo = fleet_slo_spec(50, 1000, 1000).evaluate(&fleet_series(&instances));
        assert!(slo.pass(), "1/20 violations is inside the 10% budget");
        // 5 of 20 violating: budget blown.
        for (i, inst) in instances.iter_mut().enumerate().take(19).skip(15) {
            *inst = stub_instance(i as u32, SLO_READ_P99_CYCLES * 4, 1.0);
        }
        let slo = fleet_slo_spec(50, 1000, 1000).evaluate(&fleet_series(&instances));
        assert!(!slo.pass(), "5/20 violations blows the 10% budget");
    }

    #[test]
    fn background_slowdown_bound_fails_past_3_2x() {
        let instances = [stub_instance(0, 50, 3.9)];
        let slo = fleet_slo_spec(50, 3900, 1000).evaluate(&fleet_series(&instances));
        assert!(!slo.pass());
        assert!(slo
            .scalars
            .iter()
            .any(|o| o.name == "max_background_slowdown_milli" && !o.pass));
        // Within the doubled fleet bound (even though past the sweep's
        // 1.6x): passes.
        let slo = fleet_slo_spec(50, 1900, 1000).evaluate(&fleet_series(&instances));
        assert!(slo.pass());
    }

    #[test]
    fn stall_slowdown_is_reported_but_not_gated() {
        // A stall-mode instance 20x slowed: the scalar reports the miss
        // honestly but the verdict stays green — stall relocation
        // violates the background fairness bound by design.
        let instances = [stub_instance(0, 50, 20.0)];
        let slo = fleet_slo_spec(50, 1000, 20_000).evaluate(&fleet_series(&instances));
        assert!(slo.pass(), "expected-fail scalar must not gate");
        let stall = slo
            .scalars
            .iter()
            .find(|o| o.name == "max_stall_slowdown_milli")
            .expect("stall scalar present");
        assert!(!stall.pass, "the miss itself is reported honestly");
        assert!(stall.expected_fail);
    }
}
