//! Batched fleet execution over the persistent executor.
//!
//! [`run_fleet`] turns every [`InstanceSpec`] into one whole-instance
//! job on a shared [`Executor`] pool. Jobs are self-contained (each
//! simulates its own system, plus alone-run baselines for multi-tenant
//! slowdowns) and [`Executor::run_batch`] returns results in task
//! order, so the fused report is bit-identical for any pool size —
//! pool threads are a host-speed knob, exactly like the in-run channel
//! walk's `threads`.

use clr_memsim::migrate::RelocationConfig;
use clr_memsim::Executor;
use clr_policy::policy::PolicyConstraints;
use clr_sim::experiment::policies::{policy_cluster, policy_mem_config};
use clr_sim::{
    host_parallelism, per_core_seed, run_policy_workloads, run_workloads, PolicyRunConfig,
    RunConfig,
};

use crate::report::{FleetReport, InstanceResult};
use crate::spec::{FleetSpec, InstanceSpec};

/// The base run configuration for one instance: the policy sweep's
/// 16 MiB small-system cell, widened to the instance's channel count.
fn instance_run_config(spec: &InstanceSpec, tenant_budget: u64, seed: u64) -> RunConfig {
    let mut mem = policy_mem_config(spec.fraction_hp);
    mem.geometry.channels = spec.channels;
    mem.placement = spec.placement;
    if spec.background_relocation {
        mem.relocation = RelocationConfig::background();
    }
    RunConfig {
        mem,
        cluster: policy_cluster(),
        budget_insts: tenant_budget,
        warmup_insts: spec.warmup_insts,
        seed,
        skip_ahead: true,
        trace: None,
        metrics: None,
        // Instances are the unit of parallelism here; their internal
        // channel walk stays serial (1–2 channels, tiny windows).
        threads: 1,
        clamp_threads: true,
        // Attribution on for every instance: the fleet report fuses
        // per-cause blame distributions across the whole roster.
        blame: true,
    }
}

/// Runs one instance to completion: the shared run, then — for
/// multi-tenant instances — one alone run per tenant (same system,
/// seeded with [`per_core_seed`] so each tenant replays the identical
/// trace it saw in the shared run) to price contention as
/// `alone_ipc / shared_ipc` slowdowns.
pub fn run_instance(spec: &InstanceSpec) -> InstanceResult {
    let run_one = |tenants: &[clr_trace::workload::Workload], seed: u64| match &spec.policy {
        Some(policy) => {
            let cfg = PolicyRunConfig::new(
                instance_run_config(spec, spec.budget_insts, seed),
                *policy,
                // 512 matches the smoke contention cell: enough for
                // real adaptation, but one epoch's stall batch stays
                // bounded on churny policies.
                PolicyConstraints {
                    max_hp_fraction: spec.capacity_budget,
                    max_transitions_per_epoch: 512,
                },
                spec.epoch_dram_cycles,
            );
            let r = run_policy_workloads(tenants, &cfg);
            let (loss, hp) = (r.avg_capacity_loss(), r.final_hp_fraction);
            (r.run, loss, hp)
        }
        None => {
            let r = run_workloads(tenants, &instance_run_config(spec, spec.budget_insts, seed));
            // A static layout forfeits half of each high-performance
            // row's capacity for the whole run.
            (r, spec.fraction_hp / 2.0, spec.fraction_hp)
        }
    };

    let (shared, capacity_forfeited, final_hp_fraction) = run_one(&spec.tenants, spec.seed);
    let slowdowns: Vec<f64> = if spec.tenants.len() > 1 {
        spec.tenants
            .iter()
            .enumerate()
            .map(|(core, w)| {
                let (alone, _, _) =
                    run_one(std::slice::from_ref(w), per_core_seed(spec.seed, core));
                alone.ipc[0] / shared.ipc[core]
            })
            .collect()
    } else {
        vec![1.0]
    };

    InstanceResult {
        id: spec.id,
        seed: spec.seed,
        channels: spec.channels,
        tenant_names: spec.tenants.iter().map(|w| w.name()).collect(),
        policy_label: spec.policy_label(),
        relocation_label: spec.relocation_label(),
        budget_insts: spec.budget_insts,
        ipc: shared.ipc.clone(),
        slowdowns,
        dram_cycles: shared.dram_cycles,
        energy_j: shared.energy.total_j(),
        migration_energy_j: shared.energy.migration_j,
        capacity_forfeited,
        final_hp_fraction,
        skip_profile: shared.skip_profile.clone(),
        mem: shared.mem,
    }
}

/// Runs the whole fleet through one shared pool and fuses the report.
///
/// `pool_threads` is clamped to the host's available parallelism (the
/// same resolve-time clamp as [`RunConfig::clamp_threads`]) — on a
/// 1-core host every instance runs inline on the submitting thread.
/// The returned report is byte-for-byte identical for every
/// `pool_threads` value: jobs are independent and results come back in
/// instance order.
pub fn run_fleet(spec: &FleetSpec, pool_threads: usize) -> FleetReport {
    let lanes = pool_threads.max(1).min(host_parallelism());
    let pool = Executor::new(lanes);
    let tasks: Vec<_> = spec
        .instances
        .iter()
        .cloned()
        .map(|inst| move || run_instance(&inst))
        .collect();
    let instances = pool.run_batch(tasks);
    FleetReport::fuse(spec, instances, pool_threads, lanes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use clr_sim::Scale;

    /// The determinism contract at crate level: the fused JSON is
    /// byte-identical whether instances run inline (1 lane) or through
    /// parked pool workers. (The root-level `fleet_determinism` test
    /// covers larger rosters and more pool sizes.)
    #[test]
    fn pool_size_does_not_change_the_report() {
        let spec = FleetSpec::synth(6, 11, Scale::Smoke);
        let a = run_fleet(&spec, 1);
        // Bypass the host clamp to force real pool hand-off even on a
        // 1-core host.
        let pool = Executor::new(3);
        let tasks: Vec<_> = spec
            .instances
            .iter()
            .cloned()
            .map(|inst| move || run_instance(&inst))
            .collect();
        let b = FleetReport::fuse(&spec, pool.run_batch(tasks), 3, 3);
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn multi_tenant_instances_report_per_tenant_slowdowns() {
        let spec = FleetSpec::synth(24, 11, Scale::Smoke);
        let inst = spec
            .instances
            .iter()
            .find(|i| i.tenants.len() > 1)
            .expect("roster of 24 contains a multi-tenant instance");
        let r = run_instance(inst);
        assert_eq!(r.slowdowns.len(), inst.tenants.len());
        // Sharing a channel can only slow a tenant down (equality up to
        // small scheduling luck; allow a hair below 1.0).
        for &s in &r.slowdowns {
            assert!(s > 0.9, "slowdown {s} out of range");
        }
    }
}
