//! Deterministic synthesis of heterogeneous fleet rosters.
//!
//! [`FleetSpec::synth`] expands `(count, seed, scale)` into a
//! reproducible set of [`InstanceSpec`]s. Every per-instance choice —
//! channel count, tenant mix, workload shapes, policy, relocation
//! model, placement, budgets — is drawn from a [splitmix64] stream
//! keyed on `(seed, instance id)`, so the roster is a pure function of
//! its inputs: same triple ⇒ identical roster ⇒ (with the in-order
//! batched runner) byte-identical fleet report.
//!
//! [splitmix64]: https://prng.di.unimi.it/splitmix64.c

use clr_memsim::frames::DestinationPicker;
use clr_policy::policy::PolicySpec;
use clr_sim::experiment::policies::DYNAMIC_BUDGET;
use clr_sim::Scale;
use clr_trace::phase::PhaseShiftSpec;
use clr_trace::synthetic::{SyntheticKind, SyntheticSpec};
use clr_trace::workload::Workload;

/// One instance of the fleet: a complete small CLR-DRAM system plus
/// the tenants sharing it.
#[derive(Debug, Clone)]
pub struct InstanceSpec {
    /// Fleet-unique instance id (index in the roster).
    pub id: u32,
    /// Master seed for the instance's trace generation (and, via
    /// [`clr_sim::per_core_seed`], its alone-run baselines).
    pub seed: u64,
    /// DRAM channels (the sweep geometry's channel knob).
    pub channels: u32,
    /// One workload per tenant core sharing the instance.
    pub tenants: Vec<Workload>,
    /// Dynamic mode-management policy, or `None` for a static layout
    /// frozen at [`InstanceSpec::fraction_hp`].
    pub policy: Option<PolicySpec>,
    /// Whether policy transition batches go through the background
    /// migration engine instead of the stall-the-world apply.
    pub background_relocation: bool,
    /// Relocation destination placement.
    pub placement: DestinationPicker,
    /// Initial (and, without a policy, permanent) high-performance row
    /// fraction.
    pub fraction_hp: f64,
    /// Global capacity budget handed to the policy runtime.
    pub capacity_budget: f64,
    /// Policy epoch length in DRAM cycles.
    pub epoch_dram_cycles: u64,
    /// Instructions each tenant core retires in the measurement window.
    pub budget_insts: u64,
    /// Warmup instructions per tenant core.
    pub warmup_insts: u64,
}

impl InstanceSpec {
    /// Stable label for the instance's mode-management configuration:
    /// the policy's own label, or `layout-NN` for a static layout at
    /// NN% high-performance rows.
    pub fn policy_label(&self) -> String {
        match &self.policy {
            Some(p) => p.label(),
            None => format!("layout-{:02.0}", self.fraction_hp * 100.0),
        }
    }

    /// Stable label for the relocation model.
    pub fn relocation_label(&self) -> &'static str {
        if self.background_relocation {
            "background"
        } else {
            "stall"
        }
    }
}

/// A whole fleet: the synthesis inputs plus the expanded roster.
#[derive(Debug, Clone)]
pub struct FleetSpec {
    /// Fleet master seed.
    pub seed: u64,
    /// Scale the per-instance budgets were derived from.
    pub scale: Scale,
    /// The instance roster, id order.
    pub instances: Vec<InstanceSpec>,
}

/// splitmix64: the standard 64-bit finalizer-based stream generator —
/// deterministic, stateless between calls, good enough to decorrelate
/// roster dimensions.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The drifting-hot-set phase workload sized so roughly eight phases
/// fit in `budget_insts`.
fn phase_workload_for(budget_insts: u64) -> PhaseShiftSpec {
    let spec = PhaseShiftSpec::paper_default();
    let accesses = (budget_insts as f64 / (spec.bubbles as f64 + 1.0) / 8.0) as u64;
    PhaseShiftSpec {
        accesses_per_phase: accesses.max(300),
        ..spec
    }
}

impl FleetSpec {
    /// Expands `(n, seed, scale)` into a deterministic heterogeneous
    /// roster of `n` instances.
    ///
    /// Heterogeneity axes (all drawn per instance from the seeded
    /// stream): 1–2 channels, 1–2 tenants, five workload shapes
    /// (drifting hot set, stable hot set, channel-skewed hot set,
    /// uniform random, stream), six mode-management configurations
    /// (two static layouts and four dynamic policies), stall vs
    /// background relocation, three destination placements, and
    /// per-instance instruction budgets jittered to 50–150% of the
    /// scale-derived base.
    pub fn synth(n: usize, seed: u64, scale: Scale) -> FleetSpec {
        let base_budget = (scale.budget_insts() / 16).clamp(2_000, 50_000);
        let instances = (0..n as u32)
            .map(|id| {
                // Key the stream on (seed, id) so inserting or removing
                // instances never perturbs the others' draws.
                let mut s = seed ^ (u64::from(id).wrapping_mul(0xA24B_AED4_963E_E407));
                let budget_insts = base_budget / 2 + splitmix64(&mut s) % base_budget;
                let warmup_insts = budget_insts / 5;
                let channels = if splitmix64(&mut s).is_multiple_of(4) {
                    2
                } else {
                    1
                };
                let tenant_n = if splitmix64(&mut s).is_multiple_of(3) {
                    2
                } else {
                    1
                };
                let tenants = (0..tenant_n as u64)
                    .map(|t| {
                        let d = splitmix64(&mut s);
                        let phase = phase_workload_for(budget_insts);
                        match d % 5 {
                            0 => Workload::PhaseShift(phase),
                            1 => Workload::PhaseShift(PhaseShiftSpec {
                                drift_fraction: 0.0,
                                ..phase
                            }),
                            2 if channels > 1 => Workload::PhaseShift(phase.with_channel_skew(
                                u64::from(channels),
                                (t + u64::from(id)) % u64::from(channels),
                            )),
                            2 | 3 => Workload::Synthetic(SyntheticSpec {
                                kind: SyntheticKind::Random,
                                index: (d >> 8) as usize % 16,
                                bubbles: 3,
                                footprint_mib: 4,
                            }),
                            _ => Workload::Synthetic(SyntheticSpec {
                                kind: SyntheticKind::Stream,
                                index: (d >> 8) as usize % 16,
                                bubbles: 7,
                                footprint_mib: 2,
                            }),
                        }
                    })
                    .collect();
                let (policy, fraction_hp, capacity_budget) = match splitmix64(&mut s) % 6 {
                    0 => (None, 0.0, 0.0),
                    1 => (None, 0.25, 0.25),
                    // Static-split-as-policy starts with the table
                    // already matching its fraction (the sweep's
                    // convention): the runtime validates no-op epochs
                    // instead of relocating a quarter of the device in
                    // one stall batch.
                    2 => (Some(PolicySpec::StaticSplit { fraction: 0.25 }), 0.25, 0.25),
                    3 => (
                        Some(PolicySpec::UtilizationThreshold { hot: 4, cold: 1 }),
                        0.0,
                        DYNAMIC_BUDGET,
                    ),
                    4 => (Some(PolicySpec::TopKHotness), 0.0, DYNAMIC_BUDGET),
                    _ => (Some(PolicySpec::Hysteresis), 0.0, DYNAMIC_BUDGET),
                };
                let background_relocation = policy.is_some() && splitmix64(&mut s) % 2 == 1;
                let placement = if background_relocation && channels > 1 {
                    match splitmix64(&mut s) % 3 {
                        0 => DestinationPicker::SameBank,
                        1 => DestinationPicker::CrossBank,
                        _ => DestinationPicker::CrossChannel,
                    }
                } else {
                    DestinationPicker::SameBank
                };
                let epoch_dram_cycles = 2_000 + (splitmix64(&mut s) % 3) * 500;
                InstanceSpec {
                    id,
                    seed: splitmix64(&mut s),
                    channels,
                    tenants,
                    policy,
                    background_relocation,
                    placement,
                    fraction_hp,
                    capacity_budget,
                    epoch_dram_cycles,
                    budget_insts,
                    warmup_insts,
                }
            })
            .collect();
        FleetSpec {
            seed,
            scale,
            instances,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthesis_is_deterministic() {
        let a = FleetSpec::synth(32, 7, Scale::Smoke);
        let b = FleetSpec::synth(32, 7, Scale::Smoke);
        for (x, y) in a.instances.iter().zip(&b.instances) {
            assert_eq!(x.seed, y.seed);
            assert_eq!(x.channels, y.channels);
            assert_eq!(x.tenants, y.tenants);
            assert_eq!(x.policy, y.policy);
            assert_eq!(x.budget_insts, y.budget_insts);
        }
    }

    #[test]
    fn roster_is_heterogeneous() {
        let fleet = FleetSpec::synth(64, 0xF1EE7, Scale::Smoke);
        let distinct = |f: &dyn Fn(&InstanceSpec) -> String| -> std::collections::BTreeSet<String> {
            fleet.instances.iter().map(f).collect()
        };
        assert!(distinct(&|i| i.policy_label()).len() >= 4, "policies");
        assert!(distinct(&|i| i.channels.to_string()).len() == 2, "channels");
        assert!(
            distinct(&|i| i.tenants.len().to_string()).len() == 2,
            "tenant counts"
        );
        assert!(
            distinct(&|i| i.relocation_label().to_string()).len() == 2,
            "relocation models"
        );
        assert!(
            distinct(&|i| i.tenants[0].name()).len() >= 4,
            "workload shapes"
        );
        // Budgets are jittered per instance.
        assert!(distinct(&|i| i.budget_insts.to_string()).len() >= 16);
    }

    #[test]
    fn instance_draws_are_independent_of_roster_size() {
        let small = FleetSpec::synth(8, 42, Scale::Smoke);
        let large = FleetSpec::synth(24, 42, Scale::Smoke);
        for (x, y) in small.instances.iter().zip(&large.instances) {
            assert_eq!(x.seed, y.seed);
            assert_eq!(x.tenants, y.tenants);
        }
    }
}
