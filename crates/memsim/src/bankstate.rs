//! Per-bank row-buffer state.

use clr_core::mode::RowMode;

/// State of one DRAM bank's row buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BankState {
    /// Currently open row, if any.
    pub open_row: Option<u32>,
    /// Operating mode of the open row (meaningless when closed).
    pub open_mode: RowMode,
    /// Cycle of the last ACT/RD/WR touching this bank (drives the
    /// timeout-based row policy).
    pub last_use_cycle: u64,
}

impl BankState {
    /// A closed, idle bank.
    pub fn new() -> Self {
        BankState {
            open_row: None,
            open_mode: RowMode::MaxCapacity,
            last_use_cycle: 0,
        }
    }

    /// Records a row activation.
    pub fn activate(&mut self, row: u32, mode: RowMode, cycle: u64) {
        self.open_row = Some(row);
        self.open_mode = mode;
        self.last_use_cycle = cycle;
    }

    /// Records a precharge, returning the mode of the row that was closed.
    ///
    /// # Panics
    ///
    /// Panics if the bank is already closed (protocol violation).
    pub fn precharge(&mut self) -> RowMode {
        assert!(self.open_row.is_some(), "precharge of a closed bank");
        self.open_row = None;
        self.open_mode
    }

    /// Records a column access.
    pub fn access(&mut self, cycle: u64) {
        debug_assert!(self.open_row.is_some(), "column access to a closed bank");
        self.last_use_cycle = cycle;
    }

    /// Whether `row` is currently open in this bank.
    pub fn is_open(&self, row: u32) -> bool {
        self.open_row == Some(row)
    }
}

impl Default for BankState {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activate_access_precharge_cycle() {
        let mut b = BankState::new();
        assert_eq!(b.open_row, None);
        b.activate(42, RowMode::HighPerformance, 10);
        assert!(b.is_open(42));
        assert!(!b.is_open(43));
        b.access(15);
        assert_eq!(b.last_use_cycle, 15);
        assert_eq!(b.precharge(), RowMode::HighPerformance);
        assert_eq!(b.open_row, None);
    }

    #[test]
    #[should_panic(expected = "closed bank")]
    fn double_precharge_panics() {
        let mut b = BankState::new();
        b.activate(1, RowMode::MaxCapacity, 0);
        let _ = b.precharge();
        let _ = b.precharge();
    }
}
