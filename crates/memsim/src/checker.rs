//! An independent DDR4/CLR protocol checker.
//!
//! The [`TimingEngine`](crate::engine::TimingEngine) *prevents* timing
//! violations at issue time; this module *audits* a recorded command
//! stream after the fact with a deliberately different implementation
//! style (pairwise command-distance rules rather than earliest-issue
//! registers), giving a double-entry check on the protocol logic. The
//! checker also validates state legality: no column access to a closed
//! bank, no double activation, refresh only with all banks precharged.

use clr_core::mode::RowMode;

use crate::command::{Command, IssuedCommand};
use crate::cycletimings::CycleTimings;

/// A protocol violation found by the checker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Index of the offending command in the log.
    pub index: usize,
    /// Human-readable rule description.
    pub rule: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "command #{}: {}", self.index, self.rule)
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct BankAudit {
    open_row: Option<u32>,
    open_mode: RowMode,
    /// Cycle and mode of the last ACT (tRC is governed by the *previous*
    /// activation's mode — its tRAS and its closing tRP).
    last_act: Option<(u64, RowMode)>,
    last_pre: Option<(u64, RowMode)>,
    last_rd: Option<u64>,
    last_wr: Option<u64>,
}

/// Checks a command log against the constraint set.
///
/// `bank_of` maps a flat bank index to its flat bank group; all banks are
/// assumed to share one rank/channel (the paper's configuration — the
/// controller model generalizes, the auditor covers the evaluated shape).
pub fn check(
    log: &[IssuedCommand],
    ct: &CycleTimings,
    banks: usize,
    bank_group_of: impl Fn(usize) -> usize,
) -> Vec<Violation> {
    let mut v = Vec::new();
    let mut bank_state: Vec<BankAudit> = vec![BankAudit::default(); banks];
    let mut acts: Vec<u64> = Vec::new(); // rank-wide ACT history for tFAW
    let mut last_ref: Option<(u64, RowMode)> = None;
    let mut prev_cycle = 0u64;

    for (i, cmd) in log.iter().enumerate() {
        let mut fail = |rule: String| {
            v.push(Violation { index: i, rule });
        };
        if cmd.cycle < prev_cycle {
            fail(format!(
                "command bus time ran backwards: {} after {}",
                cmd.cycle, prev_cycle
            ));
        }
        prev_cycle = prev_cycle.max(cmd.cycle);
        let now = cmd.cycle;

        // Refresh blackout applies to everything.
        if let Some((t, mode)) = last_ref {
            let rfc = ct.for_mode(mode).rfc;
            if now < t + rfc && cmd.command != Command::Ref {
                fail(format!(
                    "{} during refresh blackout (tRFC {} from {})",
                    cmd.command, rfc, t
                ));
            }
        }

        match cmd.command {
            Command::Act => {
                let b = &bank_state[cmd.flat_bank];
                if b.open_row.is_some() {
                    fail("ACT to an open bank".to_string());
                }
                if let Some((t, mode)) = b.last_pre {
                    let rp = ct.for_mode(mode).rp;
                    if now < t + rp {
                        fail(format!("tRP violated: ACT at {now} < {t}+{rp}"));
                    }
                }
                if let Some((t, prev_mode)) = b.last_act {
                    let rc = ct.for_mode(prev_mode).rc();
                    if now < t + rc {
                        fail(format!("tRC violated: ACT at {now} < {t}+{rc}"));
                    }
                }
                // tRRD against every other bank's last ACT.
                for (ob, st) in bank_state.iter().enumerate() {
                    if ob == cmd.flat_bank {
                        continue;
                    }
                    if let Some((t, _)) = st.last_act {
                        let dist = if bank_group_of(ob) == bank_group_of(cmd.flat_bank) {
                            ct.rrd_l
                        } else {
                            ct.rrd_s
                        };
                        if now < t + dist {
                            fail(format!(
                                "tRRD violated vs bank {ob}: ACT at {now} < {t}+{dist}"
                            ));
                        }
                    }
                }
                // tFAW over the rank.
                acts.push(now);
                let recent = acts.len();
                if recent >= 5 {
                    let fifth_back = acts[recent - 5];
                    if now < fifth_back + ct.faw {
                        fail(format!(
                            "tFAW violated: 5th ACT at {now} < {fifth_back}+{}",
                            ct.faw
                        ));
                    }
                }
                let st = &mut bank_state[cmd.flat_bank];
                st.open_row = Some(cmd.row);
                st.open_mode = cmd.mode;
                st.last_act = Some((now, cmd.mode));
            }
            Command::Pre => {
                let b = bank_state[cmd.flat_bank];
                let Some(_row) = b.open_row else {
                    fail("PRE to a closed bank".to_string());
                    continue;
                };
                if let Some((t, _)) = b.last_act {
                    let ras = ct.for_mode(b.open_mode).ras;
                    if now < t + ras {
                        fail(format!("tRAS violated: PRE at {now} < {t}+{ras}"));
                    }
                }
                if let Some(t) = b.last_rd {
                    if now < t + ct.rtp {
                        fail(format!("tRTP violated: PRE at {now} < {t}+{}", ct.rtp));
                    }
                }
                if let Some(t) = b.last_wr {
                    let wr = ct.for_mode(b.open_mode).wr;
                    let gate = t + ct.cwl + ct.burst + wr;
                    if now < gate {
                        fail(format!("write recovery violated: PRE at {now} < {gate}"));
                    }
                }
                let st = &mut bank_state[cmd.flat_bank];
                st.open_row = None;
                st.last_pre = Some((now, b.open_mode));
            }
            Command::Rd | Command::Wr => {
                let b = bank_state[cmd.flat_bank];
                if b.open_row.is_none() {
                    fail(format!("{} to a closed bank", cmd.command));
                }
                if let Some((t, _)) = b.last_act {
                    let rcd = ct.for_mode(b.open_mode).rcd;
                    if now < t + rcd {
                        fail(format!("tRCD violated: column at {now} < {t}+{rcd}"));
                    }
                }
                // Column-to-column constraints across the channel.
                for (ob, st) in bank_state.iter().enumerate() {
                    let same_bg = bank_group_of(ob) == bank_group_of(cmd.flat_bank);
                    let ccd = if same_bg { ct.ccd_l } else { ct.ccd_s };
                    for t in [st.last_rd, st.last_wr].into_iter().flatten() {
                        if now < t + ccd {
                            fail(format!(
                                "tCCD violated vs bank {ob}: column at {now} < {t}+{ccd}"
                            ));
                        }
                    }
                    if cmd.command == Command::Rd {
                        if let Some(t) = st.last_wr {
                            let wtr = if same_bg { ct.wtr_l } else { ct.wtr_s };
                            let gate = t + ct.cwl + ct.burst + wtr;
                            if now < gate {
                                fail(format!("tWTR violated vs bank {ob}: RD at {now} < {gate}"));
                            }
                        }
                    } else if let Some(t) = st.last_rd {
                        if now < t + ct.rtw {
                            fail(format!(
                                "read-to-write turnaround violated vs bank {ob}: WR at {now} < {t}+{}",
                                ct.rtw
                            ));
                        }
                    }
                }
                let st = &mut bank_state[cmd.flat_bank];
                match cmd.command {
                    Command::Rd => st.last_rd = Some(now),
                    Command::Wr => st.last_wr = Some(now),
                    _ => unreachable!(),
                }
            }
            Command::Ref => {
                if bank_state.iter().any(|b| b.open_row.is_some()) {
                    fail("REF with a bank open".to_string());
                }
                if let Some((t, mode)) = last_ref {
                    let rfc = ct.for_mode(mode).rfc;
                    if now < t + rfc {
                        fail(format!("tRFC violated: REF at {now} < {t}+{rfc}"));
                    }
                }
                // REF must also respect tRP after the last PRE of any bank.
                for (ob, st) in bank_state.iter().enumerate() {
                    if let Some((t, mode)) = st.last_pre {
                        let rp = ct.for_mode(mode).rp;
                        if now < t + rp {
                            fail(format!(
                                "tRP before REF violated (bank {ob}): REF at {now} < {t}+{rp}"
                            ));
                        }
                    }
                }
                last_ref = Some((now, cmd.mode));
            }
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use clr_core::timing::{ClrTimings, InterfaceTimings};

    fn ct() -> CycleTimings {
        let t = ClrTimings::from_circuit_defaults();
        CycleTimings::new(
            &t,
            t.for_mode(RowMode::HighPerformance),
            &InterfaceTimings::ddr4_2400(),
        )
    }

    fn cmd(cycle: u64, command: Command, bank: usize, row: u32, mode: RowMode) -> IssuedCommand {
        IssuedCommand {
            cycle,
            command,
            flat_bank: bank,
            row,
            mode,
            migration: false,
        }
    }

    #[test]
    fn clean_sequence_passes() {
        let ct = ct();
        let m = RowMode::MaxCapacity;
        let rcd = ct.max_capacity.rcd;
        let ras = ct.max_capacity.ras;
        let rp = ct.max_capacity.rp;
        let log = vec![
            cmd(0, Command::Act, 0, 5, m),
            cmd(rcd, Command::Rd, 0, 5, m),
            cmd(rcd + ct.rtp.max(ras - rcd), Command::Pre, 0, 5, m),
            cmd(rcd + ras.max(ct.rtp) + rp + 10, Command::Act, 0, 6, m),
        ];
        let violations = check(&log, &ct, 4, |b| b / 2);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn catches_trcd_violation() {
        let ct = ct();
        let m = RowMode::MaxCapacity;
        let log = vec![cmd(0, Command::Act, 0, 5, m), cmd(1, Command::Rd, 0, 5, m)];
        let violations = check(&log, &ct, 4, |b| b / 2);
        assert!(violations.iter().any(|v| v.rule.contains("tRCD")));
    }

    #[test]
    fn catches_state_violations() {
        let ct = ct();
        let m = RowMode::MaxCapacity;
        let log = vec![
            cmd(0, Command::Rd, 0, 5, m),   // closed bank
            cmd(10, Command::Pre, 1, 0, m), // closed bank
            cmd(20, Command::Act, 2, 1, m),
            cmd(2000, Command::Act, 2, 2, m), // double ACT without PRE
        ];
        let violations = check(&log, &ct, 4, |b| b / 2);
        assert!(violations.iter().any(|v| v.rule.contains("closed bank")));
        assert!(violations.iter().any(|v| v.rule.contains("open bank")));
    }

    #[test]
    fn catches_refresh_with_open_bank() {
        let ct = ct();
        let m = RowMode::MaxCapacity;
        let log = vec![
            cmd(0, Command::Act, 0, 5, m),
            cmd(100, Command::Ref, 0, 0, m),
        ];
        let violations = check(&log, &ct, 4, |b| b / 2);
        assert!(violations.iter().any(|v| v.rule.contains("bank open")));
    }

    #[test]
    fn hp_mode_rules_use_hp_timings() {
        let ct = ct();
        let hp = RowMode::HighPerformance;
        let rcd_hp = ct.high_performance.rcd;
        // Legal at HP tRCD but would violate max-capacity tRCD.
        assert!(rcd_hp < ct.max_capacity.rcd);
        let log = vec![
            cmd(0, Command::Act, 0, 1, hp),
            cmd(rcd_hp, Command::Rd, 0, 1, hp),
        ];
        let violations = check(&log, &ct, 4, |b| b / 2);
        assert!(violations.is_empty(), "{violations:?}");
    }
}
