//! DRAM commands and the issued-command record.

use clr_core::mode::RowMode;

/// DDR4 commands modelled by the simulator.
///
/// Auto-precharge variants are not modelled separately: the controller's
/// row policy issues explicit [`Command::Pre`] commands, matching the
/// paper's timeout-based row-buffer management.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Command {
    /// Activate (open) a row in a bank.
    Act,
    /// Precharge (close) a bank.
    Pre,
    /// Column read burst from the open row.
    Rd,
    /// Column write burst to the open row.
    Wr,
    /// All-bank refresh (one refresh-stream bundle).
    Ref,
}

impl Command {
    /// Number of distinct commands (for table sizing).
    pub const COUNT: usize = 5;

    /// Dense index for per-command state arrays.
    pub fn index(self) -> usize {
        match self {
            Command::Act => 0,
            Command::Pre => 1,
            Command::Rd => 2,
            Command::Wr => 3,
            Command::Ref => 4,
        }
    }

    /// Short uppercase mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Command::Act => "ACT",
            Command::Pre => "PRE",
            Command::Rd => "RD",
            Command::Wr => "WR",
            Command::Ref => "REF",
        }
    }
}

impl std::fmt::Display for Command {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// A command as issued on the command bus, recorded for statistics and the
/// power model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IssuedCommand {
    /// DRAM clock cycle of issue.
    pub cycle: u64,
    /// The command.
    pub command: Command,
    /// Flat bank index the command targets (0 for rank-level commands).
    pub flat_bank: usize,
    /// Row involved (opened row for ACT, closed row for PRE; 0 otherwise).
    pub row: u32,
    /// Operating mode governing the command's analog timings.
    pub mode: RowMode,
    /// Whether the command was issued on behalf of background row
    /// migration (relocation traffic) rather than demand or refresh.
    pub migration: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_unique() {
        let all = [
            Command::Act,
            Command::Pre,
            Command::Rd,
            Command::Wr,
            Command::Ref,
        ];
        let mut seen = [false; Command::COUNT];
        for c in all {
            assert!(!seen[c.index()], "duplicate index for {c}");
            seen[c.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn mnemonics_are_nonempty() {
        assert_eq!(Command::Act.to_string(), "ACT");
        assert_eq!(Command::Ref.to_string(), "REF");
    }
}
