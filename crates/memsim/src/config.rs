//! Memory-system configuration.

use clr_core::addr::AddressMapping;
use clr_core::geometry::DramGeometry;
use clr_core::timing::{ClrTimings, InterfaceTimings, TimingParams};

use crate::frames::DestinationPicker;
use crate::migrate::RelocationConfig;

/// How the CLR-DRAM device is configured for a run.
#[derive(Debug, Clone, PartialEq)]
pub enum ClrModeConfig {
    /// Unmodified DDR4 baseline: no isolation transistors, baseline analog
    /// timings everywhere, single refresh stream at 64 ms.
    BaselineDdr4,
    /// CLR-DRAM with a fraction of rows per bank configured as
    /// high-performance (the contiguous low-row prefix) and the rest in
    /// max-capacity mode.
    Clr {
        /// Fraction of rows per bank in high-performance mode (0.0..=1.0).
        fraction_hp: f64,
        /// Refresh window for high-performance rows in milliseconds
        /// (64.0 for CLR-64 up to 194.0 for CLR-194).
        hp_refw_ms: f64,
        /// Apply early termination of charge restoration (Table 1
        /// "w/ E.T."; the paper's default is `true`).
        early_termination: bool,
    },
}

impl ClrModeConfig {
    /// Convenience: CLR at the base 64 ms window with early termination.
    pub fn clr(fraction_hp: f64) -> Self {
        ClrModeConfig::Clr {
            fraction_hp,
            hp_refw_ms: 64.0,
            early_termination: true,
        }
    }

    /// The configured high-performance row fraction (0 for the baseline).
    pub fn fraction_hp(&self) -> f64 {
        match self {
            ClrModeConfig::BaselineDdr4 => 0.0,
            ClrModeConfig::Clr { fraction_hp, .. } => *fraction_hp,
        }
    }

    /// Resolves the high-performance analog timing set for this
    /// configuration.
    ///
    /// # Panics
    ///
    /// Panics if the refresh window is outside the safe range.
    pub fn hp_params(&self, timings: &ClrTimings) -> TimingParams {
        match self {
            ClrModeConfig::BaselineDdr4 => *timings.baseline(),
            ClrModeConfig::Clr {
                hp_refw_ms,
                early_termination,
                ..
            } => {
                let base = if *early_termination {
                    timings
                        .high_performance_at_refw(*hp_refw_ms)
                        .expect("refresh window outside the safe range")
                } else {
                    // Ablation: no early termination. The refresh-window
                    // growth applies on top of the non-ET set.
                    let et = timings
                        .high_performance_at_refw(*hp_refw_ms)
                        .expect("refresh window outside the safe range");
                    let no_et = timings.high_performance_no_early_termination();
                    TimingParams {
                        t_rcd_ns: no_et.t_rcd_ns
                            + (et.t_rcd_ns
                                - timings
                                    .for_mode(clr_core::mode::RowMode::HighPerformance)
                                    .t_rcd_ns),
                        t_ras_ns: no_et.t_ras_ns
                            + (et.t_ras_ns
                                - timings
                                    .for_mode(clr_core::mode::RowMode::HighPerformance)
                                    .t_ras_ns),
                        t_refw_ms: *hp_refw_ms,
                        ..*no_et
                    }
                };
                base
            }
        }
    }
}

/// Row-buffer management policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RowPolicy {
    /// Keep rows open until a conflict forces a precharge (classic
    /// open-page).
    Open,
    /// Close a row as soon as no queued request targets it.
    Closed,
    /// Close a row after it has been idle for the given time with no
    /// queued request to it — the paper's policy at 120 ns (Table 2
    /// footnote).
    Timeout {
        /// Idle time before the close, in nanoseconds.
        ns: f64,
    },
}

impl RowPolicy {
    /// The paper's timeout policy (120 ns).
    pub fn paper() -> Self {
        RowPolicy::Timeout { ns: 120.0 }
    }

    /// Idle threshold in nanoseconds (`None` for open-page).
    pub fn idle_threshold_ns(&self) -> Option<f64> {
        match self {
            RowPolicy::Open => None,
            RowPolicy::Closed => Some(0.0),
            RowPolicy::Timeout { ns } => Some(*ns),
        }
    }
}

/// Controller scheduling parameters (Table 2 plus Ramulator defaults).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchedulerConfig {
    /// Read queue capacity (entries).
    pub read_queue: usize,
    /// Write queue capacity (entries).
    pub write_queue: usize,
    /// FR-FCFS-Cap: maximum younger row hits served over an older request
    /// to the same bank before the scheduler reverts to oldest-first.
    pub cap: u32,
    /// Row-buffer management policy.
    pub row_policy: RowPolicy,
    /// Start draining writes when the write queue reaches this fill level.
    pub write_high_watermark: usize,
    /// Stop draining writes when the write queue falls to this level.
    pub write_low_watermark: usize,
}

impl SchedulerConfig {
    /// Convenience accessor kept for existing call sites: the timeout in
    /// nanoseconds, or 120 for non-timeout policies (used only for
    /// display).
    pub fn row_timeout_ns(&self) -> f64 {
        self.row_policy.idle_threshold_ns().unwrap_or(120.0)
    }
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            read_queue: 64,
            write_queue: 64,
            cap: 4,
            row_policy: RowPolicy::paper(),
            write_high_watermark: 48,
            write_low_watermark: 16,
        }
    }
}

/// Complete memory-system configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct MemConfig {
    /// DRAM organization.
    pub geometry: DramGeometry,
    /// Physical-address interleaving.
    pub mapping: AddressMapping,
    /// DDR4 interface timings.
    pub interface: InterfaceTimings,
    /// Analog timing model (Table 1 sets).
    pub timings: ClrTimings,
    /// CLR operating configuration.
    pub clr: ClrModeConfig,
    /// Controller scheduling parameters.
    pub scheduler: SchedulerConfig,
    /// Enable periodic refresh (disable only in microbenchmarks).
    pub refresh_enabled: bool,
    /// How mode-transition data movement is realized (legacy
    /// stall-the-world by default; see [`crate::migrate`]).
    pub relocation: RelocationConfig,
    /// Where a coupling's displaced data is placed (legacy same-bank by
    /// default; see [`crate::frames`]).
    pub placement: DestinationPicker,
}

impl MemConfig {
    /// The paper's Table 2 system: DDR4-2400, 16 Gb chips, 4 bank groups ×
    /// 4 banks, FR-FCFS-Cap, 64-entry queues — in baseline DDR4 form.
    pub fn paper_baseline() -> Self {
        MemConfig {
            geometry: DramGeometry::ddr4_16gb_x8(),
            mapping: AddressMapping::RoBgBaRaCoCh,
            interface: InterfaceTimings::ddr4_2400(),
            timings: ClrTimings::from_circuit_defaults(),
            clr: ClrModeConfig::BaselineDdr4,
            scheduler: SchedulerConfig::default(),
            refresh_enabled: true,
            relocation: RelocationConfig::default(),
            placement: DestinationPicker::default(),
        }
    }

    /// The paper's system with CLR-DRAM configured at the given
    /// high-performance row fraction (64 ms window, early termination on).
    pub fn paper_clr(fraction_hp: f64) -> Self {
        MemConfig {
            clr: ClrModeConfig::clr(fraction_hp),
            ..Self::paper_baseline()
        }
    }

    /// Tiny geometry for fast unit tests (baseline DDR4 timing).
    pub fn paper_tiny() -> Self {
        MemConfig {
            geometry: DramGeometry::tiny(),
            ..Self::paper_baseline()
        }
    }

    /// Tiny geometry with CLR enabled.
    pub fn tiny_clr(fraction_hp: f64) -> Self {
        MemConfig {
            geometry: DramGeometry::tiny(),
            ..Self::paper_clr(fraction_hp)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clr_core::mode::RowMode;

    #[test]
    fn baseline_hp_params_equal_baseline() {
        let c = MemConfig::paper_baseline();
        assert_eq!(c.clr.hp_params(&c.timings), *c.timings.baseline());
    }

    #[test]
    fn clr_hp_params_track_refresh_window() {
        let t = ClrTimings::from_circuit_defaults();
        let base = ClrModeConfig::clr(1.0).hp_params(&t);
        let ext = ClrModeConfig::Clr {
            fraction_hp: 1.0,
            hp_refw_ms: 194.0,
            early_termination: true,
        }
        .hp_params(&t);
        assert!(ext.t_rcd_ns > base.t_rcd_ns);
        assert!((ext.t_rcd_ns - base.t_rcd_ns - 3.24).abs() < 0.01);
    }

    #[test]
    fn no_early_termination_ablation_uses_table1_column() {
        let t = ClrTimings::from_circuit_defaults();
        let no_et = ClrModeConfig::Clr {
            fraction_hp: 1.0,
            hp_refw_ms: 64.0,
            early_termination: false,
        }
        .hp_params(&t);
        let expect = t.high_performance_no_early_termination();
        assert!((no_et.t_ras_ns - expect.t_ras_ns).abs() < 1e-9);
        assert!((no_et.t_wr_ns - expect.t_wr_ns).abs() < 1e-9);
        // E.T. on: tRAS must be lower.
        let et = ClrModeConfig::clr(1.0).hp_params(&t);
        assert!(et.t_ras_ns < no_et.t_ras_ns);
    }

    #[test]
    fn fraction_accessor() {
        assert_eq!(ClrModeConfig::BaselineDdr4.fraction_hp(), 0.0);
        assert_eq!(ClrModeConfig::clr(0.75).fraction_hp(), 0.75);
        let _ = RowMode::HighPerformance; // silence unused import lint in cfg(test)
    }
}
