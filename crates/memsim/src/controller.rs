//! The memory controller: request queues, FR-FCFS-Cap scheduling, write
//! draining, timeout row policy, and heterogeneous refresh — with an
//! event-driven skip-ahead fast path.
//!
//! # The event model
//!
//! [`MemoryController::tick`] advances one DRAM cycle and is the
//! reference semantics. Most simulated cycles are *dead*: every queued
//! command is blocked on a timing constraint, refresh is not yet due, no
//! read is completing, and no background row close can fire. During a
//! dead window the controller's externally visible state evolves in a
//! closed form (only the cycle counter and the per-cycle busy/idle
//! accounting move), so it can be jumped over:
//!
//! * [`MemoryController::next_event_cycle`] computes the earliest cycle
//!   at which *anything* can happen — the minimum over (1) the next
//!   in-flight read completion, (2) the next refresh due time (or, while
//!   a refresh is pending, the cycle its next PRE/REF becomes issuable),
//!   (3) the relocation-stall expiry, (4) the earliest cycle any queued
//!   request's next service command satisfies the timing engine, (5) the
//!   earliest timeout-policy row close, and (6) the earliest issuable
//!   background-migration command (job starts, phase bursts,
//!   rate-limiter windows — see [`crate::migrate`]). Everything it reads
//!   is constant across a dead window, so the bound is exact, not
//!   heuristic.
//! * [`MemoryController::tick_until`] advances to a target cycle by
//!   alternating O(1) dead-window jumps with ordinary [`tick`]s at event
//!   cycles.
//!
//! The invariant — enforced by the differential test in the workspace
//! `tests/` directory — is that a `tick_until` run is *bit-identical* to
//! a per-cycle run: same command log, same completion cycles, same
//! statistics.
//!
//! [`tick`]: MemoryController::tick

use std::cell::Cell;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

use clr_core::addr::PhysAddr;
use clr_core::mode::{ModeTable, RowMode};
use clr_core::refresh::RefreshPlan;
use clr_obs::{
    BlameLedger, EventSource, SkipProfile, TraceCategory, TraceConfig, TraceSink, WaitCause,
};

use crate::bankstate::BankState;
use crate::command::{Command, IssuedCommand};
use crate::config::{ClrModeConfig, MemConfig};
use crate::cycletimings::CycleTimings;
use crate::engine::{Target, TimingEngine};
use crate::frames::FrameDirectory;
use crate::migrate::{MigrationEngine, MigrationStep, PlacementEvent};
use crate::refresh::RefreshScheduler;
use crate::request::{Completion, MemRequest, RequestKind};
use crate::scheduler::{self, LaneCache, QueueEntry};
use crate::stats::MemStats;

/// Sentinel row for an empty per-bank mode-cache slot (no real row index
/// reaches `u32::MAX`).
const MODE_CACHE_EMPTY: u32 = u32::MAX;

/// The DDR4 / CLR-DRAM memory controller.
///
/// Drive it with [`MemoryController::tick`] once per DRAM clock cycle; at
/// most one command issues on the command bus per tick. Completed reads
/// are pushed into the caller's completion buffer.
#[derive(Debug)]
pub struct MemoryController {
    config: MemConfig,
    engine: TimingEngine,
    banks: Vec<BankState>,
    read_q: Vec<QueueEntry>,
    write_q: Vec<QueueEntry>,
    refresh: RefreshScheduler,
    pending_refresh: Option<(RowMode, u64)>,
    draining_writes: bool,
    hit_streak: Vec<u32>,
    inflight: BinaryHeap<Reverse<(u64, u64)>>,
    stats: MemStats,
    cycle: u64,
    /// The shared per-row operating-mode table: the single source of truth
    /// for which timing set, refresh stream, and capacity accounting every
    /// row gets. Mutated only through [`MemoryController::apply_row_modes`].
    modes: ModeTable,
    /// Column accesses per `(flat_bank, row)` since the last telemetry
    /// drain (a `BTreeMap` so export order is deterministic). Populated
    /// only when `telemetry_enabled` is set.
    row_counts: BTreeMap<(u32, u32), u64>,
    /// Whether per-row telemetry is being collected (off by default).
    telemetry_enabled: bool,
    /// Queue service is suspended until this cycle while relocation
    /// (mode-migration data movement) occupies the channel.
    maintenance_until: u64,
    timeout_cycles: Option<u64>,
    addr_mask: u64,
    command_log: Option<Vec<IssuedCommand>>,
    per_bank_acts: Vec<u64>,
    /// Incrementally maintained per-bank scheduler lanes for the read
    /// queue: rebuilt per bank only when its queue composition or bank
    /// state changed since the last scheduling pass.
    read_lanes: LaneCache,
    /// The write queue's lane cache (see `read_lanes`).
    write_lanes: LaneCache,
    /// Background row-migration engine: per-bank relocation job queues
    /// whose commands are issued into idle bank slots (see
    /// [`crate::migrate`]).
    migration: MigrationEngine,
    /// The capacity directory's per-bank free-frame sets: rows whose
    /// contents were evacuated elsewhere, preferred by the destination
    /// pickers (see [`crate::frames`]).
    frames: FrameDirectory,
    /// Rotating bank cursor for cross-bank destination picks, so
    /// consecutive couplings spread their write-back load instead of
    /// piling onto one partner bank.
    dest_cursor: usize,
    /// Memoized raw next-event bound (unclamped). Controller state only
    /// changes at event ticks, on enqueue, and on mode application — the
    /// only places that clear this — so dead ticks, dead-window jumps,
    /// and repeated queries all reuse one evaluation. A dead tick
    /// re-fills it almost for free from the scheduling pass it already
    /// ran (see `queue_ready_hint`).
    next_event_cache: Option<u64>,
    /// The queue's next-ready bound produced as a byproduct of this
    /// tick's failed scheduling pass (`u64::MAX` otherwise). Only
    /// meaningful within the tick that set it.
    queue_ready_hint: u64,
    /// Per-bank one-entry cache of the last `(row, mode)` lookup, keyed on
    /// the row — repeated resolutions against an open row (enqueue-time
    /// target classification, per-ACT resolution of row-hit streams) skip
    /// the bitmap walk. Invalidated whenever `apply_row_modes` touches the
    /// bank.
    mode_cache: Vec<Cell<(u32, RowMode)>>,
    /// Structured event-trace sink (off by default; see
    /// [`MemoryController::enable_tracing`]). Purely observational:
    /// recording never changes a simulated outcome.
    trace: Option<Box<TraceSink>>,
    /// Skip-ahead profiling: dead-window jump lengths, which event
    /// source bounded each jump, and ticked-vs-skipped cycle totals.
    /// Lives outside [`MemStats`] because jump shapes legitimately
    /// differ between per-cycle and skip-ahead walks of the same
    /// simulation.
    skip_profile: SkipProfile,
    /// The event source that produced the memoized `next_event_cache`
    /// bound (meaningful only while the memo is `Some`): attributes each
    /// dead-window jump to the event that ended it.
    next_event_source: EventSource,
    /// Whether per-request wait-cause attribution is on (see
    /// [`MemoryController::enable_blame`]). Off by default so the
    /// scheduling hot paths pay one bool test.
    blame_enabled: bool,
}

impl MemoryController {
    /// Builds a controller (and its DRAM device model) from a
    /// configuration.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid or the CLR fraction/refresh
    /// window is out of range.
    pub fn new(config: MemConfig) -> Self {
        config.geometry.validate().expect("invalid geometry");
        let g = &config.geometry;
        let banks_total = (g.channels * g.ranks * g.bank_groups * g.banks_per_group) as usize;
        let bg_total = (g.channels * g.ranks * g.bank_groups) as usize;
        let ranks_total = (g.channels * g.ranks) as usize;
        let banks_per_group = g.banks_per_group as usize;
        let bgs_per_rank = g.bank_groups as usize;

        let hp_params = config.clr.hp_params(&config.timings);
        let cycle_timings = match config.clr {
            ClrModeConfig::BaselineDdr4 => {
                CycleTimings::baseline(&config.timings, &config.interface)
            }
            ClrModeConfig::Clr { .. } => {
                CycleTimings::new(&config.timings, &hp_params, &config.interface)
            }
        };
        let engine = TimingEngine::new(
            cycle_timings,
            banks_total,
            bg_total,
            ranks_total,
            g.channels as usize,
            |b| {
                let bg = b / banks_per_group;
                let rank = bg / bgs_per_rank;
                (bg, rank)
            },
        );

        let (fraction_hp, refw) = match config.clr {
            ClrModeConfig::BaselineDdr4 => (0.0, 64.0),
            ClrModeConfig::Clr {
                fraction_hp,
                hp_refw_ms,
                ..
            } => (fraction_hp, hp_refw_ms),
        };
        let refresh = if config.refresh_enabled {
            let plan = RefreshPlan::new(&config.timings, fraction_hp, refw);
            let mc_rfc = engine.timings().max_capacity.rfc;
            let hp_rfc = engine.timings().high_performance.rfc;
            RefreshScheduler::new(&plan, config.interface.t_ck_ns, |m| match m {
                RowMode::MaxCapacity => mc_rfc,
                RowMode::HighPerformance => hp_rfc,
            })
        } else {
            RefreshScheduler::disabled()
        };

        let timeout_cycles = config
            .scheduler
            .row_policy
            .idle_threshold_ns()
            .map(|ns| config.interface.ns_to_cycles(ns));
        let mut modes = ModeTable::new(g);
        // Initial layout: the paper's contiguous low-row prefix. A policy
        // runtime may rewrite this at any epoch via `apply_row_modes`.
        modes.set_fraction_high_performance(fraction_hp);
        let addr_mask = g.capacity_bytes() - 1;

        MemoryController {
            engine,
            banks: vec![BankState::new(); banks_total],
            read_q: Vec::with_capacity(config.scheduler.read_queue),
            write_q: Vec::with_capacity(config.scheduler.write_queue),
            refresh,
            pending_refresh: None,
            draining_writes: false,
            hit_streak: vec![0; banks_total],
            inflight: BinaryHeap::new(),
            stats: MemStats::new(),
            cycle: 0,
            modes,
            row_counts: BTreeMap::new(),
            telemetry_enabled: false,
            maintenance_until: 0,
            timeout_cycles,
            addr_mask,
            command_log: None,
            per_bank_acts: vec![0; banks_total],
            read_lanes: LaneCache::new(banks_total, banks_per_group * bgs_per_rank),
            write_lanes: LaneCache::new(banks_total, banks_per_group * bgs_per_rank),
            migration: MigrationEngine::new(
                config.relocation,
                banks_total,
                g.row_bytes() / 2,
                g.burst_bytes(),
            ),
            frames: FrameDirectory::new(banks_total),
            dest_cursor: 0,
            next_event_cache: None,
            queue_ready_hint: u64::MAX,
            mode_cache: vec![Cell::new((MODE_CACHE_EMPTY, RowMode::MaxCapacity)); banks_total],
            trace: None,
            skip_profile: SkipProfile::default(),
            next_event_source: EventSource::Completion,
            blame_enabled: false,
            config,
        }
    }

    /// ACT count per flat bank — a bank-level-parallelism diagnostic.
    pub fn bank_usage(&self) -> &[u64] {
        &self.per_bank_acts
    }

    /// Starts recording every issued command (for the protocol auditor in
    /// [`crate::checker`] and for debugging). Call before driving traffic.
    pub fn enable_command_log(&mut self) {
        self.command_log = Some(Vec::new());
    }

    /// The recorded command log, if enabled.
    pub fn command_log(&self) -> Option<&[IssuedCommand]> {
        self.command_log.as_deref()
    }

    /// Installs a structured event-trace sink recording `cfg.categories`
    /// under process id `pid` (the channel index in a sharded system).
    /// Tracing is observational only: with or without a sink, every
    /// simulated outcome is bit-identical (the workspace tracing
    /// differential test enforces this).
    pub fn enable_tracing(&mut self, cfg: &TraceConfig, pid: u32) {
        self.trace = Some(Box::new(TraceSink::new(cfg, pid)));
    }

    /// The installed trace sink, if any — the memory system drains these
    /// into a merged [`clr_obs::TraceLog`].
    pub fn trace_sink_mut(&mut self) -> Option<&mut TraceSink> {
        self.trace.as_deref_mut()
    }

    /// Skip-ahead profiling counters: dead-window jump-length histogram,
    /// per-source trigger counts, and ticked/skipped cycle totals.
    pub fn skip_profile(&self) -> &SkipProfile {
        &self.skip_profile
    }

    /// Starts per-request wait-cause attribution: every demand
    /// read/write's enqueue→completion latency is decomposed into an
    /// exact per-[`WaitCause`] cycle budget, aggregated into
    /// [`MemStats::read_blame`]/[`MemStats::write_blame`]. Purely
    /// observational — with or without it, every simulated outcome is
    /// bit-identical (the workspace `blame_inertness` differential
    /// enforces this). Call before driving traffic, like
    /// [`MemoryController::enable_tracing`].
    ///
    /// The charging is lazy: each queued request carries one frozen
    /// cause and a resume cycle, re-derived only at the boundaries every
    /// walk executes identically (enqueues, state-changing ticks, mode
    /// applications, migration dispatches) — dead cycles and dead-window
    /// jumps charge nothing at the time they elapse, so per-cycle,
    /// skip-ahead, and threaded walks charge identical budgets.
    pub fn enable_blame(&mut self) {
        self.blame_enabled = true;
    }

    /// Whether wait-cause attribution is on.
    pub fn blame_enabled(&self) -> bool {
        self.blame_enabled
    }

    /// The wait cause `entry` is blocked on right now — the mutually
    /// exclusive taxonomy, priority top to bottom. `preempted` carries a
    /// queue-global preemption (pending refresh or relocation stall);
    /// `deselected` flags that the drain policy is servicing the other
    /// queue this window. An associated function over disjoint field
    /// borrows so [`MemoryController::reblame_queues`] can hold the
    /// queues mutably while deriving causes.
    #[allow(clippy::too_many_arguments)]
    fn cause_of(
        banks: &[BankState],
        engine: &TimingEngine,
        migration: &MigrationEngine,
        entry: &QueueEntry,
        now: u64,
        preempted: Option<WaitCause>,
        deselected: bool,
    ) -> WaitCause {
        if let Some(cause) = preempted {
            return cause;
        }
        if deselected {
            return WaitCause::WriteDrain;
        }
        let bank = entry.target.bank;
        let row = entry.decoded.row;
        // Mirrors the scheduler's exclusion rules: a held bank blocks
        // everything; a migrating row blocks writes always and reads
        // unless the read-out source still sits intact in the row
        // buffer.
        let is_read = entry.request.kind == RequestKind::Read;
        if migration.is_mid_phase(bank)
            || (migration.blocked_row(bank) == Some(row)
                && !(is_read && migration.read_ok_rows()[bank] == row))
        {
            return WaitCause::MigrationBlock;
        }
        // The entry's next command, exactly as `note_enqueue_event`
        // derives it for the event bound.
        let (cmd, target) = match banks[bank].open_row {
            Some(open) if open == row => (scheduler::column_command(entry), entry.target),
            Some(_) => (
                Command::Pre,
                Target {
                    mode: banks[bank].open_mode,
                    ..entry.target
                },
            ),
            None => (Command::Act, entry.target),
        };
        let full = engine.earliest(cmd, target);
        if full <= now {
            // The command is issuable; the request lost FR-FCFS-Cap
            // arbitration (or the single command-bus slot) to another.
            return WaitCause::Aging;
        }
        if engine.bank_gate(cmd, bank) >= full {
            // The bank's own timing window dominates the wait.
            match cmd {
                Command::Pre => WaitCause::RowConflict,
                Command::Act if entry.needed_pre => WaitCause::RowConflict,
                _ => WaitCause::BankBusy,
            }
        } else {
            // Rank/bank-group/channel serialization dominates: tRRD,
            // tFAW, tCCD, bus turnarounds.
            WaitCause::Bus
        }
    }

    /// The blame boundary step: settles every queued request's span
    /// since its last boundary on its frozen cause, then re-freezes the
    /// cause from the current state. Called only where every walk of the
    /// same simulation executes identically — successful enqueues,
    /// state-changing ticks, mode applications, and migration
    /// dispatches — so the settled spans (and hence the final budgets)
    /// are bit-identical across per-cycle, skip-ahead, and threaded
    /// walks.
    fn reblame_queues(&mut self) {
        if !self.blame_enabled || (self.read_q.is_empty() && self.write_q.is_empty()) {
            return;
        }
        let now = self.cycle;
        let preempted = if self.pending_refresh.is_some() {
            Some(WaitCause::Refresh)
        } else if now < self.maintenance_until {
            Some(WaitCause::RelocationStall)
        } else {
            None
        };
        let use_writes = self.queue_selection(self.read_q.len(), self.write_q.len());
        let MemoryController {
            ref mut read_q,
            ref mut write_q,
            ref banks,
            ref engine,
            ref migration,
            ..
        } = *self;
        for e in read_q.iter_mut() {
            let c = Self::cause_of(banks, engine, migration, e, now, preempted, use_writes);
            e.blame.settle(now, c);
        }
        for e in write_q.iter_mut() {
            let c = Self::cause_of(banks, engine, migration, e, now, preempted, !use_writes);
            e.blame.settle(now, c);
        }
    }

    fn log_command(
        &mut self,
        cycle: u64,
        command: Command,
        flat_bank: usize,
        row: u32,
        mode: RowMode,
    ) {
        self.log_command_tagged(cycle, command, flat_bank, row, mode, false);
    }

    #[allow(clippy::too_many_arguments)]
    fn log_command_tagged(
        &mut self,
        cycle: u64,
        command: Command,
        flat_bank: usize,
        row: u32,
        mode: RowMode,
        migration: bool,
    ) {
        if let Some(log) = self.command_log.as_mut() {
            log.push(IssuedCommand {
                cycle,
                command,
                flat_bank,
                row,
                mode,
                migration,
            });
        }
        if let Some(sink) = self.trace.as_deref_mut() {
            if sink.wants(TraceCategory::Commands) {
                sink.instant(
                    TraceCategory::Commands,
                    command.mnemonic(),
                    cycle,
                    vec![
                        ("bank", flat_bank as u64),
                        ("row", row as u64),
                        ("migration", migration as u64),
                    ],
                );
            }
        }
    }

    /// The configuration this controller runs.
    pub fn config(&self) -> &MemConfig {
        &self.config
    }

    /// Current DRAM cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// Operating mode of `row` in `flat_bank`, looked up in the shared
    /// [`ModeTable`] through the per-bank single-entry cache (row-hit
    /// streams resolve the same open row repeatedly).
    ///
    /// # Panics
    ///
    /// Panics if `flat_bank` or `row` is out of range.
    pub fn mode_of_row(&self, flat_bank: usize, row: u32) -> RowMode {
        Self::cached_mode(&self.modes, &self.mode_cache, flat_bank, row)
    }

    /// The cache-backed mode lookup, as an associated function so callers
    /// holding disjoint field borrows of the controller can use it.
    fn cached_mode(
        modes: &ModeTable,
        cache: &[Cell<(u32, RowMode)>],
        flat_bank: usize,
        row: u32,
    ) -> RowMode {
        let (cached_row, cached_mode) = cache[flat_bank].get();
        if cached_row == row {
            return cached_mode;
        }
        let mode = modes.mode_of(flat_bank, row);
        cache[flat_bank].set((row, mode));
        mode
    }

    /// The shared per-row mode table.
    pub fn mode_table(&self) -> &ModeTable {
        &self.modes
    }

    /// Applies validated row-mode transitions (from a policy runtime),
    /// charging `stall_cycles` of relocation work during which queue
    /// service is suspended, and retuning the heterogeneous refresh
    /// streams to the new mode population. Returns the number of rows
    /// whose mode actually changed.
    ///
    /// Mode changes take effect at each row's *next activation* (§3.3:
    /// the ISO control signals are applied per-ACT), so a currently open
    /// row finishes its row cycle in the mode it was sensed in.
    ///
    /// # Panics
    ///
    /// Panics if any `(flat_bank, row)` is out of range.
    pub fn apply_row_modes(&mut self, changes: &[(usize, u32, RowMode)], stall_cycles: u64) -> u64 {
        let mut changed = 0;
        for &(bank, row, mode) in changes {
            if self.modes.set(bank, row, mode) != mode {
                changed += 1;
            }
            // Any touched bank's cached lookup may now be stale.
            self.mode_cache[bank].set((MODE_CACHE_EMPTY, RowMode::MaxCapacity));
        }
        if changed > 0 {
            self.stats.mode_transitions += changed;
            self.maintenance_until = self.maintenance_until.max(self.cycle) + stall_cycles;
            self.retune_refresh();
            self.next_event_cache = None;
            // The stall window opening is a blame boundary: queued
            // requests charge RelocationStall from here, not from the
            // next state-changing tick.
            self.reblame_queues();
        }
        changed
    }

    /// Applies a transition batch as *background migration* instead of a
    /// stall: demotions (decoupling is free at the device level) flip
    /// immediately, while each promotion is dispatched as a per-row
    /// [`MigrationJob`](crate::migrate::MigrationJob) whose read-out /
    /// couple / write-back phases issue as real commands into idle bank
    /// slots. A promoted row's mode flips at its job's couple point, not
    /// here; completions are reported through
    /// [`MemoryController::drain_completed_migrations_into`].
    ///
    /// Returns the number of jobs dispatched. Rows already migrating (as
    /// a source *or* as another job's destination frame), rows with no
    /// available destination frame, and no-op transitions are skipped.
    ///
    /// # Panics
    ///
    /// Panics if any `(flat_bank, row)` is out of range.
    pub fn begin_row_migrations(&mut self, changes: &[(usize, u32, RowMode)]) -> u64 {
        self.begin_migrations_inner(changes, None)
    }

    /// [`MemoryController::begin_row_migrations`], additionally appending
    /// each dispatched coupling's `(bank, row)` to `dispatched`. A caller
    /// tracking in-progress transitions must use exactly this set — a
    /// proposal can be silently skipped (row already migrating, row in
    /// use as a destination frame, no free destination frame), and a
    /// skipped row never produces a completion callback.
    pub fn begin_row_migrations_tracked(
        &mut self,
        changes: &[(usize, u32, RowMode)],
        dispatched: &mut Vec<(u32, u32)>,
    ) -> u64 {
        self.begin_migrations_inner(changes, Some(dispatched))
    }

    fn begin_migrations_inner(
        &mut self,
        changes: &[(usize, u32, RowMode)],
        mut dispatched: Option<&mut Vec<(u32, u32)>>,
    ) -> u64 {
        let mut flips = 0u64;
        let mut jobs = 0u64;
        for &(bank, row, mode) in changes {
            if self.migration.is_row_pending(bank, row) {
                continue;
            }
            let cur = self.modes.mode_of(bank, row);
            if cur == mode {
                continue;
            }
            match mode {
                RowMode::MaxCapacity => {
                    self.modes.set(bank, row, mode);
                    self.mode_cache[bank].set((MODE_CACHE_EMPTY, RowMode::MaxCapacity));
                    flips += 1;
                }
                RowMode::HighPerformance => {
                    if let Some((dest_bank, dest)) = self.pick_migration_dest(bank, row) {
                        if self
                            .migration
                            .dispatch_couple(bank, row, dest_bank, dest, cur, mode, self.cycle)
                        {
                            if self.frames.take_exact(dest_bank, dest) {
                                self.stats.frames_reused += 1;
                            }
                            jobs += 1;
                            if let Some(out) = dispatched.as_deref_mut() {
                                out.push((bank as u32, row));
                            }
                        }
                    }
                }
            }
        }
        if flips > 0 {
            self.stats.mode_transitions += flips;
            self.retune_refresh();
        }
        if flips > 0 || jobs > 0 {
            self.next_event_cache = None;
            self.reblame_queues();
        }
        jobs
    }

    /// Picks the destination frame for a coupling's displaced half-row
    /// under the configured [`DestinationPicker`]. Same-bank placement is
    /// the legacy scan: a max-capacity row of the same bank with no
    /// pending migration role, scanned deterministically from half a
    /// bank away (so destinations land far from the contiguous fast-row
    /// prefix). Cross-bank placement prefers a frame in another bank —
    /// known-free directory frames first, then the same deterministic
    /// scan — falling back to the same-bank scan on single-bank
    /// geometries. `None` when no frame exists anywhere — the coupling
    /// is then impossible and skipped, exactly as an OS with no free
    /// frame would decline it.
    fn pick_migration_dest(&mut self, bank: usize, row: u32) -> Option<(usize, u32)> {
        if self.config.placement.is_cross_bank() {
            if let Some(hit) = self.pick_cross_bank_dest(bank, row) {
                return Some(hit);
            }
        }
        let rows = self.config.geometry.rows;
        (0..rows)
            .map(|k| (row + rows / 2 + k) % rows)
            .find(|&cand| {
                cand != row
                    && self.modes.mode_of(bank, cand) == RowMode::MaxCapacity
                    && !self.migration.is_row_pending(bank, cand)
            })
            .map(|r| (bank, r))
    }

    /// The cross-bank destination scan: rotate over the other banks
    /// (starting opposite the source, advanced by a cursor so
    /// consecutive couplings spread), preferring each bank's known-free
    /// frames before its deterministic row scan.
    fn pick_cross_bank_dest(&mut self, bank: usize, row: u32) -> Option<(usize, u32)> {
        let banks = self.banks.len();
        if banks < 2 {
            return None;
        }
        let rows = self.config.geometry.rows;
        let start = bank + banks / 2 + self.dest_cursor;
        for k in 0..banks {
            let cand_bank = (start + k) % banks;
            if cand_bank == bank {
                continue;
            }
            let (frames, modes, migration) = (&mut self.frames, &self.modes, &self.migration);
            if let Some(r) = frames.take_in_bank(cand_bank, |r| {
                modes.mode_of(cand_bank, r) == RowMode::MaxCapacity
                    && !migration.is_row_pending(cand_bank, r)
            }) {
                self.stats.frames_reused += 1;
                self.dest_cursor = (self.dest_cursor + 1) % banks;
                return Some((cand_bank, r));
            }
            if let Some(r) = self.scan_mc_frame(cand_bank, row + rows / 2) {
                self.dest_cursor = (self.dest_cursor + 1) % banks;
                return Some((cand_bank, r));
            }
        }
        None
    }

    /// Migration jobs dispatched but not yet complete.
    pub fn pending_migrations(&self) -> usize {
        self.migration.pending_jobs()
    }

    /// Drains completed `(bank, row, mode)` migrations since the last
    /// drain into `out` (clearing `out` first) — the completion callback
    /// feed for a policy runtime tracking in-progress transitions.
    pub fn drain_completed_migrations_into(&mut self, out: &mut Vec<(u32, u32, RowMode)>) {
        self.migration.drain_completed_into(out);
    }

    /// Drains completed frame-placement actions (evacuations, staged
    /// cross-channel read-outs, fills, cross-bank couplings) into `out`
    /// (clearing `out` first) — the feed a [`MemorySystem`] pump uses to
    /// install remap entries and advance staged cross-channel moves.
    ///
    /// [`MemorySystem`]: crate::system::MemorySystem
    pub fn drain_placement_events_into(&mut self, out: &mut Vec<PlacementEvent>) {
        self.migration.drain_placements_into(out);
    }

    /// Additionally records completed cross-bank couplings as placement
    /// events (off by default — the system pump ignores them, so
    /// unconditional recording would accumulate without bound on runs
    /// that never drain; audits and debugging switch it on before
    /// driving traffic, like [`MemoryController::enable_command_log`]).
    pub fn enable_couple_placement_log(&mut self) {
        self.migration.enable_couple_placement_log();
    }

    /// Dispatches a same-channel whole-row frame move as background
    /// migration traffic: the full max-capacity row `(bank, row)` is
    /// streamed into the frame `(dest_bank, dest)` of another bank.
    /// Returns `false` if either row is not max-capacity or already has
    /// a pending migration role.
    pub fn begin_row_evacuation(
        &mut self,
        bank: usize,
        row: u32,
        dest_bank: usize,
        dest: u32,
    ) -> bool {
        if self.modes.mode_of(bank, row) != RowMode::MaxCapacity
            || self.modes.mode_of(dest_bank, dest) != RowMode::MaxCapacity
        {
            return false;
        }
        let ok = self
            .migration
            .dispatch_evacuate(bank, row, dest_bank, dest, self.cycle);
        if ok {
            if self.frames.take_exact(dest_bank, dest) {
                self.stats.frames_reused += 1;
            }
            self.next_event_cache = None;
            self.reblame_queues();
        }
        ok
    }

    /// Dispatches the read-out half of a cross-channel frame move: the
    /// full max-capacity row `(bank, row)` is streamed out and staged
    /// for a fill on another channel. The row stays reserved after the
    /// job completes, until [`MemoryController::note_frame_freed`]
    /// confirms the landing. Returns `false` if the row is not
    /// max-capacity or already has a pending role.
    pub fn begin_evacuation_out(&mut self, bank: usize, row: u32) -> bool {
        if self.modes.mode_of(bank, row) != RowMode::MaxCapacity {
            return false;
        }
        let ok = self.migration.dispatch_evacuate_out(bank, row, self.cycle);
        if ok {
            self.next_event_cache = None;
            self.reblame_queues();
        }
        ok
    }

    /// Dispatches the write-back half of a cross-channel frame move into
    /// the frame `(bank, row)`, which must have been reserved through
    /// [`MemoryController::reserve_frame`] when the move was scheduled.
    /// Returns `false` if no such reservation exists.
    pub fn begin_fill(&mut self, bank: usize, row: u32) -> bool {
        let ok = self.migration.dispatch_fill(bank, row, true, self.cycle);
        if ok {
            // The move is committed from here: a known-free frame is
            // consumed only now, so an aborted reservation loses
            // nothing.
            if self.frames.take_exact(bank, row) {
                self.stats.frames_reused += 1;
            }
            self.next_event_cache = None;
            self.reblame_queues();
        }
        ok
    }

    /// Reserves `(bank, row)` as the destination frame of a scheduled
    /// (but not yet dispatched) cross-channel move, so no picker hands
    /// it out in the meantime. A known-free frame stays in the directory
    /// (the reservation keeps pickers away; it is consumed by
    /// [`MemoryController::begin_fill`]). Returns `false` if the row
    /// already has a pending role.
    pub fn reserve_frame(&mut self, bank: usize, row: u32) -> bool {
        if self.modes.mode_of(bank, row) != RowMode::MaxCapacity {
            return false;
        }
        self.migration.reserve(bank, row)
    }

    /// Releases a frame reservation without freeing the frame (an
    /// aborted scheduled move).
    pub fn release_frame(&mut self, bank: usize, row: u32) -> bool {
        self.migration.release(bank, row)
    }

    /// Confirms that the contents of `(bank, row)` landed elsewhere (a
    /// cross-channel move's fill completed): the row's reservation is
    /// released and it enters the capacity directory as a known-free
    /// frame.
    pub fn note_frame_freed(&mut self, bank: usize, row: u32) {
        self.migration.release(bank, row);
        self.frames.free(bank, row);
        self.stats.frames_freed += 1;
    }

    /// The capacity directory's free-frame view for this channel.
    pub fn frame_directory(&self) -> &FrameDirectory {
        &self.frames
    }

    /// Whether `(bank, row)` has a pending migration role or frame
    /// reservation.
    pub fn is_row_migrating(&self, bank: usize, row: u32) -> bool {
        self.migration.is_row_pending(bank, row)
    }

    /// Finds and reserves a destination frame for an incoming
    /// cross-channel move: a known-free directory frame if one exists,
    /// else a deterministic scan over max-capacity rows without pending
    /// roles, rotated by `hint` so successive imports spread over banks.
    /// The frame is only *reserved* here — a known-free frame leaves the
    /// directory when the fill actually dispatches, so aborted moves
    /// lose nothing.
    pub fn reserve_import_frame(&mut self, hint: usize) -> Option<(usize, u32)> {
        let banks = self.banks.len();
        let rows = self.config.geometry.rows;
        for k in 0..banks {
            let bank = (hint + k) % banks;
            if let Some(r) = self.frames.peek_in_bank(bank, |r| {
                self.modes.mode_of(bank, r) == RowMode::MaxCapacity
                    && !self.migration.is_row_pending(bank, r)
            }) {
                self.migration.reserve(bank, r);
                return Some((bank, r));
            }
            if let Some(r) = self.scan_mc_frame(bank, rows / 2) {
                self.migration.reserve(bank, r);
                return Some((bank, r));
            }
        }
        None
    }

    /// The shared allocatability scan: the first max-capacity row of
    /// `bank` with no pending migration role, walking `rows` entries
    /// from `start_row` (wrapping) — the deterministic fallback every
    /// destination picker uses when the directory has no known-free
    /// frame.
    fn scan_mc_frame(&self, bank: usize, start_row: u32) -> Option<u32> {
        let rows = self.config.geometry.rows;
        (0..rows).map(|k| (start_row + k) % rows).find(|&cand| {
            self.modes.mode_of(bank, cand) == RowMode::MaxCapacity
                && !self.migration.is_row_pending(bank, cand)
        })
    }

    /// Starts counting per-row column accesses for telemetry export.
    /// Off by default so non-policy runs pay nothing on the column-command
    /// hot path (mirrors [`MemoryController::enable_command_log`]).
    pub fn enable_row_telemetry(&mut self) {
        self.telemetry_enabled = true;
    }

    /// Drains the per-row access telemetry accumulated since the last
    /// drain, as `((flat_bank, row), column_accesses)` sorted by
    /// `(bank, row)`. Empty unless
    /// [`MemoryController::enable_row_telemetry`] was called.
    pub fn drain_row_telemetry(&mut self) -> Vec<((u32, u32), u64)> {
        let mut out = Vec::new();
        self.drain_row_telemetry_into(&mut out);
        out
    }

    /// [`MemoryController::drain_row_telemetry`] into a caller-owned
    /// buffer, so an epoch loop can reuse one allocation across drains.
    /// Clears `out` first.
    pub fn drain_row_telemetry_into(&mut self, out: &mut Vec<((u32, u32), u64)>) {
        out.clear();
        out.extend(std::mem::take(&mut self.row_counts));
    }

    /// Rebuilds the refresh scheduler for the current mode population,
    /// rebased at the current cycle.
    fn retune_refresh(&mut self) {
        if !self.config.refresh_enabled {
            return;
        }
        let refw = match self.config.clr {
            ClrModeConfig::BaselineDdr4 => 64.0,
            ClrModeConfig::Clr { hp_refw_ms, .. } => hp_refw_ms,
        };
        let plan = RefreshPlan::new(
            &self.config.timings,
            self.modes.fraction_high_performance(),
            refw,
        );
        let mc_rfc = self.engine.timings().max_capacity.rfc;
        let hp_rfc = self.engine.timings().high_performance.rfc;
        // Carry surviving streams' due times: a retune must not push
        // refresh into the future (policy epochs can be much shorter
        // than tREFI, so resetting would starve refresh entirely).
        self.refresh = self.refresh.retuned(
            &plan,
            self.config.interface.t_ck_ns,
            |m| match m {
                RowMode::MaxCapacity => mc_rfc,
                RowMode::HighPerformance => hp_rfc,
            },
            self.cycle,
        );
    }

    /// Number of queued reads (diagnostics).
    pub fn pending_reads(&self) -> usize {
        self.read_q.len()
    }

    /// Number of queued writes (diagnostics).
    pub fn pending_writes(&self) -> usize {
        self.write_q.len()
    }

    /// Whether all queues and in-flight buffers are empty.
    pub fn is_idle(&self) -> bool {
        self.read_q.is_empty() && self.write_q.is_empty() && self.inflight.is_empty()
    }

    /// Attempts to enqueue a request, returning it back on queue-full
    /// (callers retry next cycle — that is the backpressure model).
    ///
    /// Reads matching a queued write's line are served by forwarding.
    pub fn try_enqueue(&mut self, request: MemRequest) -> Result<(), MemRequest> {
        let masked = PhysAddr(request.addr.0 & self.addr_mask);
        let line = masked.line(self.config.geometry.burst_bytes());
        match request.kind {
            RequestKind::Read => {
                if self
                    .write_q
                    .iter()
                    .any(|e| e.request.addr.line(self.config.geometry.burst_bytes()) == line)
                {
                    self.stats.forwarded_reads += 1;
                    self.inflight.push(Reverse((self.cycle + 1, request.id)));
                    self.merge_event_bound(self.cycle + 1, EventSource::Completion);
                    return Ok(());
                }
                if self.read_q.len() >= self.config.scheduler.read_queue {
                    self.stats.queue_rejections += 1;
                    return Err(request); // no state changed; bound holds
                }
                let entry = self.make_entry(MemRequest {
                    addr: masked,
                    ..request
                });
                self.note_enqueue_event(&entry, false);
                self.read_q.push(entry);
                self.read_lanes.on_push(
                    &self.read_q,
                    &self.banks,
                    self.migration.blocked_rows(),
                    self.migration.read_ok_rows(),
                );
                // An enqueue is a blame boundary: it can flip the drain
                // policy's queue selection for *every* queued request,
                // not just freeze the new entry's first cause.
                self.reblame_queues();
                Ok(())
            }
            RequestKind::Write => {
                if self.write_q.len() >= self.config.scheduler.write_queue {
                    self.stats.queue_rejections += 1;
                    return Err(request); // no state changed; bound holds
                }
                let entry = self.make_entry(MemRequest {
                    addr: masked,
                    ..request
                });
                self.note_enqueue_event(&entry, true);
                self.write_q.push(entry);
                self.write_lanes.on_push(
                    &self.write_q,
                    &self.banks,
                    self.migration.blocked_rows(),
                    self.migration.read_ok_rows(),
                );
                self.reblame_queues();
                Ok(())
            }
        }
    }

    /// Folds an additional possible event at `at` (from `source`) into
    /// the memoized next-event bound (a stale `None` stays `None` — it
    /// will be fully recomputed anyway).
    fn merge_event_bound(&mut self, at: u64, source: EventSource) {
        if let Some(r) = self.next_event_cache {
            if at < r {
                self.next_event_source = source;
            }
            self.next_event_cache = Some(r.min(at));
        }
    }

    /// The drain policy's queue selection for hypothetical queue lengths
    /// (replaying the watermark hysteresis without mutating it).
    fn queue_selection(&self, reads: usize, writes: usize) -> bool {
        let mut draining = self.draining_writes;
        if !draining && writes >= self.config.scheduler.write_high_watermark {
            draining = true;
        }
        if draining && writes <= self.config.scheduler.write_low_watermark {
            draining = false;
        }
        draining || (reads == 0 && writes > 0)
    }

    /// Updates the memoized next-event bound for an entry about to join a
    /// queue. Exact, O(1): an enqueue cannot change any existing lane's
    /// readiness, so the bound only gains the new entry's own earliest —
    /// unless it flips the drain policy's queue selection, where the
    /// bound must be rebuilt from the other queue.
    fn note_enqueue_event(&mut self, entry: &QueueEntry, to_writes: bool) {
        if self.pending_refresh.is_some() || self.cycle < self.maintenance_until {
            // Queue service is preempted: no queue event can fire before
            // the preemption-end stop point already in the bound (the
            // REF issue or the stall expiry), and both re-derive the
            // bound with the queue included. Merging the new entry's
            // readiness here would only wedge a stale `<= now` value
            // into the memo and disable jumping for the whole window.
            return;
        }
        let (reads, writes) = (self.read_q.len(), self.write_q.len());
        let before = self.queue_selection(reads, writes);
        let after = if to_writes {
            self.queue_selection(reads, writes + 1)
        } else {
            self.queue_selection(reads + 1, writes)
        };
        if before != after {
            self.next_event_cache = None;
            return;
        }
        if after != to_writes {
            // The unselected queue is not serviced this window; existing
            // events are unaffected.
            return;
        }
        let bank = entry.target.bank;
        if self.migration.is_mid_phase(bank)
            || self.migration.blocked_row(bank) == Some(entry.decoded.row)
        {
            // The entry waits on the in-flight migration (the job holds
            // the bank, or the entry targets the migrating row) — but
            // its arrival can *enable* the job's eager finish
            // (demand-pressure priority), so the memoized bound must be
            // re-derived rather than merely merged.
            self.next_event_cache = None;
            return;
        }
        let (cmd, target) = match self.banks[bank].open_row {
            Some(row) if row == entry.decoded.row => {
                (scheduler::column_command(entry), entry.target)
            }
            Some(_) => (
                Command::Pre,
                Target {
                    mode: self.banks[bank].open_mode,
                    ..entry.target
                },
            ),
            None => (Command::Act, entry.target),
        };
        let at = self.engine.earliest(cmd, target);
        self.merge_event_bound(at, EventSource::QueueReady);
    }

    fn make_entry(&self, request: MemRequest) -> QueueEntry {
        let g = &self.config.geometry;
        let decoded = self
            .config
            .mapping
            .map(request.addr, g)
            .expect("masked address is always in range");
        let flat_bank = decoded.flat_bank(g);
        let banks_per_group = g.banks_per_group as usize;
        let bgs_per_rank = g.bank_groups as usize;
        let bg = flat_bank / banks_per_group;
        let rank = bg / bgs_per_rank;
        let target = Target {
            bank: flat_bank,
            bank_group: bg,
            rank,
            channel: decoded.channel as usize,
            mode: self.mode_of_row(flat_bank, decoded.row),
        };
        let mut entry = scheduler::entry(request, decoded, target);
        if self.blame_enabled {
            // Arrival → successful enqueue is the backpressure budget
            // (queue-full rejections make the CPU side retry).
            entry.blame = BlameLedger::new(entry.request.arrival_cycle, self.cycle);
        }
        entry
    }

    /// Advances one DRAM clock cycle, pushing finished reads into
    /// `completions`.
    pub fn tick(&mut self, completions: &mut Vec<Completion>) {
        let now = self.cycle;
        self.skip_profile.record_tick();
        let mut changed = false;

        // 1. Deliver finished reads.
        while let Some(&Reverse((done, id))) = self.inflight.peek() {
            if done > now {
                break;
            }
            self.inflight.pop();
            completions.push(Completion {
                id,
                finish_cycle: done,
            });
            changed = true;
        }

        // 2. Refresh has the highest priority once due.
        if self.pending_refresh.is_none() {
            if let Some((mode, rfc)) = self.refresh.due(now) {
                self.pending_refresh = Some((mode, rfc));
                changed = true;
            }
        }
        let mut issued = false;
        let mut served = false;
        self.queue_ready_hint = u64::MAX;
        if let Some((mode, rfc)) = self.pending_refresh {
            issued = self.progress_refresh(mode, rfc, now);
        } else if now < self.maintenance_until {
            // Relocation work from a stall-mode transition batch occupies
            // the channel: queue service pauses, refresh does not.
            self.stats.relocation_stall_cycles += 1;
        } else {
            // Migration jobs *start* only in idle slots (no demand
            // command could issue) — but once a job is in flight it owns
            // its bank's row buffer, so its remaining commands outrank
            // demand: finishing eagerly bounds how long the bank blocks
            // demand to the job's own execution time, instead of letting
            // a saturated bus hold the bank hostage indefinitely. Under
            // deadline-boosted priority, overdue job starts also outrank
            // demand.
            let migration_work = self.migration.pending_jobs() > 0;
            if migration_work {
                issued = self.serve_migration(now, false, u64::MAX);
            }
            if !issued {
                issued = self.serve_queues(now);
                served = true;
            }
            if !issued && migration_work {
                // The failed scheduling pass priced the selected queue's
                // next-ready cycle; migration may use the slot only if
                // its command's shadow ends before that.
                issued = self.serve_migration(now, true, self.queue_ready_hint);
            }
        }

        // 3. Timeout row policy as background work.
        if !issued && now >= self.maintenance_until {
            changed |= self.close_expired_row(now);
        }

        // 4. Background accounting.
        if self.banks.iter().any(|b| b.open_row.is_some()) {
            self.stats.rank_active_cycles += 1;
        } else {
            self.stats.rank_precharged_cycles += 1;
        }

        if changed || issued {
            // Only ticks that actually did something move the next-event
            // bound; dead ticks keep the memoized value.
            self.next_event_cache = None;
            // State-changing ticks are blame boundaries; dead ticks (and
            // the dead-window jumps that replace them) charge nothing at
            // the time, which is what keeps the budgets bit-identical
            // across per-cycle and skip-ahead walks.
            self.reblame_queues();
        } else if self.next_event_cache.is_none() {
            // A dead tick re-derives the bound almost for free: its
            // failed scheduling pass already priced the queue (the
            // dominant term), so only the cheap components remain.
            let hint = served.then_some(self.queue_ready_hint);
            let r = self.compute_next_event(hint);
            self.next_event_cache = Some(r);
        }
        self.cycle += 1;
        self.stats.cycles = self.cycle;
    }

    /// Advances to DRAM cycle `target`, alternating O(1) jumps over dead
    /// windows (cycles where [`MemoryController::next_event_cycle`]
    /// proves nothing can happen) with ordinary [`MemoryController::tick`]
    /// calls at event cycles. Bit-identical to calling `tick` in a loop:
    /// same command log, same completion cycles, same statistics.
    pub fn tick_until(&mut self, target: u64, completions: &mut Vec<Completion>) {
        while self.cycle < target {
            // Jump only on a memoized bound; otherwise tick — event ticks
            // do real work, and the first dead tick after them re-fills
            // the memo as a byproduct of its own scheduling pass, so the
            // walk never pays a from-scratch event computation (the exact
            // pricing pass walks every candidate; a failing serve pass
            // prunes, so it is the cheaper way to re-derive the bound).
            match self.next_event_cache {
                Some(r) if r > self.cycle => self.skip_dead_cycles(r.min(target)),
                _ => self.tick(completions),
            }
        }
    }

    /// The earliest cycle ≥ now at which anything can happen: a command
    /// issue, a refresh becoming due or progressing, a read completing, a
    /// relocation stall expiring, or a timeout-policy row close. Every
    /// cycle strictly before the returned value is a *dead* cycle whose
    /// [`MemoryController::tick`] would only advance the clock and the
    /// busy/idle accounting; `u64::MAX` means the controller is fully
    /// idle and only new enqueues can wake it.
    ///
    /// The bound is exact, not heuristic: all inputs (engine readiness
    /// registers, queue contents, bank states, refresh due times) are
    /// constant across a dead window, so re-evaluating at the returned
    /// cycle finds a real event (or a newly computed later bound). The
    /// evaluation is memoized: dead ticks and dead-window jumps reuse it,
    /// and it is recomputed only after a state-changing tick, enqueue, or
    /// mode application.
    pub fn next_event_cycle(&mut self) -> u64 {
        let now = self.cycle;
        let raw = match self.next_event_cache {
            Some(r) if r > now => r,
            _ => {
                let r = self.compute_next_event(None);
                self.next_event_cache = Some(r);
                r
            }
        };
        if raw == u64::MAX {
            u64::MAX
        } else {
            raw.max(now)
        }
    }

    /// The uncached next-event evaluation (see
    /// [`MemoryController::next_event_cycle`]). `queue_ready` carries the
    /// bound a just-failed scheduling pass already derived for the
    /// selected queue, sparing the rescan.
    fn compute_next_event(&mut self, queue_ready: Option<u64>) -> u64 {
        let now = self.cycle;
        // Track which source produced the minimum so skip-ahead
        // profiling can attribute each dead-window jump.
        let mut next = u64::MAX;
        let mut source = EventSource::Completion;
        let fold = |next: &mut u64, source: &mut EventSource, t: u64, s: EventSource| {
            if t < *next {
                *next = t;
                *source = s;
            }
        };
        // 1. In-flight read completions are delivered at their cycle.
        if let Some(&Reverse((done, _))) = self.inflight.peek() {
            fold(&mut next, &mut source, done, EventSource::Completion);
        }
        let maintenance_active = now < self.maintenance_until;
        if let Some((mode, _rfc)) = self.pending_refresh {
            // 2a. A pending refresh progresses (PRE of an open bank, or
            // the REF itself) as soon as the engine allows.
            let t = self.refresh_progress_ready_cycle(mode);
            fold(&mut next, &mut source, t, EventSource::Refresh);
            // The timeout row policy still runs while refresh is blocked
            // (it fires whenever no command issued and no stall holds).
            if !maintenance_active {
                if let Some(t) = self.next_timeout_close_cycle() {
                    fold(&mut next, &mut source, t, EventSource::TimeoutClose);
                }
            }
        } else {
            // 2b. Refresh becoming due preempts queue service.
            if let Some(due) = self.refresh.next_due_cycle() {
                fold(&mut next, &mut source, due, EventSource::Refresh);
            }
            if maintenance_active {
                // 3. Queue service resumes when the relocation stall ends.
                fold(
                    &mut next,
                    &mut source,
                    self.maintenance_until,
                    EventSource::RelocationStall,
                );
            } else {
                // 4. The earliest issuable command of the queue the
                // drain policy would select this window.
                let t = match queue_ready {
                    Some(hint) => hint,
                    None => self.next_queue_ready_cycle().unwrap_or(u64::MAX),
                };
                fold(&mut next, &mut source, t, EventSource::QueueReady);
                // 5. Timeout-policy background row close.
                if let Some(t) = self.next_timeout_close_cycle() {
                    fold(&mut next, &mut source, t, EventSource::TimeoutClose);
                }
                // 6. The earliest issuable background-migration command
                // (rate-limiter gated).
                if let Some(t) = self.migration_next_ready() {
                    fold(&mut next, &mut source, t, EventSource::Migration);
                }
            }
        }
        self.next_event_source = source;
        next
    }

    /// The earliest cycle ≥ now at which any bank's next migration
    /// command satisfies the timing engine, the rate limiter (job starts
    /// only), and the start-eligibility rules (`None` when no migration
    /// work is pending). Like the queue bound, every input is constant
    /// across a dead window — the only time-varying eligibility, a
    /// deadline-boosted start on an open bank, is priced by its deadline
    /// cycle — so the value is an exact event bound.
    fn migration_next_ready(&self) -> Option<u64> {
        if self.migration.pending_jobs() == 0 {
            return None;
        }
        let rate_gate = self.migration.rate_gate(self.cycle);
        let mut next: Option<u64> = None;
        let mut fold = |t: u64| next = Some(next.map_or(t, |n: u64| n.min(t)));
        for b in 0..self.banks.len() {
            if !self.migration.bank_has_work(b) {
                continue;
            }
            let open = self.banks[b].open_row.map(|r| (r, self.banks[b].open_mode));
            if self.migration.is_busy(b) {
                // A role blocked on another side's progress (a write
                // burst waiting for unread data, a completion waiting for
                // the couple point) has no command; the event that
                // releases it is priced on the other bank.
                if let Some(nc) = self.migration.next_command(b, open, self.cycle) {
                    fold(
                        self.engine
                            .earliest(nc.command, self.bank_target(b, nc.mode)),
                    );
                }
            } else if let Some((_row, from)) = self.migration.queued_start(b) {
                let demand_free =
                    !self.read_lanes.has_entries(b) && !self.write_lanes.has_entries(b);
                match open {
                    None if demand_free => {
                        let target = self.bank_target(b, from);
                        fold(self.engine.earliest(Command::Act, target).max(rate_gate));
                    }
                    None => {
                        // Queued demand owns the bank; the start waits
                        // for the queue to drain (every removal is an
                        // event) or for its deadline boost.
                        if let Some(at) = self.migration.boosted_start_at(b) {
                            let target = self.bank_target(b, from);
                            let t = self
                                .engine
                                .earliest(Command::Act, target)
                                .max(at)
                                .max(rate_gate);
                            fold(t);
                        }
                    }
                    Some((_, mode)) => {
                        // The start waits for the bank to close (demand
                        // PRE or timeout close — both events), unless a
                        // deadline boost lets it force the close.
                        if let Some(at) = self.migration.boosted_start_at(b) {
                            let target = self.bank_target(b, mode);
                            let t = self
                                .engine
                                .earliest(Command::Pre, target)
                                .max(at)
                                .max(rate_gate);
                            fold(t);
                        }
                    }
                }
            }
        }
        next
    }

    /// The cycles by which an idle-slot migration ACT could delay the
    /// next demand activate on the rank (tRRD, worst same-bank-group
    /// distance). Phase starts are the only migration commands issued
    /// into cold idle slots — burst trains run contiguously once their
    /// ACT lands — so the ACT's cross-bank shadow is the one that must
    /// clear imminent demand: a one-cycle gap just before a demand ACT
    /// is not a free slot.
    fn migration_act_shadow(&self) -> u64 {
        self.engine.timings().rrd_l
    }

    /// Records a migration job reaching its terminal step: end-to-end
    /// job latency (dispatch → terminal PRE) into the stats histogram,
    /// and — when tracing — a span covering the job's lifetime.
    fn note_migration_done(
        &mut self,
        name: &'static str,
        dispatched_at: u64,
        now: u64,
        bank: u32,
        row: u32,
    ) {
        self.stats
            .migration_latency_hist
            .record(now.saturating_sub(dispatched_at));
        if let Some(sink) = self.trace.as_deref_mut() {
            if sink.wants(TraceCategory::Migration) {
                sink.span(
                    TraceCategory::Migration,
                    name,
                    dispatched_at,
                    now.saturating_sub(dispatched_at).max(1),
                    vec![("bank", bank as u64), ("row", row as u64)],
                );
            }
        }
    }

    /// Emits a sampled tail-request async flow span when tracing wants
    /// the `requests` category: arrival → last data beat, carrying the
    /// read's full per-cause blame budget in the begin event's args.
    /// The sampling predicate is deterministic — latency at least 4×
    /// the unloaded CAS+burst service time — so traced and untraced
    /// runs (and any two traced runs) see identical simulations and
    /// identical spans.
    fn emit_request_flow(
        &mut self,
        entry: &QueueEntry,
        ledger: &BlameLedger,
        latency: u64,
        done: u64,
    ) {
        let threshold = 4 * self.engine.read_done(0);
        let Some(sink) = self.trace.as_deref_mut() else {
            return;
        };
        if !sink.wants(TraceCategory::Requests) || latency < threshold {
            return;
        }
        let mut args: Vec<(&'static str, u64)> = vec![
            ("bank", entry.target.bank as u64),
            ("row", entry.decoded.row as u64),
            ("latency", latency),
        ];
        for (cause, &cycles) in WaitCause::ALL.iter().zip(ledger.cycles.iter()) {
            if cycles > 0 {
                args.push((cause.label(), cycles));
            }
        }
        sink.flow(
            TraceCategory::Requests,
            "slow_read",
            entry.request.id,
            done - latency,
            latency,
            args,
        );
    }

    /// Emits an instant migration-lifecycle trace event (couple points,
    /// dispatches) when tracing is enabled.
    fn trace_migration_instant(&mut self, name: &'static str, ts: u64, bank: u32, row: u32) {
        if let Some(sink) = self.trace.as_deref_mut() {
            if sink.wants(TraceCategory::Migration) {
                sink.instant(
                    TraceCategory::Migration,
                    name,
                    ts,
                    vec![("bank", bank as u64), ("row", row as u64)],
                );
            }
        }
    }

    /// Issues one background-migration command if any bank's next
    /// migration step is engine-ready (and, for job starts, the rate
    /// limiter allows it). With `idle_slot` false, only jobs demand is
    /// waiting on — and overdue (deadline-boosted) starts — are
    /// eligible; in idle slots (`demand_ready` carries the scheduling
    /// pass's next-ready bound) phase-start ACTs are additionally
    /// tRRD-shadow-gated so relocation never delays an imminent demand
    /// activate. Banks are visited round-robin so one bank's backlog
    /// cannot starve the rest. Returns whether a command issued.
    fn serve_migration(&mut self, now: u64, idle_slot: bool, demand_ready: u64) -> bool {
        let n = self.banks.len();
        let start = self.migration.rr_start();
        // The rate limiter is global and applies to every start (overdue
        // or not), so when it is closed only busy banks merit a look.
        let start_blocked = self.migration.rate_gate(now) > now;
        for k in 0..n {
            let b = (start + k) % n;
            if !self.migration.bank_has_work(b) {
                continue;
            }
            let busy = self.migration.is_busy(b);
            if !busy && start_blocked {
                continue;
            }
            // Demand waiting on the job justifies forcing it through at
            // demand priority: blocked-row waiters any time, any waiter
            // once the job holds the whole bank. A mid-phase burst train
            // also finishes contiguously (one turnaround instead of one
            // per dribbled burst).
            let eager = busy
                && (self.migration.is_mid_phase(b)
                    || self.migration.blocked_row(b).is_some_and(|row| {
                        self.read_lanes.has_row_entry(&self.read_q, b, row)
                            || self.write_lanes.has_row_entry(&self.write_q, b, row)
                    }));
            if busy {
                if !idle_slot && !eager {
                    continue;
                }
                // The write-back burst rides a write-drain episode (the
                // rank is already turned around for writes) or an empty
                // controller; blocked-row demand still forces it through.
                if idle_slot
                    && self.migration.pending_writeback_act(b)
                    && !eager
                    && !self.draining_writes
                    && !(self.read_q.is_empty() && self.write_q.is_empty())
                {
                    continue;
                }
            }
            if !busy {
                // A start: must be allowed in this slot, target a bank
                // demand is not using (unless overdue under deadline
                // boost), and pass the rate limiter.
                let overdue = self.migration.is_overdue_start(b, now);
                if !idle_slot && !overdue {
                    continue;
                }
                if !overdue && (self.read_lanes.has_entries(b) || self.write_lanes.has_entries(b)) {
                    continue;
                }
            }
            let open = self.banks[b].open_row.map(|r| (r, self.banks[b].open_mode));
            let Some(nc) = self.migration.next_command(b, open, now) else {
                continue;
            };
            if idle_slot
                && !eager
                && demand_ready != u64::MAX
                && nc.command == Command::Act
                && now + self.migration_act_shadow() >= demand_ready
            {
                // Idle-slot phase starts must stay invisible to demand:
                // skip the slot if the ACT's cross-bank shadow (tRRD)
                // would reach the next demand-ready cycle.
                continue;
            }
            let target = self.bank_target(b, nc.mode);
            if !self.engine.can_issue(nc.command, target, now) {
                continue;
            }
            match nc.command {
                Command::Act => {
                    self.banks[b].activate(nc.row, nc.mode, now);
                    self.engine.issue(Command::Act, target, now);
                    self.stats.record_migration_act(nc.mode);
                    self.migration.note_act(b, now);
                    self.log_command_tagged(now, Command::Act, b, nc.row, nc.mode, true);
                    self.hit_streak[b] = 0;
                    self.read_lanes.bank_state_changed(b);
                    self.write_lanes.bank_state_changed(b);
                }
                Command::Pre => {
                    let closed = self.banks[b].precharge();
                    self.engine.issue(Command::Pre, target, now);
                    self.stats.record_migration_pre(closed);
                    let step = self.migration.note_pre(b, now);
                    match step {
                        MigrationStep::Couple { row, to } => {
                            // The couple point: the row's mode flips here;
                            // the write-back re-activates in the new mode.
                            self.modes.set(b, row, to);
                            self.mode_cache[b].set((MODE_CACHE_EMPTY, RowMode::MaxCapacity));
                            self.stats.mode_transitions += 1;
                            self.retune_refresh();
                            self.trace_migration_instant("couple_point", now, b as u32, row);
                        }
                        MigrationStep::Complete {
                            row,
                            cross_bank,
                            dispatched_at,
                            ..
                        } => {
                            self.stats.migration_jobs_completed += 1;
                            if cross_bank {
                                self.stats.migration_cross_bank_jobs += 1;
                            }
                            self.note_migration_done("couple", dispatched_at, now, b as u32, row);
                        }
                        MigrationStep::Evacuated {
                            bank,
                            row,
                            dispatched_at,
                            ..
                        } => {
                            // The vacated source is a free frame from here
                            // on; the system installs the remap entry at
                            // its next placement pump.
                            self.stats.migration_evacuations += 1;
                            self.frames.free(bank as usize, row);
                            self.stats.frames_freed += 1;
                            self.note_migration_done("evacuate", dispatched_at, now, bank, row);
                        }
                        MigrationStep::StagedOut {
                            bank,
                            row,
                            dispatched_at,
                        } => {
                            // The data left for another channel; the frame
                            // is freed only once the system confirms the
                            // landing (note_frame_freed).
                            self.stats.migration_evacuations += 1;
                            self.note_migration_done("stage_out", dispatched_at, now, bank, row);
                        }
                        MigrationStep::Filled {
                            bank,
                            row,
                            dispatched_at,
                        } => {
                            self.stats.migration_fills += 1;
                            self.note_migration_done("fill_in", dispatched_at, now, bank, row);
                        }
                        MigrationStep::InProgress => {}
                    }
                    self.log_command_tagged(now, Command::Pre, b, 0, closed, true);
                    self.hit_streak[b] = 0;
                    self.read_lanes.bank_state_changed(b);
                    self.write_lanes.bank_state_changed(b);
                }
                Command::Rd | Command::Wr => {
                    self.banks[b].access(now);
                    self.engine.issue(nc.command, target, now);
                    if nc.command == Command::Rd {
                        self.stats.migration_reads += 1;
                    } else {
                        self.stats.migration_writes += 1;
                    }
                    self.migration.note_column(b, now);
                    self.log_command_tagged(now, nc.command, b, nc.row, nc.mode, true);
                }
                Command::Ref => unreachable!("migration never issues REF"),
            }
            self.stats.migration_slot_cycles += 1;
            return true;
        }
        false
    }

    /// [`MemoryController::tick`], shortcutting provably dead cycles:
    /// when the memoized next-event bound proves nothing can happen this
    /// cycle, only the clock and the busy/idle accounting advance —
    /// exactly what the full tick would have done. Falls back to the
    /// full tick otherwise. Bit-identical to `tick` either way.
    pub fn tick_fast(&mut self, completions: &mut Vec<Completion>) {
        match self.next_event_cache {
            Some(r) if r > self.cycle => self.skip_dead_cycles(self.cycle + 1),
            _ => self.tick(completions),
        }
    }

    /// A lower bound on the next cycle a read completion can pop: the
    /// earliest in-flight completion or, for reads that have not issued
    /// yet, the next event plus the CAS + burst latency (no new read can
    /// issue before the next event, and none can complete faster than
    /// that). `u64::MAX` when no read can ever complete without new
    /// enqueues.
    ///
    /// Completions are the only signal the DRAM domain sends back to the
    /// CPU domain, so a driver whose CPU side is stalled may advance both
    /// clocks to just before this bound and let
    /// [`MemoryController::tick_until`] replay the intervening
    /// command-only events — that is the whole-system skip-ahead used by
    /// `clr_sim`.
    pub fn next_completion_bound(&mut self) -> u64 {
        let inflight = self
            .inflight
            .peek()
            .map_or(u64::MAX, |&Reverse((done, _))| done);
        // An in-flight read due within CAS + burst of now beats any read
        // that has yet to issue — no new RD (earliest at `now`) can
        // complete before `now + read_done`, so the min below would
        // return `inflight` regardless of the event bound. Skipping the
        // event evaluation here spares the saturated-loop caller a full
        // repricing pass per query.
        if inflight <= self.engine.read_done(self.cycle) {
            return inflight;
        }
        let event = self.next_event_cycle();
        let new_read = if event == u64::MAX {
            u64::MAX
        } else {
            event.saturating_add(self.engine.read_done(0))
        };
        inflight.min(new_read)
    }

    /// Jumps over `[self.cycle, to)`, applying exactly the accounting the
    /// skipped `tick`s would have: cycle counters and per-cycle busy/idle
    /// and relocation-stall statistics. Callers must have proven the
    /// window dead via [`MemoryController::next_event_cycle`].
    fn skip_dead_cycles(&mut self, to: u64) {
        debug_assert!(to > self.cycle);
        let n = to - self.cycle;
        self.skip_profile.record_jump(n, self.next_event_source);
        if self.banks.iter().any(|b| b.open_row.is_some()) {
            self.stats.rank_active_cycles += n;
        } else {
            self.stats.rank_precharged_cycles += n;
        }
        if self.pending_refresh.is_none() && self.cycle < self.maintenance_until {
            self.stats.relocation_stall_cycles += self.maintenance_until.min(to) - self.cycle;
        }
        self.cycle = to;
        self.stats.cycles = to;
    }

    /// The cycle a pending refresh can next make progress: the PRE of the
    /// first still-open bank, else the REF across every rank (mirrors
    /// [`MemoryController::progress_refresh`]'s issue conditions).
    fn refresh_progress_ready_cycle(&self, mode: RowMode) -> u64 {
        for b in 0..self.banks.len() {
            if self.banks[b].open_row.is_some() {
                let target = self.bank_target(b, self.banks[b].open_mode);
                return self.engine.earliest(Command::Pre, target);
            }
        }
        let ranks = (self.config.geometry.channels * self.config.geometry.ranks) as usize;
        (0..ranks)
            .map(|r| {
                let t = Target {
                    bank: r * (self.banks.len() / ranks),
                    bank_group: r * (self.config.geometry.bank_groups as usize),
                    rank: r,
                    channel: 0,
                    mode,
                };
                self.engine.earliest(Command::Ref, t)
            })
            .max()
            .unwrap_or(0)
    }

    /// The earliest cycle the queue the drain policy would select can
    /// issue a command. Replays the write-drain hysteresis against the
    /// current queue lengths without mutating it (the lengths — and hence
    /// the selection — are constant across a dead window; `serve_queues`
    /// re-derives the same state at the event cycle).
    fn next_queue_ready_cycle(&mut self) -> Option<u64> {
        let use_writes = self.queue_selection(self.read_q.len(), self.write_q.len());
        let (q, lanes) = if use_writes {
            (&self.write_q, &mut self.write_lanes)
        } else {
            (&self.read_q, &mut self.read_lanes)
        };
        scheduler::next_ready_cached(
            q,
            &self.banks,
            &self.engine,
            lanes,
            self.migration.held_banks(),
            self.migration.blocked_rows(),
            self.migration.read_ok_rows(),
        )
    }

    /// The earliest cycle the timeout row policy can close an idle open
    /// row no queued request wants (`None` under open-page, or when every
    /// open row is still wanted — a wanted row's service is covered by
    /// the queue-readiness event instead). One pass over both queues
    /// marks the wanted banks, then only open banks are visited.
    fn next_timeout_close_cycle(&mut self) -> Option<u64> {
        let timeout_cycles = self.timeout_cycles?;
        let mut next: Option<u64> = None;
        for b in 0..self.banks.len() {
            let Some(row) = self.banks[b].open_row else {
                continue;
            };
            // A bank's close cycle is at least `last_use + timeout`, so
            // one that cannot beat the running minimum is settled before
            // the wanted check or the engine query is paid — in a busy
            // system most open rows were touched recently and fall here.
            let floor = self.banks[b].last_use_cycle + timeout_cycles;
            if next.is_some_and(|n| floor >= n) {
                continue;
            }
            if self.migration.is_mid_phase(b) {
                continue;
            }
            // Wanted check via the per-bank lane indexes (always current)
            // — visiting only the open banks' own entries instead of
            // scanning both queues in full on every repricing.
            if self.read_lanes.has_row_entry(&self.read_q, b, row)
                || self.write_lanes.has_row_entry(&self.write_q, b, row)
            {
                continue;
            }
            let target = self.bank_target(b, self.banks[b].open_mode);
            let t = floor.max(self.engine.earliest(Command::Pre, target));
            next = Some(next.map_or(t, |n| n.min(t)));
        }
        next
    }

    /// Progress the pending refresh: close open banks, then issue REF to
    /// every rank. Returns whether a command issued this cycle.
    fn progress_refresh(&mut self, mode: RowMode, _rfc: u64, now: u64) -> bool {
        // Close any open bank first (one PRE per cycle).
        for b in 0..self.banks.len() {
            if self.banks[b].open_row.is_some() {
                let target = self.bank_target(b, self.banks[b].open_mode);
                if self.engine.can_issue(Command::Pre, target, now) {
                    let closed = self.banks[b].precharge();
                    self.engine.issue(Command::Pre, target, now);
                    self.stats.record_pre(closed);
                    self.log_command(now, Command::Pre, b, 0, closed);
                    self.hit_streak[b] = 0;
                    // Refresh may close a bank out from under an
                    // in-flight migration job; its phase re-activates
                    // after the blackout.
                    self.migration.on_forced_precharge(b);
                    self.read_lanes.bank_state_changed(b);
                    self.write_lanes.bank_state_changed(b);
                    return true;
                }
                return false; // wait for tRAS/tWR of that bank
            }
        }
        // All banks closed: issue REF (modelled on every rank this cycle).
        let ranks = (self.config.geometry.channels * self.config.geometry.ranks) as usize;
        let rank_targets: Vec<Target> = (0..ranks)
            .map(|r| Target {
                bank: r * (self.banks.len() / ranks),
                bank_group: r * (self.config.geometry.bank_groups as usize),
                rank: r,
                channel: 0,
                mode,
            })
            .collect();
        if rank_targets
            .iter()
            .all(|t| self.engine.can_issue(Command::Ref, *t, now))
        {
            let rfc = self.engine.timings().for_mode(mode).rfc;
            for t in rank_targets {
                self.engine.issue(Command::Ref, t, now);
            }
            self.stats.record_ref(mode);
            self.stats.refresh_busy_cycles += rfc;
            self.refresh.mark_issued(mode);
            self.pending_refresh = None;
            self.log_command(now, Command::Ref, 0, 0, mode);
            return true;
        }
        false
    }

    /// Serve read/write queues under the drain policy. Returns whether a
    /// command issued.
    fn serve_queues(&mut self, now: u64) -> bool {
        // Drain-mode hysteresis.
        if !self.draining_writes && self.write_q.len() >= self.config.scheduler.write_high_watermark
        {
            self.draining_writes = true;
        }
        if self.draining_writes && self.write_q.len() <= self.config.scheduler.write_low_watermark {
            self.draining_writes = false;
        }
        let use_writes =
            self.draining_writes || (self.read_q.is_empty() && !self.write_q.is_empty());

        let decision = {
            let (q, lanes) = if use_writes {
                (&self.write_q, &mut self.write_lanes)
            } else {
                (&self.read_q, &mut self.read_lanes)
            };
            let (decision, bound) = scheduler::pick_cached(
                q,
                &self.banks,
                &self.engine,
                &self.hit_streak,
                self.config.scheduler.cap,
                now,
                lanes,
                self.migration.held_banks(),
                self.migration.blocked_rows(),
                self.migration.read_ok_rows(),
            );
            self.queue_ready_hint = bound;
            decision
        };
        let Some(d) = decision else {
            return false;
        };
        let (q, lanes) = if use_writes {
            (&mut self.write_q, &mut self.write_lanes)
        } else {
            (&mut self.read_q, &mut self.read_lanes)
        };
        let e = &mut q[d.queue_index];
        let bank = e.target.bank;
        match d.command {
            Command::Act => {
                if !e.classified {
                    e.classified = true;
                    if e.needed_pre {
                        self.stats.row_conflicts += 1;
                    } else {
                        self.stats.row_misses += 1;
                    }
                }
                e.needed_act = true;
                let row = e.decoded.row;
                // Mode is resolved from the shared table *at activation
                // time* — the table may have changed since enqueue.
                let mode = Self::cached_mode(&self.modes, &self.mode_cache, bank, row);
                e.target.mode = mode;
                let target = e.target;
                self.banks[bank].activate(row, mode, now);
                self.engine.issue(Command::Act, target, now);
                self.stats.record_act(mode);
                self.per_bank_acts[bank] += 1;
                self.log_command(now, Command::Act, bank, row, mode);
                self.hit_streak[bank] = 0;
                self.read_lanes.bank_state_changed(bank);
                self.write_lanes.bank_state_changed(bank);
            }
            Command::Pre => {
                e.needed_pre = true;
                let target = Target {
                    mode: self.banks[bank].open_mode,
                    ..e.target
                };
                let closed = self.banks[bank].precharge();
                self.engine.issue(Command::Pre, target, now);
                self.stats.record_pre(closed);
                self.log_command(now, Command::Pre, bank, 0, closed);
                self.hit_streak[bank] = 0;
                self.read_lanes.bank_state_changed(bank);
                self.write_lanes.bank_state_changed(bank);
            }
            Command::Rd | Command::Wr => {
                if !e.classified {
                    e.classified = true;
                    self.stats.row_hits += 1;
                }
                // Column commands run in the mode the open row was sensed
                // in (write recovery is mode-dependent), which may differ
                // from the entry's enqueue-time snapshot.
                let target = Target {
                    mode: self.banks[bank].open_mode,
                    ..e.target
                };
                lanes.before_swap_remove(q, d.queue_index);
                let entry = q.swap_remove(d.queue_index);
                self.banks[bank].access(now);
                if self.telemetry_enabled {
                    *self
                        .row_counts
                        .entry((bank as u32, entry.decoded.row))
                        .or_insert(0) += 1;
                }
                self.engine.issue(d.command, target, now);
                self.log_command(now, d.command, bank, entry.decoded.row, target.mode);
                self.hit_streak[bank] = self.hit_streak[bank].saturating_add(1);
                match d.command {
                    Command::Rd => {
                        self.stats.reads += 1;
                        let done = self.engine.read_done(now);
                        let latency = done.saturating_sub(entry.request.arrival_cycle);
                        self.stats.read_latency_sum += latency;
                        self.stats.read_latency_hist.record(latency);
                        self.stats.reads_completed += 1;
                        self.inflight.push(Reverse((done, entry.request.id)));
                        if self.blame_enabled {
                            // Settle the final wait span on the frozen
                            // cause, then the data transfer itself is the
                            // service component: the per-cause budget sums
                            // to exactly `done − arrival`, the latency the
                            // histogram just recorded.
                            let mut ledger = entry.blame;
                            ledger.settle(now, WaitCause::Service);
                            ledger.cycles[WaitCause::Service.index()] += done - now;
                            self.stats.read_blame.record(&ledger);
                            self.emit_request_flow(&entry, &ledger, latency, done);
                        }
                    }
                    Command::Wr => {
                        self.stats.writes += 1;
                        // Writes are posted: service latency is arrival →
                        // WR issue (there is no completion to wait for).
                        self.stats
                            .write_latency_hist
                            .record(now.saturating_sub(entry.request.arrival_cycle));
                        if self.blame_enabled {
                            let mut ledger = entry.blame;
                            ledger.settle(now, WaitCause::Service);
                            self.stats.write_blame.record(&ledger);
                        }
                    }
                    _ => unreachable!(),
                }
            }
            Command::Ref => unreachable!("REF is never scheduled from the queues"),
        }
        true
    }

    /// Close an open row per the configured row policy (closed-page or
    /// timeout) when no queued request targets it, returning whether a
    /// PRE issued. Open-page never closes in the background.
    fn close_expired_row(&mut self, now: u64) -> bool {
        let Some(timeout_cycles) = self.timeout_cycles else {
            return false; // open-page policy
        };
        for b in 0..self.banks.len() {
            let Some(row) = self.banks[b].open_row else {
                continue;
            };
            if self.migration.is_mid_phase(b) {
                // An in-flight migration holds this row buffer; its own
                // PRE closes it.
                continue;
            }
            if now.saturating_sub(self.banks[b].last_use_cycle) < timeout_cycles {
                continue;
            }
            if self.read_lanes.has_row_entry(&self.read_q, b, row)
                || self.write_lanes.has_row_entry(&self.write_q, b, row)
            {
                continue;
            }
            let target = self.bank_target(b, self.banks[b].open_mode);
            if self.engine.can_issue(Command::Pre, target, now) {
                let closed = self.banks[b].precharge();
                self.engine.issue(Command::Pre, target, now);
                self.stats.record_pre(closed);
                self.log_command(now, Command::Pre, b, 0, closed);
                self.hit_streak[b] = 0;
                self.read_lanes.bank_state_changed(b);
                self.write_lanes.bank_state_changed(b);
                return true;
            }
        }
        false
    }

    fn bank_target(&self, flat_bank: usize, mode: RowMode) -> Target {
        let g = &self.config.geometry;
        let banks_per_group = g.banks_per_group as usize;
        let bgs_per_rank = g.bank_groups as usize;
        let bg = flat_bank / banks_per_group;
        let rank = bg / bgs_per_rank;
        Target {
            bank: flat_bank,
            bank_group: bg,
            rank,
            channel: 0,
            mode,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read(id: u64, addr: u64, at: u64) -> MemRequest {
        MemRequest::new(id, PhysAddr(addr), RequestKind::Read, at)
    }

    fn write(id: u64, addr: u64, at: u64) -> MemRequest {
        MemRequest::new(id, PhysAddr(addr), RequestKind::Write, at)
    }

    fn run_until_done(mc: &mut MemoryController, limit: u64) -> Vec<Completion> {
        let mut done = Vec::new();
        for _ in 0..limit {
            mc.tick(&mut done);
            if mc.is_idle() {
                break;
            }
        }
        done
    }

    #[test]
    fn single_read_completes_with_expected_latency() {
        let mut cfg = MemConfig::paper_tiny();
        cfg.refresh_enabled = false;
        let mut mc = MemoryController::new(cfg);
        mc.try_enqueue(read(1, 0x80, 0)).unwrap();
        let done = run_until_done(&mut mc, 10_000);
        assert_eq!(done.len(), 1);
        // Closed bank: ACT at ~1 + tRCD + CL + burst.
        let t = mc.engine.timings();
        let expect = 1 + t.max_capacity.rcd + t.cl + t.burst;
        assert!(
            done[0].finish_cycle <= expect + 2,
            "finish {} vs expect {}",
            done[0].finish_cycle,
            expect
        );
        assert_eq!(mc.stats().row_misses, 1);
        assert_eq!(mc.stats().acts(), 1);
    }

    #[test]
    fn row_hits_are_faster_than_conflicts() {
        let mut cfg = MemConfig::paper_tiny();
        cfg.refresh_enabled = false;
        let mut mc = MemoryController::new(cfg);
        // Two reads to the same row: second is a hit.
        mc.try_enqueue(read(1, 0x0, 0)).unwrap();
        mc.try_enqueue(read(2, 0x40, 0)).unwrap();
        let done = run_until_done(&mut mc, 10_000);
        assert_eq!(done.len(), 2);
        assert_eq!(mc.stats().row_hits, 1);
        assert_eq!(mc.stats().row_misses, 1);
    }

    #[test]
    fn conflicting_rows_force_precharge() {
        let mut cfg = MemConfig::paper_tiny();
        cfg.refresh_enabled = false;
        let row_stride = {
            // Same bank, different row: rows are the top address bits under
            // RoBgBaRaCoCh, so one full "row footprint" apart.
            let g = &cfg.geometry;
            g.capacity_bytes() / g.rows as u64
        };
        let mut mc = MemoryController::new(cfg);
        mc.try_enqueue(read(1, 0, 0)).unwrap();
        mc.try_enqueue(read(2, row_stride, 0)).unwrap();
        let done = run_until_done(&mut mc, 20_000);
        assert_eq!(done.len(), 2);
        assert_eq!(mc.stats().row_conflicts + mc.stats().row_misses, 2);
        assert!(mc.stats().pres() >= 1);
    }

    #[test]
    fn writes_complete_silently_and_forward_to_reads() {
        let mut cfg = MemConfig::paper_tiny();
        cfg.refresh_enabled = false;
        let mut mc = MemoryController::new(cfg);
        mc.try_enqueue(write(1, 0x1000, 0)).unwrap();
        // A read to the same line is forwarded.
        mc.try_enqueue(read(2, 0x1000, 0)).unwrap();
        let done = run_until_done(&mut mc, 20_000);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].id, 2);
        assert_eq!(mc.stats().forwarded_reads, 1);
        assert_eq!(mc.stats().writes, 1);
    }

    #[test]
    fn queue_rejection_backpressure() {
        let mut cfg = MemConfig::paper_tiny();
        cfg.refresh_enabled = false;
        cfg.scheduler.read_queue = 2;
        let mut mc = MemoryController::new(cfg);
        assert!(mc.try_enqueue(read(1, 0x00, 0)).is_ok());
        assert!(mc.try_enqueue(read(2, 0x40, 0)).is_ok());
        assert!(mc.try_enqueue(read(3, 0x80, 0)).is_err());
        assert_eq!(mc.stats().queue_rejections, 1);
    }

    #[test]
    fn refresh_blocks_and_recovers() {
        let mut cfg = MemConfig::paper_tiny();
        cfg.refresh_enabled = true;
        let mut mc = MemoryController::new(cfg);
        let mut done = Vec::new();
        // Run past several tREFI windows with no traffic.
        for _ in 0..50_000 {
            mc.tick(&mut done);
        }
        assert!(mc.stats().refs() >= 4, "refs {}", mc.stats().refs());
        // Requests still complete after refreshes.
        mc.try_enqueue(read(9, 0x40, mc.cycle())).unwrap();
        let done = run_until_done(&mut mc, 50_000);
        assert_eq!(done.len(), 1);
    }

    #[test]
    fn hp_region_uses_fast_timings() {
        // All rows HP: reads complete measurably faster than baseline for
        // row-miss traffic.
        let mut base_cfg = MemConfig::paper_tiny();
        base_cfg.refresh_enabled = false;
        let mut clr_cfg = MemConfig::tiny_clr(1.0);
        clr_cfg.refresh_enabled = false;

        let run = |cfg: MemConfig| {
            let row_stride = cfg.geometry.capacity_bytes() / cfg.geometry.rows as u64;
            let mut mc = MemoryController::new(cfg);
            // Row-conflict chain in one bank.
            for i in 0..8u64 {
                mc.try_enqueue(read(i, (i % 4) * row_stride, 0)).unwrap();
            }
            let done = run_until_done(&mut mc, 100_000);
            assert_eq!(done.len(), 8);
            done.iter().map(|c| c.finish_cycle).max().unwrap()
        };
        let t_base = run(base_cfg);
        let t_clr = run(clr_cfg);
        assert!(
            (t_clr as f64) < 0.7 * t_base as f64,
            "CLR {} vs baseline {}",
            t_clr,
            t_base
        );
    }

    #[test]
    fn timeout_policy_closes_idle_rows() {
        let mut cfg = MemConfig::paper_tiny();
        cfg.refresh_enabled = false;
        let mut mc = MemoryController::new(cfg);
        mc.try_enqueue(read(1, 0x0, 0)).unwrap();
        let mut done = Vec::new();
        for _ in 0..2_000 {
            mc.tick(&mut done);
        }
        // Row must have been closed by the 120 ns timeout.
        assert!(mc.banks.iter().all(|b| b.open_row.is_none()));
        assert_eq!(mc.stats().pres(), 1);
    }

    #[test]
    fn interleaved_traffic_spreads_across_banks() {
        let mut cfg = MemConfig::paper_tiny();
        cfg.refresh_enabled = false;
        let g = cfg.geometry.clone();
        let mut mc = MemoryController::new(cfg);
        // One line per bank-group/bank combination: consecutive row-sized
        // strides change the row; bank bits sit between row and column
        // under RoBgBaRaCoCh, so stride by row_bytes to walk banks.
        let bank_stride = g.row_bytes();
        for i in 0..16u64 {
            mc.try_enqueue(read(i, i * bank_stride, 0)).unwrap();
        }
        let done = run_until_done(&mut mc, 100_000);
        assert_eq!(done.len(), 16);
        let used = mc.bank_usage().iter().filter(|&&c| c > 0).count();
        assert!(used >= 2, "expected multi-bank usage, got {used} banks");
        assert_eq!(mc.bank_usage().iter().sum::<u64>(), mc.stats().acts());
    }

    #[test]
    fn open_page_policy_never_closes_idle_rows() {
        let mut cfg = MemConfig::paper_tiny();
        cfg.refresh_enabled = false;
        cfg.scheduler.row_policy = crate::config::RowPolicy::Open;
        let mut mc = MemoryController::new(cfg);
        mc.try_enqueue(read(1, 0x0, 0)).unwrap();
        let mut done = Vec::new();
        for _ in 0..5_000 {
            mc.tick(&mut done);
        }
        assert!(
            mc.banks.iter().any(|b| b.open_row.is_some()),
            "open-page must keep the row open"
        );
        assert_eq!(mc.stats().pres(), 0);
    }

    #[test]
    fn closed_page_policy_closes_immediately() {
        let mut cfg = MemConfig::paper_tiny();
        cfg.refresh_enabled = false;
        cfg.scheduler.row_policy = crate::config::RowPolicy::Closed;
        let mut mc = MemoryController::new(cfg);
        mc.try_enqueue(read(1, 0x0, 0)).unwrap();
        let mut done = Vec::new();
        for _ in 0..200 {
            mc.tick(&mut done);
        }
        // Closed as soon as tRAS/tRTP allowed, well before the 120 ns
        // timeout equivalent (~144 cycles after the column access).
        assert!(mc.banks.iter().all(|b| b.open_row.is_none()));
        assert_eq!(mc.stats().pres(), 1);
    }

    #[test]
    fn blame_budgets_sum_exactly_to_recorded_latencies() {
        let mut cfg = MemConfig::paper_tiny();
        cfg.refresh_enabled = true;
        let row_stride = cfg.geometry.capacity_bytes() / cfg.geometry.rows as u64;
        let mut mc = MemoryController::new(cfg);
        mc.enable_blame();
        // Conflict-heavy mixed traffic so several causes are exercised.
        for i in 0..24u64 {
            let addr = (i % 5) * row_stride + (i % 3) * 0x40;
            let _ = mc.try_enqueue(read(i, addr, 0));
            let _ = mc.try_enqueue(write(100 + i, addr ^ 0x2000, 0));
        }
        let done = run_until_done(&mut mc, 500_000);
        assert!(!done.is_empty());
        let s = mc.stats();
        // The exactness contract: per-cause budgets sum to the latency
        // histograms' sums, cycle for cycle.
        assert_eq!(s.read_blame.total_cycles(), s.read_latency_hist.sum());
        assert_eq!(s.write_blame.total_cycles(), s.write_latency_hist.sum());
        // Every issued read has a nonzero service component.
        assert_eq!(
            s.read_blame.of(WaitCause::Service).count(),
            s.read_latency_hist.count()
        );
        // Queue-heavy traffic attributes real wait cycles, not just
        // service time.
        assert!(s.read_blame.total_cycles() > s.read_blame.of(WaitCause::Service).sum());
    }

    #[test]
    fn blame_is_inert() {
        let run = |blame: bool| {
            let mut cfg = MemConfig::paper_tiny();
            cfg.refresh_enabled = true;
            let row_stride = cfg.geometry.capacity_bytes() / cfg.geometry.rows as u64;
            let mut mc = MemoryController::new(cfg);
            if blame {
                mc.enable_blame();
            }
            for i in 0..24u64 {
                let _ = mc.try_enqueue(read(i, (i % 5) * row_stride, 0));
                let _ = mc.try_enqueue(write(100 + i, (i % 4) * row_stride + 0x40, 0));
            }
            let done = run_until_done(&mut mc, 500_000);
            (done, mc.stats().clone())
        };
        let (done_off, stats_off) = run(false);
        let (done_on, mut stats_on) = run(true);
        assert_eq!(done_off, done_on);
        // Attribution changes nothing but its own aggregates.
        assert!(!stats_on.read_blame.is_empty());
        stats_on.read_blame.clear();
        stats_on.write_blame.clear();
        assert_eq!(stats_off, stats_on);
    }

    #[test]
    fn mode_of_row_follows_table_prefix_initially() {
        let mc = MemoryController::new(MemConfig::tiny_clr(0.25));
        let rows = mc.config().geometry.rows;
        let hp_rows = (rows as f64 * 0.25).round() as u32;
        for bank in 0..mc.mode_table().banks() as usize {
            assert_eq!(mc.mode_of_row(bank, 0), RowMode::HighPerformance);
            assert_eq!(mc.mode_of_row(bank, hp_rows - 1), RowMode::HighPerformance);
            assert_eq!(mc.mode_of_row(bank, hp_rows), RowMode::MaxCapacity);
        }
        assert!((mc.mode_table().fraction_high_performance() - 0.25).abs() < 1e-6);
    }

    #[test]
    fn applied_transitions_redirect_timing_at_next_act() {
        let mut cfg = MemConfig::tiny_clr(0.0);
        cfg.refresh_enabled = false;
        let mut mc = MemoryController::new(cfg);
        mc.enable_command_log();
        mc.try_enqueue(read(1, 0x0, 0)).unwrap();
        let done = run_until_done(&mut mc, 10_000);
        assert_eq!(done.len(), 1);
        // Row 0 starts max-capacity.
        let acts: Vec<_> = mc
            .command_log()
            .unwrap()
            .iter()
            .filter(|c| c.command == Command::Act)
            .cloned()
            .collect();
        assert_eq!(acts.len(), 1);
        assert_eq!(acts[0].mode, RowMode::MaxCapacity);

        // Promote row 0 of every bank, then re-access: the next ACT must
        // carry the high-performance timing set.
        let changes: Vec<(usize, u32, RowMode)> = (0..mc.mode_table().banks() as usize)
            .map(|b| (b, 0u32, RowMode::HighPerformance))
            .collect();
        let changed = mc.apply_row_modes(&changes, 50);
        assert_eq!(changed, changes.len() as u64);
        assert_eq!(mc.stats().mode_transitions, changed);
        // Let the relocation stall pass and the timeout policy close the
        // open row, so the next access re-activates in the new mode.
        let mut sink = Vec::new();
        for _ in 0..2_000 {
            mc.tick(&mut sink);
        }
        mc.try_enqueue(read(2, 0x0, mc.cycle())).unwrap();
        let done = run_until_done(&mut mc, 10_000);
        assert_eq!(done.len(), 1);
        let acts: Vec<_> = mc
            .command_log()
            .unwrap()
            .iter()
            .filter(|c| c.command == Command::Act)
            .cloned()
            .collect();
        assert_eq!(acts.len(), 2);
        assert_eq!(acts[1].mode, RowMode::HighPerformance);
        // Relocation stalled the queues for the charged cycles.
        assert!(mc.stats().relocation_stall_cycles >= 50);
    }

    #[test]
    fn telemetry_counts_column_accesses_and_drains() {
        let mut cfg = MemConfig::paper_tiny();
        cfg.refresh_enabled = false;
        let mut mc = MemoryController::new(cfg);
        mc.enable_row_telemetry();
        mc.try_enqueue(read(1, 0x0, 0)).unwrap();
        mc.try_enqueue(read(2, 0x40, 0)).unwrap();
        mc.try_enqueue(write(3, 0x80, 0)).unwrap();
        let _ = run_until_done(&mut mc, 20_000);
        let telemetry = mc.drain_row_telemetry();
        let total: u64 = telemetry.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 3, "reads + writes that reached the device");
        // Drained: a second export is empty until new traffic arrives.
        assert!(mc.drain_row_telemetry().is_empty());
    }

    #[test]
    fn tick_until_matches_per_cycle_stepping() {
        // Mixed read/write burst with refresh on: the skip-ahead walk and
        // the per-cycle walk must agree on every logged command, every
        // completion cycle, and every statistic.
        let requests: Vec<MemRequest> = (0..12)
            .map(|i| {
                let addr = (i * 0x9E37) % 0x4000;
                if i % 3 == 2 {
                    write(i, addr, 0)
                } else {
                    read(i, addr, 0)
                }
            })
            .collect();
        let horizon = 60_000;

        let run = |skip: bool| {
            let mut cfg = MemConfig::tiny_clr(0.25);
            cfg.refresh_enabled = true;
            let mut mc = MemoryController::new(cfg);
            mc.enable_command_log();
            for r in &requests {
                mc.try_enqueue(*r).unwrap();
            }
            let mut done = Vec::new();
            if skip {
                mc.tick_until(horizon, &mut done);
            } else {
                for _ in 0..horizon {
                    mc.tick(&mut done);
                }
            }
            assert_eq!(mc.cycle(), horizon);
            (mc.command_log().unwrap().to_vec(), done, mc.stats().clone())
        };
        let (log_a, done_a, stats_a) = run(false);
        let (log_b, done_b, stats_b) = run(true);
        assert_eq!(log_a, log_b, "command logs diverge");
        assert_eq!(done_a, done_b, "completions diverge");
        assert_eq!(stats_a, stats_b, "statistics diverge");
        assert!(!log_a.is_empty() && !done_a.is_empty());
    }

    #[test]
    fn next_event_cycle_is_max_when_fully_idle() {
        let mut cfg = MemConfig::paper_tiny();
        cfg.refresh_enabled = false;
        let mut mc = MemoryController::new(cfg);
        assert_eq!(mc.next_event_cycle(), u64::MAX);
        // A queued request creates an immediate event.
        mc.try_enqueue(read(1, 0x40, 0)).unwrap();
        assert_eq!(mc.next_event_cycle(), 0);
        // Serve it; afterwards the only events are the RD-ready cycle,
        // the completion, and the timeout close — all strictly ahead.
        let mut done = Vec::new();
        mc.tick(&mut done);
        let next = mc.next_event_cycle();
        assert!(next > mc.cycle(), "dead window after the ACT");
        // Jumping a fully idle controller is pure accounting.
        let _ = run_until_done(&mut mc, 10_000);
        let cycles_before = mc.cycle();
        let idle_split = mc.stats().rank_active_cycles + mc.stats().rank_precharged_cycles;
        assert_eq!(idle_split, cycles_before);
        mc.tick_until(cycles_before + 5_000, &mut done);
        assert_eq!(mc.cycle(), cycles_before + 5_000);
        let idle_split = mc.stats().rank_active_cycles + mc.stats().rank_precharged_cycles;
        assert_eq!(idle_split, cycles_before + 5_000, "busy/idle accounting");
    }

    #[test]
    fn tick_until_matches_per_cycle_across_mode_transitions() {
        // Apply a relocation-stalled mode-transition batch mid-run in both
        // walks; stall accounting and post-transition ACT modes must agree.
        let run = |skip: bool| {
            let mut cfg = MemConfig::tiny_clr(0.0);
            cfg.refresh_enabled = true;
            let mut mc = MemoryController::new(cfg);
            mc.enable_command_log();
            mc.try_enqueue(read(1, 0x0, 0)).unwrap();
            let mut done = Vec::new();
            let step_to = |mc: &mut MemoryController, done: &mut Vec<Completion>, to: u64| {
                if skip {
                    mc.tick_until(to, done);
                } else {
                    while mc.cycle() < to {
                        mc.tick(done);
                    }
                }
            };
            step_to(&mut mc, &mut done, 3_000);
            let changes: Vec<(usize, u32, RowMode)> = (0..mc.mode_table().banks() as usize)
                .map(|b| (b, 0u32, RowMode::HighPerformance))
                .collect();
            mc.apply_row_modes(&changes, 75);
            step_to(&mut mc, &mut done, 6_000);
            mc.try_enqueue(read(2, 0x0, mc.cycle())).unwrap();
            step_to(&mut mc, &mut done, 20_000);
            (mc.command_log().unwrap().to_vec(), done, mc.stats().clone())
        };
        let (log_a, done_a, stats_a) = run(false);
        let (log_b, done_b, stats_b) = run(true);
        assert_eq!(log_a, log_b);
        assert_eq!(done_a, done_b);
        assert_eq!(stats_a, stats_b);
        assert!(stats_a.relocation_stall_cycles >= 75);
        let acts: Vec<_> = log_a.iter().filter(|c| c.command == Command::Act).collect();
        assert_eq!(acts.last().unwrap().mode, RowMode::HighPerformance);
    }

    #[test]
    fn telemetry_drain_into_reuses_buffer() {
        let mut cfg = MemConfig::paper_tiny();
        cfg.refresh_enabled = false;
        let mut mc = MemoryController::new(cfg);
        mc.enable_row_telemetry();
        mc.try_enqueue(read(1, 0x0, 0)).unwrap();
        let _ = run_until_done(&mut mc, 10_000);
        let mut buf = Vec::with_capacity(16);
        let cap = buf.capacity();
        mc.drain_row_telemetry_into(&mut buf);
        assert_eq!(buf.iter().map(|&(_, n)| n).sum::<u64>(), 1);
        mc.drain_row_telemetry_into(&mut buf);
        assert!(buf.is_empty(), "second drain is empty");
        assert_eq!(buf.capacity(), cap, "allocation is reused");
    }

    #[test]
    fn background_migration_completes_without_stalling() {
        use crate::migrate::RelocationConfig;
        let mut cfg = MemConfig::tiny_clr(0.0);
        cfg.refresh_enabled = false;
        cfg.relocation = RelocationConfig::background();
        let mut mc = MemoryController::new(cfg);
        mc.enable_command_log();
        // Promote row 0 of banks 0 and 1 in the background.
        let jobs = mc.begin_row_migrations(&[
            (0, 0, RowMode::HighPerformance),
            (1, 0, RowMode::HighPerformance),
        ]);
        assert_eq!(jobs, 2);
        assert_eq!(mc.pending_migrations(), 2);
        // The mode flips only at each job's couple point.
        assert_eq!(mc.mode_of_row(0, 0), RowMode::MaxCapacity);
        let mut done = Vec::new();
        for _ in 0..20_000 {
            mc.tick(&mut done);
            if mc.pending_migrations() == 0 {
                break;
            }
        }
        assert_eq!(mc.pending_migrations(), 0);
        assert_eq!(mc.mode_of_row(0, 0), RowMode::HighPerformance);
        assert_eq!(mc.mode_of_row(1, 0), RowMode::HighPerformance);
        assert_eq!(mc.stats().mode_transitions, 2);
        assert_eq!(mc.stats().migration_jobs_completed, 2);
        assert_eq!(mc.stats().relocation_stall_cycles, 0, "no stall charged");
        // Each job: 2 ACTs + 2 PREs + a half-row of RDs and of WRs.
        let bursts = mc.config().geometry.row_bytes() / 2 / mc.config().geometry.burst_bytes();
        assert_eq!(mc.stats().migration_reads, 2 * bursts);
        assert_eq!(mc.stats().migration_writes, 2 * bursts);
        // Read-out ACTs the source and write-back ACTs the destination
        // frame — both in max-capacity mode (the source is read in its
        // old mode; the destination is an ordinary MC row).
        assert_eq!(mc.stats().migration_acts_max_capacity, 4);
        assert_eq!(mc.stats().migration_acts_high_performance, 0);
        assert_eq!(
            mc.stats().migration_slot_cycles,
            mc.stats().migration_commands()
        );
        // Demand counters stayed clean.
        assert_eq!(mc.stats().acts(), 0);
        assert_eq!(mc.stats().reads, 0);
        // Every migration command is tagged in the log; completions
        // drain once.
        let log = mc.command_log().unwrap();
        assert!(log.iter().all(|c| c.migration));
        let mut completed = Vec::new();
        mc.drain_completed_migrations_into(&mut completed);
        assert_eq!(completed.len(), 2);
        mc.drain_completed_migrations_into(&mut completed);
        assert!(completed.is_empty());
    }

    #[test]
    fn migration_blocks_only_the_migrating_bank() {
        use crate::migrate::RelocationConfig;
        let mut cfg = MemConfig::tiny_clr(0.0);
        cfg.refresh_enabled = false;
        cfg.relocation = RelocationConfig::background();
        let g = cfg.geometry.clone();
        let bank_stride = g.row_bytes();
        let mut mc = MemoryController::new(cfg);
        mc.begin_row_migrations(&[(0, 0, RowMode::HighPerformance)]);
        // Start the job so bank 0 is busy.
        let mut done = Vec::new();
        mc.tick(&mut done);
        // Demand to a *different* bank completes while the job runs.
        mc.try_enqueue(read(1, bank_stride, mc.cycle())).unwrap();
        let before = mc.cycle();
        for _ in 0..10_000 {
            mc.tick(&mut done);
            if !done.is_empty() {
                break;
            }
        }
        assert_eq!(done.len(), 1, "other-bank demand not blocked");
        let t = mc.engine.timings();
        let unblocked_latency = done[0].finish_cycle - before;
        assert!(
            unblocked_latency < (t.max_capacity.rc() + t.cl + t.burst) * 2,
            "latency {unblocked_latency} suggests the whole controller stalled"
        );
        assert!(mc.stats().migration_slot_cycles > 0, "migration overlapped");
    }

    #[test]
    fn background_demotions_flip_immediately() {
        use crate::migrate::RelocationConfig;
        let mut cfg = MemConfig::tiny_clr(1.0);
        cfg.refresh_enabled = false;
        cfg.relocation = RelocationConfig::background();
        let mut mc = MemoryController::new(cfg);
        let jobs = mc.begin_row_migrations(&[(0, 3, RowMode::MaxCapacity)]);
        assert_eq!(jobs, 0, "decoupling needs no data movement");
        assert_eq!(mc.mode_of_row(0, 3), RowMode::MaxCapacity);
        assert_eq!(mc.stats().mode_transitions, 1);
        assert_eq!(mc.pending_migrations(), 0);
    }

    #[test]
    fn migration_rate_limiter_spreads_job_starts() {
        use crate::migrate::{MigrationRate, RelocationConfig, RelocationMode};
        let window = 2_000u64;
        let mut cfg = MemConfig::tiny_clr(0.0);
        cfg.refresh_enabled = false;
        cfg.relocation = RelocationConfig {
            mode: RelocationMode::Background,
            rate: Some(MigrationRate {
                window_cycles: window,
                max_starts: 1,
            }),
        };
        let mut mc = MemoryController::new(cfg);
        mc.enable_command_log();
        mc.begin_row_migrations(&[
            (0, 0, RowMode::HighPerformance),
            (1, 0, RowMode::HighPerformance),
            (2, 0, RowMode::HighPerformance),
        ]);
        let mut done = Vec::new();
        for _ in 0..20_000 {
            mc.tick(&mut done);
            if mc.pending_migrations() == 0 {
                break;
            }
        }
        assert_eq!(mc.pending_migrations(), 0);
        // A job's read-out starts with an ACT of the source row; at one
        // start per window, those ACTs land in distinct windows.
        let starts: Vec<u64> = mc
            .command_log()
            .unwrap()
            .iter()
            .filter(|c| c.migration && c.command == Command::Act && c.row == 0)
            .map(|c| c.cycle / window)
            .collect();
        assert_eq!(starts.len(), 3);
        let mut dedup = starts.clone();
        dedup.dedup();
        assert_eq!(dedup, starts, "two job starts shared a rate window");
    }

    #[test]
    fn tick_until_is_bit_identical_with_background_migration() {
        use crate::migrate::RelocationConfig;
        let run = |skip: bool| {
            let mut cfg = MemConfig::tiny_clr(0.0);
            cfg.refresh_enabled = true;
            cfg.relocation = RelocationConfig::background();
            let mut mc = MemoryController::new(cfg);
            mc.enable_command_log();
            mc.try_enqueue(read(1, 0x0, 0)).unwrap();
            mc.try_enqueue(read(2, 0x1000, 0)).unwrap();
            let mut done = Vec::new();
            let step_to = |mc: &mut MemoryController, done: &mut Vec<Completion>, to: u64| {
                if skip {
                    mc.tick_until(to, done);
                } else {
                    while mc.cycle() < to {
                        mc.tick(done);
                    }
                }
            };
            step_to(&mut mc, &mut done, 2_000);
            let changes: Vec<(usize, u32, RowMode)> = (0..mc.mode_table().banks() as usize)
                .map(|b| (b, 0u32, RowMode::HighPerformance))
                .collect();
            mc.begin_row_migrations(&changes);
            step_to(&mut mc, &mut done, 10_000);
            mc.try_enqueue(read(3, 0x0, mc.cycle())).unwrap();
            step_to(&mut mc, &mut done, 60_000);
            (
                mc.command_log().unwrap().to_vec(),
                done,
                mc.stats().clone(),
                mc.pending_migrations(),
            )
        };
        let (log_a, done_a, stats_a, pend_a) = run(false);
        let (log_b, done_b, stats_b, pend_b) = run(true);
        assert_eq!(log_a, log_b, "command logs diverge");
        assert_eq!(done_a, done_b, "completions diverge");
        assert_eq!(stats_a, stats_b, "statistics diverge");
        assert_eq!(pend_a, pend_b);
        assert_eq!(pend_a, 0, "all jobs completed in the horizon");
        assert!(stats_a.migration_jobs_completed > 0);
        assert!(log_a.iter().any(|c| c.migration));
        assert!(log_a.iter().any(|c| !c.migration));
    }

    #[test]
    fn cross_bank_placement_overlaps_read_out_and_write_back() {
        use crate::frames::DestinationPicker;
        use crate::migrate::RelocationConfig;
        let mut cfg = MemConfig::tiny_clr(0.0);
        cfg.refresh_enabled = false;
        cfg.relocation = RelocationConfig::background();
        cfg.placement = DestinationPicker::CrossBank;
        let mut mc = MemoryController::new(cfg);
        mc.enable_command_log();
        let jobs = mc.begin_row_migrations(&[(0, 0, RowMode::HighPerformance)]);
        assert_eq!(jobs, 1);
        let mut done = Vec::new();
        for _ in 0..20_000 {
            mc.tick(&mut done);
            if mc.pending_migrations() == 0 {
                break;
            }
        }
        assert_eq!(mc.pending_migrations(), 0);
        assert_eq!(mc.mode_of_row(0, 0), RowMode::HighPerformance);
        assert_eq!(mc.stats().migration_jobs_completed, 1);
        assert_eq!(mc.stats().migration_cross_bank_jobs, 1);
        // The destination frame was activated in *another* bank while the
        // source bank's read-out was still open — concurrent activity of
        // both banks within one job.
        let log = mc.command_log().unwrap();
        let src_act = log
            .iter()
            .find(|c| c.migration && c.command == Command::Act && c.flat_bank == 0)
            .expect("source ACT");
        let dest_act = log
            .iter()
            .find(|c| c.migration && c.command == Command::Act && c.flat_bank != 0)
            .expect("destination ACT in a different bank");
        let src_pre = log
            .iter()
            .find(|c| c.migration && c.command == Command::Pre && c.flat_bank == 0)
            .expect("source PRE");
        assert!(
            src_act.cycle < dest_act.cycle && dest_act.cycle < src_pre.cycle,
            "destination ACT at {} must land inside the source's open window [{}, {}]",
            dest_act.cycle,
            src_act.cycle,
            src_pre.cycle
        );
        // The displaced half-row moved in full, once out and once in.
        let bursts = mc.config().geometry.row_bytes() / 2 / mc.config().geometry.burst_bytes();
        assert_eq!(mc.stats().migration_reads, bursts);
        assert_eq!(mc.stats().migration_writes, bursts);
    }

    #[test]
    fn tick_until_is_bit_identical_with_cross_bank_placement() {
        use crate::frames::DestinationPicker;
        use crate::migrate::RelocationConfig;
        let run = |skip: bool| {
            let mut cfg = MemConfig::tiny_clr(0.0);
            cfg.refresh_enabled = true;
            cfg.relocation = RelocationConfig::background();
            cfg.placement = DestinationPicker::CrossBank;
            let mut mc = MemoryController::new(cfg);
            mc.enable_command_log();
            mc.try_enqueue(read(1, 0x0, 0)).unwrap();
            mc.try_enqueue(read(2, 0x1000, 0)).unwrap();
            let mut done = Vec::new();
            let step_to = |mc: &mut MemoryController, done: &mut Vec<Completion>, to: u64| {
                if skip {
                    mc.tick_until(to, done);
                } else {
                    while mc.cycle() < to {
                        mc.tick(done);
                    }
                }
            };
            step_to(&mut mc, &mut done, 2_000);
            let changes: Vec<(usize, u32, RowMode)> = (0..mc.mode_table().banks() as usize)
                .map(|b| (b, 0u32, RowMode::HighPerformance))
                .collect();
            mc.begin_row_migrations(&changes);
            step_to(&mut mc, &mut done, 10_000);
            mc.try_enqueue(read(3, 0x0, mc.cycle())).unwrap();
            step_to(&mut mc, &mut done, 60_000);
            (
                mc.command_log().unwrap().to_vec(),
                done,
                mc.stats().clone(),
                mc.pending_migrations(),
            )
        };
        let (log_a, done_a, stats_a, pend_a) = run(false);
        let (log_b, done_b, stats_b, pend_b) = run(true);
        assert_eq!(log_a, log_b, "command logs diverge");
        assert_eq!(done_a, done_b, "completions diverge");
        assert_eq!(stats_a, stats_b, "statistics diverge");
        assert_eq!(pend_a, pend_b);
        assert_eq!(pend_a, 0, "all jobs completed in the horizon");
        assert!(stats_a.migration_cross_bank_jobs > 0, "cross-bank jobs ran");
    }

    #[test]
    fn evacuation_and_fill_run_as_background_traffic() {
        use crate::migrate::RelocationConfig;
        let mut cfg = MemConfig::tiny_clr(0.0);
        cfg.refresh_enabled = false;
        cfg.relocation = RelocationConfig::background();
        let mut mc = MemoryController::new(cfg);
        // Same-channel whole-row move between two banks.
        assert!(mc.begin_row_evacuation(0, 5, 1, 9));
        let mut done = Vec::new();
        for _ in 0..30_000 {
            mc.tick(&mut done);
            if mc.pending_migrations() == 0 {
                break;
            }
        }
        assert_eq!(mc.pending_migrations(), 0);
        assert_eq!(mc.stats().migration_evacuations, 1);
        assert_eq!(mc.stats().frames_freed, 1);
        assert!(mc.frame_directory().is_free(0, 5), "vacated row is a frame");
        let mut events = Vec::new();
        mc.drain_placement_events_into(&mut events);
        assert_eq!(events.len(), 1);
        assert_eq!(
            (
                events[0].bank,
                events[0].row,
                events[0].dest_bank,
                events[0].dest
            ),
            (0, 5, 1, 9)
        );
        // The freed frame is preferred by the next coupling's picker in
        // cross-bank-capable configurations; under same-bank placement it
        // is simply bookkeeping. Exercise the fill half too.
        assert!(mc.reserve_frame(2, 7));
        assert!(!mc.reserve_frame(2, 7), "double reservation refused");
        assert!(mc.begin_fill(2, 7));
        for _ in 0..30_000 {
            mc.tick(&mut done);
            if mc.pending_migrations() == 0 {
                break;
            }
        }
        assert_eq!(mc.stats().migration_fills, 1);
        assert!(!mc.is_row_migrating(2, 7), "fill released the reservation");
        let full_row = mc.config().geometry.row_bytes() / mc.config().geometry.burst_bytes();
        assert_eq!(mc.stats().migration_reads, full_row, "evacuation reads");
        assert_eq!(
            mc.stats().migration_writes,
            2 * full_row,
            "evacuation + fill writes"
        );
    }

    #[test]
    fn heterogeneous_refresh_issues_two_stream_kinds() {
        let mut cfg = MemConfig::tiny_clr(0.5);
        cfg.refresh_enabled = true;
        let mut mc = MemoryController::new(cfg);
        let mut done = Vec::new();
        for _ in 0..200_000 {
            mc.tick(&mut done);
        }
        assert!(mc.stats().refs_max_capacity > 0);
        assert!(mc.stats().refs_high_performance > 0);
    }
}
