//! The memory controller: request queues, FR-FCFS-Cap scheduling, write
//! draining, timeout row policy, and heterogeneous refresh.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

use clr_core::addr::PhysAddr;
use clr_core::mode::{ModeTable, RowMode};
use clr_core::refresh::RefreshPlan;

use crate::bankstate::BankState;
use crate::command::{Command, IssuedCommand};
use crate::config::{ClrModeConfig, MemConfig};
use crate::cycletimings::CycleTimings;
use crate::engine::{Target, TimingEngine};
use crate::refresh::RefreshScheduler;
use crate::request::{Completion, MemRequest, RequestKind};
use crate::scheduler::{self, QueueEntry};
use crate::stats::MemStats;

/// The DDR4 / CLR-DRAM memory controller.
///
/// Drive it with [`MemoryController::tick`] once per DRAM clock cycle; at
/// most one command issues on the command bus per tick. Completed reads
/// are pushed into the caller's completion buffer.
#[derive(Debug)]
pub struct MemoryController {
    config: MemConfig,
    engine: TimingEngine,
    banks: Vec<BankState>,
    read_q: Vec<QueueEntry>,
    write_q: Vec<QueueEntry>,
    refresh: RefreshScheduler,
    pending_refresh: Option<(RowMode, u64)>,
    draining_writes: bool,
    hit_streak: Vec<u32>,
    inflight: BinaryHeap<Reverse<(u64, u64)>>,
    stats: MemStats,
    cycle: u64,
    /// The shared per-row operating-mode table: the single source of truth
    /// for which timing set, refresh stream, and capacity accounting every
    /// row gets. Mutated only through [`MemoryController::apply_row_modes`].
    modes: ModeTable,
    /// Column accesses per `(flat_bank, row)` since the last telemetry
    /// drain (a `BTreeMap` so export order is deterministic). Populated
    /// only when `telemetry_enabled` is set.
    row_counts: BTreeMap<(u32, u32), u64>,
    /// Whether per-row telemetry is being collected (off by default).
    telemetry_enabled: bool,
    /// Queue service is suspended until this cycle while relocation
    /// (mode-migration data movement) occupies the channel.
    maintenance_until: u64,
    timeout_cycles: Option<u64>,
    addr_mask: u64,
    command_log: Option<Vec<IssuedCommand>>,
    per_bank_acts: Vec<u64>,
}

impl MemoryController {
    /// Builds a controller (and its DRAM device model) from a
    /// configuration.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid or the CLR fraction/refresh
    /// window is out of range.
    pub fn new(config: MemConfig) -> Self {
        config.geometry.validate().expect("invalid geometry");
        let g = &config.geometry;
        let banks_total = (g.channels * g.ranks * g.bank_groups * g.banks_per_group) as usize;
        let bg_total = (g.channels * g.ranks * g.bank_groups) as usize;
        let ranks_total = (g.channels * g.ranks) as usize;
        let banks_per_group = g.banks_per_group as usize;
        let bgs_per_rank = g.bank_groups as usize;

        let hp_params = config.clr.hp_params(&config.timings);
        let cycle_timings = match config.clr {
            ClrModeConfig::BaselineDdr4 => {
                CycleTimings::baseline(&config.timings, &config.interface)
            }
            ClrModeConfig::Clr { .. } => {
                CycleTimings::new(&config.timings, &hp_params, &config.interface)
            }
        };
        let engine = TimingEngine::new(
            cycle_timings,
            banks_total,
            bg_total,
            ranks_total,
            g.channels as usize,
            |b| {
                let bg = b / banks_per_group;
                let rank = bg / bgs_per_rank;
                (bg, rank)
            },
        );

        let (fraction_hp, refw) = match config.clr {
            ClrModeConfig::BaselineDdr4 => (0.0, 64.0),
            ClrModeConfig::Clr {
                fraction_hp,
                hp_refw_ms,
                ..
            } => (fraction_hp, hp_refw_ms),
        };
        let refresh = if config.refresh_enabled {
            let plan = RefreshPlan::new(&config.timings, fraction_hp, refw);
            let mc_rfc = engine.timings().max_capacity.rfc;
            let hp_rfc = engine.timings().high_performance.rfc;
            RefreshScheduler::new(&plan, config.interface.t_ck_ns, |m| match m {
                RowMode::MaxCapacity => mc_rfc,
                RowMode::HighPerformance => hp_rfc,
            })
        } else {
            RefreshScheduler::disabled()
        };

        let timeout_cycles = config
            .scheduler
            .row_policy
            .idle_threshold_ns()
            .map(|ns| config.interface.ns_to_cycles(ns));
        let mut modes = ModeTable::new(g);
        // Initial layout: the paper's contiguous low-row prefix. A policy
        // runtime may rewrite this at any epoch via `apply_row_modes`.
        modes.set_fraction_high_performance(fraction_hp);
        let addr_mask = g.capacity_bytes() - 1;

        MemoryController {
            engine,
            banks: vec![BankState::new(); banks_total],
            read_q: Vec::with_capacity(config.scheduler.read_queue),
            write_q: Vec::with_capacity(config.scheduler.write_queue),
            refresh,
            pending_refresh: None,
            draining_writes: false,
            hit_streak: vec![0; banks_total],
            inflight: BinaryHeap::new(),
            stats: MemStats::new(),
            cycle: 0,
            modes,
            row_counts: BTreeMap::new(),
            telemetry_enabled: false,
            maintenance_until: 0,
            timeout_cycles,
            addr_mask,
            command_log: None,
            per_bank_acts: vec![0; banks_total],
            config,
        }
    }

    /// ACT count per flat bank — a bank-level-parallelism diagnostic.
    pub fn bank_usage(&self) -> &[u64] {
        &self.per_bank_acts
    }

    /// Starts recording every issued command (for the protocol auditor in
    /// [`crate::checker`] and for debugging). Call before driving traffic.
    pub fn enable_command_log(&mut self) {
        self.command_log = Some(Vec::new());
    }

    /// The recorded command log, if enabled.
    pub fn command_log(&self) -> Option<&[IssuedCommand]> {
        self.command_log.as_deref()
    }

    fn log_command(
        &mut self,
        cycle: u64,
        command: Command,
        flat_bank: usize,
        row: u32,
        mode: RowMode,
    ) {
        if let Some(log) = self.command_log.as_mut() {
            log.push(IssuedCommand {
                cycle,
                command,
                flat_bank,
                row,
                mode,
            });
        }
    }

    /// The configuration this controller runs.
    pub fn config(&self) -> &MemConfig {
        &self.config
    }

    /// Current DRAM cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// Operating mode of `row` in `flat_bank`, looked up in the shared
    /// [`ModeTable`].
    ///
    /// # Panics
    ///
    /// Panics if `flat_bank` or `row` is out of range.
    pub fn mode_of_row(&self, flat_bank: usize, row: u32) -> RowMode {
        self.modes.mode_of(flat_bank, row)
    }

    /// The shared per-row mode table.
    pub fn mode_table(&self) -> &ModeTable {
        &self.modes
    }

    /// Applies validated row-mode transitions (from a policy runtime),
    /// charging `stall_cycles` of relocation work during which queue
    /// service is suspended, and retuning the heterogeneous refresh
    /// streams to the new mode population. Returns the number of rows
    /// whose mode actually changed.
    ///
    /// Mode changes take effect at each row's *next activation* (§3.3:
    /// the ISO control signals are applied per-ACT), so a currently open
    /// row finishes its row cycle in the mode it was sensed in.
    ///
    /// # Panics
    ///
    /// Panics if any `(flat_bank, row)` is out of range.
    pub fn apply_row_modes(&mut self, changes: &[(usize, u32, RowMode)], stall_cycles: u64) -> u64 {
        let mut changed = 0;
        for &(bank, row, mode) in changes {
            if self.modes.set(bank, row, mode) != mode {
                changed += 1;
            }
        }
        if changed > 0 {
            self.stats.mode_transitions += changed;
            self.maintenance_until = self.maintenance_until.max(self.cycle) + stall_cycles;
            self.retune_refresh();
        }
        changed
    }

    /// Starts counting per-row column accesses for telemetry export.
    /// Off by default so non-policy runs pay nothing on the column-command
    /// hot path (mirrors [`MemoryController::enable_command_log`]).
    pub fn enable_row_telemetry(&mut self) {
        self.telemetry_enabled = true;
    }

    /// Drains the per-row access telemetry accumulated since the last
    /// drain, as `((flat_bank, row), column_accesses)` sorted by
    /// `(bank, row)`. Empty unless
    /// [`MemoryController::enable_row_telemetry`] was called.
    pub fn drain_row_telemetry(&mut self) -> Vec<((u32, u32), u64)> {
        std::mem::take(&mut self.row_counts).into_iter().collect()
    }

    /// Rebuilds the refresh scheduler for the current mode population,
    /// rebased at the current cycle.
    fn retune_refresh(&mut self) {
        if !self.config.refresh_enabled {
            return;
        }
        let refw = match self.config.clr {
            ClrModeConfig::BaselineDdr4 => 64.0,
            ClrModeConfig::Clr { hp_refw_ms, .. } => hp_refw_ms,
        };
        let plan = RefreshPlan::new(
            &self.config.timings,
            self.modes.fraction_high_performance(),
            refw,
        );
        let mc_rfc = self.engine.timings().max_capacity.rfc;
        let hp_rfc = self.engine.timings().high_performance.rfc;
        // Carry surviving streams' due times: a retune must not push
        // refresh into the future (policy epochs can be much shorter
        // than tREFI, so resetting would starve refresh entirely).
        self.refresh = self.refresh.retuned(
            &plan,
            self.config.interface.t_ck_ns,
            |m| match m {
                RowMode::MaxCapacity => mc_rfc,
                RowMode::HighPerformance => hp_rfc,
            },
            self.cycle,
        );
    }

    /// Number of queued reads (diagnostics).
    pub fn pending_reads(&self) -> usize {
        self.read_q.len()
    }

    /// Number of queued writes (diagnostics).
    pub fn pending_writes(&self) -> usize {
        self.write_q.len()
    }

    /// Whether all queues and in-flight buffers are empty.
    pub fn is_idle(&self) -> bool {
        self.read_q.is_empty() && self.write_q.is_empty() && self.inflight.is_empty()
    }

    /// Attempts to enqueue a request, returning it back on queue-full
    /// (callers retry next cycle — that is the backpressure model).
    ///
    /// Reads matching a queued write's line are served by forwarding.
    pub fn try_enqueue(&mut self, request: MemRequest) -> Result<(), MemRequest> {
        let masked = PhysAddr(request.addr.0 & self.addr_mask);
        let line = masked.line(self.config.geometry.burst_bytes());
        match request.kind {
            RequestKind::Read => {
                if self
                    .write_q
                    .iter()
                    .any(|e| e.request.addr.line(self.config.geometry.burst_bytes()) == line)
                {
                    self.stats.forwarded_reads += 1;
                    self.inflight.push(Reverse((self.cycle + 1, request.id)));
                    return Ok(());
                }
                if self.read_q.len() >= self.config.scheduler.read_queue {
                    self.stats.queue_rejections += 1;
                    return Err(request);
                }
                let entry = self.make_entry(MemRequest {
                    addr: masked,
                    ..request
                });
                self.read_q.push(entry);
                Ok(())
            }
            RequestKind::Write => {
                if self.write_q.len() >= self.config.scheduler.write_queue {
                    self.stats.queue_rejections += 1;
                    return Err(request);
                }
                let entry = self.make_entry(MemRequest {
                    addr: masked,
                    ..request
                });
                self.write_q.push(entry);
                Ok(())
            }
        }
    }

    fn make_entry(&self, request: MemRequest) -> QueueEntry {
        let g = &self.config.geometry;
        let decoded = self
            .config
            .mapping
            .map(request.addr, g)
            .expect("masked address is always in range");
        let flat_bank = decoded.flat_bank(g);
        let banks_per_group = g.banks_per_group as usize;
        let bgs_per_rank = g.bank_groups as usize;
        let bg = flat_bank / banks_per_group;
        let rank = bg / bgs_per_rank;
        let target = Target {
            bank: flat_bank,
            bank_group: bg,
            rank,
            channel: decoded.channel as usize,
            mode: self.mode_of_row(flat_bank, decoded.row),
        };
        scheduler::entry(request, decoded, target)
    }

    /// Advances one DRAM clock cycle, pushing finished reads into
    /// `completions`.
    pub fn tick(&mut self, completions: &mut Vec<Completion>) {
        let now = self.cycle;

        // 1. Deliver finished reads.
        while let Some(&Reverse((done, id))) = self.inflight.peek() {
            if done > now {
                break;
            }
            self.inflight.pop();
            completions.push(Completion {
                id,
                finish_cycle: done,
            });
        }

        // 2. Refresh has the highest priority once due.
        if self.pending_refresh.is_none() {
            if let Some((mode, rfc)) = self.refresh.due(now) {
                self.pending_refresh = Some((mode, rfc));
            }
        }
        let mut issued = false;
        if let Some((mode, rfc)) = self.pending_refresh {
            issued = self.progress_refresh(mode, rfc, now);
        } else if now < self.maintenance_until {
            // Relocation work from a mode-transition batch occupies the
            // channel: queue service pauses, refresh does not.
            self.stats.relocation_stall_cycles += 1;
        } else {
            issued = self.serve_queues(now) || issued;
        }

        // 3. Timeout row policy as background work.
        if !issued && now >= self.maintenance_until {
            self.close_expired_row(now);
        }

        // 4. Background accounting.
        if self.banks.iter().any(|b| b.open_row.is_some()) {
            self.stats.rank_active_cycles += 1;
        } else {
            self.stats.rank_precharged_cycles += 1;
        }

        self.cycle += 1;
        self.stats.cycles = self.cycle;
    }

    /// Progress the pending refresh: close open banks, then issue REF to
    /// every rank. Returns whether a command issued this cycle.
    fn progress_refresh(&mut self, mode: RowMode, _rfc: u64, now: u64) -> bool {
        // Close any open bank first (one PRE per cycle).
        for b in 0..self.banks.len() {
            if self.banks[b].open_row.is_some() {
                let target = self.bank_target(b, self.banks[b].open_mode);
                if self.engine.can_issue(Command::Pre, target, now) {
                    let closed = self.banks[b].precharge();
                    self.engine.issue(Command::Pre, target, now);
                    self.stats.record_pre(closed);
                    self.log_command(now, Command::Pre, b, 0, closed);
                    self.hit_streak[b] = 0;
                    return true;
                }
                return false; // wait for tRAS/tWR of that bank
            }
        }
        // All banks closed: issue REF (modelled on every rank this cycle).
        let ranks = (self.config.geometry.channels * self.config.geometry.ranks) as usize;
        let rank_targets: Vec<Target> = (0..ranks)
            .map(|r| Target {
                bank: r * (self.banks.len() / ranks),
                bank_group: r * (self.config.geometry.bank_groups as usize),
                rank: r,
                channel: 0,
                mode,
            })
            .collect();
        if rank_targets
            .iter()
            .all(|t| self.engine.can_issue(Command::Ref, *t, now))
        {
            let rfc = self.engine.timings().for_mode(mode).rfc;
            for t in rank_targets {
                self.engine.issue(Command::Ref, t, now);
            }
            self.stats.record_ref(mode);
            self.stats.refresh_busy_cycles += rfc;
            self.refresh.mark_issued(mode);
            self.pending_refresh = None;
            self.log_command(now, Command::Ref, 0, 0, mode);
            return true;
        }
        false
    }

    /// Serve read/write queues under the drain policy. Returns whether a
    /// command issued.
    fn serve_queues(&mut self, now: u64) -> bool {
        // Drain-mode hysteresis.
        if !self.draining_writes && self.write_q.len() >= self.config.scheduler.write_high_watermark
        {
            self.draining_writes = true;
        }
        if self.draining_writes && self.write_q.len() <= self.config.scheduler.write_low_watermark {
            self.draining_writes = false;
        }
        let use_writes =
            self.draining_writes || (self.read_q.is_empty() && !self.write_q.is_empty());

        let decision = {
            let q = if use_writes {
                &self.write_q
            } else {
                &self.read_q
            };
            scheduler::pick(
                q,
                &self.banks,
                &self.engine,
                &self.hit_streak,
                self.config.scheduler.cap,
                now,
            )
        };
        let Some(d) = decision else {
            return false;
        };
        let q = if use_writes {
            &mut self.write_q
        } else {
            &mut self.read_q
        };
        let e = &mut q[d.queue_index];
        let bank = e.target.bank;
        match d.command {
            Command::Act => {
                if !e.classified {
                    e.classified = true;
                    if e.needed_pre {
                        self.stats.row_conflicts += 1;
                    } else {
                        self.stats.row_misses += 1;
                    }
                }
                e.needed_act = true;
                let row = e.decoded.row;
                // Mode is resolved from the shared table *at activation
                // time* — the table may have changed since enqueue.
                let mode = self.modes.mode_of(bank, row);
                e.target.mode = mode;
                let target = e.target;
                self.banks[bank].activate(row, mode, now);
                self.engine.issue(Command::Act, target, now);
                self.stats.record_act(mode);
                self.per_bank_acts[bank] += 1;
                self.log_command(now, Command::Act, bank, row, mode);
                self.hit_streak[bank] = 0;
            }
            Command::Pre => {
                e.needed_pre = true;
                let target = Target {
                    mode: self.banks[bank].open_mode,
                    ..e.target
                };
                let closed = self.banks[bank].precharge();
                self.engine.issue(Command::Pre, target, now);
                self.stats.record_pre(closed);
                self.log_command(now, Command::Pre, bank, 0, closed);
                self.hit_streak[bank] = 0;
            }
            Command::Rd | Command::Wr => {
                if !e.classified {
                    e.classified = true;
                    self.stats.row_hits += 1;
                }
                // Column commands run in the mode the open row was sensed
                // in (write recovery is mode-dependent), which may differ
                // from the entry's enqueue-time snapshot.
                let target = Target {
                    mode: self.banks[bank].open_mode,
                    ..e.target
                };
                let entry = q.swap_remove(d.queue_index);
                self.banks[bank].access(now);
                if self.telemetry_enabled {
                    *self
                        .row_counts
                        .entry((bank as u32, entry.decoded.row))
                        .or_insert(0) += 1;
                }
                self.engine.issue(d.command, target, now);
                self.log_command(now, d.command, bank, entry.decoded.row, target.mode);
                self.hit_streak[bank] = self.hit_streak[bank].saturating_add(1);
                match d.command {
                    Command::Rd => {
                        self.stats.reads += 1;
                        let done = self.engine.read_done(now);
                        self.stats.read_latency_sum +=
                            done.saturating_sub(entry.request.arrival_cycle);
                        self.stats.reads_completed += 1;
                        self.inflight.push(Reverse((done, entry.request.id)));
                    }
                    Command::Wr => {
                        self.stats.writes += 1;
                    }
                    _ => unreachable!(),
                }
            }
            Command::Ref => unreachable!("REF is never scheduled from the queues"),
        }
        true
    }

    /// Close an open row per the configured row policy (closed-page or
    /// timeout) when no queued request targets it. Open-page never closes
    /// in the background.
    fn close_expired_row(&mut self, now: u64) {
        let Some(timeout_cycles) = self.timeout_cycles else {
            return; // open-page policy
        };
        for b in 0..self.banks.len() {
            let Some(row) = self.banks[b].open_row else {
                continue;
            };
            if now.saturating_sub(self.banks[b].last_use_cycle) < timeout_cycles {
                continue;
            }
            let wanted = self
                .read_q
                .iter()
                .chain(self.write_q.iter())
                .any(|e| e.target.bank == b && e.decoded.row == row);
            if wanted {
                continue;
            }
            let target = self.bank_target(b, self.banks[b].open_mode);
            if self.engine.can_issue(Command::Pre, target, now) {
                let closed = self.banks[b].precharge();
                self.engine.issue(Command::Pre, target, now);
                self.stats.record_pre(closed);
                self.log_command(now, Command::Pre, b, 0, closed);
                self.hit_streak[b] = 0;
                return;
            }
        }
    }

    fn bank_target(&self, flat_bank: usize, mode: RowMode) -> Target {
        let g = &self.config.geometry;
        let banks_per_group = g.banks_per_group as usize;
        let bgs_per_rank = g.bank_groups as usize;
        let bg = flat_bank / banks_per_group;
        let rank = bg / bgs_per_rank;
        Target {
            bank: flat_bank,
            bank_group: bg,
            rank,
            channel: 0,
            mode,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read(id: u64, addr: u64, at: u64) -> MemRequest {
        MemRequest::new(id, PhysAddr(addr), RequestKind::Read, at)
    }

    fn write(id: u64, addr: u64, at: u64) -> MemRequest {
        MemRequest::new(id, PhysAddr(addr), RequestKind::Write, at)
    }

    fn run_until_done(mc: &mut MemoryController, limit: u64) -> Vec<Completion> {
        let mut done = Vec::new();
        for _ in 0..limit {
            mc.tick(&mut done);
            if mc.is_idle() {
                break;
            }
        }
        done
    }

    #[test]
    fn single_read_completes_with_expected_latency() {
        let mut cfg = MemConfig::paper_tiny();
        cfg.refresh_enabled = false;
        let mut mc = MemoryController::new(cfg);
        mc.try_enqueue(read(1, 0x80, 0)).unwrap();
        let done = run_until_done(&mut mc, 10_000);
        assert_eq!(done.len(), 1);
        // Closed bank: ACT at ~1 + tRCD + CL + burst.
        let t = mc.engine.timings();
        let expect = 1 + t.max_capacity.rcd + t.cl + t.burst;
        assert!(
            done[0].finish_cycle <= expect + 2,
            "finish {} vs expect {}",
            done[0].finish_cycle,
            expect
        );
        assert_eq!(mc.stats().row_misses, 1);
        assert_eq!(mc.stats().acts(), 1);
    }

    #[test]
    fn row_hits_are_faster_than_conflicts() {
        let mut cfg = MemConfig::paper_tiny();
        cfg.refresh_enabled = false;
        let mut mc = MemoryController::new(cfg);
        // Two reads to the same row: second is a hit.
        mc.try_enqueue(read(1, 0x0, 0)).unwrap();
        mc.try_enqueue(read(2, 0x40, 0)).unwrap();
        let done = run_until_done(&mut mc, 10_000);
        assert_eq!(done.len(), 2);
        assert_eq!(mc.stats().row_hits, 1);
        assert_eq!(mc.stats().row_misses, 1);
    }

    #[test]
    fn conflicting_rows_force_precharge() {
        let mut cfg = MemConfig::paper_tiny();
        cfg.refresh_enabled = false;
        let row_stride = {
            // Same bank, different row: rows are the top address bits under
            // RoBgBaRaCoCh, so one full "row footprint" apart.
            let g = &cfg.geometry;
            g.capacity_bytes() / g.rows as u64
        };
        let mut mc = MemoryController::new(cfg);
        mc.try_enqueue(read(1, 0, 0)).unwrap();
        mc.try_enqueue(read(2, row_stride, 0)).unwrap();
        let done = run_until_done(&mut mc, 20_000);
        assert_eq!(done.len(), 2);
        assert_eq!(mc.stats().row_conflicts + mc.stats().row_misses, 2);
        assert!(mc.stats().pres() >= 1);
    }

    #[test]
    fn writes_complete_silently_and_forward_to_reads() {
        let mut cfg = MemConfig::paper_tiny();
        cfg.refresh_enabled = false;
        let mut mc = MemoryController::new(cfg);
        mc.try_enqueue(write(1, 0x1000, 0)).unwrap();
        // A read to the same line is forwarded.
        mc.try_enqueue(read(2, 0x1000, 0)).unwrap();
        let done = run_until_done(&mut mc, 20_000);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].id, 2);
        assert_eq!(mc.stats().forwarded_reads, 1);
        assert_eq!(mc.stats().writes, 1);
    }

    #[test]
    fn queue_rejection_backpressure() {
        let mut cfg = MemConfig::paper_tiny();
        cfg.refresh_enabled = false;
        cfg.scheduler.read_queue = 2;
        let mut mc = MemoryController::new(cfg);
        assert!(mc.try_enqueue(read(1, 0x00, 0)).is_ok());
        assert!(mc.try_enqueue(read(2, 0x40, 0)).is_ok());
        assert!(mc.try_enqueue(read(3, 0x80, 0)).is_err());
        assert_eq!(mc.stats().queue_rejections, 1);
    }

    #[test]
    fn refresh_blocks_and_recovers() {
        let mut cfg = MemConfig::paper_tiny();
        cfg.refresh_enabled = true;
        let mut mc = MemoryController::new(cfg);
        let mut done = Vec::new();
        // Run past several tREFI windows with no traffic.
        for _ in 0..50_000 {
            mc.tick(&mut done);
        }
        assert!(mc.stats().refs() >= 4, "refs {}", mc.stats().refs());
        // Requests still complete after refreshes.
        mc.try_enqueue(read(9, 0x40, mc.cycle())).unwrap();
        let done = run_until_done(&mut mc, 50_000);
        assert_eq!(done.len(), 1);
    }

    #[test]
    fn hp_region_uses_fast_timings() {
        // All rows HP: reads complete measurably faster than baseline for
        // row-miss traffic.
        let mut base_cfg = MemConfig::paper_tiny();
        base_cfg.refresh_enabled = false;
        let mut clr_cfg = MemConfig::tiny_clr(1.0);
        clr_cfg.refresh_enabled = false;

        let run = |cfg: MemConfig| {
            let row_stride = cfg.geometry.capacity_bytes() / cfg.geometry.rows as u64;
            let mut mc = MemoryController::new(cfg);
            // Row-conflict chain in one bank.
            for i in 0..8u64 {
                mc.try_enqueue(read(i, (i % 4) * row_stride, 0)).unwrap();
            }
            let done = run_until_done(&mut mc, 100_000);
            assert_eq!(done.len(), 8);
            done.iter().map(|c| c.finish_cycle).max().unwrap()
        };
        let t_base = run(base_cfg);
        let t_clr = run(clr_cfg);
        assert!(
            (t_clr as f64) < 0.7 * t_base as f64,
            "CLR {} vs baseline {}",
            t_clr,
            t_base
        );
    }

    #[test]
    fn timeout_policy_closes_idle_rows() {
        let mut cfg = MemConfig::paper_tiny();
        cfg.refresh_enabled = false;
        let mut mc = MemoryController::new(cfg);
        mc.try_enqueue(read(1, 0x0, 0)).unwrap();
        let mut done = Vec::new();
        for _ in 0..2_000 {
            mc.tick(&mut done);
        }
        // Row must have been closed by the 120 ns timeout.
        assert!(mc.banks.iter().all(|b| b.open_row.is_none()));
        assert_eq!(mc.stats().pres(), 1);
    }

    #[test]
    fn interleaved_traffic_spreads_across_banks() {
        let mut cfg = MemConfig::paper_tiny();
        cfg.refresh_enabled = false;
        let g = cfg.geometry.clone();
        let mut mc = MemoryController::new(cfg);
        // One line per bank-group/bank combination: consecutive row-sized
        // strides change the row; bank bits sit between row and column
        // under RoBgBaRaCoCh, so stride by row_bytes to walk banks.
        let bank_stride = g.row_bytes();
        for i in 0..16u64 {
            mc.try_enqueue(read(i, i * bank_stride, 0)).unwrap();
        }
        let done = run_until_done(&mut mc, 100_000);
        assert_eq!(done.len(), 16);
        let used = mc.bank_usage().iter().filter(|&&c| c > 0).count();
        assert!(used >= 2, "expected multi-bank usage, got {used} banks");
        assert_eq!(mc.bank_usage().iter().sum::<u64>(), mc.stats().acts());
    }

    #[test]
    fn open_page_policy_never_closes_idle_rows() {
        let mut cfg = MemConfig::paper_tiny();
        cfg.refresh_enabled = false;
        cfg.scheduler.row_policy = crate::config::RowPolicy::Open;
        let mut mc = MemoryController::new(cfg);
        mc.try_enqueue(read(1, 0x0, 0)).unwrap();
        let mut done = Vec::new();
        for _ in 0..5_000 {
            mc.tick(&mut done);
        }
        assert!(
            mc.banks.iter().any(|b| b.open_row.is_some()),
            "open-page must keep the row open"
        );
        assert_eq!(mc.stats().pres(), 0);
    }

    #[test]
    fn closed_page_policy_closes_immediately() {
        let mut cfg = MemConfig::paper_tiny();
        cfg.refresh_enabled = false;
        cfg.scheduler.row_policy = crate::config::RowPolicy::Closed;
        let mut mc = MemoryController::new(cfg);
        mc.try_enqueue(read(1, 0x0, 0)).unwrap();
        let mut done = Vec::new();
        for _ in 0..200 {
            mc.tick(&mut done);
        }
        // Closed as soon as tRAS/tRTP allowed, well before the 120 ns
        // timeout equivalent (~144 cycles after the column access).
        assert!(mc.banks.iter().all(|b| b.open_row.is_none()));
        assert_eq!(mc.stats().pres(), 1);
    }

    #[test]
    fn mode_of_row_follows_table_prefix_initially() {
        let mc = MemoryController::new(MemConfig::tiny_clr(0.25));
        let rows = mc.config().geometry.rows;
        let hp_rows = (rows as f64 * 0.25).round() as u32;
        for bank in 0..mc.mode_table().banks() as usize {
            assert_eq!(mc.mode_of_row(bank, 0), RowMode::HighPerformance);
            assert_eq!(mc.mode_of_row(bank, hp_rows - 1), RowMode::HighPerformance);
            assert_eq!(mc.mode_of_row(bank, hp_rows), RowMode::MaxCapacity);
        }
        assert!((mc.mode_table().fraction_high_performance() - 0.25).abs() < 1e-6);
    }

    #[test]
    fn applied_transitions_redirect_timing_at_next_act() {
        let mut cfg = MemConfig::tiny_clr(0.0);
        cfg.refresh_enabled = false;
        let mut mc = MemoryController::new(cfg);
        mc.enable_command_log();
        mc.try_enqueue(read(1, 0x0, 0)).unwrap();
        let done = run_until_done(&mut mc, 10_000);
        assert_eq!(done.len(), 1);
        // Row 0 starts max-capacity.
        let acts: Vec<_> = mc
            .command_log()
            .unwrap()
            .iter()
            .filter(|c| c.command == Command::Act)
            .cloned()
            .collect();
        assert_eq!(acts.len(), 1);
        assert_eq!(acts[0].mode, RowMode::MaxCapacity);

        // Promote row 0 of every bank, then re-access: the next ACT must
        // carry the high-performance timing set.
        let changes: Vec<(usize, u32, RowMode)> = (0..mc.mode_table().banks() as usize)
            .map(|b| (b, 0u32, RowMode::HighPerformance))
            .collect();
        let changed = mc.apply_row_modes(&changes, 50);
        assert_eq!(changed, changes.len() as u64);
        assert_eq!(mc.stats().mode_transitions, changed);
        // Let the relocation stall pass and the timeout policy close the
        // open row, so the next access re-activates in the new mode.
        let mut sink = Vec::new();
        for _ in 0..2_000 {
            mc.tick(&mut sink);
        }
        mc.try_enqueue(read(2, 0x0, mc.cycle())).unwrap();
        let done = run_until_done(&mut mc, 10_000);
        assert_eq!(done.len(), 1);
        let acts: Vec<_> = mc
            .command_log()
            .unwrap()
            .iter()
            .filter(|c| c.command == Command::Act)
            .cloned()
            .collect();
        assert_eq!(acts.len(), 2);
        assert_eq!(acts[1].mode, RowMode::HighPerformance);
        // Relocation stalled the queues for the charged cycles.
        assert!(mc.stats().relocation_stall_cycles >= 50);
    }

    #[test]
    fn telemetry_counts_column_accesses_and_drains() {
        let mut cfg = MemConfig::paper_tiny();
        cfg.refresh_enabled = false;
        let mut mc = MemoryController::new(cfg);
        mc.enable_row_telemetry();
        mc.try_enqueue(read(1, 0x0, 0)).unwrap();
        mc.try_enqueue(read(2, 0x40, 0)).unwrap();
        mc.try_enqueue(write(3, 0x80, 0)).unwrap();
        let _ = run_until_done(&mut mc, 20_000);
        let telemetry = mc.drain_row_telemetry();
        let total: u64 = telemetry.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 3, "reads + writes that reached the device");
        // Drained: a second export is empty until new traffic arrives.
        assert!(mc.drain_row_telemetry().is_empty());
    }

    #[test]
    fn heterogeneous_refresh_issues_two_stream_kinds() {
        let mut cfg = MemConfig::tiny_clr(0.5);
        cfg.refresh_enabled = true;
        let mut mc = MemoryController::new(cfg);
        let mut done = Vec::new();
        for _ in 0..200_000 {
            mc.tick(&mut done);
        }
        assert!(mc.stats().refs_max_capacity > 0);
        assert!(mc.stats().refs_high_performance > 0);
    }
}
