//! Conversion of nanosecond timing parameters into integer DRAM-cycle
//! constraints, per CLR-DRAM operating mode.

use clr_core::mode::RowMode;
use clr_core::timing::{ClrTimings, InterfaceTimings, TimingParams};

/// Cell-array timing constraints of one operating mode, in DRAM cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModeCycles {
    /// ACT → RD/WR.
    pub rcd: u64,
    /// ACT → PRE.
    pub ras: u64,
    /// PRE → ACT.
    pub rp: u64,
    /// End of write data → PRE.
    pub wr: u64,
    /// Duration of a refresh command covering rows of this mode.
    pub rfc: u64,
}

impl ModeCycles {
    fn from_params(p: &TimingParams, i: &InterfaceTimings) -> Self {
        ModeCycles {
            rcd: i.ns_to_cycles(p.t_rcd_ns),
            ras: i.ns_to_cycles(p.t_ras_ns),
            rp: i.ns_to_cycles(p.t_rp_ns),
            wr: i.ns_to_cycles(p.t_wr_ns),
            rfc: i.ns_to_cycles(p.t_rfc_ns),
        }
    }

    /// Row cycle time in cycles.
    pub fn rc(&self) -> u64 {
        self.ras + self.rp
    }
}

/// All cycle-granularity constraints the timing engine needs: the two
/// per-mode analog sets plus the shared DDR4 interface constraints.
#[derive(Debug, Clone, PartialEq)]
pub struct CycleTimings {
    /// Analog timings for max-capacity rows.
    pub max_capacity: ModeCycles,
    /// Analog timings for high-performance rows (early termination applied,
    /// adjusted for the configured refresh window).
    pub high_performance: ModeCycles,
    /// CAS (read) latency.
    pub cl: u64,
    /// CAS write latency.
    pub cwl: u64,
    /// Data-bus cycles per burst (BL/2).
    pub burst: u64,
    /// Column-to-column, different bank group.
    pub ccd_s: u64,
    /// Column-to-column, same bank group.
    pub ccd_l: u64,
    /// ACT-to-ACT, different bank group.
    pub rrd_s: u64,
    /// ACT-to-ACT, same bank group.
    pub rrd_l: u64,
    /// Four-activate window.
    pub faw: u64,
    /// Write-to-read turnaround, different bank group (after write data).
    pub wtr_s: u64,
    /// Write-to-read turnaround, same bank group (after write data).
    pub wtr_l: u64,
    /// Read-to-precharge.
    pub rtp: u64,
    /// Read-to-write turnaround on the shared data bus:
    /// `CL − CWL + burst + 2`.
    pub rtw: u64,
    /// DRAM clock period in nanoseconds (for reporting).
    pub t_ck_ns: f64,
}

impl CycleTimings {
    /// Builds the engine constraint set for a CLR configuration.
    ///
    /// `hp_params` should be the high-performance timing set adjusted for
    /// the chosen refresh window (see
    /// [`ClrTimings::high_performance_at_refw`]); pass
    /// `timings.for_mode(RowMode::HighPerformance)` for the base 64 ms
    /// window.
    pub fn new(timings: &ClrTimings, hp_params: &TimingParams, iface: &InterfaceTimings) -> Self {
        let mc = ModeCycles::from_params(timings.for_mode(RowMode::MaxCapacity), iface);
        let hp = ModeCycles::from_params(hp_params, iface);
        CycleTimings {
            max_capacity: mc,
            high_performance: hp,
            cl: iface.cl as u64,
            cwl: iface.cwl as u64,
            burst: iface.burst_cycles() as u64,
            ccd_s: iface.t_ccd_s as u64,
            ccd_l: iface.t_ccd_l as u64,
            rrd_s: iface.t_rrd_s as u64,
            rrd_l: iface.t_rrd_l as u64,
            faw: iface.t_faw as u64,
            wtr_s: iface.t_wtr_s as u64,
            wtr_l: iface.t_wtr_l as u64,
            rtp: iface.t_rtp as u64,
            rtw: (iface.cl as u64).saturating_sub(iface.cwl as u64)
                + iface.burst_cycles() as u64
                + 2,
            t_ck_ns: iface.t_ck_ns,
        }
    }

    /// Constraint set for the *unmodified DDR4 baseline* (no CLR
    /// transistors): both "modes" use the baseline analog timings, so the
    /// mode table becomes irrelevant.
    pub fn baseline(timings: &ClrTimings, iface: &InterfaceTimings) -> Self {
        let base = ModeCycles::from_params(timings.baseline(), iface);
        let mut ct = Self::new(timings, timings.for_mode(RowMode::HighPerformance), iface);
        ct.max_capacity = base;
        ct.high_performance = base;
        ct
    }

    /// Analog timings for a row of the given mode.
    pub fn for_mode(&self, mode: RowMode) -> &ModeCycles {
        match mode {
            RowMode::MaxCapacity => &self.max_capacity,
            RowMode::HighPerformance => &self.high_performance,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hp_cycles_are_much_shorter() {
        let t = ClrTimings::from_circuit_defaults();
        let i = InterfaceTimings::ddr4_2400();
        let ct = CycleTimings::new(&t, t.for_mode(RowMode::HighPerformance), &i);
        assert!(ct.high_performance.rcd < ct.max_capacity.rcd / 2 + 1);
        assert!(ct.high_performance.ras < ct.max_capacity.ras / 2 + 1);
        assert!(ct.high_performance.rfc < ct.max_capacity.rfc / 2 + 1);
        // tRP is reduced for both modes relative to baseline DDR4.
        let base = CycleTimings::baseline(&t, &i);
        assert!(ct.max_capacity.rp < base.max_capacity.rp);
        assert_eq!(ct.max_capacity.rp, ct.high_performance.rp);
    }

    #[test]
    fn baseline_modes_are_identical() {
        let t = ClrTimings::from_circuit_defaults();
        let i = InterfaceTimings::ddr4_2400();
        let ct = CycleTimings::baseline(&t, &i);
        assert_eq!(ct.max_capacity, ct.high_performance);
        // DDR4-2400: tRCD 13.8 ns / 0.833 ns ≈ 17 cycles.
        assert_eq!(ct.max_capacity.rcd, 17);
    }

    #[test]
    fn rtw_accounts_for_cas_difference() {
        let t = ClrTimings::from_circuit_defaults();
        let i = InterfaceTimings::ddr4_2400();
        let ct = CycleTimings::new(&t, t.for_mode(RowMode::HighPerformance), &i);
        assert_eq!(ct.rtw, 16 - 12 + 4 + 2);
    }

    #[test]
    fn rc_is_ras_plus_rp() {
        let t = ClrTimings::from_circuit_defaults();
        let i = InterfaceTimings::ddr4_2400();
        let ct = CycleTimings::new(&t, t.for_mode(RowMode::HighPerformance), &i);
        assert_eq!(
            ct.max_capacity.rc(),
            ct.max_capacity.ras + ct.max_capacity.rp
        );
    }
}
