//! The DDR4 timing-constraint engine.
//!
//! Ramulator encodes inter-command constraints as static per-command
//! timing tables. CLR-DRAM needs *per-row* analog timings, so this engine
//! instead keeps explicit "earliest issue cycle" registers at bank, bank
//! group, rank, and channel scope, updated as commands issue with the
//! timing set of the target row's operating mode. The covered constraints
//! are the full single-rank DDR4 set used by the paper's configuration:
//!
//! | constraint | scope |
//! |---|---|
//! | tRCD, tRAS, tRP, tRC, tRTP, write recovery (tWR), refresh (tRFC) | bank |
//! | tCCD_L, tWTR_L | bank group |
//! | tRRD_S/L, tFAW, tWTR_S, REF blocking | rank |
//! | tCCD_S, read↔write bus turnaround | channel |

use clr_core::mode::RowMode;

use crate::command::Command;
use crate::cycletimings::CycleTimings;

/// Coordinates a command targets, pre-flattened for indexing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Target {
    /// Flat bank index (unique across the whole system).
    pub bank: usize,
    /// Flat bank-group index.
    pub bank_group: usize,
    /// Flat rank index.
    pub rank: usize,
    /// Channel index.
    pub channel: usize,
    /// Operating mode of the targeted row.
    pub mode: RowMode,
}

/// Earliest-issue-time registers for every command scope.
#[derive(Debug, Clone)]
pub struct TimingEngine {
    timings: CycleTimings,
    banks_per_group_total: Vec<usize>, // flat bank -> flat bank group
    bank_to_rank: Vec<usize>,          // flat bank -> flat rank
    /// earliest[bank][command]
    bank_earliest: Vec<[u64; Command::COUNT]>,
    /// earliest[rank][command]
    rank_earliest: Vec<[u64; Command::COUNT]>,
    /// tCCD_L / tWTR_L anchors per flat bank group.
    bg_col_earliest: Vec<u64>,
    bg_rd_earliest: Vec<u64>,
    /// tCCD_S anchor per channel (any column command).
    chan_col_earliest: Vec<u64>,
    /// Read→write turnaround anchor per channel.
    chan_wr_earliest: Vec<u64>,
    /// Sliding window of the last 4 ACT cycles per rank (tFAW).
    faw_window: Vec<Vec<u64>>,
}

impl TimingEngine {
    /// Creates an engine for `banks` flat banks distributed over
    /// `bank_groups` flat bank groups, `ranks` flat ranks and `channels`
    /// channels; `flat_map(bank) = (bank_group, rank, channel)` must be
    /// provided via the layout closure.
    pub fn new(
        timings: CycleTimings,
        banks: usize,
        bank_groups: usize,
        ranks: usize,
        channels: usize,
        layout: impl Fn(usize) -> (usize, usize),
    ) -> Self {
        let mut banks_per_group_total = vec![0; banks];
        let mut bank_to_rank = vec![0; banks];
        for b in 0..banks {
            let (bg, r) = layout(b);
            banks_per_group_total[b] = bg;
            bank_to_rank[b] = r;
        }
        TimingEngine {
            timings,
            banks_per_group_total,
            bank_to_rank,
            bank_earliest: vec![[0; Command::COUNT]; banks],
            rank_earliest: vec![[0; Command::COUNT]; ranks],
            bg_col_earliest: vec![0; bank_groups],
            bg_rd_earliest: vec![0; bank_groups],
            chan_col_earliest: vec![0; channels],
            chan_wr_earliest: vec![0; channels],
            faw_window: vec![Vec::new(); ranks],
        }
    }

    /// The constraint set driving this engine.
    pub fn timings(&self) -> &CycleTimings {
        &self.timings
    }

    /// Earliest cycle at which `cmd` may issue to `target`.
    pub fn earliest(&self, cmd: Command, target: Target) -> u64 {
        let b = target.bank;
        let r = target.rank;
        let g = target.bank_group;
        let c = target.channel;
        let mut t = self.bank_earliest[b][cmd.index()].max(self.rank_earliest[r][cmd.index()]);
        match cmd {
            Command::Rd => {
                t = t
                    .max(self.chan_col_earliest[c])
                    .max(self.bg_col_earliest[g])
                    .max(self.bg_rd_earliest[g]);
            }
            Command::Wr => {
                t = t
                    .max(self.chan_col_earliest[c])
                    .max(self.bg_col_earliest[g])
                    .max(self.chan_wr_earliest[c]);
            }
            _ => {}
        }
        t
    }

    /// Whether `cmd` may issue to `target` at cycle `now`.
    pub fn can_issue(&self, cmd: Command, target: Target, now: u64) -> bool {
        self.earliest(cmd, target) <= now
    }

    /// The rank-scope component of [`TimingEngine::earliest`] for `cmd`
    /// on `rank` — a lower bound shared by every bank of the rank
    /// (tRRD/tFAW shadows, refresh tRFC, write-to-read turnaround). The
    /// rank-split scheduler uses it to discharge a whole rank's hit
    /// lanes with one query while the rank is gated.
    pub fn rank_gate(&self, cmd: Command, rank: usize) -> u64 {
        self.rank_earliest[rank][cmd.index()]
    }

    /// The bank-scope component of [`TimingEngine::earliest`] for `cmd`
    /// on `bank`: the bank's own tRCD/tRP/tRAS/tRC window with no
    /// rank/bus serialization included. The blame layer compares it to
    /// the full bound to decide whether a wait is the bank's own timing
    /// (row conflict, bank busy) or cross-bank serialization.
    pub fn bank_gate(&self, cmd: Command, bank: usize) -> u64 {
        self.bank_earliest[bank][cmd.index()]
    }

    /// Records the issue of `cmd` at cycle `now` and updates every affected
    /// earliest-issue register.
    ///
    /// For [`Command::Ref`], `target.mode` selects the refresh stream's
    /// tRFC (max-capacity vs high-performance bundle).
    ///
    /// # Panics
    ///
    /// Panics if the command violates a timing constraint — the engine is
    /// the protocol auditor of the whole simulator.
    pub fn issue(&mut self, cmd: Command, target: Target, now: u64) {
        assert!(
            self.can_issue(cmd, target, now),
            "timing violation: {cmd} @ {now} < earliest {}",
            self.earliest(cmd, target)
        );
        let m = *self.timings.for_mode(target.mode);
        let ct = &self.timings;
        let b = target.bank;
        let r = target.rank;
        let g = target.bank_group;
        let c = target.channel;
        match cmd {
            Command::Act => {
                let be = &mut self.bank_earliest[b];
                be[Command::Rd.index()] = be[Command::Rd.index()].max(now + m.rcd);
                be[Command::Wr.index()] = be[Command::Wr.index()].max(now + m.rcd);
                be[Command::Pre.index()] = be[Command::Pre.index()].max(now + m.ras);
                be[Command::Act.index()] = be[Command::Act.index()].max(now + m.rc());
                // tRRD to sibling banks of the same rank.
                for b2 in 0..self.bank_earliest.len() {
                    if b2 == b || self.bank_to_rank[b2] != r {
                        continue;
                    }
                    let dist = if self.banks_per_group_total[b2] == g {
                        ct.rrd_l
                    } else {
                        ct.rrd_s
                    };
                    let e = &mut self.bank_earliest[b2][Command::Act.index()];
                    *e = (*e).max(now + dist);
                }
                // tFAW: rank-wide window of 4 activates.
                let w = &mut self.faw_window[r];
                w.push(now);
                if w.len() > 4 {
                    w.remove(0);
                }
                if w.len() == 4 {
                    let e = &mut self.rank_earliest[r][Command::Act.index()];
                    *e = (*e).max(w[0] + ct.faw);
                }
                // Refresh requires all banks idle; an open row must be
                // precharged first, so no direct ACT→REF register is
                // needed (the controller closes banks before REF).
            }
            Command::Pre => {
                let e = &mut self.bank_earliest[b][Command::Act.index()];
                *e = (*e).max(now + m.rp);
                let e = &mut self.rank_earliest[r][Command::Ref.index()];
                *e = (*e).max(now + m.rp);
            }
            Command::Rd => {
                self.chan_col_earliest[c] = self.chan_col_earliest[c].max(now + ct.ccd_s);
                self.bg_col_earliest[g] = self.bg_col_earliest[g].max(now + ct.ccd_l);
                self.chan_wr_earliest[c] = self.chan_wr_earliest[c].max(now + ct.rtw);
                let e = &mut self.bank_earliest[b][Command::Pre.index()];
                *e = (*e).max(now + ct.rtp);
            }
            Command::Wr => {
                self.chan_col_earliest[c] = self.chan_col_earliest[c].max(now + ct.ccd_s);
                self.bg_col_earliest[g] = self.bg_col_earliest[g].max(now + ct.ccd_l);
                // Write-to-read turnarounds count from the end of data.
                let data_end = now + ct.cwl + ct.burst;
                let e = &mut self.rank_earliest[r][Command::Rd.index()];
                *e = (*e).max(data_end + ct.wtr_s);
                self.bg_rd_earliest[g] = self.bg_rd_earliest[g].max(data_end + ct.wtr_l);
                // Write recovery before precharge.
                let e = &mut self.bank_earliest[b][Command::Pre.index()];
                *e = (*e).max(data_end + m.wr);
            }
            Command::Ref => {
                let rfc = m.rfc;
                let re = &mut self.rank_earliest[r];
                re[Command::Act.index()] = re[Command::Act.index()].max(now + rfc);
                re[Command::Ref.index()] = re[Command::Ref.index()].max(now + rfc);
            }
        }
    }

    /// Cycle at which read data for an RD issued at `now` has fully
    /// arrived.
    pub fn read_done(&self, now: u64) -> u64 {
        now + self.timings.cl + self.timings.burst
    }

    /// Cycle at which write data for a WR issued at `now` has been fully
    /// transferred.
    pub fn write_done(&self, now: u64) -> u64 {
        now + self.timings.cwl + self.timings.burst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clr_core::timing::{ClrTimings, InterfaceTimings};

    fn engine() -> TimingEngine {
        let t = ClrTimings::from_circuit_defaults();
        let i = InterfaceTimings::ddr4_2400();
        let ct = CycleTimings::new(&t, t.for_mode(RowMode::HighPerformance), &i);
        // 2 bank groups × 2 banks, 1 rank, 1 channel.
        TimingEngine::new(ct, 4, 2, 1, 1, |b| (b / 2, 0))
    }

    fn tgt(bank: usize, mode: RowMode) -> Target {
        Target {
            bank,
            bank_group: bank / 2,
            rank: 0,
            channel: 0,
            mode,
        }
    }

    #[test]
    fn act_to_read_respects_trcd_per_mode() {
        let mut e = engine();
        let mc = tgt(0, RowMode::MaxCapacity);
        e.issue(Command::Act, mc, 0);
        let rcd_mc = e.timings().max_capacity.rcd;
        assert_eq!(e.earliest(Command::Rd, mc), rcd_mc);

        let hp = tgt(2, RowMode::HighPerformance);
        e.issue(Command::Act, hp, 100);
        let rcd_hp = e.timings().high_performance.rcd;
        assert_eq!(e.earliest(Command::Rd, hp), 100 + rcd_hp);
        assert!(rcd_hp < rcd_mc);
    }

    #[test]
    fn ras_and_rp_gate_the_row_cycle() {
        let mut e = engine();
        let t = tgt(0, RowMode::MaxCapacity);
        e.issue(Command::Act, t, 0);
        let ras = e.timings().max_capacity.ras;
        let rp = e.timings().max_capacity.rp;
        assert_eq!(e.earliest(Command::Pre, t), ras);
        e.issue(Command::Pre, t, ras);
        assert_eq!(e.earliest(Command::Act, t), ras + rp);
    }

    #[test]
    #[should_panic(expected = "timing violation")]
    fn early_read_panics() {
        let mut e = engine();
        let t = tgt(0, RowMode::MaxCapacity);
        e.issue(Command::Act, t, 0);
        e.issue(Command::Rd, t, 1);
    }

    #[test]
    fn rrd_separates_activates_by_bank_group() {
        let mut e = engine();
        e.issue(Command::Act, tgt(0, RowMode::MaxCapacity), 0);
        // Same bank group (bank 1): tRRD_L; different group (bank 2): tRRD_S.
        assert_eq!(
            e.earliest(Command::Act, tgt(1, RowMode::MaxCapacity)),
            e.timings().rrd_l
        );
        assert_eq!(
            e.earliest(Command::Act, tgt(2, RowMode::MaxCapacity)),
            e.timings().rrd_s
        );
    }

    #[test]
    fn faw_blocks_fifth_activate() {
        let mut e = engine();
        let mut now = 0;
        for b in 0..4 {
            let t = tgt(b, RowMode::MaxCapacity);
            now = now.max(e.earliest(Command::Act, t));
            e.issue(Command::Act, t, now);
        }
        // Reopening bank 0 needs tRC anyway; but the rank-level FAW anchor
        // must also be set from the first ACT.
        let first_act = 0;
        let t0 = tgt(0, RowMode::MaxCapacity);
        assert!(e.earliest(Command::Act, t0) >= first_act + e.timings().faw);
    }

    #[test]
    fn write_recovery_uses_mode_twr() {
        let mut e = engine();
        let hp = tgt(0, RowMode::HighPerformance);
        e.issue(Command::Act, hp, 0);
        let rcd = e.timings().high_performance.rcd;
        e.issue(Command::Wr, hp, rcd);
        let ct = e.timings();
        let data_end = rcd + ct.cwl + ct.burst;
        let expect = data_end + ct.high_performance.wr;
        // PRE is gated by max(tRAS, write recovery).
        assert_eq!(
            e.earliest(Command::Pre, hp),
            expect.max(ct.high_performance.ras)
        );
    }

    #[test]
    fn write_to_read_turnaround() {
        let mut e = engine();
        let a = tgt(0, RowMode::MaxCapacity);
        let b = tgt(2, RowMode::MaxCapacity);
        e.issue(Command::Act, a, 0);
        e.issue(Command::Act, b, e.earliest(Command::Act, b));
        let wr_at = e.earliest(Command::Wr, a);
        e.issue(Command::Wr, a, wr_at);
        let ct = e.timings();
        let data_end = wr_at + ct.cwl + ct.burst;
        // Read in a *different* bank group waits tWTR_S; same group tWTR_L.
        assert!(e.earliest(Command::Rd, b) >= data_end + ct.wtr_s);
        let sibling = tgt(1, RowMode::MaxCapacity);
        assert!(e.earliest(Command::Rd, sibling) >= data_end + ct.wtr_l);
    }

    #[test]
    fn refresh_blocks_rank_for_stream_rfc() {
        let mut e = engine();
        let hp = tgt(0, RowMode::HighPerformance);
        let mc = tgt(0, RowMode::MaxCapacity);
        e.issue(Command::Ref, hp, 0);
        let rfc_hp = e.timings().high_performance.rfc;
        assert_eq!(e.earliest(Command::Act, mc), rfc_hp);
        // A max-capacity refresh afterwards blocks for the full tRFC.
        e.issue(Command::Ref, mc, rfc_hp);
        assert_eq!(
            e.earliest(Command::Act, mc),
            rfc_hp + e.timings().max_capacity.rfc
        );
        assert!(e.timings().high_performance.rfc < e.timings().max_capacity.rfc);
    }

    #[test]
    fn ccd_constraints_by_bank_group() {
        let mut e = engine();
        let a = tgt(0, RowMode::MaxCapacity);
        let sib = tgt(1, RowMode::MaxCapacity);
        let other = tgt(2, RowMode::MaxCapacity);
        e.issue(Command::Act, a, 0);
        e.issue(Command::Act, other, e.earliest(Command::Act, other));
        e.issue(Command::Act, sib, e.earliest(Command::Act, sib));
        let rd_at = e.earliest(Command::Rd, a);
        e.issue(Command::Rd, a, rd_at);
        assert!(e.earliest(Command::Rd, other) >= rd_at + e.timings().ccd_s);
        assert!(e.earliest(Command::Rd, sib) >= rd_at + e.timings().ccd_l);
    }

    #[test]
    fn rank_constraints_do_not_cross_ranks() {
        // Two ranks of 2 bank groups x 2 banks: tRRD and tFAW are
        // per-rank; an ACT in rank 0 must not delay rank 1.
        let t = ClrTimings::from_circuit_defaults();
        let i = InterfaceTimings::ddr4_2400();
        let ct = CycleTimings::new(&t, t.for_mode(RowMode::HighPerformance), &i);
        let mut e = TimingEngine::new(ct, 8, 4, 2, 1, |b| (b / 2, b / 4));
        let r0 = Target {
            bank: 0,
            bank_group: 0,
            rank: 0,
            channel: 0,
            mode: RowMode::MaxCapacity,
        };
        let r1 = Target {
            bank: 4,
            bank_group: 2,
            rank: 1,
            channel: 0,
            mode: RowMode::MaxCapacity,
        };
        e.issue(Command::Act, r0, 0);
        assert_eq!(
            e.earliest(Command::Act, r1),
            0,
            "cross-rank ACT must not be delayed by tRRD"
        );
        // Fill rank 0's FAW window; rank 1 stays unconstrained.
        let mut now = 1;
        for b in 1..4 {
            let t0 = Target {
                bank: b,
                bank_group: b / 2,
                rank: 0,
                channel: 0,
                mode: RowMode::MaxCapacity,
            };
            now = now.max(e.earliest(Command::Act, t0));
            e.issue(Command::Act, t0, now);
            now += 1;
        }
        assert_eq!(e.earliest(Command::Act, r1), 0, "tFAW is per rank");
    }

    #[test]
    fn read_done_includes_cas_and_burst() {
        let e = engine();
        assert_eq!(e.read_done(100), 100 + e.timings().cl + e.timings().burst);
    }
}
