//! Persistent worker pool for the channel walk and fleet batching.
//!
//! [`Executor`] replaces the per-window `std::thread::scope` fan-out the
//! sharded walk used to pay (spawning a scoped worker costs tens of µs —
//! more than walking thousands of dead cycles): workers are spawned
//! **once**, park on a condvar, and wake to a queue push, so fanning a
//! window out costs a lock + notify instead of a thread spawn. The same
//! pool batches *whole-instance* jobs between simulations — the
//! `clr-fleet` crate runs hundreds of independent `MemorySystem`
//! instances through one shared executor.
//!
//! Design constraints, in order:
//!
//! * **Determinism** — [`Executor::run_batch`] returns results in task
//!   order (each job writes its own slot, indexed by submission order),
//!   so callers observe identical output whatever the interleaving of
//!   workers. Thread count and pool sharing are host-speed knobs only.
//! * **No unsafe, no new deps** — jobs own their data (`'static`), so
//!   the pool needs no scoped lifetimes: the channel walk *moves* each
//!   [`MemoryController`](crate::controller::MemoryController) into its
//!   job and back out through the result slot.
//! * **The submitter helps** — the calling thread executes queued jobs
//!   while it waits, so a pool of `lanes` runs `lanes` jobs concurrently
//!   with only `lanes - 1` parked workers, and a 1-lane executor
//!   degenerates to exact inline serial execution (no threads at all).
//! * **Panics propagate** — a panicking job (e.g. a timing-protocol
//!   violation, which panics by design) is caught on the worker, carried
//!   through its result slot, and re-raised on the submitting thread,
//!   matching `std::thread::scope` semantics instead of deadlocking the
//!   batch.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A queued unit of work: runs once on whichever lane pops it.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Injector state shared by the submitter and every worker.
struct State {
    queue: VecDeque<Job>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Signaled on queue push and on shutdown.
    work: Condvar,
}

/// One batch's result collector: slot per task (submission order) plus a
/// completion latch the submitter waits on.
struct Batch<T> {
    state: Mutex<BatchState<T>>,
    done: Condvar,
}

struct BatchState<T> {
    slots: Vec<Option<std::thread::Result<T>>>,
    remaining: usize,
}

impl<T> Batch<T> {
    fn fill(&self, index: usize, value: std::thread::Result<T>) {
        let mut st = self.state.lock().expect("batch lock poisoned");
        debug_assert!(st.slots[index].is_none(), "slot filled twice");
        st.slots[index] = Some(value);
        st.remaining -= 1;
        if st.remaining == 0 {
            self.done.notify_all();
        }
    }
}

/// A persistent pool of parked worker threads executing batched jobs
/// deterministically (see the module docs).
pub struct Executor {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    lanes: usize,
}

impl std::fmt::Debug for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor")
            .field("lanes", &self.lanes)
            .finish_non_exhaustive()
    }
}

impl Executor {
    /// A pool running up to `lanes` jobs concurrently: `lanes - 1`
    /// parked worker threads plus the submitting thread, which helps
    /// drain the queue inside [`Executor::run_batch`]. `lanes` is
    /// clamped to ≥ 1; a 1-lane executor spawns no threads and runs
    /// every batch inline.
    pub fn new(lanes: usize) -> Self {
        let lanes = lanes.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            work: Condvar::new(),
        });
        let workers = (1..lanes)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Executor {
            shared,
            workers,
            lanes,
        }
    }

    /// Concurrent job lanes (worker threads + the helping submitter).
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Runs every task on the pool and returns their results **in task
    /// order**, whatever order lanes finished in. Blocks until the whole
    /// batch is done; the calling thread executes queued jobs while it
    /// waits. If any task panicked, the panic is re-raised here after
    /// the rest of the batch completes.
    pub fn run_batch<T, F>(&self, tasks: Vec<F>) -> Vec<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let n = tasks.len();
        if self.lanes == 1 || n <= 1 {
            // Inline serial execution: nothing to coordinate.
            return tasks.into_iter().map(|t| t()).collect();
        }
        let batch = Arc::new(Batch {
            state: Mutex::new(BatchState {
                slots: (0..n).map(|_| None).collect(),
                remaining: n,
            }),
            done: Condvar::new(),
        });
        {
            let mut st = self.shared.state.lock().expect("executor lock poisoned");
            for (i, task) in tasks.into_iter().enumerate() {
                let batch = Arc::clone(&batch);
                st.queue.push_back(Box::new(move || {
                    batch.fill(i, catch_unwind(AssertUnwindSafe(task)));
                }));
            }
        }
        self.shared.work.notify_all();
        // Help: drain queued jobs (this batch's, or — with a shared pool
        // — any other batch's) until the queue is empty.
        loop {
            let job = {
                let mut st = self.shared.state.lock().expect("executor lock poisoned");
                st.queue.pop_front()
            };
            match job {
                Some(job) => job(),
                None => break,
            }
        }
        // Wait for stragglers still running on workers.
        let mut st = batch.state.lock().expect("batch lock poisoned");
        while st.remaining > 0 {
            st = batch.done.wait(st).expect("batch lock poisoned");
        }
        st.slots
            .iter_mut()
            .map(|slot| slot.take().expect("every batch slot filled exactly once"))
            .collect::<Vec<_>>()
            .into_iter()
            .map(|r| match r {
                Ok(v) => v,
                Err(payload) => resume_unwind(payload),
            })
            .collect()
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("executor lock poisoned");
            st.shutdown = true;
        }
        self.shared.work.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    let mut st = shared.state.lock().expect("executor lock poisoned");
    loop {
        if let Some(job) = st.queue.pop_front() {
            drop(st);
            job();
            st = shared.state.lock().expect("executor lock poisoned");
            continue;
        }
        if st.shutdown {
            return;
        }
        st = shared.work.wait(st).expect("executor lock poisoned");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_task_order() {
        let pool = Executor::new(4);
        for round in 0..3u64 {
            // Reverse workloads so late tasks finish first if execution
            // order leaked into result order.
            let tasks: Vec<_> = (0..16u64)
                .map(|i| {
                    move || {
                        let mut acc = round;
                        for k in 0..(16 - i) * 1000 {
                            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
                        }
                        (i, acc)
                    }
                })
                .collect();
            let out = pool.run_batch(tasks);
            assert_eq!(out.len(), 16);
            for (idx, (i, _)) in out.iter().enumerate() {
                assert_eq!(*i, idx as u64);
            }
        }
    }

    #[test]
    fn one_lane_runs_inline_and_matches_pool() {
        let serial = Executor::new(1);
        let pool = Executor::new(3);
        let mk = || (0..8u64).map(|i| move || i * i).collect::<Vec<_>>();
        assert_eq!(serial.run_batch(mk()), pool.run_batch(mk()));
        assert!(serial.workers.is_empty());
    }

    #[test]
    fn pool_is_reused_across_batches() {
        static RAN: AtomicUsize = AtomicUsize::new(0);
        let pool = Executor::new(2);
        for _ in 0..50 {
            let tasks: Vec<_> = (0..4)
                .map(|_| {
                    || {
                        RAN.fetch_add(1, Ordering::Relaxed);
                    }
                })
                .collect();
            pool.run_batch(tasks);
        }
        assert_eq!(RAN.load(Ordering::Relaxed), 200);
        assert_eq!(pool.workers.len(), 1);
    }

    #[test]
    #[should_panic(expected = "job panicked on purpose")]
    fn job_panics_propagate_to_the_submitter() {
        let pool = Executor::new(2);
        let tasks: Vec<Box<dyn FnOnce() -> u64 + Send>> = vec![
            Box::new(|| 1),
            Box::new(|| panic!("job panicked on purpose")),
            Box::new(|| 3),
        ];
        pool.run_batch(tasks);
    }

    #[test]
    fn lanes_clamp_to_one() {
        let pool = Executor::new(0);
        assert_eq!(pool.lanes(), 1);
        assert_eq!(pool.run_batch(vec![|| 7u32]), vec![7]);
    }
}
