//! The capacity directory: free-frame tracking, destination placement,
//! and cross-channel frame rebalancing.
//!
//! A coupling displaces half a row of data into an OS-allocated
//! max-capacity *destination frame*. Where that frame lives is a
//! placement decision with real performance consequences:
//!
//! * **same bank** ([`DestinationPicker::SameBank`], the legacy model) —
//!   the read-out and write-back phases serialize on one bank's row
//!   buffer, and the write-back ACT additionally waits for a write-drain
//!   episode;
//! * **cross bank** ([`DestinationPicker::CrossBank`]) — the destination
//!   frame sits in a *different* bank of the same channel, so the
//!   write-back's ACT/tRCD window hides under the read-out's burst train
//!   and the write bursts chase the read bursts with no inter-phase gap
//!   (TL-DRAM's inter-subarray-copy insight applied at bank granularity);
//! * **cross channel** ([`DestinationPicker::CrossChannel`]) — couplings
//!   still place cross-bank, and additionally a system-level rebalancer
//!   moves whole *frames* between channels at epoch boundaries: hot rows
//!   that overflow a saturated channel's fast-row budget are evacuated
//!   into free frames of an underloaded channel (and remapped, see
//!   [`crate::system::RemapTable`]), so both capacity and bus load follow
//!   demand instead of only the budget fraction
//!   ([`clr_policy`-side budget rebalancing]).
//!
//! [`FrameDirectory`] is the bookkeeping half: per-bank sets of
//! explicitly *freed* frames (rows whose contents were evacuated
//! elsewhere) that destination pickers consume first, plus counters the
//! rebalancer and the sweep report read. [`CapacityRebalancer`] is the
//! decision half: a pure, deterministic planner that turns per-channel
//! demand telemetry into "move K frames from channel A to channel B"
//! plans.
//!
//! [`clr_policy`-side budget rebalancing]: DestinationPicker::CrossChannel

use std::collections::BTreeSet;

/// Where a coupling's displaced half-row is written back — the pluggable
/// placement policy of the migration engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DestinationPicker {
    /// Legacy placement: a max-capacity row of the *same bank* as the
    /// coupled row. Read-out and write-back serialize on the bank.
    #[default]
    SameBank,
    /// A max-capacity row of a *different bank* of the same channel: the
    /// job's two phases issue into two banks and overlap.
    CrossBank,
    /// Cross-bank couplings plus the system-level frame rebalancer:
    /// whole frames move between channels at epoch boundaries, remapped
    /// through the [`RemapTable`](crate::system::RemapTable).
    CrossChannel,
}

impl DestinationPicker {
    /// Whether couplings may place their destination frame in another
    /// bank.
    pub fn is_cross_bank(&self) -> bool {
        !matches!(self, DestinationPicker::SameBank)
    }

    /// Whether the system-level cross-channel frame rebalancer is
    /// enabled.
    pub fn is_cross_channel(&self) -> bool {
        matches!(self, DestinationPicker::CrossChannel)
    }

    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            DestinationPicker::SameBank => "same-bank",
            DestinationPicker::CrossBank => "cross-bank",
            DestinationPicker::CrossChannel => "cross-channel",
        }
    }
}

/// Per-bank directory of allocatable destination frames.
///
/// The simulator's OS abstraction treats any max-capacity row without a
/// pending migration role as allocatable (the legacy scan); the
/// directory refines that with rows *known free* — frames whose contents
/// were evacuated to another bank or channel. Pickers consume known-free
/// frames first, so evacuations actually create usable local headroom
/// instead of being pure accounting.
///
/// Sets are [`BTreeSet`]s so allocation order is deterministic.
#[derive(Debug, Clone)]
pub struct FrameDirectory {
    /// Explicitly freed frames per flat bank.
    freed: Vec<BTreeSet<u32>>,
    /// Frames freed over the directory's lifetime.
    freed_total: u64,
    /// Frames handed out over the directory's lifetime.
    consumed_total: u64,
}

impl FrameDirectory {
    /// An empty directory for `banks` banks.
    pub fn new(banks: usize) -> Self {
        FrameDirectory {
            freed: vec![BTreeSet::new(); banks],
            freed_total: 0,
            consumed_total: 0,
        }
    }

    /// Number of banks tracked.
    pub fn banks(&self) -> usize {
        self.freed.len()
    }

    /// Marks `(bank, row)` as a known-free frame (its contents moved
    /// elsewhere).
    pub fn free(&mut self, bank: usize, row: u32) {
        if self.freed[bank].insert(row) {
            self.freed_total += 1;
        }
    }

    /// Whether `(bank, row)` is a known-free frame.
    pub fn is_free(&self, bank: usize, row: u32) -> bool {
        self.freed[bank].contains(&row)
    }

    /// The lowest known-free frame in `bank` passing `usable`, removed
    /// from the directory.
    pub fn take_in_bank(
        &mut self,
        bank: usize,
        mut usable: impl FnMut(u32) -> bool,
    ) -> Option<u32> {
        let row = self.freed[bank].iter().copied().find(|&r| usable(r))?;
        self.freed[bank].remove(&row);
        self.consumed_total += 1;
        Some(row)
    }

    /// The lowest known-free frame in `bank` passing `usable`, *left in
    /// the directory* — for reservations that may still be aborted (the
    /// reservation itself keeps pickers away; the frame is consumed only
    /// when data actually lands in it).
    pub fn peek_in_bank(&self, bank: usize, mut usable: impl FnMut(u32) -> bool) -> Option<u32> {
        self.freed[bank].iter().copied().find(|&r| usable(r))
    }

    /// Removes `(bank, row)` from the free set if present (a picker or
    /// reservation chose it through another path).
    pub fn take_exact(&mut self, bank: usize, row: u32) -> bool {
        let hit = self.freed[bank].remove(&row);
        if hit {
            self.consumed_total += 1;
        }
        hit
    }

    /// Known-free frames currently available in `bank`.
    pub fn free_in_bank(&self, bank: usize) -> usize {
        self.freed[bank].len()
    }

    /// Known-free frames currently available across all banks.
    pub fn free_frames(&self) -> usize {
        self.freed.iter().map(|s| s.len()).sum()
    }

    /// Frames freed over the directory's lifetime.
    pub fn freed_total(&self) -> u64 {
        self.freed_total
    }

    /// Frames consumed over the directory's lifetime.
    pub fn consumed_total(&self) -> u64 {
        self.consumed_total
    }
}

/// Tuning of the cross-channel frame rebalancer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RebalanceConfig {
    /// Minimum ratio of the hottest channel's demand to the coldest
    /// channel's before any frames move (hysteresis against churn).
    pub imbalance_ratio: f64,
    /// Maximum frame moves planned per epoch — each move is a whole-row
    /// evacuation plus a whole-row fill of real DRAM traffic, so the cap
    /// bounds the migration bandwidth the rebalancer can consume.
    pub moves_per_epoch: usize,
    /// Minimum accesses the hottest channel must have served this epoch;
    /// below it the imbalance signal is noise.
    pub min_demand: u64,
    /// Minimum accesses a victim row must have served this epoch to be
    /// worth a whole-row move — rows below it shift too little load to
    /// repay the evacuate + fill traffic.
    pub min_row_heat: u64,
    /// Maximum staged moves outstanding at once: scheduling past the
    /// migration engine's drain rate only accumulates reservations (and
    /// stale victim picks) in a queue, so the planner backs off until
    /// the staged work lands.
    pub max_in_flight: usize,
}

impl Default for RebalanceConfig {
    fn default() -> Self {
        RebalanceConfig {
            imbalance_ratio: 1.25,
            moves_per_epoch: 8,
            min_demand: 64,
            min_row_heat: 4,
            max_in_flight: 16,
        }
    }
}

/// One epoch's rebalancing decision: move up to `moves` frames' worth of
/// hot data *out of* channel `from` into free frames of channel `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RebalancePlan {
    /// The overloaded channel donating hot rows.
    pub from: usize,
    /// The underloaded channel receiving them.
    pub to: usize,
    /// Moves to schedule this epoch.
    pub moves: usize,
}

/// The system-level capacity rebalancer: a deterministic planner mapping
/// per-channel demand telemetry to frame moves.
///
/// The planner is pure — it owns no channel state — so the decision is
/// identical under per-cycle and skip-ahead walks (epoch boundaries fire
/// at the same cycle on every channel). The *driver*
/// ([`clr_sim::policyrun`]-style epoch loops, or a direct
/// [`MemorySystem`](crate::system::MemorySystem) user) selects concrete
/// victim rows and destination frames and dispatches the staged
/// evacuate/fill jobs.
///
/// [`clr_sim::policyrun`]: DestinationPicker::CrossChannel
#[derive(Debug, Clone, Copy, Default)]
pub struct CapacityRebalancer {
    cfg: RebalanceConfig,
}

impl CapacityRebalancer {
    /// A rebalancer with the given tuning.
    pub fn new(cfg: RebalanceConfig) -> Self {
        CapacityRebalancer { cfg }
    }

    /// The tuning in force.
    pub fn config(&self) -> &RebalanceConfig {
        &self.cfg
    }

    /// Plans this epoch's frame moves from per-channel demand (accesses
    /// served this epoch). `None` when demand is balanced, too small, or
    /// there is only one channel. Ties break toward the lower channel
    /// index, so the plan is deterministic.
    pub fn plan(&self, demand: &[u64]) -> Option<RebalancePlan> {
        if demand.len() < 2 || self.cfg.moves_per_epoch == 0 {
            return None;
        }
        let mut from = 0usize;
        let mut to = 0usize;
        for (c, &d) in demand.iter().enumerate() {
            if d > demand[from] {
                from = c;
            }
            if d < demand[to] {
                to = c;
            }
        }
        if from == to || demand[from] < self.cfg.min_demand {
            return None;
        }
        if (demand[from] as f64) < self.cfg.imbalance_ratio * (demand[to].max(1) as f64) {
            return None;
        }
        Some(RebalancePlan {
            from,
            to,
            moves: self.cfg.moves_per_epoch,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picker_predicates_and_labels() {
        assert_eq!(DestinationPicker::default(), DestinationPicker::SameBank);
        assert!(!DestinationPicker::SameBank.is_cross_bank());
        assert!(DestinationPicker::CrossBank.is_cross_bank());
        assert!(DestinationPicker::CrossChannel.is_cross_bank());
        assert!(DestinationPicker::CrossChannel.is_cross_channel());
        assert!(!DestinationPicker::CrossBank.is_cross_channel());
        assert_eq!(DestinationPicker::CrossChannel.label(), "cross-channel");
    }

    #[test]
    fn directory_allocates_deterministically() {
        let mut d = FrameDirectory::new(2);
        d.free(1, 9);
        d.free(1, 3);
        d.free(1, 3); // idempotent
        assert_eq!(d.free_frames(), 2);
        assert_eq!(d.freed_total(), 2);
        assert!(d.is_free(1, 9));
        // Lowest usable row first; the filter skips unusable candidates.
        assert_eq!(d.take_in_bank(1, |r| r != 3), Some(9));
        assert_eq!(d.take_in_bank(1, |_| true), Some(3));
        assert_eq!(d.take_in_bank(1, |_| true), None);
        assert_eq!(d.consumed_total(), 2);
        assert_eq!(d.free_in_bank(1), 0);
    }

    #[test]
    fn take_exact_claims_a_specific_frame() {
        let mut d = FrameDirectory::new(1);
        d.free(0, 7);
        assert!(d.take_exact(0, 7));
        assert!(!d.take_exact(0, 7));
        assert_eq!(d.free_frames(), 0);
    }

    #[test]
    fn rebalancer_plans_only_under_real_imbalance() {
        let rb = CapacityRebalancer::new(RebalanceConfig {
            imbalance_ratio: 1.5,
            moves_per_epoch: 4,
            min_demand: 100,
            ..RebalanceConfig::default()
        });
        // Balanced: no plan.
        assert_eq!(rb.plan(&[500, 480]), None);
        // Imbalanced but tiny: no plan.
        assert_eq!(rb.plan(&[90, 10]), None);
        // Real imbalance: hot channel exports to the cold one.
        assert_eq!(
            rb.plan(&[1000, 100]),
            Some(RebalancePlan {
                from: 0,
                to: 1,
                moves: 4
            })
        );
        assert_eq!(
            rb.plan(&[100, 50, 1000]),
            Some(RebalancePlan {
                from: 2,
                to: 1,
                moves: 4
            })
        );
        // One channel: nothing to rebalance.
        assert_eq!(rb.plan(&[1000]), None);
        // All-zero demand: from == to, no plan.
        assert_eq!(rb.plan(&[0, 0]), None);
    }
}
