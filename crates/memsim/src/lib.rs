//! Cycle-accurate DDR4 memory-system model with CLR-DRAM support.
//!
//! This crate is the reproduction's stand-in for the customized Ramulator
//! the paper used (§8.1): a DDR4 bank/bank-group/rank command state machine
//! with a full timing-constraint engine, an FR-FCFS-Cap memory controller
//! with a timeout-based row policy and write-drain watermarks, and all-bank
//! refresh — extended with **per-row CLR-DRAM operating modes** so that
//! every ACT/RD/WR/PRE/REF picks up the timing parameters of the target
//! row's mode, and refresh runs as up to two heterogeneous streams
//! (§3.6/§5.2).
//!
//! The model is trace-driven and data-less: requests carry addresses only.
//! Correctness is defined by the timing protocol, which is enforced by
//! [`engine::TimingEngine`] and audited in tests (issuing a command early
//! is a protocol violation and panics).
//!
//! # Event-driven skip-ahead
//!
//! [`controller::MemoryController::tick`] is the per-cycle reference
//! semantics; everything else is an acceleration of it:
//!
//! * the controller knows the exact cycle of its **next event**
//!   ([`controller::MemoryController::next_event_cycle`]) — the minimum
//!   over earliest timing-engine readiness across queued commands, the
//!   next refresh due time (or a pending refresh's next PRE/REF
//!   readiness), the next in-flight read completion, relocation-stall
//!   expiry, the next background-migration command (job starts, burst
//!   trains, rate-limiter windows — see [`migrate`]), and the next
//!   timeout-policy row close;
//! * [`controller::MemoryController::tick_until`] advances to a target
//!   cycle by jumping dead windows in O(1) and ticking event cycles
//!   normally, and
//!   [`controller::MemoryController::next_completion_bound`] lets a
//!   full-system driver co-jump its CPU domain, since read completions
//!   are the only DRAM→CPU signal.
//!
//! Skip-ahead engages only across windows the event bound proves dead, so
//! an accelerated run is **bit-identical** to the per-cycle reference:
//! same command log, same completion cycles, same statistics. The
//! workspace test `tests/skip_ahead_differential.rs` enforces exactly
//! that invariant (controller-level, full-system, and policy-epoch runs),
//! and the `sim_throughput` bench in `clr-bench` tracks the wall-clock
//! payoff.
//!
//! # Channel sharding
//!
//! [`system::MemorySystem`] scales the model past one channel: it owns
//! one independent [`controller::MemoryController`] per channel (each
//! with its own mode table, refresh streams, migration engine, and
//! scheduler lanes — no cross-channel locking), routes requests through
//! the address mapping's bijective channel split
//! ([`clr_core::addr::AddressMapping::route`]), and fuses the per-channel
//! exact event bounds (`next_event_cycle` = min over channels) so
//! whole-system skip-ahead stays bit-identical on multi-channel
//! configurations. A 1-channel `MemorySystem` reproduces the bare
//! controller bit for bit.
//!
//! # Capacity directory
//!
//! Where migrated data *lands* is a placement decision ([`frames`]):
//! the legacy same-bank picker serializes a coupling's read-out and
//! write-back on one row buffer; [`frames::DestinationPicker::CrossBank`]
//! places the destination frame in another bank so one job's two sides
//! issue into two banks concurrently; and
//! [`frames::DestinationPicker::CrossChannel`] adds a system-level
//! rebalancer ([`frames::CapacityRebalancer`]) that moves whole frames
//! between channels at epoch boundaries via staged evacuate-out /
//! fill-in jobs. Rows whose contents moved to another bank or channel
//! stay addressable through [`system::RemapTable`] — a row-granular
//! indirection applied after the channel route whose installs compose as
//! transpositions, keeping `remap ∘ route` a bijection with an exact
//! inverse (property-tested in `tests/remap_bijection.rs`). Every new
//! command source (two-bank overlap, data-gated write bursts, staged
//! fills) is priced into `next_event_cycle()`, so skip-ahead stays
//! bit-identical under every placement mode.
//!
//! The per-cycle path itself is kept cheap by per-bank aggregation in
//! [`scheduler`] (O(queue) FR-FCFS-Cap with an O(1) older-waiter test), a
//! per-bank mode-lookup cache keyed on the open row, and allocation reuse
//! for scheduler scratch and telemetry drains.
//!
//! # Example
//!
//! ```
//! use clr_core::addr::PhysAddr;
//! use clr_memsim::config::MemConfig;
//! use clr_memsim::controller::MemoryController;
//! use clr_memsim::request::{MemRequest, RequestKind};
//!
//! let mut mc = MemoryController::new(MemConfig::paper_tiny());
//! mc.try_enqueue(MemRequest::new(0, PhysAddr(0x40), RequestKind::Read, 0))
//!     .unwrap();
//! let mut done = Vec::new();
//! for _ in 0..1000 {
//!     mc.tick(&mut done);
//!     if !done.is_empty() {
//!         break;
//!     }
//! }
//! assert_eq!(done.len(), 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bankstate;
pub mod checker;
pub mod command;
pub mod config;
pub mod controller;
pub mod cycletimings;
pub mod engine;
pub mod executor;
pub mod frames;
pub mod migrate;
pub mod refresh;
pub mod request;
pub mod scheduler;
pub mod stats;
pub mod system;

pub use config::{ClrModeConfig, MemConfig, SchedulerConfig};
pub use controller::MemoryController;
pub use executor::Executor;
pub use frames::{CapacityRebalancer, DestinationPicker, FrameDirectory, RebalanceConfig};
pub use migrate::{MigrationRate, RelocationConfig, RelocationMode};
pub use request::{MemRequest, RequestKind};
pub use stats::MemStats;
pub use system::{MemorySystem, RemapTable, RowKey};
