//! The background row-migration engine: relocation as scheduled DRAM
//! traffic.
//!
//! A mode transition that couples a row (max-capacity →
//! high-performance) halves its usable capacity, so the half-row of data
//! the coupling displaces must physically move first. The legacy model
//! priced that movement as a controller-wide stall
//! ([`RelocationMode::Stall`]); this module instead decomposes each
//! coupling into a per-row [`MigrationJob`] whose phases are *real DRAM
//! commands* issued into idle bank slots:
//!
//! 1. **read-out** — ACT the source row in its current (max-capacity)
//!    mode, stream the displaced half-row out as RD bursts, PRE;
//! 2. **couple** — flip the row's [`ModeTable`] entry (the ISO control
//!    signals are applied at the next activation, §3.3 — no bus
//!    command);
//! 3. **write-back** — ACT the *destination frame* (the max-capacity row
//!    the capacity directory allocated for the displaced data) and
//!    stream the data back as WR bursts, PRE.
//!
//! Decoupling (high-performance → max-capacity) is free at the device
//! level — a coupled logical cell drives both physical cells, so each
//! cell already holds the stored bit — and is applied immediately, as in
//! the stall model.
//!
//! # Placement: one bank or two
//!
//! Where the destination frame lives is the
//! [`DestinationPicker`](crate::frames::DestinationPicker)'s call. With
//! the legacy **same-bank** placement the two phases serialize on one
//! row buffer and the write-back ACT additionally waits for a
//! write-drain episode. With a **cross-bank** destination the job spans
//! *two* banks: the destination's ACT issues while the read-out is still
//! streaming (its ACT/tRCD window hides under the read bursts), write
//! bursts are released as soon as the data they carry has been read
//! (`wr_remaining > rd_remaining`), and the couple point still gates the
//! completion so the mode flip always precedes it. Row blocking is
//! two-bank: the source row blocks until the couple point (reads stay
//! servable during read-out — the data sits intact in the row buffer),
//! the destination row blocks until the job completes, and each bank
//! blocks demand entirely only while the job holds *that bank's* row
//! buffer.
//!
//! Beyond couplings, the engine executes the capacity directory's
//! whole-row frame moves ([`JobKind`]): same-channel **evacuations**
//! (read a full max-capacity row out of one bank, write it into a frame
//! of another), and the two halves of a cross-channel move — an
//! **evacuate-out** (read-out only; the data leaves the channel) and a
//! **fill-in** (write-back only; the data arrives from another channel),
//! staged by [`MemorySystem::pump_placement`]. Completed placement work
//! is reported as [`PlacementEvent`]s so the system can install
//! [`RemapTable`](crate::system::RemapTable) entries.
//!
//! Jobs queue per owning bank and at most one migration role (job source
//! *or* destination) is in flight per bank. Under
//! [`RelocationMode::Background`] a job *starts* only on a cycle where
//! no demand command could issue, on a bank with no queued demand,
//! outside the tRRD shadow of imminent demand activates; once a phase's
//! ACT has issued, the burst train finishes contiguously, and a job that
//! demand is actually waiting on finishes at demand priority. Same-bank
//! write-back phases preferentially ride write-drain episodes. Under
//! [`RelocationMode::DeadlineBoosted`] a job that has waited longer
//! than its deadline may also start ahead of demand. An optional
//! [`MigrationRate`] caps job starts per cycle window.
//!
//! The engine is driven by the controller, which owns all protocol state;
//! this module tracks job progress and answers two questions the
//! controller's event model needs: *which command would migration issue
//! next on bank `b`*, and *from which cycle onward is migration allowed
//! to issue at all* (the rate-limiter window). Both are constant across a
//! dead window — a write burst gated on unread data has no command, and
//! the read that releases it is itself an event — so the skip-ahead
//! bound stays exact.
//!
//! [`ModeTable`]: clr_core::mode::ModeTable
//! [`MemorySystem::pump_placement`]: crate::system::MemorySystem::pump_placement

use std::collections::BTreeSet;

use clr_core::mode::RowMode;

use crate::command::Command;

/// How mode-transition data movement is realized by the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelocationMode {
    /// Legacy stall-the-world: the batch's priced cost is charged as a
    /// controller-wide queue-service stall and the mode table flips
    /// atomically.
    Stall,
    /// Background migration: couplings become per-row jobs that start
    /// only in idle bank slots; an in-flight job finishes eagerly so its
    /// bank unblocks quickly.
    Background,
    /// Background migration, but a job that has been pending longer than
    /// `deadline_cycles` may also *start* ahead of demand until the
    /// backlog is on time again.
    DeadlineBoosted {
        /// Pending age (in DRAM cycles, from dispatch) past which
        /// migration job starts take priority over demand.
        deadline_cycles: u64,
    },
}

/// Rate limit on background-migration bandwidth: at most `max_starts`
/// migration *jobs may start* per `window_cycles`-cycle window (windows
/// are aligned to cycle 0, so the limit is deterministic and skip-ahead
/// can price the next window boundary exactly). Limiting starts rather
/// than individual commands caps bandwidth — every start implies one
/// job's fixed command budget — without ever gating an in-flight job,
/// which would leave its bank blocked while waiting for tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationRate {
    /// Window length in DRAM cycles.
    pub window_cycles: u64,
    /// Migration-job starts allowed per window.
    pub max_starts: u64,
}

/// Relocation configuration carried by
/// [`MemConfig`](crate::config::MemConfig).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RelocationConfig {
    /// The relocation realization.
    pub mode: RelocationMode,
    /// Optional migration-bandwidth cap (background modes only).
    pub rate: Option<MigrationRate>,
}

impl MigrationRate {
    /// A moderate default pacing: four job starts per 2048-cycle window
    /// (≈7 % of command-bus slots at this crate's default job sizes) —
    /// enough to drain a sane policy's per-epoch batch within the epoch,
    /// while a pathologically churning policy cannot flood the bus with
    /// relocation traffic.
    pub fn default_pacing() -> Self {
        MigrationRate {
            window_cycles: 2048,
            max_starts: 4,
        }
    }
}

impl RelocationConfig {
    /// Pure background migration, unlimited bandwidth.
    pub fn background() -> Self {
        RelocationConfig {
            mode: RelocationMode::Background,
            rate: None,
        }
    }

    /// Background migration with the default start pacing
    /// ([`MigrationRate::default_pacing`]).
    pub fn background_paced() -> Self {
        RelocationConfig {
            mode: RelocationMode::Background,
            rate: Some(MigrationRate::default_pacing()),
        }
    }

    /// Whether this configuration migrates in the background (any
    /// non-stall mode).
    pub fn is_background(&self) -> bool {
        self.mode != RelocationMode::Stall
    }
}

impl Default for RelocationConfig {
    fn default() -> Self {
        RelocationConfig {
            mode: RelocationMode::Stall,
            rate: None,
        }
    }
}

/// Which half of the data movement a same-bank job is executing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobPhase {
    /// ACT in the old mode, RD bursts, PRE — then the couple point.
    ReadOut,
    /// ACT in the new mode, WR bursts, PRE — then the job is complete.
    WriteBack,
}

/// What a migration job moves and why — the capacity directory's job
/// taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobKind {
    /// A mode-transition coupling: half a row out of the source, mode
    /// flip at the couple point, half a row into the destination frame.
    Couple,
    /// A same-channel whole-row frame move: a full max-capacity row out
    /// of one bank into a free frame of another. No mode flip; the
    /// vacated source becomes a free frame (and the system remaps the
    /// row's address).
    Evacuate,
    /// The source half of a cross-channel frame move: a full row read
    /// out; the data leaves this channel (staged by the system).
    EvacuateOut,
    /// The destination half of a cross-channel frame move: a full row
    /// written into a local frame; the data arrived from another
    /// channel.
    FillIn,
}

/// Per-side execution state of a job.
#[derive(Debug, Clone, Copy)]
enum JobState {
    /// Legacy same-bank coupling: strictly sequential phases on one
    /// bank's row buffer.
    SameBank {
        phase: JobPhase,
        /// Whether the current phase's ACT has issued.
        opened: bool,
        /// Column bursts remaining in the current phase.
        remaining: u32,
    },
    /// A job whose read-out and write-back sides live on different banks
    /// (or that has only one side): the sides progress concurrently.
    TwoBank {
        /// Whether the read-out ACT has issued.
        src_opened: bool,
        /// RD bursts remaining.
        rd_remaining: u32,
        /// Whether the read-out side finished (its PRE issued) — for
        /// [`JobKind::FillIn`] true from dispatch.
        src_done: bool,
        /// Whether the write-back ACT has issued.
        dest_opened: bool,
        /// WR bursts remaining.
        wr_remaining: u32,
    },
}

/// One row's relocation, decomposed into commands.
#[derive(Debug, Clone, Copy)]
pub struct MigrationJob {
    /// What the job moves (see [`JobKind`]).
    pub kind: JobKind,
    /// The source row (for [`JobKind::FillIn`], equal to `dest`).
    pub row: u32,
    /// The destination frame row (`u32::MAX` for
    /// [`JobKind::EvacuateOut`], whose data leaves the channel).
    pub dest: u32,
    /// The destination frame's flat bank (the owning bank for same-bank
    /// couplings and fill-ins; `u32::MAX` for evacuate-outs).
    pub dest_bank: u32,
    /// Mode before the transition (the mode the source is read in).
    pub from: RowMode,
    /// Mode after the transition (couplings only; frame moves keep
    /// max-capacity).
    pub to: RowMode,
    /// Cycle the job was dispatched (drives the deadline boost).
    pub dispatched_at: u64,
    state: JobState,
}

impl MigrationJob {
    /// The bank the destination side runs on, when it differs from the
    /// owning bank.
    fn cross_dest_bank(&self, owning: usize) -> Option<usize> {
        if self.dest_bank == u32::MAX || self.dest_bank as usize == owning {
            None
        } else {
            Some(self.dest_bank as usize)
        }
    }

    /// Whether the job has a read-out side still to run.
    fn has_src_side(&self) -> bool {
        !matches!(self.kind, JobKind::FillIn)
    }
}

/// The migration command the engine wants to issue next on a bank, with
/// the mode its timing must respect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NextMigrationCommand {
    /// The command.
    pub command: Command,
    /// Row the command targets (the job row for ACT/RD/WR; the bank's
    /// open row for a starting PRE).
    pub row: u32,
    /// Mode governing the command's timings.
    pub mode: RowMode,
}

/// What happened when the controller told the engine a migration command
/// issued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationStep {
    /// The job made progress but still owns its bank(s).
    InProgress,
    /// The read-out phase finished: the controller must flip the row's
    /// mode-table entry now (the couple point).
    Couple {
        /// Row to flip.
        row: u32,
        /// Mode to flip it to.
        to: RowMode,
    },
    /// A coupling finished; its banks are free again.
    Complete {
        /// The migrated row.
        row: u32,
        /// Its (already applied) final mode.
        to: RowMode,
        /// Whether the destination frame lived in another bank (the
        /// overlapped two-bank execution).
        cross_bank: bool,
        /// Cycle the job was dispatched, for end-to-end job latency.
        dispatched_at: u64,
    },
    /// A same-channel whole-row frame move finished; the vacated source
    /// is now a free frame.
    Evacuated {
        /// Source bank vacated.
        bank: u32,
        /// Source row vacated.
        row: u32,
        /// Destination bank filled.
        dest_bank: u32,
        /// Destination row filled.
        dest: u32,
        /// Cycle the job was dispatched, for end-to-end job latency.
        dispatched_at: u64,
    },
    /// A cross-channel move's read-out half finished; the row's data is
    /// staged for a fill on another channel (the source row stays
    /// reserved until the system confirms the landing).
    StagedOut {
        /// Source bank read out.
        bank: u32,
        /// Source row read out.
        row: u32,
        /// Cycle the job was dispatched, for end-to-end job latency.
        dispatched_at: u64,
    },
    /// A cross-channel move's write-back half finished; the data landed
    /// in this channel's frame.
    Filled {
        /// Destination bank filled.
        bank: u32,
        /// Destination row filled.
        row: u32,
        /// Cycle the job was dispatched, for end-to-end job latency.
        dispatched_at: u64,
    },
}

/// A completed placement action, drained by the memory system to update
/// the capacity directory and the remap table. `bank`/`row` is the
/// source location, `dest_bank`/`dest` the destination (both `u32::MAX`
/// for [`JobKind::EvacuateOut`], whose destination lives on another
/// channel).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlacementEvent {
    /// What kind of job completed.
    pub kind: JobKind,
    /// Source flat bank.
    pub bank: u32,
    /// Source row.
    pub row: u32,
    /// Destination flat bank.
    pub dest_bank: u32,
    /// Destination row.
    pub dest: u32,
}

/// Sentinel slot index for [`JobArena`] links.
const NIL: u32 = u32::MAX;

/// Per-bank migration-job FIFOs backed by one shared slab: jobs live in
/// a single contiguous `Vec` with intrusive `next` links and per-bank
/// `head`/`tail` cursors, so steady-state push/pop recycles slots from
/// the free list instead of reallocating per-bank ring buffers. Queue
/// order is identical to the `Vec<VecDeque>` it replaces.
#[derive(Debug)]
struct JobArena {
    jobs: Vec<MigrationJob>,
    /// Next slot in the owning bank's FIFO (`NIL` at the tail).
    next: Vec<u32>,
    head: Vec<u32>,
    tail: Vec<u32>,
    free: Vec<u32>,
}

impl JobArena {
    fn new(banks: usize) -> Self {
        JobArena {
            jobs: Vec::new(),
            next: Vec::new(),
            head: vec![NIL; banks],
            tail: vec![NIL; banks],
            free: Vec::new(),
        }
    }

    fn banks(&self) -> usize {
        self.head.len()
    }

    fn alloc(&mut self, job: MigrationJob) -> u32 {
        if let Some(slot) = self.free.pop() {
            self.jobs[slot as usize] = job;
            self.next[slot as usize] = NIL;
            slot
        } else {
            self.jobs.push(job);
            self.next.push(NIL);
            (self.jobs.len() - 1) as u32
        }
    }

    fn push_back(&mut self, bank: usize, job: MigrationJob) {
        let slot = self.alloc(job);
        match self.tail[bank] {
            NIL => self.head[bank] = slot,
            t => self.next[t as usize] = slot,
        }
        self.tail[bank] = slot;
    }

    fn push_front(&mut self, bank: usize, job: MigrationJob) {
        let slot = self.alloc(job);
        self.next[slot as usize] = self.head[bank];
        self.head[bank] = slot;
        if self.tail[bank] == NIL {
            self.tail[bank] = slot;
        }
    }

    fn front(&self, bank: usize) -> Option<&MigrationJob> {
        match self.head[bank] {
            NIL => None,
            h => Some(&self.jobs[h as usize]),
        }
    }

    fn pop_front(&mut self, bank: usize) -> Option<MigrationJob> {
        let h = self.head[bank];
        if h == NIL {
            return None;
        }
        let job = self.jobs[h as usize];
        self.head[bank] = self.next[h as usize];
        if self.head[bank] == NIL {
            self.tail[bank] = NIL;
        }
        self.free.push(h);
        Some(job)
    }

    fn is_empty(&self, bank: usize) -> bool {
        self.head[bank] == NIL
    }
}

/// Per-bank job queues plus the rate limiter — the bookkeeping half of
/// background migration (the controller owns all protocol state).
#[derive(Debug)]
pub struct MigrationEngine {
    cfg: RelocationConfig,
    /// Column bursts per coupling phase: the displaced half-row at one
    /// burst per column access (matches the relocation cost model's
    /// `bursts_per_row`). Whole-row frame moves transfer twice this.
    bursts_per_phase: u32,
    queues: JobArena,
    active: Vec<Option<MigrationJob>>,
    /// For banks serving as the *destination* side of an active two-bank
    /// job: the owning bank.
    dest_of: Vec<Option<usize>>,
    /// Banks with an in-flight migration role (job source or
    /// destination).
    busy: Vec<bool>,
    /// Banks whose in-flight role currently *holds the row buffer* (its
    /// side's ACT has issued): the whole bank blocks demand. Otherwise
    /// only the migrating row blocks (see `row_block`).
    held: Vec<bool>,
    /// The migrating row per bank (`u32::MAX` when none): demand to this
    /// row waits — its content is in flux — while the bank's other rows
    /// stay schedulable whenever the bank is not held.
    row_block: Vec<u32>,
    /// The source row per bank while its job is in the read-out phase
    /// (`u32::MAX` otherwise): reads to it remain servable (see
    /// [`MigrationEngine::read_ok_rows`]).
    readout_src: Vec<u32>,
    /// Every `(bank, row)` with a pending migration role (queued or in
    /// flight, source or destination) or an external reservation by the
    /// capacity directory — the "do not touch" set pickers and
    /// dispatchers consult.
    reserved: BTreeSet<(u32, u32)>,
    pending_jobs: usize,
    /// Completed coupling `(bank, row, mode)` transitions awaiting a
    /// drain by the policy driver.
    completed: Vec<(u32, u32, RowMode)>,
    /// Completed frame-placement actions awaiting a drain by the memory
    /// system.
    placements: Vec<PlacementEvent>,
    /// Whether completed *couplings* with cross-bank destinations are
    /// also recorded as placement events. Off by default: the system
    /// pump ignores them (couplings need no remap), so recording them
    /// unconditionally would grow `placements` without bound on runs
    /// that never drain it. Audits (the workspace consistency test)
    /// switch it on.
    log_couple_placements: bool,
    /// Rate-limiter state: the window index last charged and the
    /// commands issued within it.
    window_index: u64,
    issued_in_window: u64,
    /// Round-robin start bank so one bank's backlog cannot starve the
    /// others.
    rr_next: usize,
}

impl MigrationEngine {
    /// An engine for `banks` banks moving `half_row_bytes` per coupling
    /// phase at `burst_bytes` per column access.
    pub fn new(cfg: RelocationConfig, banks: usize, half_row_bytes: u64, burst_bytes: u64) -> Self {
        let bursts = half_row_bytes.div_ceil(burst_bytes.max(1)).max(1) as u32;
        MigrationEngine {
            cfg,
            bursts_per_phase: bursts,
            queues: JobArena::new(banks),
            active: vec![None; banks],
            dest_of: vec![None; banks],
            busy: vec![false; banks],
            held: vec![false; banks],
            row_block: vec![u32::MAX; banks],
            readout_src: vec![u32::MAX; banks],
            reserved: BTreeSet::new(),
            pending_jobs: 0,
            completed: Vec::new(),
            placements: Vec::new(),
            log_couple_placements: false,
            window_index: 0,
            issued_in_window: 0,
            rr_next: 0,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &RelocationConfig {
        &self.cfg
    }

    /// Starts recording completed cross-bank couplings as placement
    /// events (frame moves are always recorded — the system pump
    /// consumes them; coupling events exist for audits and debugging).
    pub fn enable_couple_placement_log(&mut self) {
        self.log_couple_placements = true;
    }

    /// Column bursts per coupling phase.
    pub fn bursts_per_phase(&self) -> u32 {
        self.bursts_per_phase
    }

    /// Column bursts of a whole-row frame move (both halves of the row).
    pub fn bursts_per_frame_move(&self) -> u32 {
        self.bursts_per_phase * 2
    }

    /// Jobs dispatched but not yet complete (queued + in flight).
    pub fn pending_jobs(&self) -> usize {
        self.pending_jobs
    }

    /// Whether bank `b` has an in-flight migration role (job source or
    /// destination; started, not complete).
    pub fn is_busy(&self, bank: usize) -> bool {
        self.busy[bank]
    }

    /// Whether bank `b` has any migration work to consider at all — an
    /// in-flight role (source or destination) or a queued job. O(1), so
    /// the controller's per-tick scans can skip workless banks before
    /// paying any eligibility or timing checks.
    pub fn bank_has_work(&self, bank: usize) -> bool {
        self.busy[bank] || self.active[bank].is_some() || !self.queues.is_empty(bank)
    }

    /// Whether bank `b`'s in-flight role is mid-burst-train (its side's
    /// ACT has issued, so the role holds the row buffer and the whole
    /// bank blocks demand). A mid-phase burst train should finish
    /// contiguously: dribbling the bursts one idle slot at a time would
    /// pay the rank-level read/write turnaround penalties once per burst
    /// instead of once per train.
    pub fn is_mid_phase(&self, bank: usize) -> bool {
        self.held[bank]
    }

    /// Whether bank `b`'s in-flight *same-bank* job is waiting to open
    /// its write-back phase. The controller aligns these with
    /// write-drain episodes: a WR burst train injected while the rank
    /// serves reads pays a write→read turnaround that blocks the whole
    /// rank, but during a drain the bus is already turned around for
    /// writes. Cross-bank destinations are exempt — hiding the
    /// destination ACT under the read-out is the point of the placement.
    pub fn pending_writeback_act(&self, bank: usize) -> bool {
        self.active[bank].is_some_and(|j| {
            matches!(
                j.state,
                JobState::SameBank {
                    opened: false,
                    phase: JobPhase::WriteBack,
                    ..
                }
            )
        })
    }

    /// Per-bank whole-bank demand-blocking flags for the scheduler: set
    /// exactly while a migration role holds the bank's row buffer.
    pub fn held_banks(&self) -> &[bool] {
        &self.held
    }

    /// Per-bank migrating-row blocks for the scheduler (`u32::MAX` =
    /// none): the row whose content is in flux for the role's lifetime.
    pub fn blocked_rows(&self) -> &[u32] {
        &self.row_block
    }

    /// Per-bank rows whose *reads* remain servable despite the block
    /// (`u32::MAX` = none): during the read-out phase the source row sits
    /// intact in the row buffer, so demand read hits interleave with the
    /// migration's own RD bursts — only writes must wait (they would be
    /// lost behind the data already streamed out).
    pub fn read_ok_rows(&self) -> &[u32] {
        &self.readout_src
    }

    /// The migrating row on `bank`, if a role is in flight there.
    pub fn blocked_row(&self, bank: usize) -> Option<u32> {
        let r = self.row_block[bank];
        (r != u32::MAX).then_some(r)
    }

    /// Whether `(bank, row)` has a pending migration role (queued or in
    /// flight, as source *or* destination) or an external reservation.
    pub fn is_row_pending(&self, bank: usize, row: u32) -> bool {
        self.reserved.contains(&(bank as u32, row))
    }

    /// Reserves `(bank, row)` for the capacity directory (e.g. the
    /// destination frame of a cross-channel move scheduled but not yet
    /// dispatched on this channel). Returns `false` if the row already
    /// has a pending role.
    pub fn reserve(&mut self, bank: usize, row: u32) -> bool {
        self.reserved.insert((bank as u32, row))
    }

    /// Releases an external reservation (or a staged-out source row once
    /// its move has landed elsewhere). Returns whether it was held.
    pub fn release(&mut self, bank: usize, row: u32) -> bool {
        self.reserved.remove(&(bank as u32, row))
    }

    /// Dispatches one coupling job whose displaced data lands in `dest`
    /// (a max-capacity row of the same bank). Returns `false` (and does
    /// nothing) if either row already has a pending role.
    pub fn dispatch(
        &mut self,
        bank: usize,
        row: u32,
        dest: u32,
        from: RowMode,
        to: RowMode,
        now: u64,
    ) -> bool {
        self.dispatch_couple(bank, row, bank, dest, from, to, now)
    }

    /// Dispatches one coupling job with an explicit destination bank:
    /// `dest_bank == bank` is the legacy serialized placement, anything
    /// else the overlapped two-bank execution. Returns `false` (and does
    /// nothing) if either row already has a pending role or the
    /// coordinates are degenerate.
    #[allow(clippy::too_many_arguments)]
    pub fn dispatch_couple(
        &mut self,
        bank: usize,
        row: u32,
        dest_bank: usize,
        dest: u32,
        from: RowMode,
        to: RowMode,
        now: u64,
    ) -> bool {
        if self.is_row_pending(bank, row)
            || self.is_row_pending(dest_bank, dest)
            || (bank == dest_bank && row == dest)
        {
            return false;
        }
        let state = if dest_bank == bank {
            JobState::SameBank {
                phase: JobPhase::ReadOut,
                opened: false,
                remaining: self.bursts_per_phase,
            }
        } else {
            JobState::TwoBank {
                src_opened: false,
                rd_remaining: self.bursts_per_phase,
                src_done: false,
                dest_opened: false,
                wr_remaining: self.bursts_per_phase,
            }
        };
        self.enqueue_job(
            bank,
            MigrationJob {
                kind: JobKind::Couple,
                row,
                dest,
                dest_bank: dest_bank as u32,
                from,
                to,
                dispatched_at: now,
                state,
            },
        );
        true
    }

    /// Dispatches a same-channel whole-row frame move: the full
    /// max-capacity row `(bank, row)` is read out and written into the
    /// frame `(dest_bank, dest)` of a *different* bank. Returns `false`
    /// if either row has a pending role or the banks coincide.
    pub fn dispatch_evacuate(
        &mut self,
        bank: usize,
        row: u32,
        dest_bank: usize,
        dest: u32,
        now: u64,
    ) -> bool {
        if bank == dest_bank
            || self.is_row_pending(bank, row)
            || self.is_row_pending(dest_bank, dest)
        {
            return false;
        }
        self.enqueue_job(
            bank,
            MigrationJob {
                kind: JobKind::Evacuate,
                row,
                dest,
                dest_bank: dest_bank as u32,
                from: RowMode::MaxCapacity,
                to: RowMode::MaxCapacity,
                dispatched_at: now,
                state: JobState::TwoBank {
                    src_opened: false,
                    rd_remaining: self.bursts_per_frame_move(),
                    src_done: false,
                    dest_opened: false,
                    wr_remaining: self.bursts_per_frame_move(),
                },
            },
        );
        true
    }

    /// Dispatches the read-out half of a cross-channel frame move: the
    /// full row `(bank, row)` is streamed out; on completion the data is
    /// staged (the row stays reserved until the system confirms the
    /// landing and releases it). Returns `false` if the row has a
    /// pending role.
    pub fn dispatch_evacuate_out(&mut self, bank: usize, row: u32, now: u64) -> bool {
        if self.is_row_pending(bank, row) {
            return false;
        }
        self.enqueue_job(
            bank,
            MigrationJob {
                kind: JobKind::EvacuateOut,
                row,
                dest: u32::MAX,
                dest_bank: u32::MAX,
                from: RowMode::MaxCapacity,
                to: RowMode::MaxCapacity,
                dispatched_at: now,
                state: JobState::TwoBank {
                    src_opened: false,
                    rd_remaining: self.bursts_per_frame_move(),
                    src_done: false,
                    dest_opened: false,
                    wr_remaining: 0,
                },
            },
        );
        true
    }

    /// Dispatches the write-back half of a cross-channel frame move: a
    /// full row's worth of data (staged by the system) is written into
    /// the frame `(bank, row)`. An external [`MigrationEngine::reserve`]
    /// held for exactly this frame is adopted by the job. Returns
    /// `false` if the row is pending under a *different* role.
    pub fn dispatch_fill(
        &mut self,
        bank: usize,
        row: u32,
        reserved_by_caller: bool,
        now: u64,
    ) -> bool {
        if reserved_by_caller {
            // The caller's reservation becomes the job's own entry.
            if !self.reserved.contains(&(bank as u32, row)) {
                return false;
            }
        } else if self.is_row_pending(bank, row) {
            return false;
        }
        self.enqueue_job(
            bank,
            MigrationJob {
                kind: JobKind::FillIn,
                row,
                dest: row,
                dest_bank: bank as u32,
                from: RowMode::MaxCapacity,
                to: RowMode::MaxCapacity,
                dispatched_at: now,
                state: JobState::TwoBank {
                    src_opened: false,
                    rd_remaining: 0,
                    src_done: true,
                    dest_opened: false,
                    wr_remaining: self.bursts_per_frame_move(),
                },
            },
        );
        true
    }

    fn enqueue_job(&mut self, bank: usize, job: MigrationJob) {
        self.reserved.insert((bank as u32, job.row));
        if job.dest_bank != u32::MAX {
            self.reserved.insert((job.dest_bank, job.dest));
        }
        // The capacity directory's frame moves are few and system-wide
        // (a stuck move pins reservations on two channels), so they jump
        // the bank's coupling backlog; couplings keep FIFO order among
        // themselves.
        match job.kind {
            JobKind::Couple => self.queues.push_back(bank, job),
            _ => self.queues.push_front(bank, job),
        }
        self.pending_jobs += 1;
    }

    /// Whether bank `b` has a queued (not yet started) job past the
    /// deadline-boost threshold at `now` (always `false` outside
    /// [`RelocationMode::DeadlineBoosted`]).
    pub fn is_overdue_start(&self, bank: usize, now: u64) -> bool {
        let RelocationMode::DeadlineBoosted { deadline_cycles } = self.cfg.mode else {
            return false;
        };
        if self.start_blocked(bank) {
            return false;
        }
        self.queues
            .front(bank)
            .is_some_and(|j| now.saturating_sub(j.dispatched_at) >= deadline_cycles)
    }

    /// Whether the front job of `bank`'s queue cannot start because a
    /// migration role already occupies one of its banks.
    fn start_blocked(&self, bank: usize) -> bool {
        if self.active[bank].is_some() || self.dest_of[bank].is_some() {
            return true;
        }
        self.queues.front(bank).is_some_and(|j| {
            j.cross_dest_bank(bank)
                .is_some_and(|db| self.active[db].is_some() || self.dest_of[db].is_some())
        })
    }

    /// The first command of a queued job: the read-out ACT of its
    /// source, or — for a fill-in — the write-back ACT of its frame.
    fn start_target(job: &MigrationJob) -> (u32, RowMode) {
        match job.kind {
            JobKind::FillIn => (job.dest, RowMode::MaxCapacity),
            _ => (job.row, job.from),
        }
    }

    /// The queued job a closed `bank` could start next, as
    /// `(row, mode)` of its first ACT — the event-bound input for start
    /// candidates. `None` while any of the job's banks is occupied by
    /// another migration role (the occupying job's completion is an
    /// event, so the bound stays exact).
    pub fn queued_start(&self, bank: usize) -> Option<(u32, RowMode)> {
        if self.start_blocked(bank) {
            return None;
        }
        self.queues.front(bank).map(Self::start_target)
    }

    /// The cycle from which a queued job on `bank` may start *despite
    /// demand* (an open row, or queued demand entries): never under pure
    /// background — the start waits for a demand-free closed bank — and
    /// the job's deadline under [`RelocationMode::DeadlineBoosted`].
    pub fn boosted_start_at(&self, bank: usize) -> Option<u64> {
        let RelocationMode::DeadlineBoosted { deadline_cycles } = self.cfg.mode else {
            return None;
        };
        if self.start_blocked(bank) {
            return None;
        }
        self.queues
            .front(bank)
            .map(|j| j.dispatched_at.saturating_add(deadline_cycles))
    }

    /// The earliest cycle ≥ `now` at which the rate limiter permits a
    /// migration job to *start* (`now` itself when unlimited or under
    /// budget, the next window boundary when the current window's starts
    /// are exhausted). In-flight jobs are never rate-gated.
    pub fn rate_gate(&self, now: u64) -> u64 {
        let Some(rate) = self.cfg.rate else {
            return now;
        };
        let idx = now / rate.window_cycles;
        if idx != self.window_index || self.issued_in_window < rate.max_starts {
            now
        } else {
            (idx + 1) * rate.window_cycles
        }
    }

    /// The read-out-side command of an in-flight job on its owning bank,
    /// `None` once that side is done.
    fn src_side_command(
        job: &MigrationJob,
        open: Option<(u32, RowMode)>,
    ) -> Option<NextMigrationCommand> {
        match job.state {
            JobState::SameBank {
                phase,
                opened,
                remaining,
            } => {
                // Legacy sequential walk, verbatim.
                let cmd = if !opened {
                    // Between phases the bank is released to demand; if a
                    // demand row is open when the next phase is due, it is
                    // closed first.
                    if let Some((row, mode)) = open {
                        NextMigrationCommand {
                            command: Command::Pre,
                            row,
                            mode,
                        }
                    } else {
                        // Read-out activates the source in its old mode; the
                        // write-back activates the (max-capacity) destination
                        // frame.
                        let (row, mode) = match phase {
                            JobPhase::ReadOut => (job.row, job.from),
                            JobPhase::WriteBack => (job.dest, RowMode::MaxCapacity),
                        };
                        NextMigrationCommand {
                            command: Command::Act,
                            row,
                            mode,
                        }
                    }
                } else if remaining > 0 {
                    let command = match phase {
                        JobPhase::ReadOut => Command::Rd,
                        JobPhase::WriteBack => Command::Wr,
                    };
                    let (row, mode) = open.expect("in-flight job holds the bank open");
                    NextMigrationCommand { command, row, mode }
                } else {
                    let (row, mode) = open.expect("in-flight job holds the bank open");
                    NextMigrationCommand {
                        command: Command::Pre,
                        row,
                        mode,
                    }
                };
                Some(cmd)
            }
            JobState::TwoBank {
                src_opened,
                rd_remaining,
                src_done,
                ..
            } => {
                if src_done || !job.has_src_side() {
                    return None;
                }
                let cmd = if !src_opened {
                    if let Some((row, mode)) = open {
                        // A demand row (or refresh leftover) occupies the
                        // buffer; close it before (re-)activating.
                        NextMigrationCommand {
                            command: Command::Pre,
                            row,
                            mode,
                        }
                    } else {
                        NextMigrationCommand {
                            command: Command::Act,
                            row: job.row,
                            mode: job.from,
                        }
                    }
                } else if rd_remaining > 0 {
                    let (row, mode) = open.expect("read-out holds the bank open");
                    NextMigrationCommand {
                        command: Command::Rd,
                        row,
                        mode,
                    }
                } else {
                    let (row, mode) = open.expect("read-out holds the bank open");
                    NextMigrationCommand {
                        command: Command::Pre,
                        row,
                        mode,
                    }
                };
                Some(cmd)
            }
        }
    }

    /// The write-back-side command of an in-flight two-bank job on its
    /// destination bank. `None` while the side is blocked on unread data
    /// or on the couple point — both released by source-side events.
    fn dest_side_command(
        job: &MigrationJob,
        open: Option<(u32, RowMode)>,
    ) -> Option<NextMigrationCommand> {
        let JobState::TwoBank {
            rd_remaining,
            src_done,
            dest_opened,
            wr_remaining,
            ..
        } = job.state
        else {
            return None;
        };
        if !dest_opened {
            return Some(match open {
                // A demand row occupies the destination's buffer; close
                // it first.
                Some((row, mode)) => NextMigrationCommand {
                    command: Command::Pre,
                    row,
                    mode,
                },
                // The write-back ACT may issue any time from the job's
                // start: hiding its ACT/tRCD window under the read-out is
                // the overlap this placement buys.
                None => NextMigrationCommand {
                    command: Command::Act,
                    row: job.dest,
                    mode: RowMode::MaxCapacity,
                },
            });
        }
        if wr_remaining > 0 {
            // A write burst may only carry data that has been read:
            // wr_remaining must stay strictly behind rd_remaining.
            if wr_remaining > rd_remaining {
                let (row, mode) = open.expect("write-back holds the bank open");
                return Some(NextMigrationCommand {
                    command: Command::Wr,
                    row,
                    mode,
                });
            }
            return None;
        }
        if !src_done {
            // All data written but the source has not precharged (the
            // couple point, for couplings): completion must not outrun
            // it.
            return None;
        }
        let (row, mode) = open.expect("write-back holds the bank open");
        Some(NextMigrationCommand {
            command: Command::Pre,
            row,
            mode,
        })
    }

    /// The command migration would issue next on `bank`, given the bank's
    /// open row/mode (`None` when the bank has no migration work it may
    /// progress at `now`). Pure bookkeeping: timing readiness is the
    /// controller's engine's call. A queued job starts with ACT on a
    /// closed bank, and may start by precharging an open bank only once
    /// overdue under deadline-boosted priority.
    pub fn next_command(
        &self,
        bank: usize,
        open: Option<(u32, RowMode)>,
        now: u64,
    ) -> Option<NextMigrationCommand> {
        if let Some(job) = self.active[bank].as_ref() {
            if let Some(cmd) = Self::src_side_command(job, open) {
                return Some(cmd);
            }
            // The source side is done (or absent). If this bank doubles
            // as the job's destination (fill-in), the dest lookup below
            // serves it; a cross-bank owner has nothing more to issue
            // here.
        }
        if let Some(owner) = self.dest_of[bank] {
            let job = self.active[owner]
                .as_ref()
                .expect("dest role implies an active owner");
            return Self::dest_side_command(job, open);
        }
        if self.active[bank].is_some() {
            return None;
        }
        let (srow, smode) = self.queued_start(bank)?;
        match open {
            // An open bank is demand territory: only an overdue job under
            // deadline boost may close it to start.
            Some((row, mode)) => {
                if self.is_overdue_start(bank, now) {
                    Some(NextMigrationCommand {
                        command: Command::Pre,
                        row,
                        mode,
                    })
                } else {
                    None
                }
            }
            None => Some(NextMigrationCommand {
                command: Command::Act,
                row: srow,
                mode: smode,
            }),
        }
    }

    /// Records that a migration ACT issued on `bank` (installs the
    /// owning job as active first if it was still queued).
    pub fn note_act(&mut self, bank: usize, now: u64) {
        self.bump(bank);
        if self.active[bank].is_none() && self.dest_of[bank].is_none() {
            self.start(bank, now);
        }
        // Source side?
        if let Some(job) = self.active[bank].as_mut() {
            match &mut job.state {
                JobState::SameBank { opened, .. } => {
                    debug_assert!(!*opened, "double ACT within a phase");
                    *opened = true;
                    self.held[bank] = true;
                    return;
                }
                JobState::TwoBank {
                    src_opened,
                    src_done,
                    ..
                } if !*src_done && job.kind != JobKind::FillIn => {
                    debug_assert!(!*src_opened, "double read-out ACT");
                    *src_opened = true;
                    self.held[bank] = true;
                    return;
                }
                _ => {}
            }
        }
        // Destination side.
        let owner = self.dest_of[bank].expect("ACT requires a migration role");
        let job = self.active[owner].as_mut().expect("active owner");
        let JobState::TwoBank { dest_opened, .. } = &mut job.state else {
            unreachable!("dest role is only taken by two-bank jobs");
        };
        debug_assert!(!*dest_opened, "double write-back ACT");
        *dest_opened = true;
        self.held[bank] = true;
    }

    /// Records that a migration column burst issued on `bank`.
    pub fn note_column(&mut self, bank: usize, _now: u64) {
        self.bump(bank);
        if let Some(job) = self.active[bank].as_mut() {
            match &mut job.state {
                JobState::SameBank {
                    opened, remaining, ..
                } => {
                    debug_assert!(*opened && *remaining > 0);
                    *remaining -= 1;
                    return;
                }
                JobState::TwoBank {
                    src_opened,
                    rd_remaining,
                    src_done,
                    ..
                } if !*src_done && job.kind != JobKind::FillIn => {
                    debug_assert!(*src_opened && *rd_remaining > 0);
                    *rd_remaining -= 1;
                    return;
                }
                _ => {}
            }
        }
        let owner = self.dest_of[bank].expect("column requires a migration role");
        let job = self.active[owner].as_mut().expect("active owner");
        let JobState::TwoBank {
            dest_opened,
            wr_remaining,
            rd_remaining,
            ..
        } = &mut job.state
        else {
            unreachable!("dest role is only taken by two-bank jobs");
        };
        debug_assert!(*dest_opened && *wr_remaining > *rd_remaining);
        *wr_remaining -= 1;
    }

    /// Records that a migration PRE issued on `bank`: a starting PRE
    /// that closes a demand row (job still queued), a side's
    /// phase-ending PRE, or a demand-row close before a side's
    /// (re-)ACT. Returns the resulting step so the controller can apply
    /// couple points, completions, and placement bookkeeping.
    pub fn note_pre(&mut self, bank: usize, now: u64) -> MigrationStep {
        self.bump(bank);
        if self.active[bank].is_none() && self.dest_of[bank].is_none() {
            // Starting PRE: the job takes ownership; its first ACT is next.
            self.start(bank, now);
            return MigrationStep::InProgress;
        }
        // Source side?
        if let Some(job) = self.active[bank] {
            match job.state {
                JobState::SameBank {
                    phase,
                    opened,
                    remaining,
                } => {
                    if !opened {
                        // The job owned the bank but its phase ACT had not
                        // issued — the PRE closed a demand row ahead of the
                        // re-ACT.
                        return MigrationStep::InProgress;
                    }
                    debug_assert_eq!(remaining, 0, "PRE before the phase drained");
                    self.held[bank] = false;
                    match phase {
                        JobPhase::ReadOut => {
                            let job = self.active[bank].as_mut().expect("checked above");
                            job.state = JobState::SameBank {
                                phase: JobPhase::WriteBack,
                                opened: false,
                                remaining: self.bursts_per_phase,
                            };
                            // From the couple point on, the source row is
                            // usable in its new mode; only the destination
                            // frame still blocks.
                            self.row_block[bank] = job.dest;
                            self.readout_src[bank] = u32::MAX;
                            return MigrationStep::Couple {
                                row: job.row,
                                to: job.to,
                            };
                        }
                        JobPhase::WriteBack => {
                            return self.complete_job(bank);
                        }
                    }
                }
                JobState::TwoBank {
                    src_opened,
                    rd_remaining,
                    src_done,
                    ..
                } if !src_done && job.has_src_side() => {
                    if !src_opened {
                        return MigrationStep::InProgress;
                    }
                    debug_assert_eq!(rd_remaining, 0, "PRE before the read-out drained");
                    self.held[bank] = false;
                    let job = self.active[bank].as_mut().expect("checked above");
                    let JobState::TwoBank { src_done, .. } = &mut job.state else {
                        unreachable!()
                    };
                    *src_done = true;
                    match job.kind {
                        JobKind::Couple => {
                            // The couple point: the source row is usable in
                            // its new mode from here; only the destination
                            // frame (in its own bank) still blocks.
                            let (row, to) = (job.row, job.to);
                            self.row_block[bank] = u32::MAX;
                            self.readout_src[bank] = u32::MAX;
                            return MigrationStep::Couple { row, to };
                        }
                        JobKind::Evacuate => {
                            // The data is staged in flight to the other
                            // bank; the vacated row stays blocked until the
                            // move lands.
                            self.readout_src[bank] = u32::MAX;
                            return MigrationStep::InProgress;
                        }
                        JobKind::EvacuateOut => {
                            // Single-sided: the read-out completes the job.
                            // The source row's reservation survives until
                            // the system confirms the landing on the other
                            // channel. The *demand* block is released here,
                            // though: row blocks are tied to in-flight
                            // roles, so a demand write landing in the
                            // staging window (before the fill lands and the
                            // remap swap redirects the address) is a known
                            // fidelity approximation of this data-less
                            // model — it costs nothing in timing, and the
                            // staging window is bounded by the pump cadence
                            // (see the ROADMAP open item).
                            let row = job.row;
                            let dispatched_at = job.dispatched_at;
                            self.active[bank] = None;
                            self.busy[bank] = false;
                            self.row_block[bank] = u32::MAX;
                            self.readout_src[bank] = u32::MAX;
                            self.pending_jobs -= 1;
                            self.placements.push(PlacementEvent {
                                kind: JobKind::EvacuateOut,
                                bank: bank as u32,
                                row,
                                dest_bank: u32::MAX,
                                dest: u32::MAX,
                            });
                            return MigrationStep::StagedOut {
                                bank: bank as u32,
                                row,
                                dispatched_at,
                            };
                        }
                        JobKind::FillIn => unreachable!("fill-ins have no source side"),
                    }
                }
                _ => {}
            }
        }
        // Destination side.
        let owner = self.dest_of[bank].expect("PRE requires a migration role");
        let job = self.active[owner].expect("active owner");
        let JobState::TwoBank {
            dest_opened,
            wr_remaining,
            src_done,
            ..
        } = job.state
        else {
            unreachable!("dest role is only taken by two-bank jobs");
        };
        if !dest_opened {
            // Closed a demand row ahead of the write-back ACT.
            return MigrationStep::InProgress;
        }
        debug_assert_eq!(wr_remaining, 0, "PRE before the write-back drained");
        debug_assert!(src_done, "completion must not outrun the couple point");
        self.held[bank] = false;
        self.complete_job(owner)
    }

    /// Finishes the active job owned by `owner`, releasing every role
    /// and reservation it held and emitting its completion records.
    fn complete_job(&mut self, owner: usize) -> MigrationStep {
        let job = self.active[owner].take().expect("completing an active job");
        self.busy[owner] = false;
        self.row_block[owner] = u32::MAX;
        self.readout_src[owner] = u32::MAX;
        if let Some(db) = job.cross_dest_bank(owner) {
            self.dest_of[db] = None;
            self.busy[db] = false;
            self.row_block[db] = u32::MAX;
        }
        if owner as u32 == job.dest_bank && job.kind == JobKind::FillIn {
            self.dest_of[owner] = None;
        }
        self.pending_jobs -= 1;
        self.reserved.remove(&(owner as u32, job.row));
        if job.dest_bank != u32::MAX {
            self.reserved.remove(&(job.dest_bank, job.dest));
        }
        match job.kind {
            JobKind::Couple => {
                self.completed.push((owner as u32, job.row, job.to));
                let cross_bank = job.dest_bank as usize != owner;
                if cross_bank && self.log_couple_placements {
                    self.placements.push(PlacementEvent {
                        kind: JobKind::Couple,
                        bank: owner as u32,
                        row: job.row,
                        dest_bank: job.dest_bank,
                        dest: job.dest,
                    });
                }
                MigrationStep::Complete {
                    row: job.row,
                    to: job.to,
                    cross_bank,
                    dispatched_at: job.dispatched_at,
                }
            }
            JobKind::Evacuate => {
                self.placements.push(PlacementEvent {
                    kind: JobKind::Evacuate,
                    bank: owner as u32,
                    row: job.row,
                    dest_bank: job.dest_bank,
                    dest: job.dest,
                });
                MigrationStep::Evacuated {
                    bank: owner as u32,
                    row: job.row,
                    dest_bank: job.dest_bank,
                    dest: job.dest,
                    dispatched_at: job.dispatched_at,
                }
            }
            JobKind::FillIn => {
                self.placements.push(PlacementEvent {
                    kind: JobKind::FillIn,
                    bank: owner as u32,
                    row: job.dest,
                    dest_bank: job.dest_bank,
                    dest: job.dest,
                });
                MigrationStep::Filled {
                    bank: job.dest_bank,
                    row: job.dest,
                    dispatched_at: job.dispatched_at,
                }
            }
            JobKind::EvacuateOut => unreachable!("evacuate-outs complete at their source PRE"),
        }
    }

    /// A refresh (or other controller-side maintenance) precharged `bank`
    /// out from under an in-flight migration role: that side must
    /// re-activate before continuing.
    pub fn on_forced_precharge(&mut self, bank: usize) {
        if let Some(job) = self.active[bank].as_mut() {
            match &mut job.state {
                JobState::SameBank { opened, .. } => {
                    *opened = false;
                    self.held[bank] = false;
                    return;
                }
                JobState::TwoBank {
                    src_opened,
                    src_done,
                    ..
                } if !*src_done && job.kind != JobKind::FillIn => {
                    *src_opened = false;
                    self.held[bank] = false;
                    return;
                }
                _ => {}
            }
        }
        if let Some(owner) = self.dest_of[bank] {
            if let Some(job) = self.active[owner].as_mut() {
                if let JobState::TwoBank { dest_opened, .. } = &mut job.state {
                    *dest_opened = false;
                    self.held[bank] = false;
                }
            }
        }
    }

    /// The bank the round-robin scan should visit first.
    pub fn rr_start(&self) -> usize {
        self.rr_next
    }

    /// Banks that currently have migration work (an in-flight role or a
    /// non-empty queue), visited from the round-robin pointer.
    pub fn banks_with_work(&self) -> impl Iterator<Item = usize> + '_ {
        let n = self.queues.banks();
        (0..n)
            .map(move |i| (self.rr_next + i) % n)
            .filter(move |&b| {
                self.active[b].is_some() || self.dest_of[b].is_some() || !self.queues.is_empty(b)
            })
    }

    /// Drains completed coupling `(bank, row, mode)` transitions into
    /// `out` (clearing `out` first).
    pub fn drain_completed_into(&mut self, out: &mut Vec<(u32, u32, RowMode)>) {
        out.clear();
        out.append(&mut self.completed);
    }

    /// Drains completed placement actions (evacuations, staged
    /// read-outs, fills, cross-bank couplings) into `out` (clearing
    /// `out` first).
    pub fn drain_placements_into(&mut self, out: &mut Vec<PlacementEvent>) {
        out.clear();
        out.append(&mut self.placements);
    }

    /// Installs the bank's front job as in flight, charging one start
    /// against the rate window.
    fn start(&mut self, bank: usize, now: u64) {
        if let Some(rate) = self.cfg.rate {
            let idx = now / rate.window_cycles;
            if idx != self.window_index {
                self.window_index = idx;
                self.issued_in_window = 0;
            }
            self.issued_in_window += 1;
        }
        let job = self
            .queues
            .pop_front(bank)
            .expect("start requires a queued job");
        self.busy[bank] = true;
        match job.kind {
            JobKind::FillIn => {
                // Owning bank doubles as the destination bank.
                self.row_block[bank] = job.dest;
                self.dest_of[bank] = Some(bank);
            }
            _ => {
                self.row_block[bank] = job.row;
                self.readout_src[bank] = job.row;
                if let Some(db) = job.cross_dest_bank(bank) {
                    self.dest_of[db] = Some(bank);
                    self.busy[db] = true;
                    self.row_block[db] = job.dest;
                }
            }
        }
        self.active[bank] = Some(job);
    }

    fn bump(&mut self, bank: usize) {
        self.rr_next = (bank + 1) % self.queues.banks().max(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine(rate: Option<MigrationRate>) -> MigrationEngine {
        MigrationEngine::new(
            RelocationConfig {
                mode: RelocationMode::Background,
                rate,
            },
            4,
            1024,
            64,
        )
    }

    #[test]
    fn job_walks_read_out_couple_write_back() {
        let mut e = engine(None);
        assert!(e.dispatch(1, 7, 40, RowMode::MaxCapacity, RowMode::HighPerformance, 0));
        assert!(!e.dispatch(1, 7, 41, RowMode::MaxCapacity, RowMode::HighPerformance, 0));
        assert!(
            !e.dispatch(1, 9, 40, RowMode::MaxCapacity, RowMode::HighPerformance, 0),
            "a busy destination frame refuses a second job"
        );
        assert_eq!(e.pending_jobs(), 1);
        assert_eq!(e.bursts_per_phase(), 16);

        // Bank closed → first command is the read-out ACT in the old mode.
        assert_eq!(e.queued_start(1), Some((7, RowMode::MaxCapacity)));
        let c = e.next_command(1, None, 0).unwrap();
        assert_eq!(c.command, Command::Act);
        assert_eq!(c.mode, RowMode::MaxCapacity);
        assert_eq!(c.row, 7);
        e.note_act(1, 0);
        assert!(e.is_busy(1));
        assert_eq!(e.queued_start(1), None, "in-flight job is not a start");

        assert_eq!(e.blocked_row(1), Some(7), "read-out blocks the source");
        for i in 0..16 {
            let c = e
                .next_command(1, Some((7, RowMode::MaxCapacity)), 10 + i)
                .unwrap();
            assert_eq!(c.command, Command::Rd, "burst {i}");
            e.note_column(1, 10 + i);
        }
        let c = e
            .next_command(1, Some((7, RowMode::MaxCapacity)), 99)
            .unwrap();
        assert_eq!(c.command, Command::Pre);
        let step = e.note_pre(1, 100);
        assert_eq!(
            step,
            MigrationStep::Couple {
                row: 7,
                to: RowMode::HighPerformance
            }
        );

        // Write-back activates the destination frame (max-capacity): the
        // coupled source row is demand-usable from the couple point on.
        assert_eq!(e.blocked_row(1), Some(40), "block moves to the dest");
        let c = e.next_command(1, None, 110).unwrap();
        assert_eq!(c.command, Command::Act);
        assert_eq!(c.row, 40);
        assert_eq!(c.mode, RowMode::MaxCapacity);
        e.note_act(1, 120);
        for i in 0..16 {
            let c = e
                .next_command(1, Some((40, RowMode::MaxCapacity)), 130 + i)
                .unwrap();
            assert_eq!(c.command, Command::Wr, "burst {i}");
            e.note_column(1, 130 + i);
        }
        let step = e.note_pre(1, 300);
        assert_eq!(
            step,
            MigrationStep::Complete {
                row: 7,
                to: RowMode::HighPerformance,
                cross_bank: false,
                dispatched_at: 0,
            }
        );
        assert!(!e.is_busy(1));
        assert_eq!(e.pending_jobs(), 0);
        let mut done = Vec::new();
        e.drain_completed_into(&mut done);
        assert_eq!(done, vec![(1, 7, RowMode::HighPerformance)]);
    }

    #[test]
    fn pure_background_never_starts_on_an_open_bank() {
        let mut e = engine(None);
        e.dispatch(0, 3, 40, RowMode::MaxCapacity, RowMode::HighPerformance, 0);
        // The bank is open with a demand row: no start command until the
        // bank closes (demand territory).
        assert!(e
            .next_command(0, Some((9, RowMode::MaxCapacity)), 1_000_000)
            .is_none());
        assert_eq!(e.boosted_start_at(0), None);
        // Once closed, the start ACT is offered.
        let c = e.next_command(0, None, 1_000_000).unwrap();
        assert_eq!(c.command, Command::Act);
        assert_eq!(c.row, 3);
    }

    #[test]
    fn overdue_deadline_start_precharges_the_open_demand_row() {
        let mut e = MigrationEngine::new(
            RelocationConfig {
                mode: RelocationMode::DeadlineBoosted {
                    deadline_cycles: 100,
                },
                rate: None,
            },
            4,
            1024,
            64,
        );
        e.dispatch(0, 3, 40, RowMode::MaxCapacity, RowMode::HighPerformance, 50);
        assert_eq!(e.boosted_start_at(0), Some(150));
        // Before the deadline: the open bank is left to demand.
        assert!(!e.is_overdue_start(0, 149));
        assert!(e
            .next_command(0, Some((9, RowMode::MaxCapacity)), 149)
            .is_none());
        // Past it: the start may close the demand row.
        assert!(e.is_overdue_start(0, 150));
        let c = e
            .next_command(0, Some((9, RowMode::MaxCapacity)), 150)
            .unwrap();
        assert_eq!(c.command, Command::Pre);
        assert_eq!(c.row, 9, "closes the demand row, not the job row");
        assert_eq!(e.note_pre(0, 150), MigrationStep::InProgress);
        assert!(e.is_busy(0), "the starting PRE takes bank ownership");
        let c = e.next_command(0, None, 151).unwrap();
        assert_eq!(c.command, Command::Act);
        assert_eq!(c.row, 3);
    }

    #[test]
    fn forced_precharge_restarts_the_phase_act() {
        let mut e = engine(None);
        e.dispatch(2, 1, 40, RowMode::MaxCapacity, RowMode::HighPerformance, 0);
        e.note_act(2, 0);
        e.note_column(2, 10);
        e.on_forced_precharge(2);
        let c = e.next_command(2, None, 50).unwrap();
        assert_eq!(c.command, Command::Act, "phase re-activates after refresh");
        e.note_act(2, 50);
        // The burst already transferred stays transferred.
        let mut remaining = 0;
        while e
            .next_command(2, Some((1, RowMode::MaxCapacity)), 60 + remaining)
            .unwrap()
            .command
            == Command::Rd
        {
            e.note_column(2, 60 + remaining);
            remaining += 1;
        }
        assert_eq!(remaining, 15, "one of 16 bursts was already done");
    }

    #[test]
    fn rate_limiter_gates_job_starts_only() {
        let rate = MigrationRate {
            window_cycles: 100,
            max_starts: 1,
        };
        let mut e = engine(Some(rate));
        e.dispatch(0, 1, 40, RowMode::MaxCapacity, RowMode::HighPerformance, 0);
        e.dispatch(2, 5, 40, RowMode::MaxCapacity, RowMode::HighPerformance, 0);
        assert_eq!(e.rate_gate(5), 5);
        e.note_act(0, 5); // first start charges the window
                          // Window 0 exhausted for *starts*: gate jumps to the boundary...
        assert_eq!(e.rate_gate(11), 100);
        assert_eq!(e.rate_gate(99), 100);
        // ...but the in-flight job's own commands are never gated.
        e.note_column(0, 10);
        e.note_column(0, 20);
        assert_eq!(e.rate_gate(99), 100, "columns do not charge the window");
        // New window: the second job may start, counter reset on charge.
        assert_eq!(e.rate_gate(100), 100);
        e.note_act(2, 100);
        assert_eq!(e.rate_gate(101), 200);
    }

    #[test]
    fn round_robin_rotates_across_banks_with_work() {
        let mut e = engine(None);
        e.dispatch(0, 1, 40, RowMode::MaxCapacity, RowMode::HighPerformance, 0);
        e.dispatch(2, 5, 40, RowMode::MaxCapacity, RowMode::HighPerformance, 0);
        let first: Vec<usize> = e.banks_with_work().collect();
        assert_eq!(first, vec![0, 2]);
        e.note_act(0, 0);
        let next: Vec<usize> = e.banks_with_work().collect();
        assert_eq!(next, vec![2, 0], "pointer moved past the served bank");
    }

    #[test]
    fn cross_bank_couple_overlaps_its_two_sides() {
        let mut e = engine(None);
        e.enable_couple_placement_log();
        assert!(e.dispatch_couple(
            1,
            7,
            3,
            40,
            RowMode::MaxCapacity,
            RowMode::HighPerformance,
            0
        ));
        // Both rows are guarded from the moment of dispatch.
        assert!(e.is_row_pending(1, 7));
        assert!(e.is_row_pending(3, 40));
        assert!(!e.is_row_pending(1, 40));

        // The start is the source ACT on the owning bank.
        let c = e.next_command(1, None, 0).unwrap();
        assert_eq!((c.command, c.row), (Command::Act, 7));
        e.note_act(1, 0);
        assert!(e.is_busy(1) && e.is_busy(3), "both banks carry a role");
        assert_eq!(e.blocked_row(1), Some(7));
        assert_eq!(e.blocked_row(3), Some(40), "dest row blocks from start");

        // The destination ACT is offered immediately — concurrent with
        // the read-out.
        let c = e.next_command(3, None, 1).unwrap();
        assert_eq!(
            (c.command, c.row, c.mode),
            (Command::Act, 40, RowMode::MaxCapacity)
        );
        e.note_act(3, 1);
        assert!(e.is_mid_phase(3));

        // Writes stay strictly behind reads.
        assert!(
            e.next_command(3, Some((40, RowMode::MaxCapacity)), 2)
                .is_none(),
            "no data read yet → no write burst"
        );
        let c = e
            .next_command(1, Some((7, RowMode::MaxCapacity)), 2)
            .unwrap();
        assert_eq!(c.command, Command::Rd);
        e.note_column(1, 2);
        let c = e
            .next_command(3, Some((40, RowMode::MaxCapacity)), 3)
            .unwrap();
        assert_eq!(c.command, Command::Wr, "one read releases one write");
        e.note_column(3, 3);
        assert!(e
            .next_command(3, Some((40, RowMode::MaxCapacity)), 4)
            .is_none());

        // Drain the remaining reads; writes catch up but the destination
        // PRE still waits for the couple point.
        for i in 0..15 {
            e.note_column(1, 10 + i);
        }
        for i in 0..15 {
            let c = e
                .next_command(3, Some((40, RowMode::MaxCapacity)), 40 + i)
                .unwrap();
            assert_eq!(c.command, Command::Wr);
            e.note_column(3, 40 + i);
        }
        assert!(
            e.next_command(3, Some((40, RowMode::MaxCapacity)), 60)
                .is_none(),
            "write-back complete but the couple point has not passed"
        );
        // Source PRE = the couple point; the source bank frees entirely.
        let c = e
            .next_command(1, Some((7, RowMode::MaxCapacity)), 61)
            .unwrap();
        assert_eq!(c.command, Command::Pre);
        assert_eq!(
            e.note_pre(1, 61),
            MigrationStep::Couple {
                row: 7,
                to: RowMode::HighPerformance
            }
        );
        assert_eq!(e.blocked_row(1), None, "source bank freed at couple");
        assert!(e.is_busy(1), "owner stays busy until the move lands");
        // Destination PRE completes the job.
        let c = e
            .next_command(3, Some((40, RowMode::MaxCapacity)), 70)
            .unwrap();
        assert_eq!(c.command, Command::Pre);
        assert_eq!(
            e.note_pre(3, 70),
            MigrationStep::Complete {
                row: 7,
                to: RowMode::HighPerformance,
                cross_bank: true,
                dispatched_at: 0,
            }
        );
        assert!(!e.is_busy(1) && !e.is_busy(3));
        assert!(!e.is_row_pending(1, 7) && !e.is_row_pending(3, 40));
        let mut done = Vec::new();
        e.drain_completed_into(&mut done);
        assert_eq!(done, vec![(1, 7, RowMode::HighPerformance)]);
        let mut events = Vec::new();
        e.drain_placements_into(&mut events);
        assert_eq!(
            events,
            vec![PlacementEvent {
                kind: JobKind::Couple,
                bank: 1,
                row: 7,
                dest_bank: 3,
                dest: 40,
            }]
        );
    }

    #[test]
    fn queued_start_waits_for_a_free_destination_bank() {
        let mut e = engine(None);
        e.dispatch_couple(
            0,
            1,
            2,
            40,
            RowMode::MaxCapacity,
            RowMode::HighPerformance,
            0,
        );
        e.dispatch_couple(
            1,
            5,
            2,
            41,
            RowMode::MaxCapacity,
            RowMode::HighPerformance,
            0,
        );
        e.note_act(0, 0); // first job takes banks 0 and 2
        assert_eq!(
            e.queued_start(1),
            None,
            "second job's dest bank is occupied"
        );
        assert!(e.next_command(1, None, 5).is_none());
        // A bank serving as a destination cannot start its own queue
        // either.
        e.dispatch(2, 9, 50, RowMode::MaxCapacity, RowMode::HighPerformance, 0);
        assert_eq!(e.queued_start(2), None);
    }

    #[test]
    fn evacuation_stages_and_fill_lands_a_frame_move() {
        let mut e = engine(None);
        // Cross-channel stage 1: read the full row out.
        assert!(e.dispatch_evacuate_out(0, 9, 0));
        assert_eq!(e.bursts_per_frame_move(), 32);
        let c = e.next_command(0, None, 0).unwrap();
        assert_eq!((c.command, c.row), (Command::Act, 9));
        e.note_act(0, 0);
        for i in 0..32 {
            e.note_column(0, 1 + i);
        }
        let step = e.note_pre(0, 50);
        assert_eq!(
            step,
            MigrationStep::StagedOut {
                bank: 0,
                row: 9,
                dispatched_at: 0
            }
        );
        assert!(!e.is_busy(0));
        assert!(
            e.is_row_pending(0, 9),
            "staged-out source stays reserved until the landing is confirmed"
        );
        assert!(e.release(0, 9), "the system releases it after the fill");

        // Stage 2 on the destination channel: a fill-in adopting the
        // system's reservation.
        assert!(e.reserve(2, 17));
        assert!(e.dispatch_fill(2, 17, true, 60));
        let c = e.next_command(2, None, 60).unwrap();
        assert_eq!(
            (c.command, c.row, c.mode),
            (Command::Act, 17, RowMode::MaxCapacity)
        );
        e.note_act(2, 60);
        for i in 0..32 {
            let c = e
                .next_command(2, Some((17, RowMode::MaxCapacity)), 61 + i)
                .unwrap();
            assert_eq!(c.command, Command::Wr, "burst {i}");
            e.note_column(2, 61 + i);
        }
        let step = e.note_pre(2, 120);
        assert_eq!(
            step,
            MigrationStep::Filled {
                bank: 2,
                row: 17,
                dispatched_at: 60
            }
        );
        assert!(!e.is_row_pending(2, 17));
        let mut events = Vec::new();
        e.drain_placements_into(&mut events);
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, JobKind::EvacuateOut);
        assert_eq!(events[1].kind, JobKind::FillIn);
        assert_eq!((events[1].dest_bank, events[1].dest), (2, 17));
    }

    #[test]
    fn same_channel_evacuation_moves_a_whole_row() {
        let mut e = engine(None);
        assert!(e.dispatch_evacuate(0, 9, 1, 17, 0));
        assert!(!e.dispatch_evacuate(0, 9, 0, 17, 0), "same bank refused");
        e.note_act(0, 0);
        e.note_act(1, 1);
        for i in 0..32 {
            e.note_column(0, 2 + i);
            e.note_column(1, 3 + i);
        }
        assert_eq!(e.note_pre(0, 80), MigrationStep::InProgress);
        assert_eq!(
            e.note_pre(1, 90),
            MigrationStep::Evacuated {
                bank: 0,
                row: 9,
                dest_bank: 1,
                dest: 17,
                dispatched_at: 0
            }
        );
        assert_eq!(e.pending_jobs(), 0);
        assert!(!e.is_row_pending(0, 9) && !e.is_row_pending(1, 17));
    }
}
