//! The background row-migration engine: relocation as scheduled DRAM
//! traffic.
//!
//! A mode transition that couples a row (max-capacity →
//! high-performance) halves its usable capacity, so the half-row of data
//! the coupling displaces must physically move first. The legacy model
//! priced that movement as a controller-wide stall
//! ([`RelocationMode::Stall`]); this module instead decomposes each
//! coupling into a per-row [`MigrationJob`] whose phases are *real DRAM
//! commands* issued into idle bank slots:
//!
//! 1. **read-out** — ACT the source row in its current (max-capacity)
//!    mode, stream the displaced half-row out as RD bursts, PRE;
//! 2. **couple** — flip the row's [`ModeTable`] entry (the ISO control
//!    signals are applied at the next activation, §3.3 — no bus
//!    command);
//! 3. **write-back** — ACT the *destination frame* (a max-capacity row
//!    of the same bank, the "new frame" the OS allocated for the
//!    displaced data) and stream the data back as WR bursts, PRE.
//!
//! Decoupling (high-performance → max-capacity) is free at the device
//! level — a coupled logical cell drives both physical cells, so each
//! cell already holds the stored bit — and is applied immediately, as in
//! the stall model.
//!
//! Jobs queue per bank and at most one job per bank is *in flight*.
//! Blocking is row-granular: while a phase's burst train holds the row
//! buffer the bank blocks demand, but between phases only the row whose
//! content is in flux waits — the source until the couple point (and
//! even there, *reads* stay servable: the data sits intact in the row
//! buffer during read-out), the destination until the job completes.
//! Every other bank schedules normally — relocation steals idle
//! command-bus slots instead of freezing the controller.
//!
//! Under [`RelocationMode::Background`] a job *starts* only on a cycle
//! where no demand command could issue, on a bank with no queued demand,
//! outside the tRRD shadow of imminent demand activates; once a phase's
//! ACT has issued, the burst train finishes contiguously (one bus
//! turnaround instead of one per dribbled burst), and a job that demand
//! is actually waiting on finishes at demand priority. Write-back
//! phases preferentially ride write-drain episodes, when the rank is
//! already turned around for writes. Under
//! [`RelocationMode::DeadlineBoosted`] a job that has waited longer
//! than its deadline may also start ahead of demand. An optional
//! [`MigrationRate`] caps job starts per cycle window so a large
//! transition batch cannot monopolize an idle channel right before a
//! demand burst arrives.
//!
//! The engine is driven by the controller, which owns all protocol state;
//! this module tracks job progress and answers two questions the
//! controller's event model needs: *which command would migration issue
//! next on bank `b`*, and *from which cycle onward is migration allowed
//! to issue at all* (the rate-limiter window). Both are constant across a
//! dead window, so the skip-ahead bound stays exact.
//!
//! [`ModeTable`]: clr_core::mode::ModeTable

use std::collections::VecDeque;

use clr_core::mode::RowMode;

use crate::command::Command;

/// How mode-transition data movement is realized by the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelocationMode {
    /// Legacy stall-the-world: the batch's priced cost is charged as a
    /// controller-wide queue-service stall and the mode table flips
    /// atomically.
    Stall,
    /// Background migration: couplings become per-row jobs that start
    /// only in idle bank slots; an in-flight job finishes eagerly so its
    /// bank unblocks quickly.
    Background,
    /// Background migration, but a job that has been pending longer than
    /// `deadline_cycles` may also *start* ahead of demand until the
    /// backlog is on time again.
    DeadlineBoosted {
        /// Pending age (in DRAM cycles, from dispatch) past which
        /// migration job starts take priority over demand.
        deadline_cycles: u64,
    },
}

/// Rate limit on background-migration bandwidth: at most `max_starts`
/// migration *jobs may start* per `window_cycles`-cycle window (windows
/// are aligned to cycle 0, so the limit is deterministic and skip-ahead
/// can price the next window boundary exactly). Limiting starts rather
/// than individual commands caps bandwidth — every start implies one
/// job's fixed command budget — without ever gating an in-flight job,
/// which would leave its bank blocked while waiting for tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationRate {
    /// Window length in DRAM cycles.
    pub window_cycles: u64,
    /// Migration-job starts allowed per window.
    pub max_starts: u64,
}

/// Relocation configuration carried by
/// [`MemConfig`](crate::config::MemConfig).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RelocationConfig {
    /// The relocation realization.
    pub mode: RelocationMode,
    /// Optional migration-bandwidth cap (background modes only).
    pub rate: Option<MigrationRate>,
}

impl MigrationRate {
    /// A moderate default pacing: four job starts per 2048-cycle window
    /// (≈7 % of command-bus slots at this crate's default job sizes) —
    /// enough to drain a sane policy's per-epoch batch within the epoch,
    /// while a pathologically churning policy cannot flood the bus with
    /// relocation traffic.
    pub fn default_pacing() -> Self {
        MigrationRate {
            window_cycles: 2048,
            max_starts: 4,
        }
    }
}

impl RelocationConfig {
    /// Pure background migration, unlimited bandwidth.
    pub fn background() -> Self {
        RelocationConfig {
            mode: RelocationMode::Background,
            rate: None,
        }
    }

    /// Background migration with the default start pacing
    /// ([`MigrationRate::default_pacing`]).
    pub fn background_paced() -> Self {
        RelocationConfig {
            mode: RelocationMode::Background,
            rate: Some(MigrationRate::default_pacing()),
        }
    }

    /// Whether this configuration migrates in the background (any
    /// non-stall mode).
    pub fn is_background(&self) -> bool {
        self.mode != RelocationMode::Stall
    }
}

impl Default for RelocationConfig {
    fn default() -> Self {
        RelocationConfig {
            mode: RelocationMode::Stall,
            rate: None,
        }
    }
}

/// Which half of the data movement a job is executing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobPhase {
    /// ACT in the old mode, RD bursts, PRE — then the couple point.
    ReadOut,
    /// ACT in the new mode, WR bursts, PRE — then the job is complete.
    WriteBack,
}

/// One row's relocation, decomposed into commands.
#[derive(Debug, Clone, Copy)]
pub struct MigrationJob {
    /// The row being coupled.
    pub row: u32,
    /// The max-capacity row receiving the displaced half-row's data (the
    /// "new frame"). The write-back activates *this* row, so the coupled
    /// source row is usable by demand from the couple point on; only the
    /// (cold, OS-allocated) destination blocks during write-back.
    pub dest: u32,
    /// Mode before the transition.
    pub from: RowMode,
    /// Mode after the transition.
    pub to: RowMode,
    /// Cycle the job was dispatched (drives the deadline boost).
    pub dispatched_at: u64,
    phase: JobPhase,
    /// Whether the current phase's ACT has issued (a refresh that closes
    /// the bank clears this; the phase re-activates and continues).
    opened: bool,
    /// Column bursts remaining in the current phase.
    remaining: u32,
}

/// The migration command the engine wants to issue next on a bank, with
/// the mode its timing must respect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NextMigrationCommand {
    /// The command.
    pub command: Command,
    /// Row the command targets (the job row for ACT/RD/WR; the bank's
    /// open row for a starting PRE).
    pub row: u32,
    /// Mode governing the command's timings.
    pub mode: RowMode,
}

/// What happened when the controller told the engine a migration command
/// issued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationStep {
    /// The job made progress but still owns the bank.
    InProgress,
    /// The read-out phase finished: the controller must flip the row's
    /// mode-table entry now (the couple point).
    Couple {
        /// Row to flip.
        row: u32,
        /// Mode to flip it to.
        to: RowMode,
    },
    /// The job finished; the bank is free again.
    Complete {
        /// The migrated row.
        row: u32,
        /// Its (already applied) final mode.
        to: RowMode,
    },
}

/// Per-bank job queues plus the rate limiter — the bookkeeping half of
/// background migration (the controller owns all protocol state).
#[derive(Debug)]
pub struct MigrationEngine {
    cfg: RelocationConfig,
    /// Column bursts per phase: the displaced half-row at one burst per
    /// column access (matches the relocation cost model's
    /// `bursts_per_row`).
    bursts_per_phase: u32,
    queues: Vec<VecDeque<MigrationJob>>,
    active: Vec<Option<MigrationJob>>,
    /// Banks with an in-flight job (whole-job granularity).
    busy: Vec<bool>,
    /// Banks whose in-flight job currently *holds the row buffer* (its
    /// phase ACT has issued): the whole bank blocks demand. Between
    /// phases only the migrating row blocks (see `row_block`).
    held: Vec<bool>,
    /// The migrating row per bank (`u32::MAX` when none): demand to this
    /// row waits for the whole job — its content is in flux — while the
    /// bank's other rows stay schedulable whenever the bank is not held.
    row_block: Vec<u32>,
    /// The source row per bank while its job is in the read-out phase
    /// (`u32::MAX` otherwise): reads to it remain servable (see
    /// [`MigrationEngine::read_ok_rows`]).
    readout_src: Vec<u32>,
    pending_jobs: usize,
    /// Completed `(bank, row, mode)` transitions awaiting a drain by the
    /// policy driver.
    completed: Vec<(u32, u32, RowMode)>,
    /// Rate-limiter state: the window index last charged and the
    /// commands issued within it.
    window_index: u64,
    issued_in_window: u64,
    /// Round-robin start bank so one bank's backlog cannot starve the
    /// others.
    rr_next: usize,
}

impl MigrationEngine {
    /// An engine for `banks` banks moving `half_row_bytes` per job at
    /// `burst_bytes` per column access.
    pub fn new(cfg: RelocationConfig, banks: usize, half_row_bytes: u64, burst_bytes: u64) -> Self {
        let bursts = half_row_bytes.div_ceil(burst_bytes.max(1)).max(1) as u32;
        MigrationEngine {
            cfg,
            bursts_per_phase: bursts,
            queues: vec![VecDeque::new(); banks],
            active: vec![None; banks],
            busy: vec![false; banks],
            held: vec![false; banks],
            row_block: vec![u32::MAX; banks],
            readout_src: vec![u32::MAX; banks],
            pending_jobs: 0,
            completed: Vec::new(),
            window_index: 0,
            issued_in_window: 0,
            rr_next: 0,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &RelocationConfig {
        &self.cfg
    }

    /// Column bursts per job phase.
    pub fn bursts_per_phase(&self) -> u32 {
        self.bursts_per_phase
    }

    /// Jobs dispatched but not yet complete (queued + in flight).
    pub fn pending_jobs(&self) -> usize {
        self.pending_jobs
    }

    /// Whether bank `b` has an in-flight job (started, not complete).
    pub fn is_busy(&self, bank: usize) -> bool {
        self.busy[bank]
    }

    /// Whether bank `b`'s in-flight job is mid-phase (its phase ACT has
    /// issued, so the job holds the row buffer and the whole bank blocks
    /// demand). A mid-phase job should finish its burst train
    /// contiguously: dribbling the bursts one idle slot at a time would
    /// pay the rank-level read/write turnaround penalties once per burst
    /// instead of once per phase.
    pub fn is_mid_phase(&self, bank: usize) -> bool {
        self.held[bank]
    }

    /// Whether bank `b`'s in-flight job is waiting to open its
    /// *write-back* phase. The controller aligns these with write-drain
    /// episodes: a WR burst train injected while the rank serves reads
    /// pays a write→read turnaround that blocks the whole rank, but
    /// during a drain the bus is already turned around for writes.
    pub fn pending_writeback_act(&self, bank: usize) -> bool {
        self.active[bank].is_some_and(|j| !j.opened && j.phase == JobPhase::WriteBack)
    }

    /// Per-bank whole-bank demand-blocking flags for the scheduler: set
    /// exactly while a job holds the bank's row buffer.
    pub fn held_banks(&self) -> &[bool] {
        &self.held
    }

    /// Per-bank migrating-row blocks for the scheduler (`u32::MAX` =
    /// none): the row whose content is in flux for the whole job
    /// lifetime.
    pub fn blocked_rows(&self) -> &[u32] {
        &self.row_block
    }

    /// Per-bank rows whose *reads* remain servable despite the block
    /// (`u32::MAX` = none): during the read-out phase the source row sits
    /// intact in the row buffer, so demand read hits interleave with the
    /// migration's own RD bursts — only writes must wait (they would be
    /// lost behind the data already streamed out).
    pub fn read_ok_rows(&self) -> &[u32] {
        &self.readout_src
    }

    /// The migrating row on `bank`, if a job is in flight.
    pub fn blocked_row(&self, bank: usize) -> Option<u32> {
        let r = self.row_block[bank];
        (r != u32::MAX).then_some(r)
    }

    /// Whether a job involving `(bank, row)` — as migration source *or*
    /// write-back destination — is queued or in flight.
    pub fn is_row_pending(&self, bank: usize, row: u32) -> bool {
        self.active[bank].is_some_and(|j| j.row == row || j.dest == row)
            || self.queues[bank]
                .iter()
                .any(|j| j.row == row || j.dest == row)
    }

    /// Dispatches one coupling job whose displaced data lands in `dest`
    /// (a max-capacity row of the same bank). Returns `false` (and does
    /// nothing) if either row already has a pending job.
    #[allow(clippy::too_many_arguments)]
    pub fn dispatch(
        &mut self,
        bank: usize,
        row: u32,
        dest: u32,
        from: RowMode,
        to: RowMode,
        now: u64,
    ) -> bool {
        if self.is_row_pending(bank, row) || self.is_row_pending(bank, dest) || row == dest {
            return false;
        }
        self.queues[bank].push_back(MigrationJob {
            row,
            dest,
            from,
            to,
            dispatched_at: now,
            phase: JobPhase::ReadOut,
            opened: false,
            remaining: self.bursts_per_phase,
        });
        self.pending_jobs += 1;
        true
    }

    /// Whether bank `b` has a queued (not yet started) job past the
    /// deadline-boost threshold at `now` (always `false` outside
    /// [`RelocationMode::DeadlineBoosted`]).
    pub fn is_overdue_start(&self, bank: usize, now: u64) -> bool {
        let RelocationMode::DeadlineBoosted { deadline_cycles } = self.cfg.mode else {
            return false;
        };
        self.queues[bank]
            .front()
            .is_some_and(|j| now.saturating_sub(j.dispatched_at) >= deadline_cycles)
    }

    /// The queued job a closed `bank` could start next, as
    /// `(row, from-mode)` — the event-bound input for start candidates.
    pub fn queued_start(&self, bank: usize) -> Option<(u32, RowMode)> {
        if self.active[bank].is_some() {
            return None;
        }
        self.queues[bank].front().map(|j| (j.row, j.from))
    }

    /// The cycle from which a queued job on `bank` may start *despite
    /// demand* (an open row, or queued demand entries): never under pure
    /// background — the start waits for a demand-free closed bank — and
    /// the job's deadline under [`RelocationMode::DeadlineBoosted`].
    pub fn boosted_start_at(&self, bank: usize) -> Option<u64> {
        let RelocationMode::DeadlineBoosted { deadline_cycles } = self.cfg.mode else {
            return None;
        };
        if self.active[bank].is_some() {
            return None;
        }
        self.queues[bank]
            .front()
            .map(|j| j.dispatched_at.saturating_add(deadline_cycles))
    }

    /// The earliest cycle ≥ `now` at which the rate limiter permits a
    /// migration job to *start* (`now` itself when unlimited or under
    /// budget, the next window boundary when the current window's starts
    /// are exhausted). In-flight jobs are never rate-gated.
    pub fn rate_gate(&self, now: u64) -> u64 {
        let Some(rate) = self.cfg.rate else {
            return now;
        };
        let idx = now / rate.window_cycles;
        if idx != self.window_index || self.issued_in_window < rate.max_starts {
            now
        } else {
            (idx + 1) * rate.window_cycles
        }
    }

    /// The command migration would issue next on `bank`, given the bank's
    /// open row/mode (`None` when the bank has no job it may progress at
    /// `now`). Pure bookkeeping: timing readiness is the controller's
    /// engine's call. In-flight jobs always have a next command; a queued
    /// job starts with ACT on a closed bank, and may start by precharging
    /// an open bank only once overdue under deadline-boosted priority.
    pub fn next_command(
        &self,
        bank: usize,
        open: Option<(u32, RowMode)>,
        now: u64,
    ) -> Option<NextMigrationCommand> {
        if let Some(job) = self.active[bank] {
            let cmd = if !job.opened {
                // Between phases the bank is released to demand; if a
                // demand row is open when the next phase is due, it is
                // closed first.
                if let Some((row, mode)) = open {
                    NextMigrationCommand {
                        command: Command::Pre,
                        row,
                        mode,
                    }
                } else {
                    // Read-out activates the source in its old mode; the
                    // write-back activates the (max-capacity) destination
                    // frame.
                    let (row, mode) = match job.phase {
                        JobPhase::ReadOut => (job.row, job.from),
                        JobPhase::WriteBack => (job.dest, RowMode::MaxCapacity),
                    };
                    NextMigrationCommand {
                        command: Command::Act,
                        row,
                        mode,
                    }
                }
            } else if job.remaining > 0 {
                let command = match job.phase {
                    JobPhase::ReadOut => Command::Rd,
                    JobPhase::WriteBack => Command::Wr,
                };
                let (row, mode) = open.expect("in-flight job holds the bank open");
                NextMigrationCommand { command, row, mode }
            } else {
                let (row, mode) = open.expect("in-flight job holds the bank open");
                NextMigrationCommand {
                    command: Command::Pre,
                    row,
                    mode,
                }
            };
            return Some(cmd);
        }
        let job = self.queues[bank].front()?;
        match open {
            // An open bank is demand territory: only an overdue job under
            // deadline boost may close it to start.
            Some((row, mode)) => {
                if self.is_overdue_start(bank, now) {
                    Some(NextMigrationCommand {
                        command: Command::Pre,
                        row,
                        mode,
                    })
                } else {
                    None
                }
            }
            None => Some(NextMigrationCommand {
                command: Command::Act,
                row: job.row,
                mode: job.from,
            }),
        }
    }

    /// Records that the current phase's ACT issued on `bank` (installs
    /// the job as active first if it was still queued).
    pub fn note_act(&mut self, bank: usize, now: u64) {
        self.bump(bank);
        if self.active[bank].is_none() {
            self.start(bank, now);
        }
        let job = self.active[bank].as_mut().expect("ACT requires a job");
        debug_assert!(!job.opened, "double ACT within a phase");
        job.opened = true;
        self.held[bank] = true;
    }

    /// Records that a migration column burst issued on `bank`.
    pub fn note_column(&mut self, bank: usize, _now: u64) {
        self.bump(bank);
        let job = self.active[bank].as_mut().expect("column requires a job");
        debug_assert!(job.opened && job.remaining > 0);
        job.remaining -= 1;
    }

    /// Records that a migration PRE issued on `bank`: either the starting
    /// PRE that closes a demand row (job still queued), or the
    /// phase-ending PRE. Returns the resulting step so the controller can
    /// apply the couple point or the completion.
    pub fn note_pre(&mut self, bank: usize, now: u64) -> MigrationStep {
        self.bump(bank);
        if self.active[bank].is_none() {
            // Starting PRE: the job takes ownership; its first ACT is next.
            self.start(bank, now);
            return MigrationStep::InProgress;
        }
        let job = self.active[bank].as_mut().expect("PRE requires a job");
        if !job.opened {
            // The job owned the bank but its phase ACT had not issued —
            // only possible for the starting PRE path, which `start`
            // already consumed. Treat as progress (defensive).
            return MigrationStep::InProgress;
        }
        debug_assert_eq!(job.remaining, 0, "PRE before the phase drained");
        self.held[bank] = false;
        match job.phase {
            JobPhase::ReadOut => {
                job.phase = JobPhase::WriteBack;
                job.opened = false;
                job.remaining = self.bursts_per_phase;
                // From the couple point on, the source row is usable in
                // its new mode; only the destination frame still blocks.
                self.row_block[bank] = job.dest;
                self.readout_src[bank] = u32::MAX;
                MigrationStep::Couple {
                    row: job.row,
                    to: job.to,
                }
            }
            JobPhase::WriteBack => {
                let row = job.row;
                let to = job.to;
                self.active[bank] = None;
                self.busy[bank] = false;
                self.row_block[bank] = u32::MAX;
                self.pending_jobs -= 1;
                self.completed.push((bank as u32, row, to));
                MigrationStep::Complete { row, to }
            }
        }
    }

    /// A refresh (or other controller-side maintenance) precharged `bank`
    /// out from under an in-flight job: the current phase must
    /// re-activate before continuing.
    pub fn on_forced_precharge(&mut self, bank: usize) {
        if let Some(job) = self.active[bank].as_mut() {
            job.opened = false;
            self.held[bank] = false;
        }
    }

    /// The bank the round-robin scan should visit first.
    pub fn rr_start(&self) -> usize {
        self.rr_next
    }

    /// Banks that currently have migration work (active job or non-empty
    /// queue), visited from the round-robin pointer.
    pub fn banks_with_work(&self) -> impl Iterator<Item = usize> + '_ {
        let n = self.queues.len();
        (0..n)
            .map(move |i| (self.rr_next + i) % n)
            .filter(move |&b| self.active[b].is_some() || !self.queues[b].is_empty())
    }

    /// Drains completed `(bank, row, mode)` transitions into `out`
    /// (clearing `out` first).
    pub fn drain_completed_into(&mut self, out: &mut Vec<(u32, u32, RowMode)>) {
        out.clear();
        out.append(&mut self.completed);
    }

    /// Installs the bank's front job as in flight, charging one start
    /// against the rate window.
    fn start(&mut self, bank: usize, now: u64) {
        if let Some(rate) = self.cfg.rate {
            let idx = now / rate.window_cycles;
            if idx != self.window_index {
                self.window_index = idx;
                self.issued_in_window = 0;
            }
            self.issued_in_window += 1;
        }
        let job = self.queues[bank]
            .pop_front()
            .expect("start requires a queued job");
        self.busy[bank] = true;
        self.row_block[bank] = job.row;
        self.readout_src[bank] = job.row;
        self.active[bank] = Some(job);
    }

    fn bump(&mut self, bank: usize) {
        self.rr_next = (bank + 1) % self.queues.len().max(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine(rate: Option<MigrationRate>) -> MigrationEngine {
        MigrationEngine::new(
            RelocationConfig {
                mode: RelocationMode::Background,
                rate,
            },
            4,
            1024,
            64,
        )
    }

    #[test]
    fn job_walks_read_out_couple_write_back() {
        let mut e = engine(None);
        assert!(e.dispatch(1, 7, 40, RowMode::MaxCapacity, RowMode::HighPerformance, 0));
        assert!(!e.dispatch(1, 7, 41, RowMode::MaxCapacity, RowMode::HighPerformance, 0));
        assert!(
            !e.dispatch(1, 9, 40, RowMode::MaxCapacity, RowMode::HighPerformance, 0),
            "a busy destination frame refuses a second job"
        );
        assert_eq!(e.pending_jobs(), 1);
        assert_eq!(e.bursts_per_phase(), 16);

        // Bank closed → first command is the read-out ACT in the old mode.
        assert_eq!(e.queued_start(1), Some((7, RowMode::MaxCapacity)));
        let c = e.next_command(1, None, 0).unwrap();
        assert_eq!(c.command, Command::Act);
        assert_eq!(c.mode, RowMode::MaxCapacity);
        assert_eq!(c.row, 7);
        e.note_act(1, 0);
        assert!(e.is_busy(1));
        assert_eq!(e.queued_start(1), None, "in-flight job is not a start");

        assert_eq!(e.blocked_row(1), Some(7), "read-out blocks the source");
        for i in 0..16 {
            let c = e
                .next_command(1, Some((7, RowMode::MaxCapacity)), 10 + i)
                .unwrap();
            assert_eq!(c.command, Command::Rd, "burst {i}");
            e.note_column(1, 10 + i);
        }
        let c = e
            .next_command(1, Some((7, RowMode::MaxCapacity)), 99)
            .unwrap();
        assert_eq!(c.command, Command::Pre);
        let step = e.note_pre(1, 100);
        assert_eq!(
            step,
            MigrationStep::Couple {
                row: 7,
                to: RowMode::HighPerformance
            }
        );

        // Write-back activates the destination frame (max-capacity): the
        // coupled source row is demand-usable from the couple point on.
        assert_eq!(e.blocked_row(1), Some(40), "block moves to the dest");
        let c = e.next_command(1, None, 110).unwrap();
        assert_eq!(c.command, Command::Act);
        assert_eq!(c.row, 40);
        assert_eq!(c.mode, RowMode::MaxCapacity);
        e.note_act(1, 120);
        for i in 0..16 {
            let c = e
                .next_command(1, Some((40, RowMode::MaxCapacity)), 130 + i)
                .unwrap();
            assert_eq!(c.command, Command::Wr, "burst {i}");
            e.note_column(1, 130 + i);
        }
        let step = e.note_pre(1, 300);
        assert_eq!(
            step,
            MigrationStep::Complete {
                row: 7,
                to: RowMode::HighPerformance
            }
        );
        assert!(!e.is_busy(1));
        assert_eq!(e.pending_jobs(), 0);
        let mut done = Vec::new();
        e.drain_completed_into(&mut done);
        assert_eq!(done, vec![(1, 7, RowMode::HighPerformance)]);
    }

    #[test]
    fn pure_background_never_starts_on_an_open_bank() {
        let mut e = engine(None);
        e.dispatch(0, 3, 40, RowMode::MaxCapacity, RowMode::HighPerformance, 0);
        // The bank is open with a demand row: no start command until the
        // bank closes (demand territory).
        assert!(e
            .next_command(0, Some((9, RowMode::MaxCapacity)), 1_000_000)
            .is_none());
        assert_eq!(e.boosted_start_at(0), None);
        // Once closed, the start ACT is offered.
        let c = e.next_command(0, None, 1_000_000).unwrap();
        assert_eq!(c.command, Command::Act);
        assert_eq!(c.row, 3);
    }

    #[test]
    fn overdue_deadline_start_precharges_the_open_demand_row() {
        let mut e = MigrationEngine::new(
            RelocationConfig {
                mode: RelocationMode::DeadlineBoosted {
                    deadline_cycles: 100,
                },
                rate: None,
            },
            4,
            1024,
            64,
        );
        e.dispatch(0, 3, 40, RowMode::MaxCapacity, RowMode::HighPerformance, 50);
        assert_eq!(e.boosted_start_at(0), Some(150));
        // Before the deadline: the open bank is left to demand.
        assert!(!e.is_overdue_start(0, 149));
        assert!(e
            .next_command(0, Some((9, RowMode::MaxCapacity)), 149)
            .is_none());
        // Past it: the start may close the demand row.
        assert!(e.is_overdue_start(0, 150));
        let c = e
            .next_command(0, Some((9, RowMode::MaxCapacity)), 150)
            .unwrap();
        assert_eq!(c.command, Command::Pre);
        assert_eq!(c.row, 9, "closes the demand row, not the job row");
        assert_eq!(e.note_pre(0, 150), MigrationStep::InProgress);
        assert!(e.is_busy(0), "the starting PRE takes bank ownership");
        let c = e.next_command(0, None, 151).unwrap();
        assert_eq!(c.command, Command::Act);
        assert_eq!(c.row, 3);
    }

    #[test]
    fn forced_precharge_restarts_the_phase_act() {
        let mut e = engine(None);
        e.dispatch(2, 1, 40, RowMode::MaxCapacity, RowMode::HighPerformance, 0);
        e.note_act(2, 0);
        e.note_column(2, 10);
        e.on_forced_precharge(2);
        let c = e.next_command(2, None, 50).unwrap();
        assert_eq!(c.command, Command::Act, "phase re-activates after refresh");
        e.note_act(2, 50);
        // The burst already transferred stays transferred.
        let mut remaining = 0;
        while e
            .next_command(2, Some((1, RowMode::MaxCapacity)), 60 + remaining)
            .unwrap()
            .command
            == Command::Rd
        {
            e.note_column(2, 60 + remaining);
            remaining += 1;
        }
        assert_eq!(remaining, 15, "one of 16 bursts was already done");
    }

    #[test]
    fn rate_limiter_gates_job_starts_only() {
        let rate = MigrationRate {
            window_cycles: 100,
            max_starts: 1,
        };
        let mut e = engine(Some(rate));
        e.dispatch(0, 1, 40, RowMode::MaxCapacity, RowMode::HighPerformance, 0);
        e.dispatch(2, 5, 40, RowMode::MaxCapacity, RowMode::HighPerformance, 0);
        assert_eq!(e.rate_gate(5), 5);
        e.note_act(0, 5); // first start charges the window
                          // Window 0 exhausted for *starts*: gate jumps to the boundary...
        assert_eq!(e.rate_gate(11), 100);
        assert_eq!(e.rate_gate(99), 100);
        // ...but the in-flight job's own commands are never gated.
        e.note_column(0, 10);
        e.note_column(0, 20);
        assert_eq!(e.rate_gate(99), 100, "columns do not charge the window");
        // New window: the second job may start, counter reset on charge.
        assert_eq!(e.rate_gate(100), 100);
        e.note_act(2, 100);
        assert_eq!(e.rate_gate(101), 200);
    }

    #[test]
    fn round_robin_rotates_across_banks_with_work() {
        let mut e = engine(None);
        e.dispatch(0, 1, 40, RowMode::MaxCapacity, RowMode::HighPerformance, 0);
        e.dispatch(2, 5, 40, RowMode::MaxCapacity, RowMode::HighPerformance, 0);
        let first: Vec<usize> = e.banks_with_work().collect();
        assert_eq!(first, vec![0, 2]);
        e.note_act(0, 0);
        let next: Vec<usize> = e.banks_with_work().collect();
        assert_eq!(next, vec![2, 0], "pointer moved past the served bank");
    }
}
