//! The controller-side refresh scheduler: up to two heterogeneous refresh
//! streams (§3.6, §5.2).
//!
//! Each stream issues REF commands at its own effective tREFI covering the
//! row population of one operating mode; high-performance bundles complete
//! in a smaller tRFC and (with extended windows) arrive less often.

use clr_core::mode::RowMode;
use clr_core::refresh::RefreshPlan;

/// State of one refresh stream.
#[derive(Debug, Clone)]
struct StreamState {
    mode: RowMode,
    interval_cycles: f64,
    next_due: f64,
    rfc_cycles: u64,
}

/// Tracks when each refresh stream's next REF command is due.
#[derive(Debug, Clone)]
pub struct RefreshScheduler {
    streams: Vec<StreamState>,
    issued: [u64; 2],
}

impl RefreshScheduler {
    /// Builds the scheduler from a [`RefreshPlan`] and the DRAM clock
    /// period.
    pub fn new(plan: &RefreshPlan, t_ck_ns: f64, rfc_cycles_of: impl Fn(RowMode) -> u64) -> Self {
        Self::new_at(plan, t_ck_ns, rfc_cycles_of, 0)
    }

    /// Builds the scheduler with its first REF of each stream due one
    /// interval after `start_cycle`.
    pub fn new_at(
        plan: &RefreshPlan,
        t_ck_ns: f64,
        rfc_cycles_of: impl Fn(RowMode) -> u64,
        start_cycle: u64,
    ) -> Self {
        let streams = plan
            .streams()
            .iter()
            .map(|s| {
                let interval_cycles = s.interval_ns / t_ck_ns;
                StreamState {
                    mode: s.mode,
                    interval_cycles,
                    next_due: start_cycle as f64 + interval_cycles,
                    rfc_cycles: rfc_cycles_of(s.mode),
                }
            })
            .collect();
        RefreshScheduler {
            streams,
            issued: [0, 0],
        }
    }

    /// Rebuilds this scheduler for a retuned refresh plan (the mode
    /// population changed mid-run), **preserving each surviving stream's
    /// due time and issue counts**. A stream whose mode also existed
    /// before keeps its old `next_due` (clamped to at most one new
    /// interval out, in case the interval shrank); a newly appearing
    /// stream starts one interval after `now`. Without the carry-over, a
    /// retune every policy epoch would push refresh forever into the
    /// future and silently starve it.
    pub fn retuned(
        &self,
        plan: &RefreshPlan,
        t_ck_ns: f64,
        rfc_cycles_of: impl Fn(RowMode) -> u64,
        now: u64,
    ) -> Self {
        let streams = plan
            .streams()
            .iter()
            .map(|s| {
                let interval_cycles = s.interval_ns / t_ck_ns;
                let fresh_due = now as f64 + interval_cycles;
                let next_due = match self.streams.iter().find(|o| o.mode == s.mode) {
                    Some(old) => old.next_due.min(fresh_due),
                    // A newly appearing stream anchors to the absolute
                    // tREFI grid (hardware refresh counters free-run), so
                    // *when* it is created does not shift its phase — a
                    // mode population that reaches a given state via a
                    // stall apply and via background migration sees the
                    // same refresh train, instead of diverging on an
                    // arbitrary creation-cycle offset.
                    None => ((now as f64 / interval_cycles).floor() + 1.0) * interval_cycles,
                };
                StreamState {
                    mode: s.mode,
                    interval_cycles,
                    next_due,
                    rfc_cycles: rfc_cycles_of(s.mode),
                }
            })
            .collect();
        RefreshScheduler {
            streams,
            issued: self.issued,
        }
    }

    /// A scheduler that never issues refreshes (for microbenchmarks).
    pub fn disabled() -> Self {
        RefreshScheduler {
            streams: Vec::new(),
            issued: [0, 0],
        }
    }

    /// The first cycle at which any stream's next REF becomes due, or
    /// `None` when refresh is disabled. This is the refresh stream's
    /// contribution to the controller's next-event computation: for every
    /// cycle strictly before it, [`RefreshScheduler::due`] returns `None`.
    pub fn next_due_cycle(&self) -> Option<u64> {
        self.streams
            .iter()
            .map(|s| s.next_due.max(0.0).ceil() as u64)
            .min()
    }

    /// The stream (mode, tRFC cycles) whose REF is due at `now`, if any.
    /// When both streams are due the more overdue one wins.
    pub fn due(&self, now: u64) -> Option<(RowMode, u64)> {
        self.streams
            .iter()
            .filter(|s| s.next_due <= now as f64)
            .max_by(|a, b| {
                let oa = now as f64 - a.next_due;
                let ob = now as f64 - b.next_due;
                oa.partial_cmp(&ob).expect("refresh overdue is finite")
            })
            .map(|s| (s.mode, s.rfc_cycles))
    }

    /// Marks the due REF of `mode` as issued, scheduling the next one.
    ///
    /// If no stream of that mode exists — the plan was retuned while this
    /// REF was pending and the mode's population dropped to zero — the
    /// issue is still counted but nothing is rescheduled.
    pub fn mark_issued(&mut self, mode: RowMode) {
        if let Some(s) = self.streams.iter_mut().find(|s| s.mode == mode) {
            s.next_due += s.interval_cycles;
        }
        match mode {
            RowMode::MaxCapacity => self.issued[0] += 1,
            RowMode::HighPerformance => self.issued[1] += 1,
        }
    }

    /// REF commands issued so far as `(max_capacity, high_performance)`.
    pub fn issued(&self) -> (u64, u64) {
        (self.issued[0], self.issued[1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clr_core::timing::ClrTimings;

    fn plan(fraction_hp: f64, refw: f64) -> RefreshPlan {
        RefreshPlan::new(&ClrTimings::from_circuit_defaults(), fraction_hp, refw)
    }

    #[test]
    fn baseline_stream_fires_every_trefi() {
        let t_ck = 1.0 / 1.2;
        let mut rs = RefreshScheduler::new(&plan(0.0, 64.0), t_ck, |_| 660);
        // tREFI = 7812.5 ns ≈ 9375 cycles.
        assert!(rs.due(0).is_none());
        assert!(rs.due(9374).is_none());
        let (mode, rfc) = rs.due(9375).expect("due at tREFI");
        assert_eq!(mode, RowMode::MaxCapacity);
        assert_eq!(rfc, 660);
        rs.mark_issued(mode);
        assert!(rs.due(9376).is_none());
        assert!(rs.due(2 * 9375).is_some());
    }

    #[test]
    fn mixed_population_runs_two_streams() {
        let t_ck = 1.0 / 1.2;
        let mut rs = RefreshScheduler::new(&plan(0.5, 194.0), t_ck, |m| match m {
            RowMode::MaxCapacity => 660,
            RowMode::HighPerformance => 295,
        });
        // Drain a long horizon; both streams must fire, MC more often per
        // window-row than HP because HP's window is 3× longer.
        let mut now = 0u64;
        for _ in 0..200 {
            while let Some((mode, _)) = rs.due(now) {
                rs.mark_issued(mode);
            }
            now += 10_000;
        }
        let (mc, hp) = rs.issued();
        assert!(mc > 0 && hp > 0);
        // MC covers half the rows at 64 ms; HP half at 194 ms → ratio ≈ 3.03.
        let ratio = mc as f64 / hp as f64;
        assert!((ratio - 194.0 / 64.0).abs() < 0.2, "ratio {ratio}");
    }

    #[test]
    fn disabled_scheduler_never_fires() {
        let rs = RefreshScheduler::disabled();
        assert!(rs.due(u64::MAX / 2).is_none());
        assert!(rs.next_due_cycle().is_none());
    }

    #[test]
    fn next_due_cycle_is_tight() {
        let t_ck = 1.0 / 1.2;
        let mut rs = RefreshScheduler::new(&plan(0.0, 64.0), t_ck, |_| 660);
        let due = rs.next_due_cycle().expect("one stream");
        assert!(rs.due(due - 1).is_none(), "due one cycle early");
        assert!(rs.due(due).is_some(), "not due at the predicted cycle");
        rs.mark_issued(RowMode::MaxCapacity);
        let due2 = rs.next_due_cycle().expect("rescheduled");
        assert!(due2 > due);
        assert!(rs.due(due2 - 1).is_none());
        assert!(rs.due(due2).is_some());
    }
}
