//! Memory requests exchanged between the cache hierarchy and the
//! controller.

use clr_core::addr::PhysAddr;

/// Read or write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RequestKind {
    /// A demand (or writeback-triggered) cache-line fill.
    Read,
    /// A dirty-line writeback. Writes are posted: the sender never waits.
    Write,
}

/// One cache-line-granularity memory request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRequest {
    /// Caller-chosen identifier returned on completion.
    pub id: u64,
    /// Physical address of the line (after page placement translation).
    pub addr: PhysAddr,
    /// Read or write.
    pub kind: RequestKind,
    /// DRAM cycle at which the request entered the controller clock
    /// domain.
    pub arrival_cycle: u64,
}

impl MemRequest {
    /// Creates a request.
    pub fn new(id: u64, addr: PhysAddr, kind: RequestKind, arrival_cycle: u64) -> Self {
        MemRequest {
            id,
            addr,
            kind,
            arrival_cycle,
        }
    }
}

/// A completed read returned to the cache hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// Identifier of the finished request.
    pub id: u64,
    /// DRAM cycle at which the last data beat arrived.
    pub finish_cycle: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_construction() {
        let r = MemRequest::new(7, PhysAddr(0x1000), RequestKind::Read, 42);
        assert_eq!(r.id, 7);
        assert_eq!(r.arrival_cycle, 42);
        assert_eq!(r.kind, RequestKind::Read);
    }
}
