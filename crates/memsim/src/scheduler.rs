//! FR-FCFS-Cap request scheduling (Table 2; the policy of Mutlu &
//! Moscibroda, "Stall-Time Fair Memory Access Scheduling", MICRO 2007 —
//! reference 71 of the paper).
//!
//! FR-FCFS serves ready row-buffer hits before older row misses to
//! maximize row-buffer locality; the *Cap* variant bounds how many younger
//! hits may bypass an older request to the same bank, restoring fairness
//! under streaming interference.
//!
//! # Implementation: per-bank lanes
//!
//! A naive FR-FCFS scan is O(queue²) per cycle (every hit candidate
//! re-scans the queue for an older same-bank waiter) plus an O(n log n)
//! sort for the oldest-first pass. This module instead aggregates the
//! queue into per-bank *lanes* in one O(queue) pass over a reusable
//! [`SchedScratch`]:
//!
//! * the oldest entry per bank plus the oldest entry targeting a
//!   *different* row, which makes the FR-FCFS-Cap "older waiter exists"
//!   test O(1) per candidate;
//! * the oldest ready-row-hit per bank (split by read/write, since their
//!   column commands have different timing readiness) and the oldest
//!   non-hit, so both scheduling passes and the skip-ahead engine's
//!   [`next_ready_cycle`] only visit banks that actually have pending
//!   work — one timing-engine query per (bank, command class) instead of
//!   one per request.
//!
//! Within a (bank, command-class) lane every entry shares the same command
//! and the same timing readiness, so the lane's oldest entry is a faithful
//! representative: the aggregated pick is decision-for-decision identical
//! to the naive scan (the differential test in `tests/` enforces this at
//! the whole-simulation level).

use clr_core::addr::DramAddr;
use clr_core::mode::RowMode;

use crate::bankstate::BankState;
use crate::command::Command;
use crate::engine::{Target, TimingEngine};
use crate::request::MemRequest;

/// A queued request with its decoded coordinates and service bookkeeping.
#[derive(Debug, Clone, Copy)]
pub struct QueueEntry {
    /// The original request.
    pub request: MemRequest,
    /// Decoded DRAM coordinates.
    pub decoded: DramAddr,
    /// Pre-flattened engine target (mode = target row's mode).
    pub target: Target,
    /// Whether the scheduler had to activate a row for this request.
    pub needed_act: bool,
    /// Whether the scheduler had to precharge a conflicting row.
    pub needed_pre: bool,
    /// Whether the first service attempt has classified this request
    /// (hit/miss/conflict).
    pub classified: bool,
    /// Wait-cause charge ledger (inert unless the controller has blame
    /// attribution enabled).
    pub blame: clr_obs::BlameLedger,
}

/// The scheduling decision for one cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decision {
    /// Index into the queue of the chosen request.
    pub queue_index: usize,
    /// The command to issue on its behalf this cycle.
    pub command: Command,
}

/// Per-bank aggregation of one queue (see the module docs).
#[derive(Debug, Clone, Copy)]
struct Lane {
    /// Validity stamp (lanes are reused across calls without clearing).
    stamp: u64,
    /// Oldest entry overall: `(arrival, queue index, row)`.
    oldest: (u64, usize, u32),
    /// Oldest arrival among entries whose row differs from `oldest`'s
    /// row (`u64::MAX` if the bank's entries all target one row).
    oldest_other_row: u64,
    /// Oldest ready-row-hit read: `(arrival, queue index)`.
    hit_rd: Option<(u64, usize)>,
    /// Oldest ready-row-hit write.
    hit_wr: Option<(u64, usize)>,
    /// Oldest non-hit entry (needs PRE on an open bank, ACT on a closed
    /// one).
    miss: Option<(u64, usize)>,
}

impl Lane {
    fn fresh(stamp: u64) -> Self {
        Lane {
            stamp,
            oldest: (u64::MAX, usize::MAX, 0),
            oldest_other_row: u64::MAX,
            hit_rd: None,
            hit_wr: None,
            miss: None,
        }
    }

    /// Folds one queue entry into the lane. Comparisons are lexicographic
    /// on `(arrival, queue index)`, so the fold is *order-independent*:
    /// folding the bank's entries in any order produces the same lane as
    /// the queue-order pass (the incremental [`LaneCache`] rebuilds from
    /// unordered per-bank index lists).
    fn fold(&mut self, e: &QueueEntry, i: usize, open_row_hit: bool) {
        let arrival = e.request.arrival_cycle;
        let row = e.decoded.row;
        if (arrival, i) < (self.oldest.0, self.oldest.1) {
            if row != self.oldest.2 && self.oldest.1 != usize::MAX {
                // The displaced oldest is the best "other row" candidate:
                // its arrival is a lower bound on every other entry's.
                self.oldest_other_row = self.oldest.0;
            }
            self.oldest = (arrival, i, row);
        } else if row != self.oldest.2 && arrival < self.oldest_other_row {
            self.oldest_other_row = arrival;
        }
        if open_row_hit {
            let slot = match e.request.kind {
                crate::request::RequestKind::Read => &mut self.hit_rd,
                crate::request::RequestKind::Write => &mut self.hit_wr,
            };
            if slot.is_none_or(|(a, j)| (arrival, i) < (a, j)) {
                *slot = Some((arrival, i));
            }
        } else if self.miss.is_none_or(|(a, j)| (arrival, i) < (a, j)) {
            self.miss = Some((arrival, i));
        }
    }

    /// Whether a strictly older entry targeting a row other than `row`
    /// waits in this bank — the FR-FCFS-Cap fairness test, O(1).
    fn older_waiter(&self, arrival: u64, row: u32) -> bool {
        if row != self.oldest.2 {
            self.oldest.0 < arrival
        } else {
            self.oldest_other_row < arrival
        }
    }
}

/// Reusable per-bank scratch for [`pick`] and [`next_ready_cycle`].
///
/// Owning it on the controller avoids a per-cycle allocation; lanes are
/// invalidated by stamping rather than clearing, so a call touches only
/// the banks that have queued work.
#[derive(Debug, Default)]
pub struct SchedScratch {
    lanes: Vec<Lane>,
    /// Banks with at least one queued entry this pass, in first-touch
    /// order.
    touched: Vec<usize>,
    stamp: u64,
}

/// Whether `(bank, row)` is excluded from scheduling by a per-bank row
/// block (`u32::MAX` sentinel = no block; an empty slice blocks nothing).
/// A background migration blocks exactly the row whose content is in
/// flux for its job's whole lifetime — except that *reads* stay servable
/// while the row is listed in `read_ok_rows` (the read-out phase keeps
/// the source's data intact in the row buffer).
fn entry_excluded(
    blocked_rows: &[u32],
    read_ok_rows: &[u32],
    bank: usize,
    row: u32,
    kind: crate::request::RequestKind,
) -> bool {
    if blocked_rows.get(bank).is_none_or(|&r| r != row) {
        return false;
    }
    !(kind == crate::request::RequestKind::Read
        && read_ok_rows.get(bank).is_some_and(|&r| r == row))
}

/// Builds the per-bank lanes for `entries` into `scratch` (one O(n)
/// pass). Entries whose row is blocked are left out of the lanes
/// entirely: they neither issue nor contribute to readiness bounds until
/// the block lifts (a scheduling event).
fn analyze(
    entries: &[QueueEntry],
    banks: &[BankState],
    scratch: &mut SchedScratch,
    blocked_rows: &[u32],
    read_ok_rows: &[u32],
) {
    scratch.stamp += 1;
    scratch.touched.clear();
    if scratch.lanes.len() < banks.len() {
        scratch.lanes.resize(banks.len(), Lane::fresh(0));
    }
    for (i, e) in entries.iter().enumerate() {
        let b = e.target.bank;
        if scratch.lanes[b].stamp != scratch.stamp {
            scratch.lanes[b] = Lane::fresh(scratch.stamp);
            scratch.touched.push(b);
        }
        if entry_excluded(blocked_rows, read_ok_rows, b, e.decoded.row, e.request.kind) {
            continue;
        }
        scratch.lanes[b].fold(e, i, banks[b].is_open(e.decoded.row));
    }
}

/// Selects the next command under FR-FCFS-Cap.
///
/// `hit_streak` is the per-flat-bank count of consecutively served row
/// hits; once it reaches `cap` while an older request waits on the same
/// bank, hits in that bank lose their priority.
pub fn pick(
    entries: &[QueueEntry],
    banks: &[BankState],
    engine: &TimingEngine,
    hit_streak: &[u32],
    cap: u32,
    now: u64,
    scratch: &mut SchedScratch,
) -> Option<Decision> {
    pick_with_bound(entries, banks, engine, hit_streak, cap, now, scratch).0
}

/// [`pick`] that additionally returns the earliest cycle at which *any*
/// queued command could issue (the queue's next-event bound), computed as
/// a byproduct of the oldest-first pass. The bound is meaningful only
/// when the decision is `None` — on an issue, controller state is about
/// to change anyway — and is `u64::MAX` for an empty queue. A dead
/// scheduling cycle thereby prices the skip-ahead jump for free.
#[allow(clippy::too_many_arguments)]
pub fn pick_with_bound(
    entries: &[QueueEntry],
    banks: &[BankState],
    engine: &TimingEngine,
    hit_streak: &[u32],
    cap: u32,
    now: u64,
    scratch: &mut SchedScratch,
) -> (Option<Decision>, u64) {
    if entries.is_empty() {
        return (None, u64::MAX);
    }
    analyze(entries, banks, scratch, &[], &[]);
    pick_from_lanes(
        entries,
        banks,
        engine,
        hit_streak,
        cap,
        now,
        &scratch.lanes,
        &scratch.touched,
        &[],
        &[],
    )
}

/// Per-command-class gating of pass 1's ready-hit scan: a rank whose
/// rank-scope earliest (tFAW/tRRD shadow, tRFC, turnaround) is in the
/// future cannot issue that column class *anywhere* in the rank, so the
/// rank-split cached path discharges all its hit lanes with one
/// [`TimingEngine::rank_gate`] query per class.
#[derive(Debug, Clone, Copy)]
struct HitGate {
    rd: bool,
    wr: bool,
}

impl HitGate {
    const OPEN: HitGate = HitGate {
        rd: false,
        wr: false,
    };
}

/// Pass 1 over one bank list: ready row hits, oldest first, unless
/// capped. Folds the best candidate into `best` (shared across rank
/// lists by the rank-split path).
#[allow(clippy::too_many_arguments)]
fn pass_hits(
    entries: &[QueueEntry],
    banks: &[BankState],
    engine: &TimingEngine,
    hit_streak: &[u32],
    cap: u32,
    now: u64,
    lanes: &[Lane],
    bank_list: &[usize],
    gate: HitGate,
    blocked: &[bool],
    read_ok_rows: &[u32],
    best: &mut Option<(u64, usize, Command)>,
) {
    let is_blocked = |b: usize| blocked.get(b).copied().unwrap_or(false);
    // A blocked bank whose open row is read-servable (a migration
    // read-out in progress) still serves *read hits* to that row; all
    // other service on the bank waits for the job.
    let read_hits_only = |b: usize| {
        banks[b]
            .open_row
            .is_some_and(|r| read_ok_rows.get(b).copied() == Some(r))
    };
    for &b in bank_list {
        let gated = is_blocked(b);
        if gated && !read_hits_only(b) {
            continue;
        }
        let lane = &lanes[b];
        for (cand, cmd, class_gated) in [
            (lane.hit_rd, Command::Rd, gate.rd),
            (lane.hit_wr, Command::Wr, gate.wr),
        ] {
            if class_gated || (gated && cmd != Command::Rd) {
                continue;
            }
            let Some((arrival, i)) = cand else { continue };
            let e = &entries[i];
            if gated && e.decoded.row != read_ok_rows[b] {
                continue;
            }
            if hit_streak[b] >= cap && lane.older_waiter(arrival, e.decoded.row) {
                continue;
            }
            if engine.can_issue(cmd, e.target, now)
                && best.is_none_or(|(a, j, _)| (arrival, i) < (a, j))
            {
                *best = Some((arrival, i, cmd));
            }
        }
    }
}

/// Pass 2 over one bank list: oldest-first over every request; issue
/// whatever step of its service (PRE → ACT → column) is ready. All
/// entries of a lane share readiness, so the lane's oldest entry stands
/// for the whole lane. Also folds every candidate's earliest issue cycle
/// into `bound` (the queue's next-event contribution — never pruned, so
/// the skip-ahead bound stays exact).
#[allow(clippy::too_many_arguments)]
fn pass_oldest(
    entries: &[QueueEntry],
    banks: &[BankState],
    engine: &TimingEngine,
    now: u64,
    lanes: &[Lane],
    bank_list: &[usize],
    blocked: &[bool],
    read_ok_rows: &[u32],
    best: &mut Option<(u64, usize, Command)>,
    bound: &mut u64,
) {
    let is_blocked = |b: usize| blocked.get(b).copied().unwrap_or(false);
    let read_hits_only = |b: usize| {
        banks[b]
            .open_row
            .is_some_and(|r| read_ok_rows.get(b).copied() == Some(r))
    };
    for &b in bank_list {
        let gated = is_blocked(b);
        if gated && !read_hits_only(b) {
            continue;
        }
        let lane = &lanes[b];
        let miss_cmd = if banks[b].open_row.is_some() {
            Command::Pre
        } else {
            Command::Act
        };
        for (cand, cmd) in [
            (lane.hit_rd, Command::Rd),
            (lane.hit_wr, Command::Wr),
            (lane.miss, miss_cmd),
        ] {
            if gated && cmd != Command::Rd {
                continue;
            }
            let Some((arrival, i)) = cand else { continue };
            if gated && entries[i].decoded.row != read_ok_rows[b] {
                continue;
            }
            // PRE must respect the mode of the row it closes, not the
            // target's.
            let target = if cmd == Command::Pre {
                Target {
                    mode: banks[b].open_mode,
                    ..entries[i].target
                }
            } else {
                entries[i].target
            };
            let ready = engine.earliest(cmd, target);
            *bound = (*bound).min(ready);
            if ready <= now && best.is_none_or(|(a, j, _)| (arrival, i) < (a, j)) {
                *best = Some((arrival, i, cmd));
            }
        }
    }
}

/// The shared scheduling passes over a set of built lanes. `bank_list` is
/// the banks with queued work; banks flagged in `blocked` (demand service
/// suspended — e.g. an in-flight background migration owns the row
/// buffer) are skipped entirely, in both the decision and the bound.
#[allow(clippy::too_many_arguments)]
fn pick_from_lanes(
    entries: &[QueueEntry],
    banks: &[BankState],
    engine: &TimingEngine,
    hit_streak: &[u32],
    cap: u32,
    now: u64,
    lanes: &[Lane],
    bank_list: &[usize],
    blocked: &[bool],
    read_ok_rows: &[u32],
) -> (Option<Decision>, u64) {
    let mut best: Option<(u64, usize, Command)> = None;
    pass_hits(
        entries,
        banks,
        engine,
        hit_streak,
        cap,
        now,
        lanes,
        bank_list,
        HitGate::OPEN,
        blocked,
        read_ok_rows,
        &mut best,
    );
    if let Some((_, i, command)) = best {
        return (
            Some(Decision {
                queue_index: i,
                command,
            }),
            u64::MAX,
        );
    }
    let mut best = None;
    let mut bound = u64::MAX;
    pass_oldest(
        entries,
        banks,
        engine,
        now,
        lanes,
        bank_list,
        blocked,
        read_ok_rows,
        &mut best,
        &mut bound,
    );
    (
        best.map(|(_, i, command)| Decision {
            queue_index: i,
            command,
        }),
        bound,
    )
}

/// [`pick_from_lanes`] over rank-split bank lists (one list per rank):
/// pass 1 consults the per-rank column gates once and skips every hit
/// lane of a rank that cannot issue that class now — one query
/// discharging the whole rank during tFAW shadows, refresh tRFC blocks,
/// and write-to-read turnarounds. Decision-identical to the flat pass
/// (the gate only removes candidates whose `can_issue` is false), which
/// the lane-cache fuzz test enforces.
#[allow(clippy::too_many_arguments)]
fn pick_from_ranked_lanes(
    entries: &[QueueEntry],
    banks: &[BankState],
    engine: &TimingEngine,
    hit_streak: &[u32],
    cap: u32,
    now: u64,
    lanes: &[Lane],
    rank_lists: &[Vec<usize>],
    blocked: &[bool],
    read_ok_rows: &[u32],
) -> (Option<Decision>, u64) {
    let mut best: Option<(u64, usize, Command)> = None;
    for (r, list) in rank_lists.iter().enumerate() {
        if list.is_empty() {
            continue;
        }
        let gate = HitGate {
            rd: engine.rank_gate(Command::Rd, r) > now,
            wr: engine.rank_gate(Command::Wr, r) > now,
        };
        if gate.rd && gate.wr {
            continue;
        }
        pass_hits(
            entries,
            banks,
            engine,
            hit_streak,
            cap,
            now,
            lanes,
            list,
            gate,
            blocked,
            read_ok_rows,
            &mut best,
        );
    }
    if let Some((_, i, command)) = best {
        return (
            Some(Decision {
                queue_index: i,
                command,
            }),
            u64::MAX,
        );
    }
    let mut best = None;
    let mut bound = u64::MAX;
    for list in rank_lists {
        pass_oldest(
            entries,
            banks,
            engine,
            now,
            lanes,
            list,
            blocked,
            read_ok_rows,
            &mut best,
            &mut bound,
        );
    }
    (
        best.map(|(_, i, command)| Decision {
            queue_index: i,
            command,
        }),
        bound,
    )
}

/// The readiness pass shared by [`next_ready_cycle`] and
/// [`next_ready_cached`].
fn ready_from_lanes(
    entries: &[QueueEntry],
    banks: &[BankState],
    engine: &TimingEngine,
    lanes: &[Lane],
    bank_list: &[usize],
    blocked: &[bool],
    read_ok_rows: &[u32],
) -> Option<u64> {
    let is_blocked = |b: usize| blocked.get(b).copied().unwrap_or(false);
    let read_hits_only = |b: usize| {
        banks[b]
            .open_row
            .is_some_and(|r| read_ok_rows.get(b).copied() == Some(r))
    };
    let mut next: Option<u64> = None;
    for &b in bank_list {
        let gated = is_blocked(b);
        if gated && !read_hits_only(b) {
            continue;
        }
        let lane = &lanes[b];
        let miss_cmd = if banks[b].open_row.is_some() {
            Command::Pre
        } else {
            Command::Act
        };
        for (cand, cmd) in [
            (lane.hit_rd, Command::Rd),
            (lane.hit_wr, Command::Wr),
            (lane.miss, miss_cmd),
        ] {
            if gated && cmd != Command::Rd {
                continue;
            }
            let Some((_, i)) = cand else { continue };
            if gated && entries[i].decoded.row != read_ok_rows[b] {
                continue;
            }
            let target = if cmd == Command::Pre {
                Target {
                    mode: banks[b].open_mode,
                    ..entries[i].target
                }
            } else {
                entries[i].target
            };
            let t = engine.earliest(cmd, target);
            next = Some(next.map_or(t, |n| n.min(t)));
        }
    }
    next
}

/// The earliest cycle at which *any* queued entry's next service command
/// could issue, or `None` for an empty queue — the queue's contribution
/// to the controller's next-event computation. The FR-FCFS cap is
/// irrelevant here: it reorders commands but never delays the first
/// issuable one (pass 2 ignores it).
pub fn next_ready_cycle(
    entries: &[QueueEntry],
    banks: &[BankState],
    engine: &TimingEngine,
    scratch: &mut SchedScratch,
) -> Option<u64> {
    if entries.is_empty() {
        return None;
    }
    analyze(entries, banks, scratch, &[], &[]);
    ready_from_lanes(
        entries,
        banks,
        engine,
        &scratch.lanes,
        &scratch.touched,
        &[],
        &[],
    )
}

/// Incrementally maintained per-bank lanes for one request queue.
///
/// [`analyze`] rebuilds every lane from scratch on each scheduling pass —
/// an O(queue) walk that profiling showed at ≈40 % of the simulation
/// loop. The cache instead keeps the lanes *live* across passes and
/// rebuilds a bank's lane only when something it depends on changed:
///
/// * **queue composition** — an enqueue folds the new entry into its
///   bank's lane in O(1) (the lane fold is purely accumulative); a
///   removal dirties the removed entry's bank and, because the queues use
///   `swap_remove`, the bank of the entry whose queue index moved;
/// * **bank state** — an ACT or PRE flips entries between the hit and
///   miss classes, so the controller dirties the bank on every row-buffer
///   change (demand, refresh, timeout close, or migration).
///
/// Timing-engine state is *not* a lane input (readiness is queried per
/// pass), so engine updates never dirty the cache. Lane folds compare
/// `(arrival, queue index)` lexicographically, which makes the fold
/// order-independent — rebuilding from the unordered per-bank index list
/// yields exactly the lane the queue-order pass would build, a property
/// the fuzz test below checks against both [`analyze`] and the naive
/// reference scan.
#[derive(Debug, Default)]
pub struct LaneCache {
    lanes: Vec<Lane>,
    /// Queue indices per bank, unordered.
    by_bank: Vec<Vec<u32>>,
    /// Occupied banks, split by rank (`occupied[rank]` = that rank's
    /// banks with queued work, unordered within the rank) — the
    /// rank-split lanes the gated scheduling passes iterate.
    occupied: Vec<Vec<usize>>,
    /// Position of each bank within its rank's `occupied` list
    /// (`u32::MAX` when absent).
    occupied_pos: Vec<u32>,
    /// Banks per rank (for the flat-bank → rank split).
    banks_per_rank: usize,
    dirty: Vec<bool>,
    dirty_list: Vec<u32>,
}

impl LaneCache {
    /// An empty cache for `banks` banks split into ranks of
    /// `banks_per_rank` (flat bank layout is rank-major, matching the
    /// controller's target decomposition).
    pub fn new(banks: usize, banks_per_rank: usize) -> Self {
        let bpr = banks_per_rank.max(1);
        LaneCache {
            lanes: vec![Lane::fresh(0); banks],
            by_bank: vec![Vec::new(); banks],
            occupied: vec![Vec::new(); banks.div_ceil(bpr).max(1)],
            occupied_pos: vec![u32::MAX; banks],
            banks_per_rank: bpr,
            dirty: vec![false; banks],
            dirty_list: Vec::new(),
        }
    }

    /// Whether any queued entry targets `bank` (maintained exactly by the
    /// push/remove hooks, so it is O(1) and always current).
    pub fn has_entries(&self, bank: usize) -> bool {
        self.occupied_pos[bank] != u32::MAX
    }

    /// Marks a bank whose row-buffer state changed (ACT or PRE): its hit
    /// and miss classes must be re-derived on the next pass.
    pub fn bank_state_changed(&mut self, bank: usize) {
        if self.occupied_pos[bank] != u32::MAX {
            self.force_dirty(bank);
        }
    }

    fn force_dirty(&mut self, bank: usize) {
        if !self.dirty[bank] {
            self.dirty[bank] = true;
            self.dirty_list.push(bank as u32);
        }
    }

    /// Whether any queued entry targets `(bank, row)` (an O(entries in
    /// bank) scan of the per-bank index list — used to decide whether
    /// demand is waiting on a migrating row).
    pub fn has_row_entry(&self, entries: &[QueueEntry], bank: usize, row: u32) -> bool {
        self.by_bank[bank]
            .iter()
            .any(|&i| entries[i as usize].decoded.row == row)
    }

    /// Folds the entry just pushed onto `entries` into its bank's lane
    /// (O(1) — an enqueue cannot invalidate any existing lane). Entries
    /// targeting a blocked row are indexed but not folded, mirroring
    /// [`analyze`].
    pub fn on_push(
        &mut self,
        entries: &[QueueEntry],
        banks: &[BankState],
        blocked_rows: &[u32],
        read_ok_rows: &[u32],
    ) {
        let i = entries.len() - 1;
        let e = &entries[i];
        let b = e.target.bank;
        self.by_bank[b].push(i as u32);
        if self.occupied_pos[b] == u32::MAX {
            let list = &mut self.occupied[b / self.banks_per_rank];
            self.occupied_pos[b] = list.len() as u32;
            list.push(b);
            self.lanes[b] = Lane::fresh(0);
        } else if self.dirty[b] {
            return;
        }
        if !entry_excluded(blocked_rows, read_ok_rows, b, e.decoded.row, e.request.kind) {
            self.lanes[b].fold(e, i, banks[b].is_open(e.decoded.row));
        }
    }

    /// Updates the index structures for `entries.swap_remove(idx)`. Must
    /// be called *before* the removal (it needs the entry still in
    /// place). Dirties the removed entry's bank and — when the queue's
    /// last entry moves into the hole — the moved entry's bank, whose
    /// lane holds the now-stale index.
    pub fn before_swap_remove(&mut self, entries: &[QueueEntry], idx: usize) {
        let last = entries.len() - 1;
        let b = entries[idx].target.bank;
        let list = &mut self.by_bank[b];
        let pos = list
            .iter()
            .position(|&x| x as usize == idx)
            .expect("removed entry is indexed");
        list.swap_remove(pos);
        if list.is_empty() {
            let p = self.occupied_pos[b] as usize;
            let rank_list = &mut self.occupied[b / self.banks_per_rank];
            let moved = *rank_list.last().expect("rank list is nonempty");
            rank_list.swap_remove(p);
            if moved != b {
                self.occupied_pos[moved] = p as u32;
            }
            self.occupied_pos[b] = u32::MAX;
            // A stale dirty flag (if any) is skipped lazily on rebuild.
        } else {
            self.force_dirty(b);
        }
        if last != idx {
            let b2 = entries[last].target.bank;
            let list2 = &mut self.by_bank[b2];
            let pos2 = list2
                .iter()
                .position(|&x| x as usize == last)
                .expect("moved entry is indexed");
            list2[pos2] = idx as u32;
            self.force_dirty(b2);
        }
    }

    /// Rebuilds every dirty (and still occupied) lane from its per-bank
    /// index list.
    fn rebuild_dirty(
        &mut self,
        entries: &[QueueEntry],
        banks: &[BankState],
        blocked_rows: &[u32],
        read_ok_rows: &[u32],
    ) {
        for k in 0..self.dirty_list.len() {
            let b = self.dirty_list[k] as usize;
            self.dirty[b] = false;
            if self.occupied_pos[b] == u32::MAX {
                continue;
            }
            let mut lane = Lane::fresh(0);
            for &i in &self.by_bank[b] {
                let e = &entries[i as usize];
                if entry_excluded(blocked_rows, read_ok_rows, b, e.decoded.row, e.request.kind) {
                    continue;
                }
                lane.fold(e, i as usize, banks[b].is_open(e.decoded.row));
            }
            self.lanes[b] = lane;
        }
        self.dirty_list.clear();
    }
}

/// [`pick_with_bound`] over an incrementally maintained [`LaneCache`]:
/// only banks dirtied since the last pass are re-aggregated, and the
/// rank-split occupied lists let pass 1 discharge whole ranks through
/// their column gates. Banks flagged in `blocked` are skipped (their
/// entries neither issue nor contribute to the bound — unblocking is
/// itself a scheduling event).
#[allow(clippy::too_many_arguments)]
pub fn pick_cached(
    entries: &[QueueEntry],
    banks: &[BankState],
    engine: &TimingEngine,
    hit_streak: &[u32],
    cap: u32,
    now: u64,
    cache: &mut LaneCache,
    blocked: &[bool],
    blocked_rows: &[u32],
    read_ok_rows: &[u32],
) -> (Option<Decision>, u64) {
    if entries.is_empty() {
        return (None, u64::MAX);
    }
    cache.rebuild_dirty(entries, banks, blocked_rows, read_ok_rows);
    pick_from_ranked_lanes(
        entries,
        banks,
        engine,
        hit_streak,
        cap,
        now,
        &cache.lanes,
        &cache.occupied,
        blocked,
        read_ok_rows,
    )
}

/// [`next_ready_cycle`] over a [`LaneCache`], skipping blocked banks and
/// blocked rows. The readiness bound is a min over every candidate, so
/// the rank lists are walked in full (no gate pruning — the bound must
/// stay exact for the skip-ahead engine).
pub fn next_ready_cached(
    entries: &[QueueEntry],
    banks: &[BankState],
    engine: &TimingEngine,
    cache: &mut LaneCache,
    blocked: &[bool],
    blocked_rows: &[u32],
    read_ok_rows: &[u32],
) -> Option<u64> {
    if entries.is_empty() {
        return None;
    }
    cache.rebuild_dirty(entries, banks, blocked_rows, read_ok_rows);
    let mut next: Option<u64> = None;
    for list in &cache.occupied {
        if let Some(t) = ready_from_lanes(
            entries,
            banks,
            engine,
            &cache.lanes,
            list,
            blocked,
            read_ok_rows,
        ) {
            next = Some(next.map_or(t, |n| n.min(t)));
        }
    }
    next
}

/// The column command for a request.
pub fn column_command(e: &QueueEntry) -> Command {
    match e.request.kind {
        crate::request::RequestKind::Read => Command::Rd,
        crate::request::RequestKind::Write => Command::Wr,
    }
}

/// Builds a queue entry (helper shared with the controller).
pub fn entry(request: MemRequest, decoded: DramAddr, target: Target) -> QueueEntry {
    QueueEntry {
        request,
        decoded,
        target,
        needed_act: false,
        needed_pre: false,
        classified: false,
        blame: clr_obs::BlameLedger::disabled(),
    }
}

/// Exposed for tests: the mode carried by an entry's target.
pub fn entry_mode(e: &QueueEntry) -> RowMode {
    e.target.mode
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycletimings::CycleTimings;
    use crate::request::{MemRequest, RequestKind};
    use clr_core::addr::PhysAddr;
    use clr_core::timing::{ClrTimings, InterfaceTimings};

    fn engine() -> TimingEngine {
        let t = ClrTimings::from_circuit_defaults();
        let i = InterfaceTimings::ddr4_2400();
        let ct = CycleTimings::baseline(&t, &i);
        TimingEngine::new(ct, 4, 2, 1, 1, |b| (b / 2, 0))
    }

    fn mk(id: u64, bank: usize, row: u32, kind: RequestKind, arrival: u64) -> QueueEntry {
        let decoded = DramAddr {
            bank: (bank % 2) as u32,
            bank_group: (bank / 2) as u32,
            row,
            ..DramAddr::default()
        };
        entry(
            MemRequest::new(id, PhysAddr(0), kind, arrival),
            decoded,
            Target {
                bank,
                bank_group: bank / 2,
                rank: 0,
                channel: 0,
                mode: RowMode::MaxCapacity,
            },
        )
    }

    /// The original O(n²) scan, kept as the behavioural reference the
    /// lane-aggregated `pick` must match decision-for-decision.
    fn pick_reference(
        entries: &[QueueEntry],
        banks: &[BankState],
        engine: &TimingEngine,
        hit_streak: &[u32],
        cap: u32,
        now: u64,
    ) -> Option<Decision> {
        fn older_waiter_exists(entries: &[QueueEntry], i: usize, e: &QueueEntry) -> bool {
            entries.iter().enumerate().any(|(j, o)| {
                j != i
                    && o.target.bank == e.target.bank
                    && o.decoded.row != e.decoded.row
                    && o.request.arrival_cycle < e.request.arrival_cycle
            })
        }
        let mut best_hit: Option<(u64, usize)> = None;
        for (i, e) in entries.iter().enumerate() {
            let bank = &banks[e.target.bank];
            if !bank.is_open(e.decoded.row) {
                continue;
            }
            if hit_streak[e.target.bank] >= cap && older_waiter_exists(entries, i, e) {
                continue;
            }
            let cmd = column_command(e);
            if engine.can_issue(cmd, e.target, now) {
                let age = e.request.arrival_cycle;
                if best_hit.is_none_or(|(a, _)| age < a) {
                    best_hit = Some((age, i));
                }
            }
        }
        if let Some((_, i)) = best_hit {
            return Some(Decision {
                queue_index: i,
                command: column_command(&entries[i]),
            });
        }
        let mut order: Vec<usize> = (0..entries.len()).collect();
        order.sort_by_key(|&i| (entries[i].request.arrival_cycle, i));
        for i in order {
            let e = &entries[i];
            let bank = &banks[e.target.bank];
            let cmd = match bank.open_row {
                Some(r) if r == e.decoded.row => column_command(e),
                Some(_) => Command::Pre,
                None => Command::Act,
            };
            let target = if cmd == Command::Pre {
                Target {
                    mode: bank.open_mode,
                    ..e.target
                }
            } else {
                e.target
            };
            if engine.can_issue(cmd, target, now) {
                return Some(Decision {
                    queue_index: i,
                    command: cmd,
                });
            }
        }
        None
    }

    #[test]
    fn prefers_ready_row_hit_over_older_miss() {
        let mut e = engine();
        let mut banks = vec![BankState::new(); 4];
        // Bank 0 has row 5 open and ready for column access.
        let t = Target {
            bank: 0,
            bank_group: 0,
            rank: 0,
            channel: 0,
            mode: RowMode::MaxCapacity,
        };
        e.issue(Command::Act, t, 0);
        banks[0].activate(5, RowMode::MaxCapacity, 0);
        let now = e.earliest(Command::Rd, t);

        let entries = vec![
            mk(0, 1, 9, RequestKind::Read, 0),  // older, bank closed
            mk(1, 0, 5, RequestKind::Read, 10), // younger, row hit
        ];
        let mut s = SchedScratch::default();
        let d = pick(&entries, &banks, &e, &[0; 4], 4, now, &mut s).unwrap();
        assert_eq!(d.queue_index, 1);
        assert_eq!(d.command, Command::Rd);
    }

    #[test]
    fn cap_reverts_to_oldest_first() {
        let mut e = engine();
        let mut banks = vec![BankState::new(); 4];
        let t = Target {
            bank: 0,
            bank_group: 0,
            rank: 0,
            channel: 0,
            mode: RowMode::MaxCapacity,
        };
        e.issue(Command::Act, t, 0);
        banks[0].activate(5, RowMode::MaxCapacity, 0);
        let now = e.earliest(Command::Rd, t).max(e.earliest(Command::Pre, t));

        let entries = vec![
            mk(0, 0, 9, RequestKind::Read, 0),  // older conflict in bank 0
            mk(1, 0, 5, RequestKind::Read, 10), // younger hit in bank 0
        ];
        let mut s = SchedScratch::default();
        // Below cap: the hit wins.
        let d = pick(&entries, &banks, &e, &[0; 4], 4, now, &mut s).unwrap();
        assert_eq!(d.queue_index, 1);
        // At cap: oldest-first; service starts with PRE of the conflict.
        let d = pick(&entries, &banks, &e, &[4, 0, 0, 0], 4, now, &mut s).unwrap();
        assert_eq!(d.queue_index, 0);
        assert_eq!(d.command, Command::Pre);
    }

    #[test]
    fn closed_bank_gets_activate() {
        let e = engine();
        let banks = vec![BankState::new(); 4];
        let entries = vec![mk(0, 2, 7, RequestKind::Write, 0)];
        let mut s = SchedScratch::default();
        let d = pick(&entries, &banks, &e, &[0; 4], 4, 0, &mut s).unwrap();
        assert_eq!(d.command, Command::Act);
    }

    #[test]
    fn nothing_issuable_returns_none() {
        let mut e = engine();
        let banks = vec![BankState::new(); 4];
        let t = Target {
            bank: 0,
            bank_group: 0,
            rank: 0,
            channel: 0,
            mode: RowMode::MaxCapacity,
        };
        e.issue(Command::Act, t, 0);
        // Bank 0 closed per `banks`, but engine forbids ACT until tRC.
        let entries = vec![mk(0, 0, 7, RequestKind::Read, 0)];
        let mut s = SchedScratch::default();
        assert!(pick(&entries, &banks, &e, &[0; 4], 4, 1, &mut s).is_none());
    }

    #[test]
    fn next_ready_cycle_predicts_first_issue() {
        let mut e = engine();
        let banks = vec![BankState::new(); 4];
        let t = Target {
            bank: 0,
            bank_group: 0,
            rank: 0,
            channel: 0,
            mode: RowMode::MaxCapacity,
        };
        e.issue(Command::Act, t, 0);
        // Bank 0 closed in `banks` (engine-only ACT): re-ACT waits tRC.
        let entries = vec![mk(0, 0, 7, RequestKind::Read, 0)];
        let mut s = SchedScratch::default();
        let ready = next_ready_cycle(&entries, &banks, &e, &mut s).unwrap();
        assert_eq!(ready, e.earliest(Command::Act, t));
        assert!(pick(&entries, &banks, &e, &[0; 4], 4, ready - 1, &mut s).is_none());
        assert!(pick(&entries, &banks, &e, &[0; 4], 4, ready, &mut s).is_some());
        assert!(next_ready_cycle(&[], &banks, &e, &mut s).is_none());
    }

    #[test]
    fn lane_cache_matches_full_rebuild_on_fuzzed_op_sequences() {
        // Drive a persistent LaneCache through random enqueue /
        // swap-remove / bank-state / blocked-bank op sequences; after
        // every op both the decision and the bound must match a
        // from-scratch rebuild (analyze + the shared lane passes), and —
        // with no banks blocked — the public pick_with_bound path.
        let mut state = 0x0DD0_FEED_5EED_1234u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..80 {
            let mut e = engine();
            let mut banks = vec![BankState::new(); 4];
            // Warm the engine with a few legal issues so readiness varies.
            for (b, bank) in banks.iter_mut().enumerate() {
                if rng() % 2 == 0 {
                    let t = Target {
                        bank: b,
                        bank_group: b / 2,
                        rank: 0,
                        channel: 0,
                        mode: RowMode::MaxCapacity,
                    };
                    let at = e.earliest(Command::Act, t);
                    e.issue(Command::Act, t, at);
                    bank.activate((rng() % 4) as u32, RowMode::MaxCapacity, at);
                }
            }
            let mut entries: Vec<QueueEntry> = Vec::new();
            let mut cache = LaneCache::new(4, 4);
            let mut blocked = vec![false; 4];
            let mut blocked_rows = vec![u32::MAX; 4];
            let mut read_ok_rows = vec![u32::MAX; 4];
            let mut next_id = 0u64;
            for op in 0..60 {
                match rng() % 7 {
                    0..=2 => {
                        let kind = if rng() % 4 == 0 {
                            RequestKind::Write
                        } else {
                            RequestKind::Read
                        };
                        entries.push(mk(
                            next_id,
                            (rng() % 4) as usize,
                            (rng() % 4) as u32,
                            kind,
                            rng() % 8,
                        ));
                        next_id += 1;
                        cache.on_push(&entries, &banks, &blocked_rows, &read_ok_rows);
                    }
                    3 => {
                        if !entries.is_empty() {
                            let idx = (rng() % entries.len() as u64) as usize;
                            cache.before_swap_remove(&entries, idx);
                            entries.swap_remove(idx);
                        }
                    }
                    4 => {
                        let b = (rng() % 4) as usize;
                        if banks[b].open_row.is_some() {
                            let _ = banks[b].precharge();
                        } else {
                            banks[b].activate((rng() % 4) as u32, RowMode::MaxCapacity, 0);
                        }
                        cache.bank_state_changed(b);
                    }
                    5 => {
                        let b = (rng() % 4) as usize;
                        blocked[b] = !blocked[b];
                    }
                    _ => {
                        // Row blocks change only alongside a lane
                        // invalidation (in the controller they coincide
                        // with a migration ACT/PRE on the bank).
                        let b = (rng() % 4) as usize;
                        if blocked_rows[b] == u32::MAX {
                            blocked_rows[b] = (rng() % 4) as u32;
                            // Half the time the blocked row stays
                            // read-servable (a read-out in progress).
                            read_ok_rows[b] = if rng() % 2 == 0 {
                                blocked_rows[b]
                            } else {
                                u32::MAX
                            };
                        } else {
                            blocked_rows[b] = u32::MAX;
                            read_ok_rows[b] = u32::MAX;
                        }
                        cache.bank_state_changed(b);
                    }
                }
                let streaks: Vec<u32> = (0..4).map(|_| (rng() % 6) as u32).collect();
                let cap = 1 + (rng() % 4) as u32;
                let now = (rng() % 64).max(20);

                let got = pick_cached(
                    &entries,
                    &banks,
                    &e,
                    &streaks,
                    cap,
                    now,
                    &mut cache,
                    &blocked,
                    &blocked_rows,
                    &read_ok_rows,
                );
                let got_ready = next_ready_cached(
                    &entries,
                    &banks,
                    &e,
                    &mut cache,
                    &blocked,
                    &blocked_rows,
                    &read_ok_rows,
                );
                let (want, want_ready) = if entries.is_empty() {
                    ((None, u64::MAX), None)
                } else {
                    let mut s = SchedScratch::default();
                    analyze(&entries, &banks, &mut s, &blocked_rows, &read_ok_rows);
                    (
                        pick_from_lanes(
                            &entries,
                            &banks,
                            &e,
                            &streaks,
                            cap,
                            now,
                            &s.lanes,
                            &s.touched,
                            &blocked,
                            &read_ok_rows,
                        ),
                        ready_from_lanes(
                            &entries,
                            &banks,
                            &e,
                            &s.lanes,
                            &s.touched,
                            &blocked,
                            &read_ok_rows,
                        ),
                    )
                };
                assert_eq!(got, want, "round {round} op {op}: cached pick diverges");
                assert_eq!(
                    got_ready, want_ready,
                    "round {round} op {op}: cached readiness diverges"
                );
                if blocked.iter().all(|&b| !b) && blocked_rows.iter().all(|&r| r == u32::MAX) {
                    let mut s = SchedScratch::default();
                    let public = pick_with_bound(&entries, &banks, &e, &streaks, cap, now, &mut s);
                    assert_eq!(got, public, "round {round} op {op}: public path diverges");
                }
            }
        }
    }

    #[test]
    fn rank_split_matches_flat_passes_on_two_ranks() {
        // An 8-bank, 2-rank engine: the rank-split cached pick (with its
        // per-rank column-gate skip) must stay decision- and
        // bound-identical to the flat, ungated passes under fuzzed
        // queues, bank states, and rank-gating engine histories
        // (ACT bursts filling one rank's tFAW window, refreshes).
        let t = ClrTimings::from_circuit_defaults();
        let i = InterfaceTimings::ddr4_2400();
        let ct = CycleTimings::baseline(&t, &i);
        let mk8 = |id: u64, bank: usize, row: u32, kind: RequestKind, arrival: u64| {
            let decoded = DramAddr {
                bank: (bank % 2) as u32,
                bank_group: ((bank / 2) % 2) as u32,
                rank: (bank / 4) as u32,
                row,
                ..DramAddr::default()
            };
            entry(
                MemRequest::new(id, PhysAddr(0), kind, arrival),
                decoded,
                Target {
                    bank,
                    bank_group: bank / 2,
                    rank: bank / 4,
                    channel: 0,
                    mode: RowMode::MaxCapacity,
                },
            )
        };
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..80 {
            let mut e = TimingEngine::new(ct.clone(), 8, 4, 2, 1, |b| (b / 2, b / 4));
            let mut banks = vec![BankState::new(); 8];
            // Saturate one rank's ACT window so its gate sits in the
            // future while the other rank stays issuable.
            let hot_rank = (rng() % 2) as usize;
            for k in 0..4 {
                let b = hot_rank * 4 + k;
                let tgt = Target {
                    bank: b,
                    bank_group: b / 2,
                    rank: hot_rank,
                    channel: 0,
                    mode: RowMode::MaxCapacity,
                };
                let at = e.earliest(Command::Act, tgt);
                e.issue(Command::Act, tgt, at);
                banks[b].activate((rng() % 4) as u32, RowMode::MaxCapacity, at);
            }
            let mut entries: Vec<QueueEntry> = Vec::new();
            let mut cache = LaneCache::new(8, 4);
            let blocked = vec![false; 8];
            let blocked_rows = vec![u32::MAX; 8];
            let read_ok_rows = vec![u32::MAX; 8];
            for op in 0..40 {
                if rng() % 4 < 3 || entries.is_empty() {
                    let kind = if rng() % 4 == 0 {
                        RequestKind::Write
                    } else {
                        RequestKind::Read
                    };
                    entries.push(mk8(
                        op as u64,
                        (rng() % 8) as usize,
                        (rng() % 4) as u32,
                        kind,
                        rng() % 8,
                    ));
                    cache.on_push(&entries, &banks, &blocked_rows, &read_ok_rows);
                } else {
                    let idx = (rng() % entries.len() as u64) as usize;
                    cache.before_swap_remove(&entries, idx);
                    entries.swap_remove(idx);
                }
                let streaks: Vec<u32> = (0..8).map(|_| (rng() % 6) as u32).collect();
                let cap = 1 + (rng() % 4) as u32;
                let now = (rng() % 96).max(20);
                let got = pick_cached(
                    &entries,
                    &banks,
                    &e,
                    &streaks,
                    cap,
                    now,
                    &mut cache,
                    &blocked,
                    &blocked_rows,
                    &read_ok_rows,
                );
                let want = if entries.is_empty() {
                    (None, u64::MAX)
                } else {
                    let mut s = SchedScratch::default();
                    analyze(&entries, &banks, &mut s, &blocked_rows, &read_ok_rows);
                    pick_from_lanes(
                        &entries,
                        &banks,
                        &e,
                        &streaks,
                        cap,
                        now,
                        &s.lanes,
                        &s.touched,
                        &blocked,
                        &read_ok_rows,
                    )
                };
                assert_eq!(got, want, "round {round} op {op}: rank split diverges");
            }
        }
    }

    #[test]
    fn lane_pick_matches_reference_scan_on_fuzzed_queues() {
        // Deterministic LCG fuzz over queue composition, bank states, hit
        // streaks and times; the lane-aggregated pick must agree with the
        // naive reference on every sample.
        let mut state = 0x2545_F491_4F6C_DD1Du64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut s = SchedScratch::default();
        for round in 0..400 {
            let mut e = engine();
            let mut banks = vec![BankState::new(); 4];
            // Open some banks and warm the engine with a few legal issues.
            for (b, bank) in banks.iter_mut().enumerate() {
                if rng() % 2 == 0 {
                    let t = Target {
                        bank: b,
                        bank_group: b / 2,
                        rank: 0,
                        channel: 0,
                        mode: RowMode::MaxCapacity,
                    };
                    let at = e.earliest(Command::Act, t);
                    e.issue(Command::Act, t, at);
                    bank.activate((rng() % 4) as u32, RowMode::MaxCapacity, at);
                }
            }
            let n = (rng() % 12) as usize;
            let entries: Vec<QueueEntry> = (0..n)
                .map(|i| {
                    let kind = if rng() % 4 == 0 {
                        RequestKind::Write
                    } else {
                        RequestKind::Read
                    };
                    mk(
                        i as u64,
                        (rng() % 4) as usize,
                        (rng() % 4) as u32,
                        kind,
                        rng() % 8,
                    )
                })
                .collect();
            let streaks: Vec<u32> = (0..4).map(|_| (rng() % 6) as u32).collect();
            let cap = 1 + (rng() % 4) as u32;
            let now = (rng() % 64).max(20);
            let got = pick(&entries, &banks, &e, &streaks, cap, now, &mut s);
            let want = pick_reference(&entries, &banks, &e, &streaks, cap, now);
            assert_eq!(got, want, "round {round}: lanes diverge from reference");
        }
    }
}
