//! FR-FCFS-Cap request scheduling (Table 2; the policy of Mutlu &
//! Moscibroda, "Stall-Time Fair Memory Access Scheduling", MICRO 2007 —
//! reference 71 of the paper).
//!
//! FR-FCFS serves ready row-buffer hits before older row misses to
//! maximize row-buffer locality; the *Cap* variant bounds how many younger
//! hits may bypass an older request to the same bank, restoring fairness
//! under streaming interference.

use clr_core::addr::DramAddr;
use clr_core::mode::RowMode;

use crate::bankstate::BankState;
use crate::command::Command;
use crate::engine::{Target, TimingEngine};
use crate::request::MemRequest;

/// A queued request with its decoded coordinates and service bookkeeping.
#[derive(Debug, Clone, Copy)]
pub struct QueueEntry {
    /// The original request.
    pub request: MemRequest,
    /// Decoded DRAM coordinates.
    pub decoded: DramAddr,
    /// Pre-flattened engine target (mode = target row's mode).
    pub target: Target,
    /// Whether the scheduler had to activate a row for this request.
    pub needed_act: bool,
    /// Whether the scheduler had to precharge a conflicting row.
    pub needed_pre: bool,
    /// Whether the first service attempt has classified this request
    /// (hit/miss/conflict).
    pub classified: bool,
}

/// The scheduling decision for one cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decision {
    /// Index into the queue of the chosen request.
    pub queue_index: usize,
    /// The command to issue on its behalf this cycle.
    pub command: Command,
}

/// Selects the next command under FR-FCFS-Cap.
///
/// `hit_streak` is the per-flat-bank count of consecutively served row
/// hits; once it reaches `cap` while an older request waits on the same
/// bank, hits in that bank lose their priority.
pub fn pick(
    entries: &[QueueEntry],
    banks: &[BankState],
    engine: &TimingEngine,
    hit_streak: &[u32],
    cap: u32,
    now: u64,
) -> Option<Decision> {
    // Pass 1: ready row hits, oldest first, unless capped.
    let mut best_hit: Option<(u64, usize)> = None;
    for (i, e) in entries.iter().enumerate() {
        let bank = &banks[e.target.bank];
        if !bank.is_open(e.decoded.row) {
            continue;
        }
        if hit_streak[e.target.bank] >= cap && older_waiter_exists(entries, i, e) {
            continue;
        }
        let cmd = column_command(e);
        if engine.can_issue(cmd, e.target, now) {
            let age = e.request.arrival_cycle;
            if best_hit.is_none_or(|(a, _)| age < a) {
                best_hit = Some((age, i));
            }
        }
    }
    if let Some((_, i)) = best_hit {
        return Some(Decision {
            queue_index: i,
            command: column_command(&entries[i]),
        });
    }

    // Pass 2: oldest-first over every request; issue whatever step of its
    // service (PRE → ACT → column) is ready.
    let mut order: Vec<usize> = (0..entries.len()).collect();
    order.sort_by_key(|&i| (entries[i].request.arrival_cycle, i));
    for i in order {
        let e = &entries[i];
        let bank = &banks[e.target.bank];
        let cmd = match bank.open_row {
            Some(r) if r == e.decoded.row => column_command(e),
            Some(_) => Command::Pre,
            None => Command::Act,
        };
        // PRE must respect the mode of the row it closes, not the target's.
        let target = if cmd == Command::Pre {
            Target {
                mode: bank.open_mode,
                ..e.target
            }
        } else {
            e.target
        };
        if engine.can_issue(cmd, target, now) {
            return Some(Decision {
                queue_index: i,
                command: cmd,
            });
        }
    }
    None
}

/// Whether any strictly older request waits on the same bank as `e`
/// targeting a different row.
fn older_waiter_exists(entries: &[QueueEntry], i: usize, e: &QueueEntry) -> bool {
    entries.iter().enumerate().any(|(j, o)| {
        j != i
            && o.target.bank == e.target.bank
            && o.decoded.row != e.decoded.row
            && o.request.arrival_cycle < e.request.arrival_cycle
    })
}

/// The column command for a request.
pub fn column_command(e: &QueueEntry) -> Command {
    match e.request.kind {
        crate::request::RequestKind::Read => Command::Rd,
        crate::request::RequestKind::Write => Command::Wr,
    }
}

/// Builds a queue entry (helper shared with the controller).
pub fn entry(request: MemRequest, decoded: DramAddr, target: Target) -> QueueEntry {
    QueueEntry {
        request,
        decoded,
        target,
        needed_act: false,
        needed_pre: false,
        classified: false,
    }
}

/// Exposed for tests: the mode carried by an entry's target.
pub fn entry_mode(e: &QueueEntry) -> RowMode {
    e.target.mode
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycletimings::CycleTimings;
    use crate::request::{MemRequest, RequestKind};
    use clr_core::addr::PhysAddr;
    use clr_core::timing::{ClrTimings, InterfaceTimings};

    fn engine() -> TimingEngine {
        let t = ClrTimings::from_circuit_defaults();
        let i = InterfaceTimings::ddr4_2400();
        let ct = CycleTimings::baseline(&t, &i);
        TimingEngine::new(ct, 4, 2, 1, 1, |b| (b / 2, 0))
    }

    fn mk(id: u64, bank: usize, row: u32, kind: RequestKind, arrival: u64) -> QueueEntry {
        let decoded = DramAddr {
            bank: (bank % 2) as u32,
            bank_group: (bank / 2) as u32,
            row,
            ..DramAddr::default()
        };
        entry(
            MemRequest::new(id, PhysAddr(0), kind, arrival),
            decoded,
            Target {
                bank,
                bank_group: bank / 2,
                rank: 0,
                channel: 0,
                mode: RowMode::MaxCapacity,
            },
        )
    }

    #[test]
    fn prefers_ready_row_hit_over_older_miss() {
        let mut e = engine();
        let mut banks = vec![BankState::new(); 4];
        // Bank 0 has row 5 open and ready for column access.
        let t = Target {
            bank: 0,
            bank_group: 0,
            rank: 0,
            channel: 0,
            mode: RowMode::MaxCapacity,
        };
        e.issue(Command::Act, t, 0);
        banks[0].activate(5, RowMode::MaxCapacity, 0);
        let now = e.earliest(Command::Rd, t);

        let entries = vec![
            mk(0, 1, 9, RequestKind::Read, 0),  // older, bank closed
            mk(1, 0, 5, RequestKind::Read, 10), // younger, row hit
        ];
        let d = pick(&entries, &banks, &e, &[0; 4], 4, now).unwrap();
        assert_eq!(d.queue_index, 1);
        assert_eq!(d.command, Command::Rd);
    }

    #[test]
    fn cap_reverts_to_oldest_first() {
        let mut e = engine();
        let mut banks = vec![BankState::new(); 4];
        let t = Target {
            bank: 0,
            bank_group: 0,
            rank: 0,
            channel: 0,
            mode: RowMode::MaxCapacity,
        };
        e.issue(Command::Act, t, 0);
        banks[0].activate(5, RowMode::MaxCapacity, 0);
        let now = e.earliest(Command::Rd, t).max(e.earliest(Command::Pre, t));

        let entries = vec![
            mk(0, 0, 9, RequestKind::Read, 0),  // older conflict in bank 0
            mk(1, 0, 5, RequestKind::Read, 10), // younger hit in bank 0
        ];
        // Below cap: the hit wins.
        let d = pick(&entries, &banks, &e, &[0; 4], 4, now).unwrap();
        assert_eq!(d.queue_index, 1);
        // At cap: oldest-first; service starts with PRE of the conflict.
        let d = pick(&entries, &banks, &e, &[4, 0, 0, 0], 4, now).unwrap();
        assert_eq!(d.queue_index, 0);
        assert_eq!(d.command, Command::Pre);
    }

    #[test]
    fn closed_bank_gets_activate() {
        let e = engine();
        let banks = vec![BankState::new(); 4];
        let entries = vec![mk(0, 2, 7, RequestKind::Write, 0)];
        let d = pick(&entries, &banks, &e, &[0; 4], 4, 0).unwrap();
        assert_eq!(d.command, Command::Act);
    }

    #[test]
    fn nothing_issuable_returns_none() {
        let mut e = engine();
        let banks = vec![BankState::new(); 4];
        let t = Target {
            bank: 0,
            bank_group: 0,
            rank: 0,
            channel: 0,
            mode: RowMode::MaxCapacity,
        };
        e.issue(Command::Act, t, 0);
        // Bank 0 closed per `banks`, but engine forbids ACT until tRC.
        let entries = vec![mk(0, 0, 7, RequestKind::Read, 0)];
        assert!(pick(&entries, &banks, &e, &[0; 4], 4, 1).is_none());
    }
}
