//! FR-FCFS-Cap request scheduling (Table 2; the policy of Mutlu &
//! Moscibroda, "Stall-Time Fair Memory Access Scheduling", MICRO 2007 —
//! reference 71 of the paper).
//!
//! FR-FCFS serves ready row-buffer hits before older row misses to
//! maximize row-buffer locality; the *Cap* variant bounds how many younger
//! hits may bypass an older request to the same bank, restoring fairness
//! under streaming interference.
//!
//! # Implementation: per-bank lanes
//!
//! A naive FR-FCFS scan is O(queue²) per cycle (every hit candidate
//! re-scans the queue for an older same-bank waiter) plus an O(n log n)
//! sort for the oldest-first pass. This module instead aggregates the
//! queue into per-bank *lanes* in one O(queue) pass over a reusable
//! [`SchedScratch`]:
//!
//! * the oldest entry per bank plus the oldest entry targeting a
//!   *different* row, which makes the FR-FCFS-Cap "older waiter exists"
//!   test O(1) per candidate;
//! * the oldest ready-row-hit per bank (split by read/write, since their
//!   column commands have different timing readiness) and the oldest
//!   non-hit, so both scheduling passes and the skip-ahead engine's
//!   [`next_ready_cycle`] only visit banks that actually have pending
//!   work — one timing-engine query per (bank, command class) instead of
//!   one per request.
//!
//! Within a (bank, command-class) lane every entry shares the same command
//! and the same timing readiness, so the lane's oldest entry is a faithful
//! representative: the aggregated pick is decision-for-decision identical
//! to the naive scan (the differential test in `tests/` enforces this at
//! the whole-simulation level).

use clr_core::addr::DramAddr;
use clr_core::mode::RowMode;

use crate::bankstate::BankState;
use crate::command::Command;
use crate::engine::{Target, TimingEngine};
use crate::request::MemRequest;

/// A queued request with its decoded coordinates and service bookkeeping.
#[derive(Debug, Clone, Copy)]
pub struct QueueEntry {
    /// The original request.
    pub request: MemRequest,
    /// Decoded DRAM coordinates.
    pub decoded: DramAddr,
    /// Pre-flattened engine target (mode = target row's mode).
    pub target: Target,
    /// Whether the scheduler had to activate a row for this request.
    pub needed_act: bool,
    /// Whether the scheduler had to precharge a conflicting row.
    pub needed_pre: bool,
    /// Whether the first service attempt has classified this request
    /// (hit/miss/conflict).
    pub classified: bool,
}

/// The scheduling decision for one cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decision {
    /// Index into the queue of the chosen request.
    pub queue_index: usize,
    /// The command to issue on its behalf this cycle.
    pub command: Command,
}

/// Per-bank aggregation of one queue (see the module docs).
#[derive(Debug, Clone, Copy)]
struct Lane {
    /// Validity stamp (lanes are reused across calls without clearing).
    stamp: u64,
    /// Oldest entry overall: `(arrival, queue index, row)`.
    oldest: (u64, usize, u32),
    /// Oldest arrival among entries whose row differs from `oldest`'s
    /// row (`u64::MAX` if the bank's entries all target one row).
    oldest_other_row: u64,
    /// Oldest ready-row-hit read: `(arrival, queue index)`.
    hit_rd: Option<(u64, usize)>,
    /// Oldest ready-row-hit write.
    hit_wr: Option<(u64, usize)>,
    /// Oldest non-hit entry (needs PRE on an open bank, ACT on a closed
    /// one).
    miss: Option<(u64, usize)>,
}

impl Lane {
    fn fresh(stamp: u64) -> Self {
        Lane {
            stamp,
            oldest: (u64::MAX, usize::MAX, 0),
            oldest_other_row: u64::MAX,
            hit_rd: None,
            hit_wr: None,
            miss: None,
        }
    }

    /// Whether a strictly older entry targeting a row other than `row`
    /// waits in this bank — the FR-FCFS-Cap fairness test, O(1).
    fn older_waiter(&self, arrival: u64, row: u32) -> bool {
        if row != self.oldest.2 {
            self.oldest.0 < arrival
        } else {
            self.oldest_other_row < arrival
        }
    }
}

/// Reusable per-bank scratch for [`pick`] and [`next_ready_cycle`].
///
/// Owning it on the controller avoids a per-cycle allocation; lanes are
/// invalidated by stamping rather than clearing, so a call touches only
/// the banks that have queued work.
#[derive(Debug, Default)]
pub struct SchedScratch {
    lanes: Vec<Lane>,
    /// Banks with at least one queued entry this pass, in first-touch
    /// order.
    touched: Vec<usize>,
    stamp: u64,
}

/// Builds the per-bank lanes for `entries` into `scratch` (one O(n) pass).
fn analyze(entries: &[QueueEntry], banks: &[BankState], scratch: &mut SchedScratch) {
    scratch.stamp += 1;
    scratch.touched.clear();
    if scratch.lanes.len() < banks.len() {
        scratch.lanes.resize(banks.len(), Lane::fresh(0));
    }
    for (i, e) in entries.iter().enumerate() {
        let b = e.target.bank;
        let lane = &mut scratch.lanes[b];
        if lane.stamp != scratch.stamp {
            *lane = Lane::fresh(scratch.stamp);
            scratch.touched.push(b);
        }
        let arrival = e.request.arrival_cycle;
        let row = e.decoded.row;
        // Track the oldest entry and the oldest entry with a different
        // row. Iterating in queue order keeps the lowest queue index for
        // equal arrivals, matching the naive (arrival, index) ordering.
        if arrival < lane.oldest.0 {
            if row != lane.oldest.2 && lane.oldest.1 != usize::MAX {
                // The displaced oldest is the best "other row" candidate:
                // it is older than everything else already seen.
                lane.oldest_other_row = lane.oldest.0;
            }
            lane.oldest = (arrival, i, row);
        } else if row != lane.oldest.2 && arrival < lane.oldest_other_row {
            lane.oldest_other_row = arrival;
        }
        if banks[b].is_open(row) {
            let slot = match e.request.kind {
                crate::request::RequestKind::Read => &mut lane.hit_rd,
                crate::request::RequestKind::Write => &mut lane.hit_wr,
            };
            if slot.is_none_or(|(a, _)| arrival < a) {
                *slot = Some((arrival, i));
            }
        } else if lane.miss.is_none_or(|(a, _)| arrival < a) {
            lane.miss = Some((arrival, i));
        }
    }
}

/// Selects the next command under FR-FCFS-Cap.
///
/// `hit_streak` is the per-flat-bank count of consecutively served row
/// hits; once it reaches `cap` while an older request waits on the same
/// bank, hits in that bank lose their priority.
pub fn pick(
    entries: &[QueueEntry],
    banks: &[BankState],
    engine: &TimingEngine,
    hit_streak: &[u32],
    cap: u32,
    now: u64,
    scratch: &mut SchedScratch,
) -> Option<Decision> {
    pick_with_bound(entries, banks, engine, hit_streak, cap, now, scratch).0
}

/// [`pick`] that additionally returns the earliest cycle at which *any*
/// queued command could issue (the queue's next-event bound), computed as
/// a byproduct of the oldest-first pass. The bound is meaningful only
/// when the decision is `None` — on an issue, controller state is about
/// to change anyway — and is `u64::MAX` for an empty queue. A dead
/// scheduling cycle thereby prices the skip-ahead jump for free.
#[allow(clippy::too_many_arguments)]
pub fn pick_with_bound(
    entries: &[QueueEntry],
    banks: &[BankState],
    engine: &TimingEngine,
    hit_streak: &[u32],
    cap: u32,
    now: u64,
    scratch: &mut SchedScratch,
) -> (Option<Decision>, u64) {
    let mut bound = u64::MAX;
    if entries.is_empty() {
        return (None, bound);
    }
    analyze(entries, banks, scratch);

    // Pass 1: ready row hits, oldest first, unless capped.
    let mut best: Option<(u64, usize, Command)> = None;
    for &b in &scratch.touched {
        let lane = &scratch.lanes[b];
        for (cand, cmd) in [(lane.hit_rd, Command::Rd), (lane.hit_wr, Command::Wr)] {
            let Some((arrival, i)) = cand else { continue };
            let e = &entries[i];
            if hit_streak[b] >= cap && lane.older_waiter(arrival, e.decoded.row) {
                continue;
            }
            if engine.can_issue(cmd, e.target, now)
                && best.is_none_or(|(a, j, _)| (arrival, i) < (a, j))
            {
                best = Some((arrival, i, cmd));
            }
        }
    }
    if let Some((_, i, command)) = best {
        return (
            Some(Decision {
                queue_index: i,
                command,
            }),
            bound,
        );
    }

    // Pass 2: oldest-first over every request; issue whatever step of its
    // service (PRE → ACT → column) is ready. All entries of a lane share
    // readiness, so the lane's oldest entry stands for the whole lane.
    let mut best: Option<(u64, usize, Command)> = None;
    for &b in &scratch.touched {
        let lane = &scratch.lanes[b];
        let miss_cmd = if banks[b].open_row.is_some() {
            Command::Pre
        } else {
            Command::Act
        };
        for (cand, cmd) in [
            (lane.hit_rd, Command::Rd),
            (lane.hit_wr, Command::Wr),
            (lane.miss, miss_cmd),
        ] {
            let Some((arrival, i)) = cand else { continue };
            // PRE must respect the mode of the row it closes, not the
            // target's.
            let target = if cmd == Command::Pre {
                Target {
                    mode: banks[b].open_mode,
                    ..entries[i].target
                }
            } else {
                entries[i].target
            };
            let ready = engine.earliest(cmd, target);
            bound = bound.min(ready);
            if ready <= now && best.is_none_or(|(a, j, _)| (arrival, i) < (a, j)) {
                best = Some((arrival, i, cmd));
            }
        }
    }
    (
        best.map(|(_, i, command)| Decision {
            queue_index: i,
            command,
        }),
        bound,
    )
}

/// The earliest cycle at which *any* queued entry's next service command
/// could issue, or `None` for an empty queue — the queue's contribution
/// to the controller's next-event computation. The FR-FCFS cap is
/// irrelevant here: it reorders commands but never delays the first
/// issuable one (pass 2 ignores it).
pub fn next_ready_cycle(
    entries: &[QueueEntry],
    banks: &[BankState],
    engine: &TimingEngine,
    scratch: &mut SchedScratch,
) -> Option<u64> {
    if entries.is_empty() {
        return None;
    }
    analyze(entries, banks, scratch);
    let mut next: Option<u64> = None;
    for &b in &scratch.touched {
        let lane = &scratch.lanes[b];
        let miss_cmd = if banks[b].open_row.is_some() {
            Command::Pre
        } else {
            Command::Act
        };
        for (cand, cmd) in [
            (lane.hit_rd, Command::Rd),
            (lane.hit_wr, Command::Wr),
            (lane.miss, miss_cmd),
        ] {
            let Some((_, i)) = cand else { continue };
            let target = if cmd == Command::Pre {
                Target {
                    mode: banks[b].open_mode,
                    ..entries[i].target
                }
            } else {
                entries[i].target
            };
            let t = engine.earliest(cmd, target);
            next = Some(next.map_or(t, |n| n.min(t)));
        }
    }
    next
}

/// The column command for a request.
pub fn column_command(e: &QueueEntry) -> Command {
    match e.request.kind {
        crate::request::RequestKind::Read => Command::Rd,
        crate::request::RequestKind::Write => Command::Wr,
    }
}

/// Builds a queue entry (helper shared with the controller).
pub fn entry(request: MemRequest, decoded: DramAddr, target: Target) -> QueueEntry {
    QueueEntry {
        request,
        decoded,
        target,
        needed_act: false,
        needed_pre: false,
        classified: false,
    }
}

/// Exposed for tests: the mode carried by an entry's target.
pub fn entry_mode(e: &QueueEntry) -> RowMode {
    e.target.mode
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycletimings::CycleTimings;
    use crate::request::{MemRequest, RequestKind};
    use clr_core::addr::PhysAddr;
    use clr_core::timing::{ClrTimings, InterfaceTimings};

    fn engine() -> TimingEngine {
        let t = ClrTimings::from_circuit_defaults();
        let i = InterfaceTimings::ddr4_2400();
        let ct = CycleTimings::baseline(&t, &i);
        TimingEngine::new(ct, 4, 2, 1, 1, |b| (b / 2, 0))
    }

    fn mk(id: u64, bank: usize, row: u32, kind: RequestKind, arrival: u64) -> QueueEntry {
        let decoded = DramAddr {
            bank: (bank % 2) as u32,
            bank_group: (bank / 2) as u32,
            row,
            ..DramAddr::default()
        };
        entry(
            MemRequest::new(id, PhysAddr(0), kind, arrival),
            decoded,
            Target {
                bank,
                bank_group: bank / 2,
                rank: 0,
                channel: 0,
                mode: RowMode::MaxCapacity,
            },
        )
    }

    /// The original O(n²) scan, kept as the behavioural reference the
    /// lane-aggregated `pick` must match decision-for-decision.
    fn pick_reference(
        entries: &[QueueEntry],
        banks: &[BankState],
        engine: &TimingEngine,
        hit_streak: &[u32],
        cap: u32,
        now: u64,
    ) -> Option<Decision> {
        fn older_waiter_exists(entries: &[QueueEntry], i: usize, e: &QueueEntry) -> bool {
            entries.iter().enumerate().any(|(j, o)| {
                j != i
                    && o.target.bank == e.target.bank
                    && o.decoded.row != e.decoded.row
                    && o.request.arrival_cycle < e.request.arrival_cycle
            })
        }
        let mut best_hit: Option<(u64, usize)> = None;
        for (i, e) in entries.iter().enumerate() {
            let bank = &banks[e.target.bank];
            if !bank.is_open(e.decoded.row) {
                continue;
            }
            if hit_streak[e.target.bank] >= cap && older_waiter_exists(entries, i, e) {
                continue;
            }
            let cmd = column_command(e);
            if engine.can_issue(cmd, e.target, now) {
                let age = e.request.arrival_cycle;
                if best_hit.is_none_or(|(a, _)| age < a) {
                    best_hit = Some((age, i));
                }
            }
        }
        if let Some((_, i)) = best_hit {
            return Some(Decision {
                queue_index: i,
                command: column_command(&entries[i]),
            });
        }
        let mut order: Vec<usize> = (0..entries.len()).collect();
        order.sort_by_key(|&i| (entries[i].request.arrival_cycle, i));
        for i in order {
            let e = &entries[i];
            let bank = &banks[e.target.bank];
            let cmd = match bank.open_row {
                Some(r) if r == e.decoded.row => column_command(e),
                Some(_) => Command::Pre,
                None => Command::Act,
            };
            let target = if cmd == Command::Pre {
                Target {
                    mode: bank.open_mode,
                    ..e.target
                }
            } else {
                e.target
            };
            if engine.can_issue(cmd, target, now) {
                return Some(Decision {
                    queue_index: i,
                    command: cmd,
                });
            }
        }
        None
    }

    #[test]
    fn prefers_ready_row_hit_over_older_miss() {
        let mut e = engine();
        let mut banks = vec![BankState::new(); 4];
        // Bank 0 has row 5 open and ready for column access.
        let t = Target {
            bank: 0,
            bank_group: 0,
            rank: 0,
            channel: 0,
            mode: RowMode::MaxCapacity,
        };
        e.issue(Command::Act, t, 0);
        banks[0].activate(5, RowMode::MaxCapacity, 0);
        let now = e.earliest(Command::Rd, t);

        let entries = vec![
            mk(0, 1, 9, RequestKind::Read, 0),  // older, bank closed
            mk(1, 0, 5, RequestKind::Read, 10), // younger, row hit
        ];
        let mut s = SchedScratch::default();
        let d = pick(&entries, &banks, &e, &[0; 4], 4, now, &mut s).unwrap();
        assert_eq!(d.queue_index, 1);
        assert_eq!(d.command, Command::Rd);
    }

    #[test]
    fn cap_reverts_to_oldest_first() {
        let mut e = engine();
        let mut banks = vec![BankState::new(); 4];
        let t = Target {
            bank: 0,
            bank_group: 0,
            rank: 0,
            channel: 0,
            mode: RowMode::MaxCapacity,
        };
        e.issue(Command::Act, t, 0);
        banks[0].activate(5, RowMode::MaxCapacity, 0);
        let now = e.earliest(Command::Rd, t).max(e.earliest(Command::Pre, t));

        let entries = vec![
            mk(0, 0, 9, RequestKind::Read, 0),  // older conflict in bank 0
            mk(1, 0, 5, RequestKind::Read, 10), // younger hit in bank 0
        ];
        let mut s = SchedScratch::default();
        // Below cap: the hit wins.
        let d = pick(&entries, &banks, &e, &[0; 4], 4, now, &mut s).unwrap();
        assert_eq!(d.queue_index, 1);
        // At cap: oldest-first; service starts with PRE of the conflict.
        let d = pick(&entries, &banks, &e, &[4, 0, 0, 0], 4, now, &mut s).unwrap();
        assert_eq!(d.queue_index, 0);
        assert_eq!(d.command, Command::Pre);
    }

    #[test]
    fn closed_bank_gets_activate() {
        let e = engine();
        let banks = vec![BankState::new(); 4];
        let entries = vec![mk(0, 2, 7, RequestKind::Write, 0)];
        let mut s = SchedScratch::default();
        let d = pick(&entries, &banks, &e, &[0; 4], 4, 0, &mut s).unwrap();
        assert_eq!(d.command, Command::Act);
    }

    #[test]
    fn nothing_issuable_returns_none() {
        let mut e = engine();
        let banks = vec![BankState::new(); 4];
        let t = Target {
            bank: 0,
            bank_group: 0,
            rank: 0,
            channel: 0,
            mode: RowMode::MaxCapacity,
        };
        e.issue(Command::Act, t, 0);
        // Bank 0 closed per `banks`, but engine forbids ACT until tRC.
        let entries = vec![mk(0, 0, 7, RequestKind::Read, 0)];
        let mut s = SchedScratch::default();
        assert!(pick(&entries, &banks, &e, &[0; 4], 4, 1, &mut s).is_none());
    }

    #[test]
    fn next_ready_cycle_predicts_first_issue() {
        let mut e = engine();
        let banks = vec![BankState::new(); 4];
        let t = Target {
            bank: 0,
            bank_group: 0,
            rank: 0,
            channel: 0,
            mode: RowMode::MaxCapacity,
        };
        e.issue(Command::Act, t, 0);
        // Bank 0 closed in `banks` (engine-only ACT): re-ACT waits tRC.
        let entries = vec![mk(0, 0, 7, RequestKind::Read, 0)];
        let mut s = SchedScratch::default();
        let ready = next_ready_cycle(&entries, &banks, &e, &mut s).unwrap();
        assert_eq!(ready, e.earliest(Command::Act, t));
        assert!(pick(&entries, &banks, &e, &[0; 4], 4, ready - 1, &mut s).is_none());
        assert!(pick(&entries, &banks, &e, &[0; 4], 4, ready, &mut s).is_some());
        assert!(next_ready_cycle(&[], &banks, &e, &mut s).is_none());
    }

    #[test]
    fn lane_pick_matches_reference_scan_on_fuzzed_queues() {
        // Deterministic LCG fuzz over queue composition, bank states, hit
        // streaks and times; the lane-aggregated pick must agree with the
        // naive reference on every sample.
        let mut state = 0x2545_F491_4F6C_DD1Du64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut s = SchedScratch::default();
        for round in 0..400 {
            let mut e = engine();
            let mut banks = vec![BankState::new(); 4];
            // Open some banks and warm the engine with a few legal issues.
            for (b, bank) in banks.iter_mut().enumerate() {
                if rng() % 2 == 0 {
                    let t = Target {
                        bank: b,
                        bank_group: b / 2,
                        rank: 0,
                        channel: 0,
                        mode: RowMode::MaxCapacity,
                    };
                    let at = e.earliest(Command::Act, t);
                    e.issue(Command::Act, t, at);
                    bank.activate((rng() % 4) as u32, RowMode::MaxCapacity, at);
                }
            }
            let n = (rng() % 12) as usize;
            let entries: Vec<QueueEntry> = (0..n)
                .map(|i| {
                    let kind = if rng() % 4 == 0 {
                        RequestKind::Write
                    } else {
                        RequestKind::Read
                    };
                    mk(
                        i as u64,
                        (rng() % 4) as usize,
                        (rng() % 4) as u32,
                        kind,
                        rng() % 8,
                    )
                })
                .collect();
            let streaks: Vec<u32> = (0..4).map(|_| (rng() % 6) as u32).collect();
            let cap = 1 + (rng() % 4) as u32;
            let now = (rng() % 64).max(20);
            let got = pick(&entries, &banks, &e, &streaks, cap, now, &mut s);
            let want = pick_reference(&entries, &banks, &e, &streaks, cap, now);
            assert_eq!(got, want, "round {round}: lanes diverge from reference");
        }
    }
}
