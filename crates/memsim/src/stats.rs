//! Memory-system statistics consumed by the metrics and power models.

use clr_core::mode::RowMode;
use clr_obs::{BlameSet, LatencyHistogram};

/// Counters accumulated by the controller over a run.
///
/// Command counts are split per operating mode where the mode changes the
/// command's analog behaviour (ACT/PRE/REF); column bursts are
/// mode-independent at the interface.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MemStats {
    /// DRAM cycles elapsed.
    pub cycles: u64,
    /// ACT commands to max-capacity rows.
    pub acts_max_capacity: u64,
    /// ACT commands to high-performance rows.
    pub acts_high_performance: u64,
    /// PRE commands closing max-capacity rows.
    pub pres_max_capacity: u64,
    /// PRE commands closing high-performance rows.
    pub pres_high_performance: u64,
    /// RD bursts.
    pub reads: u64,
    /// WR bursts.
    pub writes: u64,
    /// REF commands of the max-capacity stream.
    pub refs_max_capacity: u64,
    /// REF commands of the high-performance stream.
    pub refs_high_performance: u64,
    /// Requests that found their row open.
    pub row_hits: u64,
    /// Requests that found their bank closed.
    pub row_misses: u64,
    /// Requests that found a different row open.
    pub row_conflicts: u64,
    /// Sum of read service latencies in DRAM cycles (arrival → last beat).
    pub read_latency_sum: u64,
    /// Reads completed (denominator for the average latency).
    pub reads_completed: u64,
    /// Reads served directly from the write queue.
    pub forwarded_reads: u64,
    /// Cycles with at least one bank open in the rank.
    pub rank_active_cycles: u64,
    /// Cycles with every bank precharged.
    pub rank_precharged_cycles: u64,
    /// Cycles the rank was blocked executing REF commands.
    pub refresh_busy_cycles: u64,
    /// Enqueue attempts rejected because a queue was full.
    pub queue_rejections: u64,
    /// Row-mode transitions applied to the mode table at runtime.
    pub mode_transitions: u64,
    /// Cycles queue service was blocked by relocation (mode-migration)
    /// work.
    pub relocation_stall_cycles: u64,
    /// Background-migration ACT commands in max-capacity mode (read-out
    /// phase activations).
    pub migration_acts_max_capacity: u64,
    /// Background-migration ACT commands in high-performance mode
    /// (write-back phase activations).
    pub migration_acts_high_performance: u64,
    /// Background-migration PRE commands closing max-capacity rows.
    pub migration_pres_max_capacity: u64,
    /// Background-migration PRE commands closing high-performance rows.
    pub migration_pres_high_performance: u64,
    /// Background-migration RD bursts (read-out data movement).
    pub migration_reads: u64,
    /// Background-migration WR bursts (write-back data movement).
    pub migration_writes: u64,
    /// Cycles in which a background-migration command occupied the
    /// command bus — the migration-slot utilization numerator.
    pub migration_slot_cycles: u64,
    /// Row-migration jobs completed (read-out + couple + write-back).
    pub migration_jobs_completed: u64,
    /// Completed couplings whose destination frame lived in a different
    /// bank (the overlapped two-bank execution).
    pub migration_cross_bank_jobs: u64,
    /// Whole-row frame evacuations completed on this channel (same-channel
    /// moves plus the read-out halves of cross-channel moves).
    pub migration_evacuations: u64,
    /// Whole-row frame fills completed on this channel (the write-back
    /// halves of cross-channel moves).
    pub migration_fills: u64,
    /// Frames entering the capacity directory as known-free (their
    /// contents were evacuated elsewhere).
    pub frames_freed: u64,
    /// Known-free frames handed back out by the destination pickers.
    pub frames_reused: u64,
    /// Distribution of demand-read service latencies in DRAM cycles
    /// (arrival → last beat), recorded at issue alongside
    /// `read_latency_sum` — the tail-latency view (p50/p95/p99/p999)
    /// behind every per-channel and fused report.
    pub read_latency_hist: LatencyHistogram,
    /// Distribution of demand-write service latencies in DRAM cycles
    /// (arrival → WR issue; writes are posted, so issue is completion
    /// from the requester's view).
    pub write_latency_hist: LatencyHistogram,
    /// Distribution of background-migration job latencies in DRAM
    /// cycles (dispatch → terminal step) — the migration request class,
    /// reported separately from demand traffic.
    pub migration_latency_hist: LatencyHistogram,
    /// Per-cause wait attribution for completed demand reads: when
    /// blame is enabled, `read_blame.total_cycles()` equals
    /// `read_latency_hist.sum()` exactly (the exactness contract);
    /// empty otherwise.
    pub read_blame: BlameSet,
    /// Per-cause wait attribution for completed demand writes
    /// (arrival → WR issue), with the same exactness contract against
    /// `write_latency_hist`.
    pub write_blame: BlameSet,
}

impl MemStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Zeroes every counter in place, keeping the latency histograms'
    /// bucket allocations — the reset a reused fused-statistics scratch
    /// applies instead of dropping and reallocating. The exhaustive
    /// destructuring (no `..`) is a compile-time drift guard: adding a
    /// field forces this function to handle it.
    pub fn reset(&mut self) {
        let MemStats {
            cycles,
            acts_max_capacity,
            acts_high_performance,
            pres_max_capacity,
            pres_high_performance,
            reads,
            writes,
            refs_max_capacity,
            refs_high_performance,
            row_hits,
            row_misses,
            row_conflicts,
            read_latency_sum,
            reads_completed,
            forwarded_reads,
            rank_active_cycles,
            rank_precharged_cycles,
            refresh_busy_cycles,
            queue_rejections,
            mode_transitions,
            relocation_stall_cycles,
            migration_acts_max_capacity,
            migration_acts_high_performance,
            migration_pres_max_capacity,
            migration_pres_high_performance,
            migration_reads,
            migration_writes,
            migration_slot_cycles,
            migration_jobs_completed,
            migration_cross_bank_jobs,
            migration_evacuations,
            migration_fills,
            frames_freed,
            frames_reused,
            read_latency_hist,
            write_latency_hist,
            migration_latency_hist,
            read_blame,
            write_blame,
        } = self;
        for c in [
            cycles,
            acts_max_capacity,
            acts_high_performance,
            pres_max_capacity,
            pres_high_performance,
            reads,
            writes,
            refs_max_capacity,
            refs_high_performance,
            row_hits,
            row_misses,
            row_conflicts,
            read_latency_sum,
            reads_completed,
            forwarded_reads,
            rank_active_cycles,
            rank_precharged_cycles,
            refresh_busy_cycles,
            queue_rejections,
            mode_transitions,
            relocation_stall_cycles,
            migration_acts_max_capacity,
            migration_acts_high_performance,
            migration_pres_max_capacity,
            migration_pres_high_performance,
            migration_reads,
            migration_writes,
            migration_slot_cycles,
            migration_jobs_completed,
            migration_cross_bank_jobs,
            migration_evacuations,
            migration_fills,
            frames_freed,
            frames_reused,
        ] {
            *c = 0;
        }
        read_latency_hist.clear();
        write_latency_hist.clear();
        migration_latency_hist.clear();
        read_blame.clear();
        write_blame.clear();
    }

    /// Total ACT commands.
    pub fn acts(&self) -> u64 {
        self.acts_max_capacity + self.acts_high_performance
    }

    /// Total PRE commands.
    pub fn pres(&self) -> u64 {
        self.pres_max_capacity + self.pres_high_performance
    }

    /// Total REF commands.
    pub fn refs(&self) -> u64 {
        self.refs_max_capacity + self.refs_high_performance
    }

    /// Records an ACT per mode.
    pub fn record_act(&mut self, mode: RowMode) {
        match mode {
            RowMode::MaxCapacity => self.acts_max_capacity += 1,
            RowMode::HighPerformance => self.acts_high_performance += 1,
        }
    }

    /// Records a PRE per mode of the closed row.
    pub fn record_pre(&mut self, mode: RowMode) {
        match mode {
            RowMode::MaxCapacity => self.pres_max_capacity += 1,
            RowMode::HighPerformance => self.pres_high_performance += 1,
        }
    }

    /// Records a REF per stream mode.
    pub fn record_ref(&mut self, mode: RowMode) {
        match mode {
            RowMode::MaxCapacity => self.refs_max_capacity += 1,
            RowMode::HighPerformance => self.refs_high_performance += 1,
        }
    }

    /// Records a background-migration ACT per mode.
    pub fn record_migration_act(&mut self, mode: RowMode) {
        match mode {
            RowMode::MaxCapacity => self.migration_acts_max_capacity += 1,
            RowMode::HighPerformance => self.migration_acts_high_performance += 1,
        }
    }

    /// Records a background-migration PRE per mode of the closed row.
    pub fn record_migration_pre(&mut self, mode: RowMode) {
        match mode {
            RowMode::MaxCapacity => self.migration_pres_max_capacity += 1,
            RowMode::HighPerformance => self.migration_pres_high_performance += 1,
        }
    }

    /// Total background-migration commands issued.
    pub fn migration_commands(&self) -> u64 {
        self.migration_acts_max_capacity
            + self.migration_acts_high_performance
            + self.migration_pres_max_capacity
            + self.migration_pres_high_performance
            + self.migration_reads
            + self.migration_writes
    }

    /// Fraction of all cycles in which a migration command occupied the
    /// command bus (the migration-slot utilization).
    pub fn migration_slot_utilization(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.migration_slot_cycles as f64 / self.cycles as f64
        }
    }

    /// Average read latency in DRAM cycles.
    pub fn avg_read_latency(&self) -> f64 {
        if self.reads_completed == 0 {
            0.0
        } else {
            self.read_latency_sum as f64 / self.reads_completed as f64
        }
    }

    /// Read-latency percentiles `(p50, p95, p99)` in DRAM cycles — the
    /// tail-latency summary every report prints alongside (or instead
    /// of) the average.
    pub fn read_latency_percentiles(&self) -> (u64, u64, u64) {
        let h = &self.read_latency_hist;
        (h.p50(), h.p95(), h.p99())
    }

    /// Counter-wise difference `self − earlier` (for excluding warmup from
    /// measurement windows).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is not actually earlier (any
    /// counter would underflow).
    #[must_use]
    pub fn delta_since(&self, earlier: &MemStats) -> MemStats {
        MemStats {
            cycles: self.cycles - earlier.cycles,
            acts_max_capacity: self.acts_max_capacity - earlier.acts_max_capacity,
            acts_high_performance: self.acts_high_performance - earlier.acts_high_performance,
            pres_max_capacity: self.pres_max_capacity - earlier.pres_max_capacity,
            pres_high_performance: self.pres_high_performance - earlier.pres_high_performance,
            reads: self.reads - earlier.reads,
            writes: self.writes - earlier.writes,
            refs_max_capacity: self.refs_max_capacity - earlier.refs_max_capacity,
            refs_high_performance: self.refs_high_performance - earlier.refs_high_performance,
            row_hits: self.row_hits - earlier.row_hits,
            row_misses: self.row_misses - earlier.row_misses,
            row_conflicts: self.row_conflicts - earlier.row_conflicts,
            read_latency_sum: self.read_latency_sum - earlier.read_latency_sum,
            reads_completed: self.reads_completed - earlier.reads_completed,
            forwarded_reads: self.forwarded_reads - earlier.forwarded_reads,
            rank_active_cycles: self.rank_active_cycles - earlier.rank_active_cycles,
            rank_precharged_cycles: self.rank_precharged_cycles - earlier.rank_precharged_cycles,
            refresh_busy_cycles: self.refresh_busy_cycles - earlier.refresh_busy_cycles,
            queue_rejections: self.queue_rejections - earlier.queue_rejections,
            mode_transitions: self.mode_transitions - earlier.mode_transitions,
            relocation_stall_cycles: self.relocation_stall_cycles - earlier.relocation_stall_cycles,
            migration_acts_max_capacity: self.migration_acts_max_capacity
                - earlier.migration_acts_max_capacity,
            migration_acts_high_performance: self.migration_acts_high_performance
                - earlier.migration_acts_high_performance,
            migration_pres_max_capacity: self.migration_pres_max_capacity
                - earlier.migration_pres_max_capacity,
            migration_pres_high_performance: self.migration_pres_high_performance
                - earlier.migration_pres_high_performance,
            migration_reads: self.migration_reads - earlier.migration_reads,
            migration_writes: self.migration_writes - earlier.migration_writes,
            migration_slot_cycles: self.migration_slot_cycles - earlier.migration_slot_cycles,
            migration_jobs_completed: self.migration_jobs_completed
                - earlier.migration_jobs_completed,
            migration_cross_bank_jobs: self.migration_cross_bank_jobs
                - earlier.migration_cross_bank_jobs,
            migration_evacuations: self.migration_evacuations - earlier.migration_evacuations,
            migration_fills: self.migration_fills - earlier.migration_fills,
            frames_freed: self.frames_freed - earlier.frames_freed,
            frames_reused: self.frames_reused - earlier.frames_reused,
            read_latency_hist: self
                .read_latency_hist
                .delta_since(&earlier.read_latency_hist),
            write_latency_hist: self
                .write_latency_hist
                .delta_since(&earlier.write_latency_hist),
            migration_latency_hist: self
                .migration_latency_hist
                .delta_since(&earlier.migration_latency_hist),
            read_blame: self.read_blame.delta_since(&earlier.read_blame),
            write_blame: self.write_blame.delta_since(&earlier.write_blame),
        }
    }

    /// Counter-wise sum `self + other` — the aggregation a channel-sharded
    /// memory system uses to fuse per-channel statistics into one view.
    ///
    /// Every field is summed, *including* `cycles`: channels run in
    /// lockstep, so the fused `cycles` counts channel-cycles (N channels ×
    /// wall cycles) and derived rates (`row_hit_rate`,
    /// `avg_read_latency`, `migration_slot_utilization`) recompute from
    /// the summed numerators and denominators — they are traffic-weighted
    /// averages over channels, never a drifting copy of per-channel
    /// values.
    pub fn merge(&mut self, other: &MemStats) {
        self.cycles += other.cycles;
        self.acts_max_capacity += other.acts_max_capacity;
        self.acts_high_performance += other.acts_high_performance;
        self.pres_max_capacity += other.pres_max_capacity;
        self.pres_high_performance += other.pres_high_performance;
        self.reads += other.reads;
        self.writes += other.writes;
        self.refs_max_capacity += other.refs_max_capacity;
        self.refs_high_performance += other.refs_high_performance;
        self.row_hits += other.row_hits;
        self.row_misses += other.row_misses;
        self.row_conflicts += other.row_conflicts;
        self.read_latency_sum += other.read_latency_sum;
        self.reads_completed += other.reads_completed;
        self.forwarded_reads += other.forwarded_reads;
        self.rank_active_cycles += other.rank_active_cycles;
        self.rank_precharged_cycles += other.rank_precharged_cycles;
        self.refresh_busy_cycles += other.refresh_busy_cycles;
        self.queue_rejections += other.queue_rejections;
        self.mode_transitions += other.mode_transitions;
        self.relocation_stall_cycles += other.relocation_stall_cycles;
        self.migration_acts_max_capacity += other.migration_acts_max_capacity;
        self.migration_acts_high_performance += other.migration_acts_high_performance;
        self.migration_pres_max_capacity += other.migration_pres_max_capacity;
        self.migration_pres_high_performance += other.migration_pres_high_performance;
        self.migration_reads += other.migration_reads;
        self.migration_writes += other.migration_writes;
        self.migration_slot_cycles += other.migration_slot_cycles;
        self.migration_jobs_completed += other.migration_jobs_completed;
        self.migration_cross_bank_jobs += other.migration_cross_bank_jobs;
        self.migration_evacuations += other.migration_evacuations;
        self.migration_fills += other.migration_fills;
        self.frames_freed += other.frames_freed;
        self.frames_reused += other.frames_reused;
        self.read_latency_hist.merge(&other.read_latency_hist);
        self.write_latency_hist.merge(&other.write_latency_hist);
        self.migration_latency_hist
            .merge(&other.migration_latency_hist);
        self.read_blame.merge(&other.read_blame);
        self.write_blame.merge(&other.write_blame);
    }

    /// The counter-wise sum of `stats` (see [`MemStats::merge`]).
    pub fn fused<'a>(stats: impl IntoIterator<Item = &'a MemStats>) -> MemStats {
        let mut out = MemStats::new();
        for s in stats {
            out.merge(s);
        }
        out
    }

    /// Row-buffer hit rate over classified requests.
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_misses + self.row_conflicts;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_mode_recording() {
        let mut s = MemStats::new();
        s.record_act(RowMode::MaxCapacity);
        s.record_act(RowMode::HighPerformance);
        s.record_pre(RowMode::HighPerformance);
        s.record_ref(RowMode::MaxCapacity);
        assert_eq!(s.acts(), 2);
        assert_eq!(s.pres(), 1);
        assert_eq!(s.refs(), 1);
        assert_eq!(s.acts_high_performance, 1);
    }

    #[test]
    fn derived_rates_handle_zero() {
        let s = MemStats::new();
        assert_eq!(s.avg_read_latency(), 0.0);
        assert_eq!(s.row_hit_rate(), 0.0);
    }

    /// Every field set, no `..Default` — adding a `MemStats` field breaks
    /// this constructor at compile time, forcing [`MemStats::merge`] and
    /// [`MemStats::delta_since`] to be revisited so per-channel and fused
    /// views cannot silently drift.
    /// Seed-derived histogram so the merge/delta inverse check below
    /// exercises the bucket-wise algebra, not just empty histograms.
    fn hist(seed: u64) -> LatencyHistogram {
        let mut h = LatencyHistogram::new();
        h.record(seed);
        h.record(seed * 7 + 3);
        h.record(seed.wrapping_mul(131) % 100_000);
        h
    }

    /// Seed-derived blame set touching several causes so the inverse
    /// check exercises the per-cause histogram algebra.
    fn blame(seed: u64) -> BlameSet {
        use clr_obs::WaitCause;
        let mut b = BlameSet::new();
        b.record_cause(WaitCause::RowConflict, seed);
        b.record_cause(WaitCause::Refresh, seed * 3 + 1);
        b.record_cause(WaitCause::Service, seed % 500 + 1);
        b
    }

    fn all_fields(seed: u64) -> MemStats {
        MemStats {
            cycles: seed,
            acts_max_capacity: seed + 1,
            acts_high_performance: seed + 2,
            pres_max_capacity: seed + 3,
            pres_high_performance: seed + 4,
            reads: seed + 5,
            writes: seed + 6,
            refs_max_capacity: seed + 7,
            refs_high_performance: seed + 8,
            row_hits: seed + 9,
            row_misses: seed + 10,
            row_conflicts: seed + 11,
            read_latency_sum: seed + 12,
            reads_completed: seed + 13,
            forwarded_reads: seed + 14,
            rank_active_cycles: seed + 15,
            rank_precharged_cycles: seed + 16,
            refresh_busy_cycles: seed + 17,
            queue_rejections: seed + 18,
            mode_transitions: seed + 19,
            relocation_stall_cycles: seed + 20,
            migration_acts_max_capacity: seed + 21,
            migration_acts_high_performance: seed + 22,
            migration_pres_max_capacity: seed + 23,
            migration_pres_high_performance: seed + 24,
            migration_reads: seed + 25,
            migration_writes: seed + 26,
            migration_slot_cycles: seed + 27,
            migration_jobs_completed: seed + 28,
            migration_cross_bank_jobs: seed + 29,
            migration_evacuations: seed + 30,
            migration_fills: seed + 31,
            frames_freed: seed + 32,
            frames_reused: seed + 33,
            read_latency_hist: hist(seed + 34),
            write_latency_hist: hist(seed + 35),
            migration_latency_hist: hist(seed + 36),
            read_blame: blame(seed + 37),
            write_blame: blame(seed + 38),
        }
    }

    #[test]
    fn merge_sums_every_counter() {
        let a = all_fields(100);
        let b = all_fields(1_000);
        let mut fused = a.clone();
        fused.merge(&b);
        // merge and delta_since are inverses field-by-field: subtracting
        // one addend back out must recover the other exactly. A counter
        // summed by merge but skipped by delta_since (or vice versa)
        // fails here.
        assert_eq!(fused.delta_since(&a), b);
        assert_eq!(fused.delta_since(&b), a);
        // Spot-check the sum itself.
        assert_eq!(fused.cycles, 1_100);
        assert_eq!(fused.migration_jobs_completed, 128 + 1_028);
        // Histograms fuse as multiset unions with exact counts/sums.
        assert_eq!(
            fused.read_latency_hist.count(),
            a.read_latency_hist.count() + b.read_latency_hist.count()
        );
        assert_eq!(
            fused.read_latency_hist.sum(),
            a.read_latency_hist.sum() + b.read_latency_hist.sum()
        );
    }

    #[test]
    fn fused_recomputes_derived_rates_from_sums() {
        let a = MemStats {
            cycles: 100,
            row_hits: 9,
            row_misses: 1,
            read_latency_sum: 200,
            reads_completed: 10,
            migration_slot_cycles: 30,
            ..MemStats::new()
        };
        let b = MemStats {
            cycles: 100,
            row_hits: 0,
            row_misses: 10,
            read_latency_sum: 100,
            reads_completed: 2,
            migration_slot_cycles: 10,
            ..MemStats::new()
        };
        let fused = MemStats::fused([&a, &b]);
        // Traffic-weighted, not the mean of per-channel rates.
        assert!((fused.row_hit_rate() - 9.0 / 20.0).abs() < 1e-12);
        assert!((fused.avg_read_latency() - 300.0 / 12.0).abs() < 1e-12);
        assert!((fused.migration_slot_utilization() - 40.0 / 200.0).abs() < 1e-12);
        // Identity: fusing one set of stats changes nothing.
        assert_eq!(MemStats::fused([&a]), a);
        assert_eq!(MemStats::fused(std::iter::empty()), MemStats::new());
    }

    #[test]
    fn hit_rate_math() {
        let s = MemStats {
            row_hits: 3,
            row_misses: 1,
            row_conflicts: 0,
            ..MemStats::new()
        };
        assert!((s.row_hit_rate() - 0.75).abs() < 1e-12);
    }
}
