//! The channel-sharded memory system: N independent per-channel
//! controllers behind one request-routing front end.
//!
//! A DDR channel is the natural shard boundary of a memory system: each
//! channel has its own command/data bus, its own controller queues, its
//! own refresh streams — nothing is shared except the physical address
//! space. [`MemorySystem`] exploits exactly that: it owns one
//! [`MemoryController`] per channel (each running the channel-slice
//! geometry, with its own [`ModeTable`](clr_core::mode::ModeTable),
//! refresh scheduler, migration engine, and scheduler lanes — no
//! cross-channel locking or shared mutable state), routes every request
//! through the configured [`AddressMapping`](clr_core::addr::AddressMapping)'s
//! bijective channel split ([`route`](clr_core::addr::AddressMapping::route)),
//! and fuses the per-channel event bounds and statistics back into one
//! system-level view.
//!
//! # Sharding contract
//!
//! * **Lockstep clocks** — all channels advance together; `tick`,
//!   `tick_fast`, and `tick_until` keep every channel at the same cycle.
//! * **Exact fused events** — [`MemorySystem::next_event_cycle`] is the
//!   minimum over channels of each controller's exact bound, so a
//!   full-system driver can co-jump the CPU domain across a dead window
//!   of the *whole* memory system and stay bit-identical to per-cycle
//!   stepping (the workspace differential test enforces this at the
//!   2-channel system level).
//! * **Deterministic completion order** — the per-cycle reference ticks
//!   channels in index order, so completions within one cycle are
//!   delivered channel 0 first; `tick_until` reproduces that order by
//!   merging per-channel completion streams on `(finish_cycle, channel)`.
//! * **Degenerate case is free** — a 1-channel `MemorySystem` is the
//!   single controller plus an identity route: it produces bit-identical
//!   command logs, completions, and statistics to driving the controller
//!   directly.

use std::collections::HashMap;

use clr_core::addr::{DramAddr, PhysAddr};
use clr_core::geometry::DramGeometry;
use clr_obs::{SkipProfile, TraceCategory, TraceConfig, TraceLog, TraceSink, SYSTEM_PID};

use std::sync::Arc;

use crate::config::MemConfig;
use crate::controller::MemoryController;
use crate::executor::Executor;
use crate::migrate::{JobKind, PlacementEvent};
use crate::request::{Completion, MemRequest};
use crate::stats::MemStats;

/// Minimum `tick_until` window (in DRAM cycles) worth fanning out to
/// the worker pool. Fan-out on the persistent [`Executor`] costs a
/// queue push + condvar wake (~1 µs) instead of the tens of µs a scoped
/// thread spawn used to cost, so the break-even window is 4× lower than
/// the old spawn-per-window cutover of 4096. Short windows still run
/// serially — an invisible cutover, since the serial and pooled walks
/// are bit-identical.
pub const PARALLEL_MIN_WINDOW: u64 = 1024;

/// Identity of one DRAM row in the sharded system: channel, channel-local
/// flat bank, row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RowKey {
    /// Channel index.
    pub channel: u32,
    /// Flat bank index within the channel (rank × bank-group × bank).
    pub bank: u32,
    /// Row index within the bank.
    pub row: u32,
}

impl RowKey {
    /// Convenience constructor.
    pub fn new(channel: u32, bank: u32, row: u32) -> Self {
        RowKey { channel, bank, row }
    }
}

/// Row-granular address indirection applied *after*
/// [`AddressMapping::route`](clr_core::addr::AddressMapping::route): the
/// capacity directory's record of rows whose contents were written back
/// into another bank or channel, so they remain addressable at their
/// original physical addresses.
///
/// Every completed frame move installs a **swap** (a transposition of
/// the two rows' identities): the evacuated row's logical identity now
/// resolves to the destination frame, and the destination frame's old
/// identity resolves to the vacated row (which the directory hands out
/// as fresh capacity). Because each install composes the current mapping
/// with a transposition, the table is a permutation of the row space
/// under *arbitrary* install sequences — so `remap ∘ route` stays a
/// bijection (property-tested in the workspace `tests/` directory) and
/// [`RemapTable::invert`] is an exact inverse for unrouting.
///
/// Only non-identity entries are stored; an empty table costs one branch
/// on the request path.
#[derive(Debug, Clone, Default)]
pub struct RemapTable {
    fwd: HashMap<RowKey, RowKey>,
    inv: HashMap<RowKey, RowKey>,
    installs: u64,
}

impl RemapTable {
    /// An identity table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the table is the identity.
    pub fn is_empty(&self) -> bool {
        self.fwd.is_empty()
    }

    /// Non-identity entries currently installed.
    pub fn len(&self) -> usize {
        self.fwd.len()
    }

    /// Swaps installed over the table's lifetime.
    pub fn installs(&self) -> u64 {
        self.installs
    }

    /// Where the row addressed as `logical` physically lives now.
    pub fn resolve(&self, logical: RowKey) -> RowKey {
        self.fwd.get(&logical).copied().unwrap_or(logical)
    }

    /// The exact inverse of [`RemapTable::resolve`]: which logical row
    /// currently lives in the physical row `physical`.
    pub fn invert(&self, physical: RowKey) -> RowKey {
        self.inv.get(&physical).copied().unwrap_or(physical)
    }

    /// Records that the contents of physical row `a` and physical row
    /// `b` exchanged places (a completed frame move: the evacuated
    /// data went `a → b`, and `b`'s free-frame identity now names `a`).
    /// Composing the permutation with a transposition keeps it a
    /// permutation, whatever the install history.
    pub fn install_swap(&mut self, a: RowKey, b: RowKey) {
        if a == b {
            return;
        }
        let la = self.inv.remove(&a).unwrap_or(a);
        let lb = self.inv.remove(&b).unwrap_or(b);
        if la == b {
            self.fwd.remove(&la);
        } else {
            self.fwd.insert(la, b);
            self.inv.insert(b, la);
        }
        if lb == a {
            self.fwd.remove(&lb);
        } else {
            self.fwd.insert(lb, a);
            self.inv.insert(a, lb);
        }
        self.installs += 1;
    }
}

/// A channel-sharded memory system (see the module docs).
#[derive(Debug)]
pub struct MemorySystem {
    config: MemConfig,
    channels: Vec<MemoryController>,
    /// Mask folding tagged/out-of-range physical addresses into the
    /// global capacity (capacity is a power of two).
    addr_mask: u64,
    /// Per-channel completion scratch for the `tick_until` merge.
    scratch: Vec<Vec<Completion>>,
    /// Per-channel cursors for the k-way completion merge (reused across
    /// calls so the merge allocates nothing).
    merge_idx: Vec<usize>,
    /// Worker threads for the `tick_until` channel walk (1 = serial).
    /// Parallelism is a host-speed knob only: the threaded walk is
    /// bit-identical to the serial one (see [`MemorySystem::tick_until`]).
    threads: usize,
    /// The persistent worker pool the threaded walk fans out on —
    /// created lazily by [`MemorySystem::set_threads`] (threads > 1) or
    /// handed in by [`MemorySystem::set_executor`] so many systems (a
    /// fleet) share one pool. `None` while the walk is serial.
    executor: Option<Arc<Executor>>,
    /// Minimum walk window (DRAM cycles) that fans out to workers;
    /// defaults to [`PARALLEL_MIN_WINDOW`]. A tuning knob: tests drop it
    /// to force the threaded path onto every window, and hosts with
    /// cheaper or pricier thread spawns can move the break-even point.
    parallel_cutover: u64,
    /// Host nanoseconds spent walking channels inside `tick_until`
    /// (serial loop or pooled walk) — the bench's per-phase
    /// breakdown numerator.
    walk_ns: u64,
    /// Host nanoseconds spent merging per-channel completion streams.
    merge_ns: u64,
    /// One channel's slice of the geometry (identical for every
    /// channel), cached for the remap decode on the request path.
    slice: DramGeometry,
    /// The capacity directory's row indirection (see [`RemapTable`]).
    remap: RemapTable,
    /// Scheduled cross-channel moves whose read-out half is still in
    /// flight: source row → reserved destination frame.
    moves: HashMap<RowKey, RowKey>,
    /// Dispatched fill halves still in flight: destination frame →
    /// source row (released and remapped when the fill lands).
    fills: HashMap<RowKey, RowKey>,
    /// Scratch buffer for placement-event drains.
    placement_scratch: Vec<PlacementEvent>,
    /// Rotating hint for import-frame picks, so successive imports
    /// spread across the destination channel's banks.
    import_cursor: usize,
    /// The system's own trace sink (pid = [`SYSTEM_PID`]): placement
    /// pumps, remap installs, cross-channel move lifecycle. Per-channel
    /// command/migration events live in each controller's sink.
    trace: Option<Box<TraceSink>>,
}

impl MemorySystem {
    /// Builds one controller per channel of `config.geometry`.
    ///
    /// Each per-channel controller runs the *channel slice* of the
    /// geometry (`channels = 1`, everything below identical) with the
    /// same timing, scheduling, CLR, and relocation configuration.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid (as
    /// [`MemoryController::new`]).
    pub fn new(config: MemConfig) -> Self {
        config.geometry.validate().expect("invalid geometry");
        let n = config.geometry.channels as usize;
        let channel_cfg = MemConfig {
            geometry: config.geometry.channel_slice(),
            ..config.clone()
        };
        let channels = (0..n)
            .map(|_| MemoryController::new(channel_cfg.clone()))
            .collect();
        MemorySystem {
            addr_mask: config.geometry.capacity_bytes() - 1,
            channels,
            scratch: vec![Vec::new(); n],
            merge_idx: vec![0; n],
            threads: 1,
            executor: None,
            parallel_cutover: PARALLEL_MIN_WINDOW,
            walk_ns: 0,
            merge_ns: 0,
            slice: config.geometry.channel_slice(),
            remap: RemapTable::new(),
            moves: HashMap::new(),
            fills: HashMap::new(),
            placement_scratch: Vec::new(),
            import_cursor: 0,
            trace: None,
            config,
        }
    }

    /// The system-wide configuration (the per-channel controllers hold
    /// the channel slice).
    pub fn config(&self) -> &MemConfig {
        &self.config
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.channels.len()
    }

    /// The per-channel controller (telemetry drains, mode tables, and
    /// migration feeds are per-channel state, accessed through here).
    ///
    /// # Panics
    ///
    /// Panics if `channel` is out of range.
    pub fn channel(&self, channel: usize) -> &MemoryController {
        &self.channels[channel]
    }

    /// Mutable access to one channel's controller (see
    /// [`MemorySystem::channel`]).
    ///
    /// # Panics
    ///
    /// Panics if `channel` is out of range.
    pub fn channel_mut(&mut self, channel: usize) -> &mut MemoryController {
        &mut self.channels[channel]
    }

    /// Routes a physical address to `(channel, channel-local address)`
    /// under the configured mapping, after folding it into the global
    /// capacity, then applies the capacity directory's [`RemapTable`] —
    /// a request to a row whose contents were moved to another bank or
    /// channel lands where the data actually lives.
    pub fn route(&self, addr: PhysAddr) -> (usize, PhysAddr) {
        let masked = PhysAddr(addr.0 & self.addr_mask);
        let (ch, local) = if self.channels.len() == 1 {
            (0u32, masked)
        } else {
            self.config
                .mapping
                .route(masked, &self.config.geometry)
                .expect("masked address is always in range")
        };
        if self.remap.is_empty() {
            return (ch as usize, local);
        }
        let d = self
            .config
            .mapping
            .map(local, &self.slice)
            .expect("channel-local address is always in range");
        let key = RowKey::new(ch, d.flat_bank(&self.slice) as u32, d.row);
        let r = self.remap.resolve(key);
        if r == key {
            return (ch as usize, local);
        }
        let nd = Self::bank_coords(&self.slice, r.bank, r.row, d.column);
        let nlocal = self
            .config
            .mapping
            .unmap(&nd, &self.slice)
            .expect("remapped coordinates are always in range");
        let offset = local.0 & (self.slice.bytes_per_column() - 1);
        (r.channel as usize, PhysAddr(nlocal.0 | offset))
    }

    /// The exact inverse of [`MemorySystem::route`]: re-encodes a
    /// physical `(channel, channel-local address)` back into the
    /// system-wide address that routes to it, undoing the remap first.
    pub fn unroute(&self, channel: usize, local: PhysAddr) -> PhysAddr {
        let (lch, llocal) = if self.remap.is_empty() {
            (channel as u32, local)
        } else {
            let d = self
                .config
                .mapping
                .map(local, &self.slice)
                .expect("channel-local address is always in range");
            let key = RowKey::new(channel as u32, d.flat_bank(&self.slice) as u32, d.row);
            let l = self.remap.invert(key);
            if l == key {
                (channel as u32, local)
            } else {
                let nd = Self::bank_coords(&self.slice, l.bank, l.row, d.column);
                let nlocal = self
                    .config
                    .mapping
                    .unmap(&nd, &self.slice)
                    .expect("remapped coordinates are always in range");
                let offset = local.0 & (self.slice.bytes_per_column() - 1);
                (l.channel, PhysAddr(nlocal.0 | offset))
            }
        };
        if self.channels.len() == 1 {
            return llocal;
        }
        self.config
            .mapping
            .unroute(lch, llocal, &self.config.geometry)
            .expect("channel-local address is always in range")
    }

    /// Splits a channel-local flat bank index back into DRAM
    /// coordinates.
    fn bank_coords(g: &DramGeometry, flat: u32, row: u32, column: u32) -> DramAddr {
        let bpg = g.banks_per_group;
        let bgs = g.bank_groups;
        DramAddr {
            channel: 0,
            rank: flat / (bgs * bpg),
            bank_group: (flat / bpg) % bgs,
            bank: flat % bpg,
            row,
            column,
        }
    }

    /// The capacity directory's row indirection.
    pub fn remap_table(&self) -> &RemapTable {
        &self.remap
    }

    /// Mutable access to the remap table (tests and external placement
    /// drivers installing swaps directly).
    pub fn remap_table_mut(&mut self) -> &mut RemapTable {
        &mut self.remap
    }

    /// Cross-channel frame moves currently staged (read-out or fill half
    /// still in flight).
    pub fn moves_in_flight(&self) -> usize {
        self.moves.len() + self.fills.len()
    }

    /// Schedules a whole-row frame move: the contents of `src` relocate
    /// into the free frame `dest`, after which the two rows' identities
    /// swap in the [`RemapTable`]. Same-channel moves dispatch directly
    /// as a two-bank evacuation job; cross-channel moves stage a
    /// read-out on the source channel now and a fill on the destination
    /// channel at the next [`MemorySystem::pump_placement`] after the
    /// read-out lands. Returns `false` (and changes nothing) if either
    /// row is unavailable (not max-capacity, or already migrating).
    pub fn schedule_row_move(&mut self, src: RowKey, dest: RowKey) -> bool {
        if src == dest {
            return false;
        }
        if src.channel == dest.channel {
            return self.channels[src.channel as usize].begin_row_evacuation(
                src.bank as usize,
                src.row,
                dest.bank as usize,
                dest.row,
            );
        }
        if !self.channels[dest.channel as usize].reserve_frame(dest.bank as usize, dest.row) {
            return false;
        }
        if !self.channels[src.channel as usize].begin_evacuation_out(src.bank as usize, src.row) {
            self.channels[dest.channel as usize].release_frame(dest.bank as usize, dest.row);
            return false;
        }
        self.moves.insert(src, dest);
        true
    }

    /// [`MemorySystem::schedule_row_move`] with the destination frame
    /// chosen (and reserved) by the destination channel's capacity
    /// directory. Returns the reserved frame, or `None` if no frame was
    /// available or the source row is unavailable.
    pub fn schedule_row_export(
        &mut self,
        src_channel: usize,
        bank: usize,
        row: u32,
        dest_channel: usize,
    ) -> Option<RowKey> {
        if src_channel == dest_channel {
            return None;
        }
        let hint = self.import_cursor;
        let (db, dr) = self.channels[dest_channel].reserve_import_frame(hint)?;
        self.import_cursor = self.import_cursor.wrapping_add(1);
        if !self.channels[src_channel].begin_evacuation_out(bank, row) {
            self.channels[dest_channel].release_frame(db, dr);
            return None;
        }
        let dest = RowKey::new(dest_channel as u32, db as u32, dr);
        self.moves
            .insert(RowKey::new(src_channel as u32, bank as u32, row), dest);
        Some(dest)
    }

    /// Advances staged placement work: drains every channel's completed
    /// placement events, installs [`RemapTable`] swaps for landed moves,
    /// dispatches the fill half of cross-channel moves whose read-out
    /// finished, and releases vacated frames into their channel's
    /// capacity directory.
    ///
    /// Determinism contract: the pump mutates routing state, so drivers
    /// must call it at cycle points that are identical across per-cycle
    /// and skip-ahead walks — epoch boundaries in the policy runtime,
    /// fixed cycles in tests. It is deliberately *not* called from
    /// `tick`/`tick_until`.
    pub fn pump_placement(&mut self) {
        let n = self.channels.len();
        let now = self.cycle();
        for ch in 0..n {
            let mut events = std::mem::take(&mut self.placement_scratch);
            self.channels[ch].drain_placement_events_into(&mut events);
            for ev in &events {
                if let Some(sink) = self.trace.as_deref_mut() {
                    if sink.wants(TraceCategory::Placement) {
                        sink.instant(
                            TraceCategory::Placement,
                            match ev.kind {
                                JobKind::Couple => "couple_placed",
                                JobKind::Evacuate => "evacuate_placed",
                                JobKind::EvacuateOut => "staged_out",
                                JobKind::FillIn => "fill_landed",
                            },
                            now,
                            vec![
                                ("channel", ch as u64),
                                ("bank", ev.bank as u64),
                                ("row", ev.row as u64),
                                ("dest_bank", ev.dest_bank as u64),
                                ("dest", ev.dest as u64),
                            ],
                        );
                    }
                }
                match ev.kind {
                    JobKind::Couple => {
                        // Cross-bank couplings need no remap: the coupled
                        // row keeps its (hot) identity; the displaced
                        // half-row's movement is placement-priced only.
                    }
                    JobKind::Evacuate => {
                        self.remap.install_swap(
                            RowKey::new(ch as u32, ev.bank, ev.row),
                            RowKey::new(ch as u32, ev.dest_bank, ev.dest),
                        );
                        self.trace_remap_install(now, ch as u32, ev.bank, ev.row);
                    }
                    JobKind::EvacuateOut => {
                        let src = RowKey::new(ch as u32, ev.bank, ev.row);
                        if let Some(dest) = self.moves.remove(&src) {
                            if self.channels[dest.channel as usize]
                                .begin_fill(dest.bank as usize, dest.row)
                            {
                                self.fills.insert(dest, src);
                            } else {
                                // The reservation vanished (cannot happen
                                // through this API); abort the move,
                                // releasing both rows.
                                self.channels[dest.channel as usize]
                                    .release_frame(dest.bank as usize, dest.row);
                                self.channels[ch].release_frame(ev.bank as usize, ev.row);
                            }
                        }
                    }
                    JobKind::FillIn => {
                        let dest = RowKey::new(ch as u32, ev.dest_bank, ev.dest);
                        if let Some(src) = self.fills.remove(&dest) {
                            self.remap.install_swap(src, dest);
                            self.channels[src.channel as usize]
                                .note_frame_freed(src.bank as usize, src.row);
                            self.trace_remap_install(now, src.channel, src.bank, src.row);
                        }
                    }
                }
            }
            events.clear();
            self.placement_scratch = events;
        }
    }

    /// Emits a remap-table install instant event (Placement category)
    /// when tracing is enabled.
    fn trace_remap_install(&mut self, now: u64, channel: u32, bank: u32, row: u32) {
        if let Some(sink) = self.trace.as_deref_mut() {
            if sink.wants(TraceCategory::Placement) {
                sink.instant(
                    TraceCategory::Placement,
                    "remap_install",
                    now,
                    vec![
                        ("channel", channel as u64),
                        ("bank", bank as u64),
                        ("row", row as u64),
                        ("installs", self.remap.installs()),
                    ],
                );
            }
        }
    }

    /// Attempts to enqueue a request on its channel, returning it back on
    /// queue-full (callers retry next cycle — backpressure is per
    /// channel). Read forwarding against queued writes happens inside the
    /// owning channel; a line always routes to one channel, so
    /// cross-channel forwarding cannot arise.
    pub fn try_enqueue(&mut self, request: MemRequest) -> Result<(), MemRequest> {
        let (ch, local) = self.route(request.addr);
        self.channels[ch]
            .try_enqueue(MemRequest {
                addr: local,
                ..request
            })
            .map_err(|_| request)
    }

    /// Current DRAM cycle (channels run in lockstep).
    pub fn cycle(&self) -> u64 {
        debug_assert!(
            self.channels
                .iter()
                .all(|c| c.cycle() == self.channels[0].cycle()),
            "channels must stay in lockstep"
        );
        self.channels[0].cycle()
    }

    /// Advances every channel one DRAM cycle, pushing finished reads into
    /// `completions` in channel order — the per-cycle reference
    /// semantics.
    pub fn tick(&mut self, completions: &mut Vec<Completion>) {
        for ch in &mut self.channels {
            ch.tick(completions);
        }
    }

    /// [`MemorySystem::tick`] with each channel shortcutting its provably
    /// dead cycles (see [`MemoryController::tick_fast`]). Bit-identical
    /// to `tick`.
    pub fn tick_fast(&mut self, completions: &mut Vec<Completion>) {
        for ch in &mut self.channels {
            ch.tick_fast(completions);
        }
    }

    /// Sets the worker-thread count for [`MemorySystem::tick_until`]'s
    /// channel walk (clamped to ≥ 1; 1 = the serial path). With
    /// threads > 1 a persistent [`Executor`] is built once and reused
    /// across every subsequent window — fan-out is a queue push, not a
    /// thread spawn. Purely a host-speed knob: thread count never
    /// changes a simulated outcome.
    pub fn set_threads(&mut self, threads: usize) {
        let threads = threads.max(1);
        self.threads = threads;
        if threads == 1 {
            self.executor = None;
        } else if self.executor.as_ref().map(|e| e.lanes()) != Some(threads) {
            self.executor = Some(Arc::new(Executor::new(threads)));
        }
    }

    /// Hands this system an existing worker pool (and adopts its lane
    /// count as the thread setting), so many systems — a fleet — share
    /// one executor instead of each spawning workers. Pool sharing is a
    /// host-speed knob only: simulated outcomes are identical whether
    /// the pool is private, shared, or absent.
    pub fn set_executor(&mut self, executor: Arc<Executor>) {
        self.threads = executor.lanes();
        self.executor = Some(executor);
    }

    /// The pool the threaded walk runs on (`None` while serial).
    pub fn executor(&self) -> Option<&Arc<Executor>> {
        self.executor.as_ref()
    }

    /// The configured worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Overrides the minimum window fanned out to worker threads
    /// (default [`PARALLEL_MIN_WINDOW`]). Purely a host-speed knob —
    /// the cutover is invisible in every simulated outcome — but
    /// differential tests drop it to `1` so the pooled walk runs
    /// on every window instead of only the long ones.
    pub fn set_parallel_cutover(&mut self, window: u64) {
        self.parallel_cutover = window.max(1);
    }

    /// Host time spent inside [`MemorySystem::tick_until`] as
    /// `(walk_seconds, merge_seconds)`: per-channel walking (serial loop
    /// or pooled walk) vs the deterministic completion merge — the
    /// per-phase breakdown `sim_throughput` v2 reports.
    pub fn host_phase_seconds(&self) -> (f64, f64) {
        (self.walk_ns as f64 / 1e9, self.merge_ns as f64 / 1e9)
    }

    /// Advances every channel to DRAM cycle `target`, jumping dead
    /// windows per channel and merging completions back into the
    /// per-cycle delivery order (`finish_cycle`, then channel index).
    /// Bit-identical to calling [`MemorySystem::tick`] in a loop.
    ///
    /// With [`MemorySystem::set_threads`] > 1, channels walk as one job
    /// each on the persistent [`Executor`] — sound because channels
    /// share no mutable state (each controller owns its mode table,
    /// refresh streams, migration engine, scheduler lanes, trace sink,
    /// and skip profile, and is *moved* into its job and back out
    /// through its result slot, so there is no sharing to reason about
    /// at all), and bit-identical because results return in channel
    /// order and the deterministic `(finish_cycle, channel)` merge
    /// erases completion arrival order. Each channel's completion
    /// scratch `Vec` rides through its job and back, so steady-state
    /// windows reallocate nothing. Short windows stay serial: even a
    /// queue hand-off would dominate a walk of a few cycles, and the
    /// serial and pooled walks agree exactly, so the cutover is
    /// invisible.
    pub fn tick_until(&mut self, target: u64, completions: &mut Vec<Completion>) {
        if self.channels.len() == 1 {
            let t0 = std::time::Instant::now();
            self.channels[0].tick_until(target, completions);
            self.walk_ns += t0.elapsed().as_nanos() as u64;
            return;
        }
        let window = target.saturating_sub(self.cycle());
        let t0 = std::time::Instant::now();
        if self.threads > 1 && window >= self.parallel_cutover {
            let exec = Arc::clone(
                self.executor
                    .get_or_insert_with(|| Arc::new(Executor::new(self.threads))),
            );
            // Move each controller (and its completion scratch) into a
            // pool job; reinstate both from the in-order result slots.
            // The outer Vecs are kept and refilled, so the steady state
            // allocates only the per-job boxes.
            let mut channels = std::mem::take(&mut self.channels);
            let mut scratch = std::mem::take(&mut self.scratch);
            let tasks: Vec<_> = channels
                .drain(..)
                .zip(scratch.drain(..))
                .map(|(mut ch, mut out)| {
                    move || {
                        out.clear();
                        ch.tick_until(target, &mut out);
                        (ch, out)
                    }
                })
                .collect();
            for (ch, out) in exec.run_batch(tasks) {
                channels.push(ch);
                scratch.push(out);
            }
            self.channels = channels;
            self.scratch = scratch;
        } else {
            for (ch, out) in self.channels.iter_mut().zip(&mut self.scratch) {
                out.clear();
                ch.tick_until(target, out);
            }
        }
        let t1 = std::time::Instant::now();
        self.walk_ns += (t1 - t0).as_nanos() as u64;
        // K-way merge on (finish_cycle, channel): each channel's stream
        // is already nondecreasing in finish_cycle, and the per-cycle
        // reference delivers equal-cycle completions in channel order.
        let scratch = &self.scratch;
        let idx = &mut self.merge_idx;
        idx.iter_mut().for_each(|i| *i = 0);
        loop {
            let mut best: Option<(u64, usize)> = None;
            for (c, (done, i)) in scratch.iter().zip(idx.iter()).enumerate() {
                if let Some(comp) = done.get(*i) {
                    if best.is_none_or(|b| (comp.finish_cycle, c) < b) {
                        best = Some((comp.finish_cycle, c));
                    }
                }
            }
            let Some((_, c)) = best else { break };
            completions.push(scratch[c][idx[c]]);
            idx[c] += 1;
        }
        self.merge_ns += t1.elapsed().as_nanos() as u64;
    }

    /// The earliest cycle at which *any* channel has an event — the fused
    /// skip-ahead bound. Exact because each channel's bound is exact and
    /// channels share no state: nothing can happen system-wide strictly
    /// before the minimum.
    pub fn next_event_cycle(&mut self) -> u64 {
        self.channels
            .iter_mut()
            .map(|c| c.next_event_cycle())
            .min()
            .expect("at least one channel")
    }

    /// A lower bound on the next cycle any channel can deliver a read
    /// completion (the min over channels of
    /// [`MemoryController::next_completion_bound`]) — the co-jump cap for
    /// a full-system driver.
    pub fn next_completion_bound(&mut self) -> u64 {
        self.channels
            .iter_mut()
            .map(|c| c.next_completion_bound())
            .min()
            .expect("at least one channel")
    }

    /// Counter-wise sum of every channel's statistics (see
    /// [`MemStats::merge`] for the rate semantics). Allocates a fresh
    /// block (three histogram buffers); hot loops reporting per epoch
    /// should reuse an accumulator via [`MemorySystem::fused_stats_into`].
    pub fn fused_stats(&self) -> MemStats {
        MemStats::fused(self.channels.iter().map(|c| c.stats()))
    }

    /// [`MemorySystem::fused_stats`] into a caller-owned accumulator:
    /// `out` is reset in place (histogram buffers kept) and refilled, so
    /// per-epoch reporting allocates nothing after the first call.
    pub fn fused_stats_into(&self, out: &mut MemStats) {
        out.reset();
        for ch in &self.channels {
            out.merge(ch.stats());
        }
    }

    /// One channel's statistics.
    ///
    /// # Panics
    ///
    /// Panics if `channel` is out of range.
    pub fn channel_stats(&self, channel: usize) -> &MemStats {
        self.channels[channel].stats()
    }

    /// Whether every channel's queues and in-flight buffers are empty.
    pub fn is_idle(&self) -> bool {
        self.channels.iter().all(|c| c.is_idle())
    }

    /// Queued reads across all channels.
    pub fn pending_reads(&self) -> usize {
        self.channels.iter().map(|c| c.pending_reads()).sum()
    }

    /// Queued writes across all channels.
    pub fn pending_writes(&self) -> usize {
        self.channels.iter().map(|c| c.pending_writes()).sum()
    }

    /// Migration jobs dispatched but not yet complete, across all
    /// channels.
    pub fn pending_migrations(&self) -> usize {
        self.channels.iter().map(|c| c.pending_migrations()).sum()
    }

    /// Switches on per-row telemetry collection on every channel (the
    /// drains stay per-channel: [`MemoryController::drain_row_telemetry_into`]
    /// via [`MemorySystem::channel_mut`]).
    pub fn enable_row_telemetry(&mut self) {
        for ch in &mut self.channels {
            ch.enable_row_telemetry();
        }
    }

    /// Switches on per-request wait-cause attribution on every channel
    /// (see [`MemoryController::enable_blame`]): completed demand
    /// requests' exact per-cause latency budgets accumulate into each
    /// channel's [`MemStats::read_blame`]/[`MemStats::write_blame`] and
    /// fuse through [`MemorySystem::fused_stats`] like every other
    /// statistic. Inert: simulated outcomes are bit-identical with or
    /// without it (the workspace `blame_inertness` differential
    /// enforces this).
    pub fn enable_blame(&mut self) {
        for ch in &mut self.channels {
            ch.enable_blame();
        }
    }

    /// Starts command logging on every channel (logs stay per-channel:
    /// [`MemorySystem::command_log`]).
    pub fn enable_command_log(&mut self) {
        for ch in &mut self.channels {
            ch.enable_command_log();
        }
    }

    /// Installs structured event tracing: one sink per channel (pid =
    /// channel index) for command and migration events, plus a
    /// system-level sink (pid = [`SYSTEM_PID`]) for placement and remap
    /// events. Tracing is inert — every simulated outcome is
    /// bit-identical with or without it (the workspace tracing
    /// differential test enforces this).
    pub fn enable_tracing(&mut self, cfg: &TraceConfig) {
        for (pid, ch) in self.channels.iter_mut().enumerate() {
            ch.enable_tracing(cfg, pid as u32);
        }
        self.trace = Some(Box::new(TraceSink::new(cfg, SYSTEM_PID)));
    }

    /// Drains every sink (per-channel and system) into one merged
    /// [`TraceLog`], sorted by `(ts, pid)`. Returns an empty log when
    /// tracing was never enabled.
    pub fn collect_trace(&mut self) -> TraceLog {
        let mut sinks: Vec<&mut TraceSink> = self
            .channels
            .iter_mut()
            .filter_map(|c| c.trace_sink_mut())
            .collect();
        if let Some(own) = self.trace.as_deref_mut() {
            sinks.push(own);
        }
        TraceLog::collect(sinks)
    }

    /// Whether a trace sink is installed.
    pub fn tracing_enabled(&self) -> bool {
        self.trace.is_some()
    }

    /// The system-level sink (pid = [`SYSTEM_PID`]), if tracing is
    /// enabled — drivers above the memory system (the policy-epoch loop)
    /// record their decisions here so they land in the same merged
    /// trace.
    pub fn system_trace_sink_mut(&mut self) -> Option<&mut TraceSink> {
        self.trace.as_deref_mut()
    }

    /// Merged skip-ahead profile across every channel: jump-length
    /// histogram, per-source trigger counts, ticked/skipped cycle
    /// totals. Lives outside [`MemStats`] because jump shapes
    /// legitimately differ between per-cycle and skip-ahead walks.
    pub fn fused_skip_profile(&self) -> SkipProfile {
        let mut fused = SkipProfile::default();
        self.fused_skip_profile_into(&mut fused);
        fused
    }

    /// [`MemorySystem::fused_skip_profile`] into a caller-owned
    /// accumulator (reset in place, jump-histogram buffer kept) — the
    /// allocation-free form for per-epoch reporting.
    pub fn fused_skip_profile_into(&self, out: &mut SkipProfile) {
        out.clear();
        for ch in &self.channels {
            out.merge(ch.skip_profile());
        }
    }

    /// One channel's recorded command log, if enabled.
    ///
    /// # Panics
    ///
    /// Panics if `channel` is out of range.
    pub fn command_log(&self, channel: usize) -> Option<&[crate::command::IssuedCommand]> {
        self.channels[channel].command_log()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::RequestKind;
    use clr_core::geometry::DramGeometry;

    fn two_channel_cfg() -> MemConfig {
        let mut cfg = MemConfig::paper_tiny();
        cfg.geometry.channels = 2;
        cfg
    }

    fn line_requests(n: u64, stride: u64) -> Vec<MemRequest> {
        (0..n)
            .map(|i| MemRequest::new(i, PhysAddr(i * stride), RequestKind::Read, 0))
            .collect()
    }

    #[test]
    fn one_channel_system_is_bit_identical_to_bare_controller() {
        let cfg = MemConfig::paper_tiny();
        let mut sys = MemorySystem::new(cfg.clone());
        let mut mc = MemoryController::new(cfg);
        sys.enable_command_log();
        mc.enable_command_log();
        let (mut done_sys, mut done_mc) = (Vec::new(), Vec::new());
        for req in line_requests(32, 64) {
            sys.try_enqueue(req).unwrap();
            mc.try_enqueue(req).unwrap();
        }
        sys.tick_until(20_000, &mut done_sys);
        while mc.cycle() < 20_000 {
            mc.tick(&mut done_mc);
        }
        assert_eq!(done_sys, done_mc);
        assert_eq!(sys.command_log(0).unwrap(), mc.command_log().unwrap());
        assert_eq!(sys.fused_stats(), *mc.stats());
    }

    #[test]
    fn requests_spread_across_channels() {
        let mut sys = MemorySystem::new(two_channel_cfg());
        // Consecutive lines alternate channels under the default
        // mapping (channel bits sit just above the burst).
        for req in line_requests(16, 64) {
            sys.try_enqueue(req).unwrap();
        }
        assert!(sys.channel(0).pending_reads() > 0);
        assert!(sys.channel(1).pending_reads() > 0);
        assert_eq!(sys.pending_reads(), 16);
        let mut done = Vec::new();
        sys.tick_until(30_000, &mut done);
        assert_eq!(done.len(), 16);
        assert_eq!(sys.cycle(), 30_000);
        let fused = sys.fused_stats();
        assert_eq!(fused.reads_completed, 16);
        assert_eq!(
            fused.reads,
            sys.channel_stats(0).reads + sys.channel_stats(1).reads
        );
        assert!(sys.is_idle());
    }

    #[test]
    fn routing_matches_the_mapping_and_masks_tags() {
        let cfg = two_channel_cfg();
        let sys = MemorySystem::new(cfg.clone());
        let g = &cfg.geometry;
        for addr in [0u64, 64, 128, 4096, g.capacity_bytes() - 64] {
            let (ch, local) = sys.route(PhysAddr(addr));
            let (ech, elocal) = cfg.mapping.route(PhysAddr(addr), g).unwrap();
            assert_eq!(ch, ech as usize);
            assert_eq!(local, elocal);
            // Core-tagged (out-of-range) addresses fold into capacity.
            let tagged = addr + g.capacity_bytes() * 3;
            assert_eq!(sys.route(PhysAddr(tagged)), (ch, local));
        }
    }

    #[test]
    fn completion_merge_preserves_cycle_then_channel_order() {
        let cfg = two_channel_cfg();
        let mut per_cycle = MemorySystem::new(cfg.clone());
        let mut jumped = MemorySystem::new(cfg);
        let reqs = line_requests(40, 64);
        for sys in [&mut per_cycle, &mut jumped] {
            for &req in &reqs {
                sys.try_enqueue(req).unwrap();
            }
        }
        let (mut done_a, mut done_b) = (Vec::new(), Vec::new());
        while per_cycle.cycle() < 25_000 {
            per_cycle.tick(&mut done_a);
        }
        jumped.tick_until(25_000, &mut done_b);
        assert_eq!(done_a, done_b);
        assert_eq!(per_cycle.fused_stats(), jumped.fused_stats());
    }

    #[test]
    fn threaded_walk_is_bit_identical_to_serial() {
        use crate::migrate::RelocationConfig;
        let run = |threads: usize| {
            let mut cfg = two_channel_cfg();
            cfg.geometry.channels = 4;
            cfg.relocation = RelocationConfig::background();
            let mut sys = MemorySystem::new(cfg);
            sys.set_threads(threads);
            // Fan out every window, not just cutover-sized ones.
            sys.set_parallel_cutover(1);
            sys.enable_command_log();
            for req in line_requests(64, 64) {
                sys.try_enqueue(req).unwrap();
            }
            sys.schedule_row_export(0, 0, 5, 1);
            let mut done = Vec::new();
            sys.tick_until(20_000, &mut done);
            sys.pump_placement();
            sys.tick_until(40_000, &mut done);
            sys.pump_placement();
            let logs: Vec<_> = (0..4)
                .map(|c| sys.command_log(c).unwrap().to_vec())
                .collect();
            (
                logs,
                done,
                sys.fused_stats(),
                sys.fused_skip_profile(),
                sys.remap_table().installs(),
            )
        };
        let serial = run(1);
        for threads in [2, 3, 8] {
            let threaded = run(threads);
            assert_eq!(
                serial.0, threaded.0,
                "command logs diverge at threads={threads}"
            );
            assert_eq!(
                serial.1, threaded.1,
                "completions diverge at threads={threads}"
            );
            assert_eq!(
                serial.2, threaded.2,
                "statistics diverge at threads={threads}"
            );
            assert_eq!(
                serial.3, threaded.3,
                "skip profiles diverge at threads={threads}"
            );
            assert_eq!(serial.4, threaded.4);
        }
    }

    #[test]
    fn shared_executor_across_systems_is_bit_identical_to_private_pools() {
        // One pool, many systems — the fleet usage pattern. Outcomes
        // must match systems that each built their own pool (and the
        // serial walk), and the pool must survive reuse across
        // sequential simulations.
        let exec = std::sync::Arc::new(Executor::new(3));
        let run = |shared: Option<&std::sync::Arc<Executor>>, threads: usize| {
            let cfg = two_channel_cfg();
            let mut sys = MemorySystem::new(cfg);
            match shared {
                Some(e) => sys.set_executor(std::sync::Arc::clone(e)),
                None => sys.set_threads(threads),
            }
            sys.set_parallel_cutover(1);
            for req in line_requests(48, 64) {
                sys.try_enqueue(req).unwrap();
            }
            let mut done = Vec::new();
            sys.tick_until(30_000, &mut done);
            (done, sys.fused_stats())
        };
        let serial = run(None, 1);
        let private = run(None, 3);
        assert_eq!(serial, private);
        for _ in 0..3 {
            assert_eq!(serial, run(Some(&exec), 0));
        }
        assert_eq!(std::sync::Arc::strong_count(&exec), 1, "pool released");
    }

    #[test]
    fn parallel_cutover_default_is_at_most_1024() {
        // The persistent pool makes fan-out cheap enough to engage on
        // epoch-sized windows; the issue pins the ceiling.
        const { assert!(PARALLEL_MIN_WINDOW <= 1024) };
        let mut sys = MemorySystem::new(two_channel_cfg());
        sys.set_threads(2);
        assert_eq!(sys.threads(), 2);
        assert!(sys.executor().is_some());
        sys.set_threads(1);
        assert!(sys.executor().is_none(), "serial walk drops the pool");
    }

    #[test]
    fn fused_accumulator_apis_match_the_allocating_forms() {
        let mut sys = MemorySystem::new(two_channel_cfg());
        for req in line_requests(24, 64) {
            sys.try_enqueue(req).unwrap();
        }
        let mut done = Vec::new();
        sys.tick_until(15_000, &mut done);
        let mut stats = MemStats::new();
        let mut profile = SkipProfile::default();
        // Pre-dirty the accumulators: `_into` must reset, not merge.
        stats.reads = 999;
        profile.record_jump(5, clr_obs::EventSource::Refresh);
        sys.fused_stats_into(&mut stats);
        sys.fused_skip_profile_into(&mut profile);
        assert_eq!(stats, sys.fused_stats());
        assert_eq!(profile, sys.fused_skip_profile());
    }

    #[test]
    fn fused_event_bound_is_min_over_channels() {
        let mut sys = MemorySystem::new(two_channel_cfg());
        // Idle system with refresh: the bound is the earliest refresh
        // due time, identical on both channels.
        let fused = sys.next_event_cycle();
        let per_ch: Vec<u64> = (0..2)
            .map(|c| sys.channel_mut(c).next_event_cycle())
            .collect();
        assert_eq!(fused, *per_ch.iter().min().unwrap());
    }

    #[test]
    fn remap_swaps_compose_into_a_permutation() {
        let mut t = RemapTable::new();
        let a = RowKey::new(0, 0, 5);
        let b = RowKey::new(1, 2, 9);
        let c = RowKey::new(1, 0, 1);
        assert!(t.is_empty());
        t.install_swap(a, b);
        assert_eq!(t.resolve(a), b);
        assert_eq!(t.resolve(b), a);
        assert_eq!(t.invert(b), a);
        assert_eq!(t.len(), 2);
        // Chained: a's data moves on from b to c.
        t.install_swap(b, c);
        assert_eq!(t.resolve(a), c, "a's data is at c now");
        assert_eq!(t.invert(c), a);
        // Swapping back to identity prunes entries.
        t.install_swap(c, a); // a's data returns home: a ↦ a
        assert_eq!(t.resolve(a), a);
        t.install_swap(b, c); // b's and c's data return home too
        assert_eq!(t.resolve(b), b);
        assert_eq!(t.resolve(c), c);
        assert!(t.is_empty(), "identity entries are pruned");
        assert_eq!(t.installs(), 4);
        // Self-swap is a no-op.
        t.install_swap(a, a);
        assert_eq!(t.installs(), 4);
    }

    #[test]
    fn cross_channel_move_stages_fills_and_remaps() {
        use crate::migrate::RelocationConfig;
        let mut cfg = two_channel_cfg();
        cfg.refresh_enabled = false;
        cfg.relocation = RelocationConfig::background();
        let g = cfg.geometry.clone();
        let mut sys = MemorySystem::new(cfg.clone());
        let dest = sys.schedule_row_export(0, 0, 5, 1).expect("frame reserved");
        assert_eq!(dest.channel, 1);
        assert_eq!(sys.moves_in_flight(), 1);
        assert!(
            sys.channel(1)
                .is_row_migrating(dest.bank as usize, dest.row),
            "destination frame reserved on the target channel"
        );
        let mut done = Vec::new();
        sys.tick_until(30_000, &mut done);
        assert_eq!(sys.pending_migrations(), 0, "read-out half finished");
        sys.pump_placement(); // dispatches the fill on channel 1
        assert_eq!(sys.moves_in_flight(), 1, "fill half in flight");
        assert!(sys.remap_table().is_empty(), "no remap before the landing");
        sys.tick_until(60_000, &mut done);
        sys.pump_placement(); // fill landed → swap installed
        assert_eq!(sys.moves_in_flight(), 0);
        assert_eq!(sys.remap_table().installs(), 1);
        assert!(
            sys.channel(0).frame_directory().is_free(0, 5),
            "vacated source row is a free frame on channel 0"
        );
        assert_eq!(sys.fused_stats().migration_evacuations, 1);
        assert_eq!(sys.fused_stats().migration_fills, 1);

        // Addresses that decoded to (ch 0, bank 0, row 5) now route to
        // the destination frame on channel 1 — and unroute restores the
        // original address exactly.
        use clr_core::addr::DramAddr;
        let global = cfg
            .mapping
            .unmap(
                &DramAddr {
                    channel: 0,
                    rank: 0,
                    bank_group: 0,
                    bank: 0,
                    row: 5,
                    column: 3,
                },
                &g,
            )
            .unwrap();
        let (ch, local) = sys.route(global);
        assert_eq!(ch, 1, "moved row routes to its new channel");
        let d = cfg.mapping.map(local, &g.channel_slice()).unwrap();
        assert_eq!(d.row, dest.row);
        assert_eq!(d.flat_bank(&g.channel_slice()) as u32, dest.bank);
        assert_eq!(d.column, 3, "column preserved through the remap");
        assert_eq!(sys.unroute(ch, local), global, "unroute is the inverse");
        // The displaced free-frame identity resolves back to the vacated
        // row (the swap's other leg).
        let back = cfg
            .mapping
            .unmap(
                &DramAddr {
                    channel: 1,
                    rank: (dest.bank / (g.bank_groups * g.banks_per_group)),
                    bank_group: (dest.bank / g.banks_per_group) % g.bank_groups,
                    bank: dest.bank % g.banks_per_group,
                    row: dest.row,
                    column: 0,
                },
                &g,
            )
            .unwrap();
        let (bch, blocal) = sys.route(back);
        assert_eq!(bch, 0);
        let bd = cfg.mapping.map(blocal, &g.channel_slice()).unwrap();
        assert_eq!((bd.flat_bank(&g.channel_slice()), bd.row), (0, 5));
    }

    #[test]
    fn pump_at_fixed_cycles_is_bit_identical_under_skip_ahead() {
        use crate::migrate::RelocationConfig;
        let run = |skip: bool| {
            let mut cfg = two_channel_cfg();
            cfg.refresh_enabled = true;
            cfg.relocation = RelocationConfig::background();
            let mut sys = MemorySystem::new(cfg);
            sys.enable_command_log();
            for req in line_requests(24, 64) {
                sys.try_enqueue(req).unwrap();
            }
            let mut done = Vec::new();
            let step_to = |sys: &mut MemorySystem, done: &mut Vec<Completion>, to: u64| {
                if skip {
                    sys.tick_until(to, done);
                } else {
                    while sys.cycle() < to {
                        sys.tick(done);
                    }
                }
            };
            sys.schedule_row_export(0, 0, 5, 1);
            sys.schedule_row_export(1, 1, 7, 0);
            step_to(&mut sys, &mut done, 20_000);
            sys.pump_placement();
            step_to(&mut sys, &mut done, 40_000);
            sys.pump_placement();
            step_to(&mut sys, &mut done, 60_000);
            sys.pump_placement();
            (
                sys.command_log(0).unwrap().to_vec(),
                sys.command_log(1).unwrap().to_vec(),
                done,
                sys.fused_stats(),
                sys.remap_table().installs(),
            )
        };
        let (l0a, l1a, done_a, stats_a, inst_a) = run(false);
        let (l0b, l1b, done_b, stats_b, inst_b) = run(true);
        assert_eq!(l0a, l0b, "channel-0 command logs diverge");
        assert_eq!(l1a, l1b, "channel-1 command logs diverge");
        assert_eq!(done_a, done_b, "completions diverge");
        assert_eq!(stats_a, stats_b, "statistics diverge");
        assert_eq!(inst_a, inst_b);
        assert_eq!(inst_a, 2, "both moves landed in the horizon");
    }

    #[test]
    fn channel_slice_geometry_shares_everything_below_the_channel() {
        let g = DramGeometry {
            channels: 4,
            ..DramGeometry::tiny()
        };
        let s = g.channel_slice();
        assert_eq!(s.channels, 1);
        assert_eq!(s.ranks, g.ranks);
        assert_eq!(s.banks_total(), g.banks_total());
        assert_eq!(s.capacity_bytes() * 4, g.capacity_bytes());
    }
}
