//! The channel-sharded memory system: N independent per-channel
//! controllers behind one request-routing front end.
//!
//! A DDR channel is the natural shard boundary of a memory system: each
//! channel has its own command/data bus, its own controller queues, its
//! own refresh streams — nothing is shared except the physical address
//! space. [`MemorySystem`] exploits exactly that: it owns one
//! [`MemoryController`] per channel (each running the channel-slice
//! geometry, with its own [`ModeTable`](clr_core::mode::ModeTable),
//! refresh scheduler, migration engine, and scheduler lanes — no
//! cross-channel locking or shared mutable state), routes every request
//! through the configured [`AddressMapping`](clr_core::addr::AddressMapping)'s
//! bijective channel split ([`route`](clr_core::addr::AddressMapping::route)),
//! and fuses the per-channel event bounds and statistics back into one
//! system-level view.
//!
//! # Sharding contract
//!
//! * **Lockstep clocks** — all channels advance together; `tick`,
//!   `tick_fast`, and `tick_until` keep every channel at the same cycle.
//! * **Exact fused events** — [`MemorySystem::next_event_cycle`] is the
//!   minimum over channels of each controller's exact bound, so a
//!   full-system driver can co-jump the CPU domain across a dead window
//!   of the *whole* memory system and stay bit-identical to per-cycle
//!   stepping (the workspace differential test enforces this at the
//!   2-channel system level).
//! * **Deterministic completion order** — the per-cycle reference ticks
//!   channels in index order, so completions within one cycle are
//!   delivered channel 0 first; `tick_until` reproduces that order by
//!   merging per-channel completion streams on `(finish_cycle, channel)`.
//! * **Degenerate case is free** — a 1-channel `MemorySystem` is the
//!   single controller plus an identity route: it produces bit-identical
//!   command logs, completions, and statistics to driving the controller
//!   directly.

use clr_core::addr::PhysAddr;

use crate::config::MemConfig;
use crate::controller::MemoryController;
use crate::request::{Completion, MemRequest};
use crate::stats::MemStats;

/// A channel-sharded memory system (see the module docs).
#[derive(Debug)]
pub struct MemorySystem {
    config: MemConfig,
    channels: Vec<MemoryController>,
    /// Mask folding tagged/out-of-range physical addresses into the
    /// global capacity (capacity is a power of two).
    addr_mask: u64,
    /// Per-channel completion scratch for the `tick_until` merge.
    scratch: Vec<Vec<Completion>>,
}

impl MemorySystem {
    /// Builds one controller per channel of `config.geometry`.
    ///
    /// Each per-channel controller runs the *channel slice* of the
    /// geometry (`channels = 1`, everything below identical) with the
    /// same timing, scheduling, CLR, and relocation configuration.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid (as
    /// [`MemoryController::new`]).
    pub fn new(config: MemConfig) -> Self {
        config.geometry.validate().expect("invalid geometry");
        let n = config.geometry.channels as usize;
        let channel_cfg = MemConfig {
            geometry: config.geometry.channel_slice(),
            ..config.clone()
        };
        let channels = (0..n)
            .map(|_| MemoryController::new(channel_cfg.clone()))
            .collect();
        MemorySystem {
            addr_mask: config.geometry.capacity_bytes() - 1,
            channels,
            scratch: vec![Vec::new(); n],
            config,
        }
    }

    /// The system-wide configuration (the per-channel controllers hold
    /// the channel slice).
    pub fn config(&self) -> &MemConfig {
        &self.config
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.channels.len()
    }

    /// The per-channel controller (telemetry drains, mode tables, and
    /// migration feeds are per-channel state, accessed through here).
    ///
    /// # Panics
    ///
    /// Panics if `channel` is out of range.
    pub fn channel(&self, channel: usize) -> &MemoryController {
        &self.channels[channel]
    }

    /// Mutable access to one channel's controller (see
    /// [`MemorySystem::channel`]).
    ///
    /// # Panics
    ///
    /// Panics if `channel` is out of range.
    pub fn channel_mut(&mut self, channel: usize) -> &mut MemoryController {
        &mut self.channels[channel]
    }

    /// Routes a physical address to `(channel, channel-local address)`
    /// under the configured mapping, after folding it into the global
    /// capacity.
    pub fn route(&self, addr: PhysAddr) -> (usize, PhysAddr) {
        let masked = PhysAddr(addr.0 & self.addr_mask);
        if self.channels.len() == 1 {
            return (0, masked);
        }
        let (ch, local) = self
            .config
            .mapping
            .route(masked, &self.config.geometry)
            .expect("masked address is always in range");
        (ch as usize, local)
    }

    /// Attempts to enqueue a request on its channel, returning it back on
    /// queue-full (callers retry next cycle — backpressure is per
    /// channel). Read forwarding against queued writes happens inside the
    /// owning channel; a line always routes to one channel, so
    /// cross-channel forwarding cannot arise.
    pub fn try_enqueue(&mut self, request: MemRequest) -> Result<(), MemRequest> {
        let (ch, local) = self.route(request.addr);
        self.channels[ch]
            .try_enqueue(MemRequest {
                addr: local,
                ..request
            })
            .map_err(|_| request)
    }

    /// Current DRAM cycle (channels run in lockstep).
    pub fn cycle(&self) -> u64 {
        debug_assert!(
            self.channels
                .iter()
                .all(|c| c.cycle() == self.channels[0].cycle()),
            "channels must stay in lockstep"
        );
        self.channels[0].cycle()
    }

    /// Advances every channel one DRAM cycle, pushing finished reads into
    /// `completions` in channel order — the per-cycle reference
    /// semantics.
    pub fn tick(&mut self, completions: &mut Vec<Completion>) {
        for ch in &mut self.channels {
            ch.tick(completions);
        }
    }

    /// [`MemorySystem::tick`] with each channel shortcutting its provably
    /// dead cycles (see [`MemoryController::tick_fast`]). Bit-identical
    /// to `tick`.
    pub fn tick_fast(&mut self, completions: &mut Vec<Completion>) {
        for ch in &mut self.channels {
            ch.tick_fast(completions);
        }
    }

    /// Advances every channel to DRAM cycle `target`, jumping dead
    /// windows per channel and merging completions back into the
    /// per-cycle delivery order (`finish_cycle`, then channel index).
    /// Bit-identical to calling [`MemorySystem::tick`] in a loop.
    pub fn tick_until(&mut self, target: u64, completions: &mut Vec<Completion>) {
        if self.channels.len() == 1 {
            self.channels[0].tick_until(target, completions);
            return;
        }
        for (ch, out) in self.channels.iter_mut().zip(&mut self.scratch) {
            out.clear();
            ch.tick_until(target, out);
        }
        // K-way merge on (finish_cycle, channel): each channel's stream
        // is already nondecreasing in finish_cycle, and the per-cycle
        // reference delivers equal-cycle completions in channel order.
        let n = self.scratch.len();
        let mut idx = vec![0usize; n];
        loop {
            let mut best: Option<(u64, usize)> = None;
            for (c, (done, i)) in self.scratch.iter().zip(&idx).enumerate() {
                if let Some(comp) = done.get(*i) {
                    if best.is_none_or(|b| (comp.finish_cycle, c) < b) {
                        best = Some((comp.finish_cycle, c));
                    }
                }
            }
            let Some((_, c)) = best else { break };
            completions.push(self.scratch[c][idx[c]]);
            idx[c] += 1;
        }
    }

    /// The earliest cycle at which *any* channel has an event — the fused
    /// skip-ahead bound. Exact because each channel's bound is exact and
    /// channels share no state: nothing can happen system-wide strictly
    /// before the minimum.
    pub fn next_event_cycle(&mut self) -> u64 {
        self.channels
            .iter_mut()
            .map(|c| c.next_event_cycle())
            .min()
            .expect("at least one channel")
    }

    /// A lower bound on the next cycle any channel can deliver a read
    /// completion (the min over channels of
    /// [`MemoryController::next_completion_bound`]) — the co-jump cap for
    /// a full-system driver.
    pub fn next_completion_bound(&mut self) -> u64 {
        self.channels
            .iter_mut()
            .map(|c| c.next_completion_bound())
            .min()
            .expect("at least one channel")
    }

    /// Counter-wise sum of every channel's statistics (see
    /// [`MemStats::merge`] for the rate semantics).
    pub fn fused_stats(&self) -> MemStats {
        MemStats::fused(self.channels.iter().map(|c| c.stats()))
    }

    /// One channel's statistics.
    ///
    /// # Panics
    ///
    /// Panics if `channel` is out of range.
    pub fn channel_stats(&self, channel: usize) -> &MemStats {
        self.channels[channel].stats()
    }

    /// Whether every channel's queues and in-flight buffers are empty.
    pub fn is_idle(&self) -> bool {
        self.channels.iter().all(|c| c.is_idle())
    }

    /// Queued reads across all channels.
    pub fn pending_reads(&self) -> usize {
        self.channels.iter().map(|c| c.pending_reads()).sum()
    }

    /// Queued writes across all channels.
    pub fn pending_writes(&self) -> usize {
        self.channels.iter().map(|c| c.pending_writes()).sum()
    }

    /// Migration jobs dispatched but not yet complete, across all
    /// channels.
    pub fn pending_migrations(&self) -> usize {
        self.channels.iter().map(|c| c.pending_migrations()).sum()
    }

    /// Switches on per-row telemetry collection on every channel (the
    /// drains stay per-channel: [`MemoryController::drain_row_telemetry_into`]
    /// via [`MemorySystem::channel_mut`]).
    pub fn enable_row_telemetry(&mut self) {
        for ch in &mut self.channels {
            ch.enable_row_telemetry();
        }
    }

    /// Starts command logging on every channel (logs stay per-channel:
    /// [`MemorySystem::command_log`]).
    pub fn enable_command_log(&mut self) {
        for ch in &mut self.channels {
            ch.enable_command_log();
        }
    }

    /// One channel's recorded command log, if enabled.
    ///
    /// # Panics
    ///
    /// Panics if `channel` is out of range.
    pub fn command_log(&self, channel: usize) -> Option<&[crate::command::IssuedCommand]> {
        self.channels[channel].command_log()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::RequestKind;
    use clr_core::geometry::DramGeometry;

    fn two_channel_cfg() -> MemConfig {
        let mut cfg = MemConfig::paper_tiny();
        cfg.geometry.channels = 2;
        cfg
    }

    fn line_requests(n: u64, stride: u64) -> Vec<MemRequest> {
        (0..n)
            .map(|i| MemRequest::new(i, PhysAddr(i * stride), RequestKind::Read, 0))
            .collect()
    }

    #[test]
    fn one_channel_system_is_bit_identical_to_bare_controller() {
        let cfg = MemConfig::paper_tiny();
        let mut sys = MemorySystem::new(cfg.clone());
        let mut mc = MemoryController::new(cfg);
        sys.enable_command_log();
        mc.enable_command_log();
        let (mut done_sys, mut done_mc) = (Vec::new(), Vec::new());
        for req in line_requests(32, 64) {
            sys.try_enqueue(req).unwrap();
            mc.try_enqueue(req).unwrap();
        }
        sys.tick_until(20_000, &mut done_sys);
        while mc.cycle() < 20_000 {
            mc.tick(&mut done_mc);
        }
        assert_eq!(done_sys, done_mc);
        assert_eq!(sys.command_log(0).unwrap(), mc.command_log().unwrap());
        assert_eq!(sys.fused_stats(), *mc.stats());
    }

    #[test]
    fn requests_spread_across_channels() {
        let mut sys = MemorySystem::new(two_channel_cfg());
        // Consecutive lines alternate channels under the default
        // mapping (channel bits sit just above the burst).
        for req in line_requests(16, 64) {
            sys.try_enqueue(req).unwrap();
        }
        assert!(sys.channel(0).pending_reads() > 0);
        assert!(sys.channel(1).pending_reads() > 0);
        assert_eq!(sys.pending_reads(), 16);
        let mut done = Vec::new();
        sys.tick_until(30_000, &mut done);
        assert_eq!(done.len(), 16);
        assert_eq!(sys.cycle(), 30_000);
        let fused = sys.fused_stats();
        assert_eq!(fused.reads_completed, 16);
        assert_eq!(
            fused.reads,
            sys.channel_stats(0).reads + sys.channel_stats(1).reads
        );
        assert!(sys.is_idle());
    }

    #[test]
    fn routing_matches_the_mapping_and_masks_tags() {
        let cfg = two_channel_cfg();
        let sys = MemorySystem::new(cfg.clone());
        let g = &cfg.geometry;
        for addr in [0u64, 64, 128, 4096, g.capacity_bytes() - 64] {
            let (ch, local) = sys.route(PhysAddr(addr));
            let (ech, elocal) = cfg.mapping.route(PhysAddr(addr), g).unwrap();
            assert_eq!(ch, ech as usize);
            assert_eq!(local, elocal);
            // Core-tagged (out-of-range) addresses fold into capacity.
            let tagged = addr + g.capacity_bytes() * 3;
            assert_eq!(sys.route(PhysAddr(tagged)), (ch, local));
        }
    }

    #[test]
    fn completion_merge_preserves_cycle_then_channel_order() {
        let cfg = two_channel_cfg();
        let mut per_cycle = MemorySystem::new(cfg.clone());
        let mut jumped = MemorySystem::new(cfg);
        let reqs = line_requests(40, 64);
        for sys in [&mut per_cycle, &mut jumped] {
            for &req in &reqs {
                sys.try_enqueue(req).unwrap();
            }
        }
        let (mut done_a, mut done_b) = (Vec::new(), Vec::new());
        while per_cycle.cycle() < 25_000 {
            per_cycle.tick(&mut done_a);
        }
        jumped.tick_until(25_000, &mut done_b);
        assert_eq!(done_a, done_b);
        assert_eq!(per_cycle.fused_stats(), jumped.fused_stats());
    }

    #[test]
    fn fused_event_bound_is_min_over_channels() {
        let mut sys = MemorySystem::new(two_channel_cfg());
        // Idle system with refresh: the bound is the earliest refresh
        // due time, identical on both channels.
        let fused = sys.next_event_cycle();
        let per_ch: Vec<u64> = (0..2)
            .map(|c| sys.channel_mut(c).next_event_cycle())
            .collect();
        assert_eq!(fused, *per_ch.iter().min().unwrap());
    }

    #[test]
    fn channel_slice_geometry_shares_everything_below_the_channel() {
        let g = DramGeometry {
            channels: 4,
            ..DramGeometry::tiny()
        };
        let s = g.channel_slice();
        assert_eq!(s.channels, 1);
        assert_eq!(s.ranks, g.ranks);
        assert_eq!(s.banks_total(), g.banks_total());
        assert_eq!(s.capacity_bytes() * 4, g.capacity_bytes());
    }
}
