//! Double-entry protocol audit: the controller's issue-time timing engine
//! and the after-the-fact checker are independent implementations of the
//! DDR4/CLR rules; every command stream the controller produces must pass
//! the checker with zero violations.

use clr_core::addr::PhysAddr;
use clr_memsim::checker::check;
use clr_memsim::config::MemConfig;
use clr_memsim::controller::MemoryController;
use clr_memsim::request::{MemRequest, RequestKind};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn audit_run(cfg: MemConfig, seed: u64, requests: usize) -> usize {
    let banks_per_group = cfg.geometry.banks_per_group as usize;
    let mut mc = MemoryController::new(cfg.clone());
    mc.enable_command_log();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut done = Vec::new();
    let mut sent = 0usize;
    let mut cycles = 0u64;
    while sent < requests || !mc.is_idle() {
        if sent < requests && rng.gen_bool(0.3) {
            let addr = rng.gen_range(0..cfg.geometry.capacity_bytes()) & !63;
            let kind = if rng.gen_bool(0.3) {
                RequestKind::Write
            } else {
                RequestKind::Read
            };
            if mc
                .try_enqueue(MemRequest::new(
                    sent as u64,
                    PhysAddr(addr),
                    kind,
                    mc.cycle(),
                ))
                .is_ok()
            {
                sent += 1;
            }
        }
        mc.tick(&mut done);
        done.clear();
        cycles += 1;
        assert!(cycles < 10_000_000, "audit run did not drain");
    }
    // Drain the timeout row policy.
    for _ in 0..2_000 {
        mc.tick(&mut done);
    }
    let log = mc.command_log().expect("log enabled").to_vec();
    assert!(!log.is_empty(), "run issued no commands");
    let banks = (cfg.geometry.channels
        * cfg.geometry.ranks
        * cfg.geometry.bank_groups
        * cfg.geometry.banks_per_group) as usize;
    let timings = {
        // Reconstruct the constraint set exactly as the controller does.
        use clr_memsim::config::ClrModeConfig;
        use clr_memsim::cycletimings::CycleTimings;
        let hp = cfg.clr.hp_params(&cfg.timings);
        match cfg.clr {
            ClrModeConfig::BaselineDdr4 => CycleTimings::baseline(&cfg.timings, &cfg.interface),
            ClrModeConfig::Clr { .. } => CycleTimings::new(&cfg.timings, &hp, &cfg.interface),
        }
    };
    let violations = check(&log, &timings, banks, |b| b / banks_per_group);
    assert!(
        violations.is_empty(),
        "protocol violations: {:?} (showing up to 5 of {})",
        &violations[..violations.len().min(5)],
        violations.len()
    );
    log.len()
}

#[test]
fn baseline_run_passes_audit() {
    let mut cfg = MemConfig::paper_tiny();
    cfg.refresh_enabled = true;
    let n = audit_run(cfg, 1, 300);
    assert!(n > 300, "expected a rich command stream, got {n}");
}

#[test]
fn clr_mixed_run_passes_audit() {
    let cfg = MemConfig::tiny_clr(0.5);
    audit_run(cfg, 2, 300);
}

#[test]
fn clr_extended_refresh_run_passes_audit() {
    let mut cfg = MemConfig::tiny_clr(1.0);
    if let clr_memsim::config::ClrModeConfig::Clr {
        ref mut hp_refw_ms, ..
    } = cfg.clr
    {
        *hp_refw_ms = 194.0;
    }
    audit_run(cfg, 3, 300);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any fraction/seed combination produces an audit-clean command
    /// stream.
    #[test]
    fn random_configs_pass_audit(seed in 0u64..1000, frac_q in 0u8..=4) {
        let cfg = MemConfig::tiny_clr(frac_q as f64 / 4.0);
        audit_run(cfg, seed, 120);
    }
}
