//! Property-based tests of the DDR4 timing engine and controller.

use clr_core::mode::RowMode;
use clr_core::timing::{ClrTimings, InterfaceTimings};
use clr_memsim::command::Command;
use clr_memsim::cycletimings::CycleTimings;
use clr_memsim::engine::{Target, TimingEngine};
use proptest::prelude::*;

fn engine() -> TimingEngine {
    let t = ClrTimings::from_circuit_defaults();
    let i = InterfaceTimings::ddr4_2400();
    let ct = CycleTimings::new(&t, t.for_mode(RowMode::HighPerformance), &i);
    // 4 bank groups × 4 banks, 1 rank, 1 channel — the paper's device.
    TimingEngine::new(ct, 16, 4, 1, 1, |b| (b / 4, 0))
}

fn target(bank: usize, mode: RowMode) -> Target {
    Target {
        bank,
        bank_group: bank / 4,
        rank: 0,
        channel: 0,
        mode,
    }
}

/// A simple reference model of per-bank state to drive *legal* command
/// sequences: issue whatever the engine permits, tracking open rows.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
enum BankRef {
    #[default]
    Closed,
    Open,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Greedy legal scheduling never violates timing (the engine would
    /// panic) and time never runs backwards, for arbitrary command
    /// preferences.
    #[test]
    fn engine_accepts_any_legal_schedule(
        prefs in proptest::collection::vec((0usize..16, 0u8..3, any::<bool>()), 1..120),
    ) {
        let mut e = engine();
        let mut banks = [BankRef::Closed; 16];
        let mut now = 0u64;
        for (bank, action, hp) in prefs {
            let mode = if hp { RowMode::HighPerformance } else { RowMode::MaxCapacity };
            let t = target(bank, mode);
            let cmd = match (banks[bank], action) {
                (BankRef::Closed, _) => Command::Act,
                (BankRef::Open, 0) => Command::Rd,
                (BankRef::Open, 1) => Command::Wr,
                (BankRef::Open, _) => Command::Pre,
            };
            let ready = e.earliest(cmd, t);
            now = now.max(ready);
            e.issue(cmd, t, now);
            match cmd {
                Command::Act => banks[bank] = BankRef::Open,
                Command::Pre => banks[bank] = BankRef::Closed,
                _ => {}
            }
            now += 1;
        }
    }

    /// The earliest-issue time is monotone: recording a command never
    /// makes any other command *earlier*.
    #[test]
    fn earliest_is_monotone_under_issue(
        seq in proptest::collection::vec((0usize..16, any::<bool>()), 1..60),
    ) {
        let mut e = engine();
        let mut banks = [BankRef::Closed; 16];
        let mut now = 0u64;
        for (bank, hp) in seq {
            let mode = if hp { RowMode::HighPerformance } else { RowMode::MaxCapacity };
            let t = target(bank, mode);
            let cmd = if banks[bank] == BankRef::Closed { Command::Act } else { Command::Pre };
            let probe = target((bank + 1) % 16, RowMode::MaxCapacity);
            let before: Vec<u64> = [Command::Act, Command::Rd, Command::Wr]
                .iter()
                .map(|&c| e.earliest(c, probe))
                .collect();
            now = now.max(e.earliest(cmd, t));
            e.issue(cmd, t, now);
            let after: Vec<u64> = [Command::Act, Command::Rd, Command::Wr]
                .iter()
                .map(|&c| e.earliest(c, probe))
                .collect();
            for (b, a) in before.iter().zip(&after) {
                prop_assert!(a >= b, "earliest moved backwards: {} -> {}", b, a);
            }
            match cmd {
                Command::Act => banks[bank] = BankRef::Open,
                Command::Pre => banks[bank] = BankRef::Closed,
                _ => {}
            }
            now += 1;
        }
    }

    /// High-performance rows are never slower than max-capacity rows for
    /// the same fresh-bank access pattern.
    #[test]
    fn hp_never_slower(bank in 0usize..16) {
        let mut e_mc = engine();
        let mut e_hp = engine();
        let mc = target(bank, RowMode::MaxCapacity);
        let hp = target(bank, RowMode::HighPerformance);
        e_mc.issue(Command::Act, mc, 0);
        e_hp.issue(Command::Act, hp, 0);
        for cmd in [Command::Rd, Command::Wr, Command::Pre] {
            prop_assert!(
                e_hp.earliest(cmd, hp) <= e_mc.earliest(cmd, mc),
                "{cmd} slower in HP mode"
            );
        }
    }

    /// tFAW: the fifth activate in any window of four is delayed by at
    /// least tFAW from the first.
    #[test]
    fn faw_window_enforced(start_bank in 0usize..12) {
        let mut e = engine();
        let mut issue_times = Vec::new();
        let mut now = 0u64;
        for i in 0..5 {
            let t = target((start_bank + i) % 16, RowMode::MaxCapacity);
            now = now.max(e.earliest(Command::Act, t));
            e.issue(Command::Act, t, now);
            issue_times.push(now);
            now += 1;
        }
        let faw = e.timings().faw;
        prop_assert!(
            issue_times[4] >= issue_times[0] + faw,
            "5th ACT at {} < first {} + tFAW {}",
            issue_times[4],
            issue_times[0],
            faw
        );
    }
}
