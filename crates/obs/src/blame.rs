//! Per-request wait-cause attribution: the latency anatomy layer.
//!
//! A request's enqueue→completion latency is decomposed into an exact,
//! mutually exclusive cycle budget over the [`WaitCause`] taxonomy: the
//! controller freezes one cause per queued request and lazily charges
//! whole dead windows to it, re-deriving the cause only at the
//! scheduling boundaries every walk executes identically (enqueues,
//! state-changing ticks, mode applications). The charges telescope —
//! each boundary settles `boundary − last_charge` cycles — so the
//! per-cause budget of a completed request sums *exactly* to its
//! measured latency, and because dead cycles charge nothing at the time
//! they elapse, the budgets are bit-identical across per-cycle,
//! skip-ahead, and threaded channel walks (the workspace
//! `blame_inertness` differential enforces both properties).
//!
//! A [`BlameSet`] aggregates the per-request budgets as one
//! [`LatencyHistogram`] per cause, with the same exact `merge` /
//! `delta_since` algebra as every other statistic in the repo — so
//! per-channel fusion, warmup subtraction, windowed series deltas, and
//! fleet-level fusion all work unchanged.

use crate::hist::LatencyHistogram;

/// The mutually exclusive causes a queued demand request's cycles are
/// charged to. Exactly one cause is frozen per request at any time;
/// priority runs top to bottom (a refresh-preempted controller charges
/// `Refresh` even if the request's bank is also timing-blocked).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitCause {
    /// Queue-full rejection: cycles between the request's arrival and
    /// its successful enqueue (the CPU-side retry loop).
    Backpressure,
    /// Queue service preempted by a pending refresh (PRE-out plus the
    /// REF itself).
    Refresh,
    /// Queue service suspended by a stall-mode relocation batch.
    RelocationStall,
    /// Queue-selection wait: reads stalled behind an active write-drain
    /// episode, or writes parked until the next drain episode opens.
    WriteDrain,
    /// The target bank or row is held by an in-flight background
    /// migration job (row-block or mid-phase bank ownership).
    MigrationBlock,
    /// Row-conflict resolution: waiting to close a different open row
    /// (tRAS/tWR before PRE) or to re-activate after one (tRP).
    RowConflict,
    /// Own-bank timing for the request's next command with no conflict
    /// involved: tRCD before the column access, tRC between activates.
    BankBusy,
    /// Rank/bank-group/channel serialization: tRRD, tFAW, tCCD,
    /// write↔read bus turnarounds.
    Bus,
    /// The command was issuable but an older or prioritized request won
    /// the command bus (FR-FCFS ordering, the Cap rule, migration's
    /// eager-finish priority).
    Aging,
    /// Pure service: RD issue to last data beat (posted writes complete
    /// at issue, so their service component is zero).
    Service,
}

impl WaitCause {
    /// All causes, in a fixed order matching [`BlameSet`] indexing.
    pub const ALL: [WaitCause; 10] = [
        WaitCause::Backpressure,
        WaitCause::Refresh,
        WaitCause::RelocationStall,
        WaitCause::WriteDrain,
        WaitCause::MigrationBlock,
        WaitCause::RowConflict,
        WaitCause::BankBusy,
        WaitCause::Bus,
        WaitCause::Aging,
        WaitCause::Service,
    ];

    /// Number of causes.
    pub const COUNT: usize = Self::ALL.len();

    /// Stable lowercase label for reports and JSON keys.
    pub fn label(self) -> &'static str {
        match self {
            WaitCause::Backpressure => "backpressure",
            WaitCause::Refresh => "refresh",
            WaitCause::RelocationStall => "relocation_stall",
            WaitCause::WriteDrain => "write_drain",
            WaitCause::MigrationBlock => "migration_block",
            WaitCause::RowConflict => "row_conflict",
            WaitCause::BankBusy => "bank_busy",
            WaitCause::Bus => "bus",
            WaitCause::Aging => "aging",
            WaitCause::Service => "service",
        }
    }

    /// The cause's index into a [`BlameSet`].
    pub fn index(self) -> usize {
        self as usize
    }
}

/// The running per-request charge ledger the controller embeds in each
/// queue entry: the frozen cause, the cycle charging resumes from, and
/// the per-cause budget accumulated so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlameLedger {
    /// Cycles not yet settled are charged from here.
    pub charge_from: u64,
    /// The cause frozen at the last boundary.
    pub cause: WaitCause,
    /// Settled cycles per cause (indexed by [`WaitCause::index`]).
    pub cycles: [u64; WaitCause::COUNT],
}

impl BlameLedger {
    /// A fresh ledger charging from `enqueue_cycle`, with the
    /// arrival→enqueue gap already settled as [`WaitCause::Backpressure`].
    pub fn new(arrival_cycle: u64, enqueue_cycle: u64) -> Self {
        let mut cycles = [0; WaitCause::COUNT];
        cycles[WaitCause::Backpressure.index()] = enqueue_cycle.saturating_sub(arrival_cycle);
        BlameLedger {
            charge_from: enqueue_cycle,
            cause: WaitCause::Backpressure,
            cycles,
        }
    }

    /// An inert ledger for attribution-off runs (never charged).
    pub fn disabled() -> Self {
        BlameLedger {
            charge_from: 0,
            cause: WaitCause::Backpressure,
            cycles: [0; WaitCause::COUNT],
        }
    }

    /// Settles `now − charge_from` cycles on the frozen cause and
    /// refreezes `cause` from `now` on — the boundary step. Charges
    /// telescope: summing every settled span reproduces the full
    /// enqueue→issue wait exactly.
    #[inline]
    pub fn settle(&mut self, now: u64, cause: WaitCause) {
        self.cycles[self.cause.index()] += now - self.charge_from;
        self.charge_from = now;
        self.cause = cause;
    }

    /// Total settled cycles across every cause.
    pub fn total(&self) -> u64 {
        self.cycles.iter().sum()
    }
}

/// Per-cause latency distributions: one [`LatencyHistogram`] per
/// [`WaitCause`], each recording completed requests' per-cause budget
/// components (zero components are skipped, so a cause's `count` is the
/// number of requests that spent any cycles on it while the `sum`s
/// across causes still total the request class's exact latency sum).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BlameSet {
    /// The per-cause histograms, indexed by [`WaitCause::index`].
    pub hists: [LatencyHistogram; WaitCause::COUNT],
}

impl BlameSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one completed request's settled ledger: every nonzero
    /// per-cause component goes into that cause's histogram.
    pub fn record(&mut self, ledger: &BlameLedger) {
        for (cause, &cycles) in WaitCause::ALL.iter().zip(ledger.cycles.iter()) {
            if cycles > 0 {
                self.hists[cause.index()].record(cycles);
            }
        }
    }

    /// Records `cycles` against one cause directly (tests and synthetic
    /// fixtures).
    pub fn record_cause(&mut self, cause: WaitCause, cycles: u64) {
        if cycles > 0 {
            self.hists[cause.index()].record(cycles);
        }
    }

    /// The cause's distribution.
    pub fn of(&self, cause: WaitCause) -> &LatencyHistogram {
        &self.hists[cause.index()]
    }

    /// Total cycles attributed across every cause — for a demand
    /// request class this equals the class's latency-histogram sum
    /// exactly (the exactness contract).
    pub fn total_cycles(&self) -> u64 {
        self.hists.iter().map(|h| h.sum()).sum()
    }

    /// Whether nothing has been attributed.
    pub fn is_empty(&self) -> bool {
        self.hists.iter().all(|h| h.count() == 0)
    }

    /// Empties every histogram in place, keeping bucket allocations.
    pub fn clear(&mut self) {
        self.hists.iter_mut().for_each(LatencyHistogram::clear);
    }

    /// Per-cause share of the attributed cycles in permille (integer,
    /// so reports stay byte-deterministic). All zeros when empty.
    pub fn fractions_permille(&self) -> [u64; WaitCause::COUNT] {
        let total = self.total_cycles();
        let mut out = [0; WaitCause::COUNT];
        if total == 0 {
            return out;
        }
        for (o, h) in out.iter_mut().zip(self.hists.iter()) {
            *o = h.sum() * 1000 / total;
        }
        out
    }

    /// Causes ordered by attributed cycles, heaviest first, zero-cycle
    /// causes omitted — the "top blame" vector SLO violations carry.
    pub fn dominant(&self) -> Vec<(WaitCause, u64)> {
        let mut v: Vec<(WaitCause, u64)> = WaitCause::ALL
            .iter()
            .map(|&c| (c, self.of(c).sum()))
            .filter(|&(_, s)| s > 0)
            .collect();
        // Stable tie-break on the fixed cause order keeps reports
        // byte-deterministic.
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.index().cmp(&b.0.index())));
        v
    }

    /// Histogram-wise sum (per-channel and fleet fusion); exact.
    pub fn merge(&mut self, other: &BlameSet) {
        for (s, o) in self.hists.iter_mut().zip(other.hists.iter()) {
            s.merge(o);
        }
    }

    /// Histogram-wise difference `self − earlier` (warmup and window
    /// subtraction); exact inverse of [`BlameSet::merge`].
    #[must_use]
    pub fn delta_since(&self, earlier: &BlameSet) -> BlameSet {
        let mut out = BlameSet::new();
        for ((o, s), e) in out
            .hists
            .iter_mut()
            .zip(self.hists.iter())
            .zip(earlier.hists.iter())
        {
            *o = s.delta_since(e);
        }
        out
    }

    /// Folds many sets into one with [`BlameSet::merge`].
    pub fn fused<'a>(parts: impl IntoIterator<Item = &'a BlameSet>) -> BlameSet {
        let mut out = BlameSet::new();
        for p in parts {
            out.merge(p);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every cause charged from `seed`, no `..Default` — adding a
    /// [`WaitCause`] variant breaks this at compile time, forcing the
    /// merge/delta algebra and every report to be revisited (the drift
    /// guard `MemStats` and `SkipProfile` use).
    fn all_causes(seed: u64) -> BlameSet {
        let mut s = BlameSet::new();
        for (i, &c) in WaitCause::ALL.iter().enumerate() {
            s.record_cause(c, seed + i as u64);
            s.record_cause(c, seed * 3 + 1);
        }
        s
    }

    #[test]
    fn ledger_charges_telescope() {
        let mut l = BlameLedger::new(10, 25);
        assert_eq!(l.cycles[WaitCause::Backpressure.index()], 15);
        l.settle(40, WaitCause::RowConflict); // 25..40 on Backpressure
        l.settle(100, WaitCause::Refresh); // 40..100 on RowConflict
        l.settle(130, WaitCause::Aging); // 100..130 on Refresh
        l.settle(130, WaitCause::Bus); // zero-width boundary
        l.settle(150, WaitCause::Service); // 130..150 on Bus
        assert_eq!(l.cycles[WaitCause::Backpressure.index()], 15 + 15);
        assert_eq!(l.cycles[WaitCause::RowConflict.index()], 60);
        assert_eq!(l.cycles[WaitCause::Refresh.index()], 30);
        assert_eq!(l.cycles[WaitCause::Aging.index()], 0);
        assert_eq!(l.cycles[WaitCause::Bus.index()], 20);
        // The settled total is exactly arrival → last boundary.
        assert_eq!(l.total(), 150 - 10);
    }

    #[test]
    fn recording_preserves_sums_and_skips_zeros() {
        let mut l = BlameLedger::new(0, 0);
        l.settle(30, WaitCause::Bus);
        l.settle(70, WaitCause::Service);
        let mut set = BlameSet::new();
        set.record(&l);
        assert_eq!(set.total_cycles(), l.total());
        assert_eq!(set.of(WaitCause::Backpressure).count(), 1);
        assert_eq!(set.of(WaitCause::Bus).count(), 1);
        assert_eq!(set.of(WaitCause::Refresh).count(), 0);
        let top = set.dominant();
        assert_eq!(top[0], (WaitCause::Bus, 40));
        assert_eq!(top[1], (WaitCause::Backpressure, 30));
    }

    #[test]
    fn merge_and_delta_are_inverses() {
        let a = all_causes(100);
        let b = all_causes(9_000);
        let mut fused = a.clone();
        fused.merge(&b);
        assert_eq!(fused.delta_since(&a), b);
        assert_eq!(fused.delta_since(&b), a);
        assert_eq!(fused.total_cycles(), a.total_cycles() + b.total_cycles());
        assert_eq!(BlameSet::fused([&a]), a);
        assert_eq!(BlameSet::fused(std::iter::empty()), BlameSet::new());
    }

    #[test]
    fn fractions_are_permille_of_total() {
        let mut s = BlameSet::new();
        s.record_cause(WaitCause::Refresh, 750);
        s.record_cause(WaitCause::Service, 250);
        let f = s.fractions_permille();
        assert_eq!(f[WaitCause::Refresh.index()], 750);
        assert_eq!(f[WaitCause::Service.index()], 250);
        assert_eq!(BlameSet::new().fractions_permille(), [0; WaitCause::COUNT]);
    }

    #[test]
    fn cause_indexing_is_stable() {
        for (i, c) in WaitCause::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        assert_eq!(WaitCause::COUNT, 10);
    }
}
