//! Log2-bucketed latency histograms with exact merge/delta semantics.
//!
//! [`LatencyHistogram`] is an HDR-style histogram: values below
//! [`SUB_BUCKETS`] are counted exactly, and every power-of-two range
//! above that is split into [`SUB_BUCKETS`] linear sub-buckets, bounding
//! the relative quantization error at `1 / SUB_BUCKETS` (≈ 3.1 %) while
//! covering the full `u64` range in a fixed number of buckets. Bucket
//! assignment is a pure function of the value, so two histograms built
//! from the same samples are identical regardless of recording order —
//! and every summary (count, sum, quantiles, max) is derived from the
//! buckets and the exact sum alone. That is what lets
//! [`LatencyHistogram::merge`] and [`LatencyHistogram::delta_since`] be
//! *exact* inverses (the properties the memory system's per-channel
//! fusion and warmup-window subtraction rely on, enforced by this
//! crate's property tests and by `MemStats`' exhaustive drift guard).

/// Linear sub-buckets per power-of-two range (and the width of the exact
/// low range). Must be a power of two.
pub const SUB_BUCKETS: u64 = 32;

/// log2 of [`SUB_BUCKETS`].
const SUB_SHIFT: u32 = SUB_BUCKETS.trailing_zeros();

/// Total bucket count covering all of `u64`: the exact low range plus
/// one sub-bucket run per octave from `SUB_SHIFT` to 63.
pub const BUCKETS: usize = (64 - SUB_SHIFT as usize + 1) * SUB_BUCKETS as usize;

/// The bucket index of `v` (a pure function of the value).
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS {
        v as usize
    } else {
        let top = 63 - v.leading_zeros(); // floor(log2 v) ≥ SUB_SHIFT
        let octave = (top - SUB_SHIFT + 1) as usize;
        let offset = ((v >> (top - SUB_SHIFT)) - SUB_BUCKETS) as usize;
        octave * SUB_BUCKETS as usize + offset
    }
}

/// The largest value mapped to bucket `index` (its inclusive upper
/// edge) — the value quantile extraction reports for a sample landing
/// in it, making every quantile an overestimate by at most the bucket
/// width (`1 / SUB_BUCKETS` relative).
#[inline]
fn bucket_upper_bound(index: usize) -> u64 {
    let sub = SUB_BUCKETS as usize;
    if index < sub {
        index as u64
    } else {
        let octave = (index / sub) as u32;
        let offset = (index % sub) as u64;
        // The bucket spans ((SUB_BUCKETS + offset) << w) ..=
        // (((SUB_BUCKETS + offset + 1) << w) - 1) with w = octave - 1;
        // the top bucket's edge wraps to exactly u64::MAX.
        ((SUB_BUCKETS + offset + 1) << (octave - 1)).wrapping_sub(1)
    }
}

/// An HDR-style log2-bucketed histogram of `u64` latencies.
///
/// Storage is allocated lazily on the first record, so a zeroed
/// histogram (e.g. inside a freshly built statistics block) costs three
/// words. Equality is *semantic*: an empty histogram equals one whose
/// buckets are allocated but all zero.
#[derive(Debug, Clone, Default)]
pub struct LatencyHistogram {
    /// Bucket counts, either empty (nothing recorded) or `BUCKETS` long.
    counts: Vec<u64>,
    /// Total samples recorded.
    count: u64,
    /// Exact sum of all recorded values (for the exact mean).
    sum: u64,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Records `n` samples of the same value.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        if self.counts.is_empty() {
            self.counts = vec![0; BUCKETS];
        }
        self.counts[bucket_index(v)] += n;
        self.count += n;
        self.sum += v * n;
    }

    /// Empties the histogram in place, keeping the bucket allocation so
    /// a reused accumulator (e.g. a fused per-channel scratch) records
    /// again without reallocating.
    pub fn clear(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.count = 0;
        self.sum = 0;
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Upper edge of the highest non-empty bucket — the maximum recorded
    /// value rounded up to its bucket edge (0 when empty). Quantized so
    /// that merge/delta stay exact inverses.
    pub fn max(&self) -> u64 {
        self.counts
            .iter()
            .rposition(|&c| c > 0)
            .map_or(0, bucket_upper_bound)
    }

    /// Exact mean of the recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q ∈ [0, 1]`: the inclusive upper edge of
    /// the bucket containing the `ceil(q·count)`-th smallest sample.
    /// Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper_bound(i);
            }
        }
        self.max()
    }

    /// Median (see [`LatencyHistogram::quantile`]).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Adds every bucket of `other` into `self` — the fusion a
    /// channel-sharded memory system applies per channel. Exact:
    /// `merge(a, b)` equals recording the multiset union of both
    /// histograms' samples.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        if other.count == 0 {
            return;
        }
        if self.counts.is_empty() {
            self.counts = vec![0; BUCKETS];
        }
        for (s, &o) in self.counts.iter_mut().zip(other.counts.iter()) {
            *s += o;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Bucket-wise difference `self − earlier` (for excluding warmup
    /// windows). Exact inverse of [`LatencyHistogram::merge`]:
    /// `merge(a, b).delta_since(a) == b` bucket for bucket.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is not a prefix of `self`
    /// (any bucket would underflow).
    #[must_use]
    pub fn delta_since(&self, earlier: &LatencyHistogram) -> LatencyHistogram {
        if earlier.count == 0 {
            return self.clone();
        }
        debug_assert!(self.count >= earlier.count, "delta_since underflow");
        let mut counts = self.counts.clone();
        for (s, &e) in counts.iter_mut().zip(earlier.counts.iter()) {
            debug_assert!(*s >= e, "delta_since bucket underflow");
            *s -= e;
        }
        LatencyHistogram {
            counts,
            count: self.count - earlier.count,
            sum: self.sum - earlier.sum,
        }
    }

    /// Folds many histograms into one with [`LatencyHistogram::merge`] —
    /// the fleet-level fusion: per-instance read-latency distributions
    /// combine exactly (no re-simulation, no approximation), so a fused
    /// p99 over a thousand instances is the true p99 of the union of
    /// every instance's samples.
    pub fn fused<'a>(parts: impl IntoIterator<Item = &'a LatencyHistogram>) -> LatencyHistogram {
        let mut out = LatencyHistogram::new();
        for h in parts {
            out.merge(h);
        }
        out
    }

    /// The percentile summary `(p50, p95, p99)` every fleet and bench
    /// report prints — one call instead of three quantile walks' worth
    /// of call sites.
    pub fn percentiles(&self) -> (u64, u64, u64) {
        (self.p50(), self.p95(), self.p99())
    }

    /// Iterates non-empty buckets as `(upper_bound, count)`.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_upper_bound(i), c))
    }
}

impl PartialEq for LatencyHistogram {
    /// Semantic equality: an unallocated histogram equals an allocated
    /// all-zero one, so zeroed statistics blocks compare equal however
    /// they were produced (fresh, merged-empty, or delta-to-self).
    fn eq(&self, other: &Self) -> bool {
        if self.count != other.count || self.sum != other.sum {
            return false;
        }
        match (self.counts.is_empty(), other.counts.is_empty()) {
            (true, true) => true,
            (true, false) => other.counts.iter().all(|&c| c == 0),
            (false, true) => self.counts.iter().all(|&c| c == 0),
            (false, false) => self.counts == other.counts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in 0..SUB_BUCKETS {
            h.record(v);
            assert_eq!(h.max(), v, "low range tracks exactly");
        }
        assert_eq!(h.count(), SUB_BUCKETS);
        assert_eq!(h.sum(), (0..SUB_BUCKETS).sum::<u64>());
        assert_eq!(h.p50(), SUB_BUCKETS / 2 - 1);
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), SUB_BUCKETS - 1);
    }

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(31), 31);
        assert_eq!(bucket_index(32), 32);
        assert_eq!(bucket_index(63), 63);
        assert_eq!(bucket_index(64), 64);
        assert_eq!(bucket_index(127), 95);
        assert_eq!(bucket_index(128), 96);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        // Every bucket's upper edge maps back into itself.
        for i in 0..BUCKETS {
            assert_eq!(bucket_index(bucket_upper_bound(i)), i, "bucket {i}");
        }
    }

    #[test]
    fn quantile_error_is_bounded() {
        let mut h = LatencyHistogram::new();
        h.record(1_000_000);
        let q = h.quantile(0.5);
        assert!(q >= 1_000_000);
        assert!((q as f64) < 1_000_000.0 * (1.0 + 1.0 / SUB_BUCKETS as f64));
    }

    #[test]
    fn empty_histogram_is_zero_everywhere() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn semantic_equality_ignores_allocation() {
        let empty = LatencyHistogram::new();
        let mut touched = LatencyHistogram::new();
        touched.record(5);
        let zeroed = touched.delta_since(&touched);
        assert_eq!(zeroed.count(), 0);
        assert_eq!(empty, zeroed);
        assert_eq!(zeroed, empty);
    }

    #[test]
    fn merge_then_delta_roundtrips() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for v in [1u64, 7, 33, 999, 12_345] {
            a.record(v);
        }
        for v in [2u64, 64, 100_000] {
            b.record(v * 3);
        }
        let mut fused = a.clone();
        fused.merge(&b);
        assert_eq!(fused.count(), a.count() + b.count());
        assert_eq!(fused.delta_since(&a), b);
        assert_eq!(fused.delta_since(&b), a);
    }
}
