//! Observability for the CLR-DRAM simulator: latency histograms,
//! structured event tracing, and skip-ahead profiling.
//!
//! This crate is dependency-free so every layer of the workspace can
//! use it — the memory model records into it on its hot paths, the
//! full-system runner fuses and reports it. Three modules:
//!
//! * [`hist`] — [`LatencyHistogram`]: HDR-style log2-bucketed
//!   histograms with **exact** `merge`/`delta_since` (bucket-wise sum
//!   and difference are inverses) and quantile extraction
//!   (p50/p95/p99/p999). The memory controller records read, write, and
//!   migration-job service latencies into them; the channel-sharded
//!   memory system fuses per-channel histograms by merging, and
//!   measurement windows subtract warmup by delta — both exact, so the
//!   skip-ahead and tracing differential tests can keep asserting
//!   statistics equality bit for bit.
//! * [`trace`] — [`TraceSink`]: a bounded ring buffer of categorized
//!   events (DRAM commands, migration-job lifecycle, policy-epoch
//!   decisions, frame moves/remaps) serializing to Chrome trace-event
//!   JSON for Perfetto. Enabled per run via `CLR_TRACE`
//!   ([`TraceConfig::from_env`]); with no sink installed the
//!   instrumentation sites cost one pointer test.
//! * [`profile`] — [`SkipProfile`]: host-side counters for the
//!   event-driven skip-ahead walk (jump-length histogram, per-source
//!   trigger counts, event density per kilocycle). Deliberately *not*
//!   part of `MemStats`: per-cycle and skip-ahead walks produce
//!   identical simulation statistics but different profiles.
//! * [`series`] — [`MetricsRecorder`]/[`TimeSeries`]: continuous
//!   telemetry sampled in simulated-cycle windows from exact
//!   statistics deltas — counters, gauges, and windowed tail
//!   latencies — with exact bucket-wise `merge` for
//!   per-channel→system fusion, and Chrome trace-event counter-track
//!   export. Enabled per run via `CLR_METRICS`
//!   ([`MetricsConfig::from_env`]).
//! * [`slo`] — [`SloSpec`]/[`SloReport`]: declarative service-level
//!   objectives over the series (error budgets, multi-window
//!   burn-rate alerts), producing machine-checkable verdicts.
//! * [`blame`] — [`WaitCause`]/[`BlameSet`]: per-request wait-cause
//!   attribution. Every completed demand request's enqueue→completion
//!   latency is decomposed into an exact, mutually exclusive per-cause
//!   cycle budget (row conflict, refresh, migration blocking, bus
//!   serialization, write-drain, FR-FCFS aging, service), aggregated
//!   as one histogram per cause with the same exact `merge` /
//!   `delta_since` algebra.
//!
//! # Capturing a trace
//!
//! ```no_run
//! # use clr_obs::trace::{TraceCategory, TraceConfig, TraceLog, TraceSink};
//! let cfg = TraceConfig::default();
//! let mut sink = TraceSink::new(&cfg, 0);
//! sink.instant(TraceCategory::Commands, "act", 42, vec![("bank", 3)]);
//! let log = TraceLog::collect([&mut sink]);
//! std::fs::write("trace.json", log.to_chrome_json()).unwrap();
//! // … then open trace.json at https://ui.perfetto.dev
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod blame;
pub mod hist;
pub mod profile;
pub mod series;
pub mod slo;
pub mod trace;

pub use blame::{BlameLedger, BlameSet, WaitCause};
pub use hist::LatencyHistogram;
pub use profile::{EventSource, SkipProfile};
pub use series::{
    ChannelSample, MetricsConfig, MetricsRecorder, SeriesCounters, SeriesGauges, TimeSeries,
    WindowSummary,
};
pub use slo::{
    BurnRatePolicy, ObjectiveOutcome, ScalarObjective, ScalarOutcome, SloReport, SloSpec,
    WindowMetric, WindowedObjective,
};
pub use trace::{
    CategorySet, TraceCategory, TraceConfig, TraceEvent, TraceLog, TraceSink, SYSTEM_PID,
};
