//! Host-side skip-ahead profiling: where the event-driven fast path
//! spends its jumps and which event sources bound them.
//!
//! A [`SkipProfile`] is *host-side observability, not simulation
//! state*: per-cycle and skip-ahead walks of the same run produce
//! identical `MemStats` but very different profiles (the per-cycle walk
//! never jumps), so the profile lives outside the statistics the
//! differential tests compare. It answers the questions the
//! parallel-execution roadmap needs answered: how long are dead
//! windows ([`SkipProfile::jumps`]), which of the controller's six
//! event sources ends them ([`SkipProfile::triggers`]), and how dense
//! events are per simulated kilocycle
//! ([`SkipProfile::events_per_kilocycle`]).

use crate::hist::LatencyHistogram;

/// The controller's next-event sources — each dead-window jump is
/// attributed to the source that produced the binding (minimum) bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventSource {
    /// An in-flight read completion delivery.
    Completion,
    /// Refresh becoming due, or a pending refresh's next PRE/REF.
    Refresh,
    /// A relocation (stall-mode) window expiring.
    RelocationStall,
    /// The earliest issuable queued demand command (including bounds
    /// merged at enqueue time).
    QueueReady,
    /// A timeout-policy background row close.
    TimeoutClose,
    /// The earliest issuable background-migration command.
    Migration,
}

impl EventSource {
    /// All sources, in a fixed order matching
    /// [`SkipProfile::triggers`].
    pub const ALL: [EventSource; 6] = [
        EventSource::Completion,
        EventSource::Refresh,
        EventSource::RelocationStall,
        EventSource::QueueReady,
        EventSource::TimeoutClose,
        EventSource::Migration,
    ];

    /// Number of sources.
    pub const COUNT: usize = Self::ALL.len();

    /// Stable lowercase label for reports.
    pub fn label(self) -> &'static str {
        match self {
            EventSource::Completion => "completion",
            EventSource::Refresh => "refresh",
            EventSource::RelocationStall => "relocation_stall",
            EventSource::QueueReady => "queue_ready",
            EventSource::TimeoutClose => "timeout_close",
            EventSource::Migration => "migration",
        }
    }

    /// The source's index into [`SkipProfile::triggers`].
    pub fn index(self) -> usize {
        self as usize
    }
}

/// Profiling counters for the event-driven skip-ahead walk.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SkipProfile {
    /// Histogram of dead-window jump lengths in cycles.
    pub jumps: LatencyHistogram,
    /// Jumps attributed to each [`EventSource`] (indexed by
    /// [`EventSource::index`]): which source's bound ended the window.
    pub triggers: [u64; EventSource::COUNT],
    /// Cycles advanced by ordinary per-cycle ticks.
    pub ticked_cycles: u64,
    /// Cycles advanced by dead-window jumps.
    pub skipped_cycles: u64,
}

impl SkipProfile {
    /// A zeroed profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Zeroes the profile in place, keeping the jump histogram's bucket
    /// allocation (for reused fused-profile scratch).
    pub fn clear(&mut self) {
        self.jumps.clear();
        self.triggers = [0; EventSource::COUNT];
        self.ticked_cycles = 0;
        self.skipped_cycles = 0;
    }

    /// Records one dead-window jump of `len` cycles bounded by `src`.
    #[inline]
    pub fn record_jump(&mut self, len: u64, src: EventSource) {
        self.jumps.record(len);
        self.triggers[src.index()] += 1;
        self.skipped_cycles += len;
    }

    /// Records one ordinary tick.
    #[inline]
    pub fn record_tick(&mut self) {
        self.ticked_cycles += 1;
    }

    /// Total cycles the profiled walk advanced.
    pub fn total_cycles(&self) -> u64 {
        self.ticked_cycles + self.skipped_cycles
    }

    /// Event density: ordinary (non-jumped) ticks per simulated
    /// kilocycle — the skip-ahead payoff metric (1000.0 means every
    /// cycle ticked; near 0 means almost everything was jumped).
    pub fn events_per_kilocycle(&self) -> f64 {
        let total = self.total_cycles();
        if total == 0 {
            0.0
        } else {
            self.ticked_cycles as f64 * 1000.0 / total as f64
        }
    }

    /// Fraction of advanced cycles covered by jumps.
    pub fn jump_coverage(&self) -> f64 {
        let total = self.total_cycles();
        if total == 0 {
            0.0
        } else {
            self.skipped_cycles as f64 / total as f64
        }
    }

    /// Counter-wise sum (fusing per-channel profiles).
    pub fn merge(&mut self, other: &SkipProfile) {
        self.jumps.merge(&other.jumps);
        for (t, &o) in self.triggers.iter_mut().zip(other.triggers.iter()) {
            *t += o;
        }
        self.ticked_cycles += other.ticked_cycles;
        self.skipped_cycles += other.skipped_cycles;
    }

    /// Counter-wise difference `self − earlier` (excluding warmup
    /// windows); exact inverse of [`SkipProfile::merge`].
    #[must_use]
    pub fn delta_since(&self, earlier: &SkipProfile) -> SkipProfile {
        let mut triggers = self.triggers;
        for (t, &e) in triggers.iter_mut().zip(earlier.triggers.iter()) {
            *t -= e;
        }
        SkipProfile {
            jumps: self.jumps.delta_since(&earlier.jumps),
            triggers,
            ticked_cycles: self.ticked_cycles - earlier.ticked_cycles,
            skipped_cycles: self.skipped_cycles - earlier.skipped_cycles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every field set from `seed`, no `..Default` — adding a
    /// `SkipProfile` field breaks this at compile time, forcing `merge`
    /// and `delta_since` to be revisited (the same drift guard
    /// `MemStats` uses).
    fn all_fields(seed: u64) -> SkipProfile {
        let mut jumps = LatencyHistogram::new();
        jumps.record(seed + 1);
        jumps.record(seed * 2 + 7);
        SkipProfile {
            jumps,
            triggers: [seed, seed + 1, seed + 2, seed + 3, seed + 4, seed + 5],
            ticked_cycles: seed + 6,
            skipped_cycles: seed + 7,
        }
    }

    #[test]
    fn merge_and_delta_are_inverses() {
        let a = all_fields(100);
        let b = all_fields(5_000);
        let mut fused = a.clone();
        fused.merge(&b);
        assert_eq!(fused.delta_since(&a), b);
        assert_eq!(fused.delta_since(&b), a);
        assert_eq!(fused.triggers[0], 5_100);
    }

    #[test]
    fn density_math() {
        let mut p = SkipProfile::new();
        for _ in 0..10 {
            p.record_tick();
        }
        p.record_jump(990, EventSource::Completion);
        assert_eq!(p.total_cycles(), 1_000);
        assert!((p.events_per_kilocycle() - 10.0).abs() < 1e-12);
        assert!((p.jump_coverage() - 0.99).abs() < 1e-12);
        assert_eq!(p.triggers[EventSource::Completion.index()], 1);
        assert_eq!(p.jumps.count(), 1);
    }

    #[test]
    fn source_indexing_is_stable() {
        for (i, s) in EventSource::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
        assert_eq!(EventSource::COUNT, 6);
    }
}
